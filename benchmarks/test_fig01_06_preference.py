"""Figures 1-6: selection preference vs distance and capacity.

Regenerates the synthetic selection simulation of Section 3.1 (1000
candidates, Zipf(2.0) capacities, Unif(0, 400 ms) distances, resource
levels 0.05 / 0.50 / 0.95) and asserts the design rationale the figures
illustrate: weak peers rank by proximity, powerful peers by capacity.
"""

import numpy as np

from conftest import print_result
from repro.experiments import preference
from repro.utility.preference import selection_preference


def test_fig01_06_preference_structure(benchmark):
    capacities, distances = preference.generate_candidates()

    benchmark.pedantic(
        lambda: selection_preference(capacities, distances, 0.5),
        rounds=20, iterations=5)

    result = preference.run()
    print_result(result)

    by_level = {row[0]: dict(zip(result.columns, row))
                for row in result.rows}
    weak = by_level[0.05]
    medium = by_level[0.50]
    powerful = by_level[0.95]

    # Figures 1 & 4: the weak peer's preference is dominated by distance.
    assert weak["corr_pref_distance"] < -0.95
    assert abs(weak["corr_pref_capacity"]) < 0.2

    # Figures 3 & 6: the powerful peer's preference follows capacity; the
    # top-20% powerful candidates absorb the bulk of the probability mass.
    assert powerful["corr_pref_capacity"] > 0.8
    assert powerful["top20_pref_share"] > 0.85

    # Figures 2 & 5: the medium peer balances both signals.
    assert weak["top20_pref_share"] < medium["top20_pref_share"] \
        < powerful["top20_pref_share"]
    assert medium["corr_pref_distance"] < -0.3
    assert medium["corr_pref_capacity"] > 0.5

    # In every case the preferences form a probability distribution whose
    # powerful candidates outrank the rest on average (log-scale plots).
    for level in (0.05, 0.50, 0.95):
        row = by_level[level]
        assert row["mean_pref_top20"] > 0.0
        assert row["mean_pref_rest"] > 0.0
    assert powerful["mean_pref_top20"] / powerful["mean_pref_rest"] > \
        weak["mean_pref_top20"] / weak["mean_pref_rest"]


def test_preference_is_valid_distribution_at_scale(benchmark):
    """The Eq.5 computation over a big candidate list stays fast/correct."""
    rng = np.random.default_rng(0)
    capacities = rng.choice([1.0, 10.0, 100.0, 1000.0], size=10_000)
    distances = rng.uniform(0.1, 400.0, size=10_000)

    probs = benchmark(selection_preference, capacities, distances, 0.3)
    assert probs.shape == (10_000,)
    assert np.isclose(probs.sum(), 1.0)

"""Multi-group benchmark: batched kernels vs the per-group loop.

Times one full multi-group pass — advertisement flood, subscription
climb, tree-delay sweep for every group — three ways over the same
overlay snapshot and the same Zipf rosters:

* ``loop`` — the per-group single-kernel loop
  (:func:`repro.core.parallel.run_group_pass_loop`), the differential
  reference.  At large tiers it is measured on a capped group prefix
  (``loop_groups_measured``) and its throughput extrapolated — the loop
  is embarrassingly per-group, so throughput is flat in the group count;
* ``batched`` — the group-major kernels relaxing every group against
  one shared CSR per epoch (:func:`repro.core.parallel.run_group_pass`);
* ``sharded`` — the batched kernels over deterministic group shards in
  a process pool (:func:`repro.core.parallel.run_sharded`).

Reported per tier: ``groups_per_sec`` and ``peer_groups_per_sec``
(throughput × overlay size) for each mode, ``speedup_vs_loop`` (the
headline batching win), ``shard_speedup`` (sharded over batched —
meaningful only with real cores; ``cpu_count`` is recorded alongside)
and ``bytes_per_group`` (dense per-group state of one pass).  The three
modes are bit-identical per group (pinned by ``tests/test_multigroup.py``),
so every timed run also cross-checks the merged digests.

Usage::

    PYTHONPATH=src python benchmarks/bench_multigroup.py \
        --write BENCH_multigroup.json        # refresh the committed file
    PYTHONPATH=src python benchmarks/bench_multigroup.py \
        --groups 1000 --repeat 2 --check BENCH_multigroup.json  # CI gate

``--check`` gates the machine-independent numbers only: each tier's
``speedup_vs_loop`` must stay above half the committed value and
``bytes_per_group`` must not grow past 1.2x the committed value
(``benchmarks/compare.py`` applies the same bounds in CI).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (  # noqa: E402
    edge_latencies_from_coords,
    run_group_pass,
    run_group_pass_loop,
    run_sharded,
    synthetic_power_law_csr,
)
from repro.sim.random import spawn_rng  # noqa: E402
from repro.workloads.groups import sample_group_rows  # noqa: E402

SEED = 7
TTL = 8
PEERS = 1024
MAX_GROUP_SIZE = 64
#: Group-count cap for the per-group reference loop; its throughput is
#: flat in the group count, so measuring a prefix and extrapolating
#: keeps the large tiers affordable without changing the comparison.
LOOP_CAP = 1_000
#: Dense per-group pass state, bytes per overlay row: parent/upstream/
#: hops int64 + arrival/expanded/delays float64 + on_tree/is_member/
#: has_ad bool.
STATE_BYTES_PER_ROW = 3 * 8 + 3 * 8 + 3


def _build_world(peers: int, n_groups: int):
    rng = spawn_rng(SEED, "bench-multigroup", str(peers), str(n_groups))
    csr = synthetic_power_law_csr(peers, rng)
    coords = rng.uniform(0.0, 100.0, size=(peers, 2))
    latency = edge_latencies_from_coords(csr, coords)
    roots, member_rows, indptr = sample_group_rows(
        rng, n_groups, peers, max_size=MAX_GROUP_SIZE)
    return csr, coords, latency, roots, member_rows, indptr


def _time(func, repeat: int):
    best, result = float("inf"), None
    for _ in range(repeat):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure_tier(n_groups: int, repeat: int, shards: int,
                  jobs: int) -> dict:
    csr, coords, latency, roots, member_rows, indptr = _build_world(
        PEERS, n_groups)

    loop_groups = min(n_groups, LOOP_CAP)
    loop_s, loop_result = _time(
        lambda: run_group_pass_loop(
            csr, latency, coords, roots[:loop_groups],
            member_rows[:indptr[loop_groups]], indptr[:loop_groups + 1],
            ttl=TTL),
        repeat)
    loop_gps = loop_groups / loop_s

    batched_s, batched = _time(
        lambda: run_group_pass(csr, latency, coords, roots, member_rows,
                               indptr, ttl=TTL),
        repeat)
    batched_gps = n_groups / batched_s

    sharded_s, sharded = _time(
        lambda: run_sharded(csr, latency, coords, roots, member_rows,
                            indptr, ttl=TTL, shards=shards, jobs=jobs),
        repeat)
    sharded_gps = n_groups / sharded_s

    # The three modes must agree bit for bit, tier by tier.
    if not np.array_equal(batched.digests[:loop_groups],
                          loop_result.digests):
        raise SystemExit(f"digest mismatch batched vs loop at "
                         f"{n_groups} groups")
    if batched.merged_digest() != sharded.merged_digest():
        raise SystemExit(f"digest mismatch batched vs sharded at "
                         f"{n_groups} groups")

    return {
        "groups": n_groups,
        "peers": PEERS,
        "loop_groups_measured": loop_groups,
        "loop_pass_s": round(loop_s, 4),
        "loop_groups_per_sec": round(loop_gps, 1),
        "batched_pass_s": round(batched_s, 4),
        "batched_groups_per_sec": round(batched_gps, 1),
        "sharded_pass_s": round(sharded_s, 4),
        "sharded_groups_per_sec": round(sharded_gps, 1),
        "peer_groups_per_sec": round(batched_gps * PEERS, 1),
        "speedup_vs_loop": round(batched_gps / loop_gps, 2),
        "shard_speedup": round(sharded_gps / batched_gps, 2),
        "bytes_per_group": PEERS * STATE_BYTES_PER_ROW,
    }


def run_benchmarks(group_counts: list[int], repeat: int, shards: int,
                   jobs: int) -> dict:
    report = {
        "repeat": repeat,
        "ttl": TTL,
        "peers": PEERS,
        "max_group_size": MAX_GROUP_SIZE,
        "shards": shards,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "metrics": {},
    }
    for n_groups in group_counts:
        row = _measure_tier(n_groups, repeat, shards, jobs)
        report["metrics"][f"groups_{n_groups}"] = row
        print(f"{n_groups:>7,d} groups   "
              f"loop {row['loop_groups_per_sec']:>9,.0f} g/s   "
              f"batched {row['batched_groups_per_sec']:>9,.0f} g/s   "
              f"sharded {row['sharded_groups_per_sec']:>9,.0f} g/s   "
              f"speedup {row['speedup_vs_loop']:5.1f}x   "
              f"shards(x{jobs}) {row['shard_speedup']:4.2f}x")
    return report


def check_against(report: dict, baseline_path: Path) -> int:
    """Machine-independent gate; mirrors the ``compare.py`` CI bounds."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failed = False
    for name, committed in baseline["metrics"].items():
        measured = report["metrics"].get(name)
        if measured is None:
            print(f"skip {name}: not measured in this run")
            continue
        floor = committed["speedup_vs_loop"] / 2.0
        ceiling = committed["bytes_per_group"] * 1.2
        ok_speed = measured["speedup_vs_loop"] >= floor
        ok_bytes = measured["bytes_per_group"] <= ceiling
        print(f"{'ok  ' if ok_speed else 'FAIL'} {name}: speedup "
              f"{measured['speedup_vs_loop']}x (floor {floor:.1f}x)")
        print(f"{'ok  ' if ok_bytes else 'FAIL'} {name}: "
              f"{measured['bytes_per_group']} B/group "
              f"(ceiling {ceiling:.0f})")
        failed = failed or not (ok_speed and ok_bytes)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Batched multi-group kernels vs the per-group loop.")
    parser.add_argument("--groups", type=int, nargs="+",
                        default=[1_000, 5_000, 10_000],
                        help="group counts to measure")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the sharded mode")
    parser.add_argument("--write", type=Path, default=None, metavar="PATH",
                        help="write the report (the committed baseline)")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the report to this path")
    parser.add_argument("--check", type=Path, default=None, metavar="PATH",
                        help="gate speedup/bytes-per-group against a "
                             "committed baseline; exit 1 on regression")
    args = parser.parse_args(argv)

    report = run_benchmarks(list(args.groups), args.repeat, args.shards,
                            args.jobs)
    for target in (args.write, args.json):
        if target is not None:
            target.write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
            print(f"wrote {target}")
    if args.check is not None:
        return check_against(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())

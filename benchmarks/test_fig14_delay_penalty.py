"""Figure 14: relative delay penalty of ESM over the four combinations.

The paper: ESM on GroupCast overlays stays near the theoretical lower
bound (reported ~1.5), far below ESM on random power-law overlays, and
the announcement scheme barely matters on GroupCast because the overlay
is already proximity-aware.
"""

from conftest import BENCH_SIZES, print_result, series
from repro.groupcast.dissemination import disseminate
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.subscription import subscribe_members
from repro.sim.random import spawn_rng


def test_fig14_delay_penalty(benchmark, app_results, groupcast_deployment):
    deployment = groupcast_deployment
    rng = spawn_rng(0, "bench-fig14")
    advertisement = propagate_advertisement(
        deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, _ = subscribe_members(
        deployment.overlay, advertisement, deployment.peer_ids()[1:60],
        deployment.peer_distance_ms, deployment.config.announcement)
    source = sorted(tree.members)[0]
    benchmark.pedantic(
        lambda: disseminate(tree, source, deployment.underlay),
        rounds=5, iterations=1)

    fig14 = app_results["fig14"]
    print_result(fig14)

    gc_ssa = series(fig14, "delay_penalty",
                    overlay="groupcast", scheme="ssa")
    pl_ssa = series(fig14, "delay_penalty", overlay="plod", scheme="ssa")
    pl_nssa = series(fig14, "delay_penalty", overlay="plod", scheme="nssa")

    for size in BENCH_SIZES:
        # ESM can never beat IP multicast.
        assert gc_ssa[size] >= 1.0
        # GroupCast beats the random power-law overlay at every size.
        assert gc_ssa[size] < pl_ssa[size]
        assert gc_ssa[size] < pl_nssa[size]
        # Near the bound: the paper reports ~1.5; accept < 3.6 given the
        # synthetic underlay's hop-latency mix.
        assert gc_ssa[size] < 3.6

    # At the paper's scales the gap widens decisively (paper: ~1.5 vs 4-6).
    largest = BENCH_SIZES[-1]
    assert gc_ssa[largest] < 0.65 * pl_ssa[largest]
    assert gc_ssa[largest] < 0.65 * pl_nssa[largest]

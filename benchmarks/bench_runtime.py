"""Live loopback runtime throughput benchmark (informational).

Hosts one :class:`~repro.runtime.cluster.RuntimeCluster` over real UDP
loopback sockets — the same protocol code the simulator runs, carried
by the asyncio transport with framing and retransmit-until-ack — and
times the full group life-cycle: advertise, subscribe, publish a batch
of payloads.  Reported metrics are wall-clock per phase, datagram
throughput (DATA + ACK frames per second), and the ARQ overhead
observed on a healthy loopback (retransmits, suppressed duplicates).

The absolute timings are **informational**: they measure socket and
event-loop behaviour of the host machine, which varies too much across
CI runners to gate on.  What *is* gated is the **live-telemetry
overhead ratio**: the same episode runs twice, bare and with a
:class:`~repro.obs.live.LiveTelemetry` pump attached (streaming tracer,
registry sampling, online watchdogs), and
``metrics.runtime.telemetry_overhead_ratio`` = telemetry / bare wall
time must stay under the 15% budget — a host-relative ratio that is
stable across machines the way the BENCH_obs overhead gate is.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py \
        --write BENCH_runtime.json            # refresh the committed file
    PYTHONPATH=src python benchmarks/bench_runtime.py \
        --repeat 2 --check BENCH_runtime.json # CI regression gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.deployment import build_deployment  # noqa: E402
from repro.obs import default_watchdogs  # noqa: E402
from repro.obs.live import LiveTelemetry  # noqa: E402

SEED = 7
GROUP = 1


async def _run_episode(peers: int, members_count: int, publishes: int,
                       settle_s: float, telemetry: bool = False) -> dict:
    """One full live life-cycle; returns the phase timings + counters."""
    deployment = build_deployment(peers, kind="groupcast", seed=SEED)
    # Raw substrate speed: no latency pacing (pacing measures the
    # latency table, not the transport).
    cluster = deployment.serve(pace_latencies=False)
    live = None
    if telemetry:
        # The full ops plane: streaming tracer with spans, registry
        # sampling and the standard watchdog pack — no output files,
        # so the ratio isolates the in-process cost.
        live = LiveTelemetry(cluster, rules=default_watchdogs())
    ids = deployment.peer_ids()
    members = ids[:members_count]
    phases: dict[str, float] = {}
    async with cluster:
        if live is not None:
            live.start()
        start = time.perf_counter()
        cluster.advertise(GROUP, members[0], scheme="nssa")
        if not await cluster.settle(settle_s):
            raise RuntimeError("advertisement never went quiescent")
        phases["advertise_s"] = time.perf_counter() - start

        start = time.perf_counter()
        cluster.subscribe(GROUP, members)
        if not await cluster.settle(settle_s):
            raise RuntimeError("subscriptions never went quiescent")
        phases["subscribe_s"] = time.perf_counter() - start
        on_tree = cluster.members_on_tree(GROUP)
        if not set(members) <= on_tree:
            raise RuntimeError(
                f"members missing from tree: {set(members) - on_tree}")

        start = time.perf_counter()
        payload_ids = [
            cluster.publish(GROUP, members[i % len(members)])
            for i in range(publishes)]
        if not await cluster.settle(settle_s):
            raise RuntimeError("publishes never went quiescent")
        phases["publish_s"] = time.perf_counter() - start
        delivered = sum(
            len(cluster.deliveries(GROUP, pid)) for pid in payload_ids)

        counters = {
            name: cluster.registry.counter(name).value
            for name in ("net.sent", "net.delivered", "net.dead_lettered",
                         "runtime.acks_sent", "runtime.retransmits",
                         "runtime.duplicates_suppressed",
                         "runtime.expired")}
        if live is not None:
            await live.close()
    total_s = sum(phases.values())
    datagrams = counters["net.sent"] + counters["runtime.acks_sent"]
    return {
        "phases": {k: round(v, 6) for k, v in phases.items()},
        "total_s": round(total_s, 6),
        "datagrams_per_s": round(datagrams / total_s, 1),
        "deliveries": delivered,
        "members_on_tree": len(on_tree),
        "counters": counters,
    }


def run_benchmark(peers: int, members_count: int, publishes: int,
                  repeat: int, settle_s: float) -> dict:
    """Best-of-``repeat``, bare and with the live-telemetry pump."""
    best = None
    best_telemetry = None
    for _ in range(repeat):
        result = asyncio.run(
            _run_episode(peers, members_count, publishes, settle_s))
        if best is None or result["total_s"] < best["total_s"]:
            best = result
        observed = asyncio.run(
            _run_episode(peers, members_count, publishes, settle_s,
                         telemetry=True))
        if best_telemetry is None \
                or observed["total_s"] < best_telemetry["total_s"]:
            best_telemetry = observed
    ratio = (best_telemetry["total_s"] / best["total_s"]
             if best["total_s"] > 0 else float("inf"))
    best["telemetry"] = {
        "total_s": best_telemetry["total_s"],
        "datagrams_per_s": best_telemetry["datagrams_per_s"],
    }
    best["telemetry_overhead_ratio"] = round(ratio, 4)
    report = {
        "peers": peers,
        "members": members_count,
        "publishes": publishes,
        "repeat": repeat,
        "metrics": {"runtime": best},
    }
    print(f"runtime loopback  {peers} peers  "
          f"total {best['total_s']:8.4f}s  "
          f"{best['datagrams_per_s']:10.1f} datagrams/s  "
          f"retransmits {best['counters']['runtime.retransmits']}  "
          f"telemetry overhead {ratio:6.3f}x")
    return report


def check_against(report: dict, baseline_path: Path,
                  slack: float) -> int:
    """Gate: measured telemetry overhead within ``slack``x of the
    committed ratio (floored at the 1.15 budget, so tightening the
    baseline never makes the gate impossible on slower machines)."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    committed = baseline["metrics"]["runtime"]["telemetry_overhead_ratio"]
    measured = report["metrics"]["runtime"]["telemetry_overhead_ratio"]
    ceiling = max(1.15, committed * slack)
    status = "ok" if measured <= ceiling else "FAIL"
    print(f"{status:4s} live telemetry overhead: measured {measured}x, "
          f"committed {committed}x (ceiling {ceiling:.3f}x)")
    return 0 if measured <= ceiling else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Live loopback runtime benchmark (informational).")
    parser.add_argument("--peers", type=int, default=40)
    parser.add_argument("--members", type=int, default=12)
    parser.add_argument("--publishes", type=int, default=20)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--settle", type=float, default=15.0,
                        help="per-phase quiescence deadline (seconds)")
    parser.add_argument(
        "--write", type=Path, default=None, metavar="PATH",
        help="write the report as JSON (the committed baseline)")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the report to this path")
    parser.add_argument(
        "--check", type=Path, default=None, metavar="PATH",
        help="gate the telemetry overhead against a committed baseline")
    parser.add_argument(
        "--slack", type=float, default=2.0,
        help="allowed measured/committed overhead factor under --check")
    args = parser.parse_args(argv)

    report = run_benchmark(args.peers, args.members, args.publishes,
                           args.repeat, args.settle)
    for target in (args.write, args.json):
        if target is not None:
            target.write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
            print(f"wrote {target}")
    if args.check is not None:
        return check_against(report, args.check, args.slack)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Routing-core regression micro-benchmark.

Times the scalar reference implementations against the vectorized
routing core on one seeded deployment and reports per-metric speedups:

* ``multicast_tree`` — the Figure 15/16 link/node-stress path: merging
  unicast routes into an IP multicast tree over a large receiver set
  (scalar per-pair queries vs one gather + memoized predecessor walk);
* ``distance_matrix`` — the all-pairs latency matrix behind NICE
  cluster centers and Narada mesh construction;
* ``hop_counts`` — per-receiver physical hop counts (client/server
  baseline accounting).

Usage::

    PYTHONPATH=src python benchmarks/bench_routing.py --peers 2000 \
        --write BENCH_routing.json           # refresh the committed file
    PYTHONPATH=src python benchmarks/bench_routing.py --peers 500 \
        --repeat 3 --check BENCH_routing.json   # CI regression gate

``--check`` compares *speedup ratios*, not absolute seconds, so the gate
is machine-independent: it fails (exit 1) if any measured speedup drops
below half the committed one.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.deployment import build_deployment  # noqa: E402
from repro.network.multicast import (  # noqa: E402
    _build_ip_multicast_tree_scalar,
    build_ip_multicast_tree,
)

SEED = 7


def _time(func, repeat: int) -> float:
    """Best-of-``repeat`` wall time of ``func()`` in seconds."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmarks(peers: int, repeat: int) -> dict:
    """Measure scalar vs vectorized times; returns the report dict."""
    deployment = build_deployment(peers, kind="groupcast", seed=SEED)
    underlay = deployment.underlay
    ids = deployment.peer_ids()
    source = ids[0]
    receivers = ids[1:]
    matrix_peers = ids[:min(peers, 400)]

    # Warm the row caches so both sides measure extraction, not Dijkstra.
    underlay.peer_distance_matrix(matrix_peers)
    underlay.peer_hop_counts(source, receivers)

    def scalar_matrix():
        return [[underlay.peer_distance_ms(a, b) for b in matrix_peers]
                for a in matrix_peers]

    # The hop-count workload is microseconds per pass; loop it so both
    # sides are measured well above timer granularity.
    hop_loops = 200

    def scalar_hops():
        total = 0
        for _ in range(hop_loops):
            total += sum(underlay.peer_hop_count(source, b)
                         for b in receivers)
        return total

    def fast_hops():
        total = 0
        for _ in range(hop_loops):
            total += int(underlay.peer_hop_counts(source, receivers).sum())
        return total

    tree_loops = 10

    def scalar_tree():
        for _ in range(tree_loops):
            tree = _build_ip_multicast_tree_scalar(
                underlay, source, receivers)
        return tree

    def fast_tree():
        for _ in range(tree_loops):
            tree = build_ip_multicast_tree(underlay, source, receivers)
        return tree

    metrics = {
        "multicast_tree": (scalar_tree, fast_tree),
        "distance_matrix": (
            scalar_matrix,
            lambda: underlay.peer_distance_matrix(matrix_peers),
        ),
        "hop_counts": (scalar_hops, fast_hops),
    }

    report = {"peers": peers, "repeat": repeat, "metrics": {}}
    for name, (scalar, fast) in metrics.items():
        scalar_s = _time(scalar, repeat)
        fast_s = _time(fast, repeat)
        speedup = scalar_s / fast_s if fast_s > 0 else float("inf")
        report["metrics"][name] = {
            "scalar_s": round(scalar_s, 6),
            "fast_s": round(fast_s, 6),
            "speedup": round(speedup, 2),
        }
        print(f"{name:16s} scalar {scalar_s:9.4f}s   "
              f"fast {fast_s:9.4f}s   speedup {speedup:7.1f}x")
    return report


def check_against(report: dict, baseline_path: Path) -> int:
    """Regression gate: measured speedup must be >= committed / 2."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failed = False
    for name, committed in baseline["metrics"].items():
        measured = report["metrics"].get(name)
        if measured is None:
            print(f"FAIL {name}: missing from this run")
            failed = True
            continue
        floor = committed["speedup"] / 2.0
        status = "ok" if measured["speedup"] >= floor else "FAIL"
        print(f"{status:4s} {name}: measured {measured['speedup']}x, "
              f"committed {committed['speedup']}x (floor {floor:.1f}x)")
        if measured["speedup"] < floor:
            failed = True
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Routing-core scalar-vs-vectorized micro-benchmark.")
    parser.add_argument("--peers", type=int, default=2000)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument(
        "--write", type=Path, default=None, metavar="PATH",
        help="write the report as JSON (the committed baseline)")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the report to this path")
    parser.add_argument(
        "--check", type=Path, default=None, metavar="PATH",
        help="compare speedups against a committed baseline; exit 1 if "
             "any falls below half the committed ratio")
    args = parser.parse_args(argv)

    report = run_benchmarks(args.peers, args.repeat)
    for target in (args.write, args.json):
        if target is not None:
            target.write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
            print(f"wrote {target}")
    if args.check is not None:
        return check_against(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Section 2.1 comparison: GroupCast trees vs SCRIBE-on-Pastry trees.

The paper claims its unstructured spanning trees are "comparable to
those built using the other three approaches" while avoiding the DHT's
churn-time maintenance cost.  This bench builds both systems over the
*same* underlay and member sets and compares:

* tree quality — relative delay penalty and link stress of one payload;
* churn cost — the per-join state a Pastry node must acquire/maintain
  versus the constant-size neighbor list of the unstructured overlay.
"""

import numpy as np

from conftest import SEED
from repro.dht.pastry import PastryNetwork
from repro.dht.scribe import build_scribe_group
from repro.experiments.common import (
    establish_and_measure_group,
    experiment_rng,
    pick_rendezvous_points,
)
from repro.groupcast.dissemination import disseminate
from repro.metrics.tree_metrics import link_stress, relative_delay_penalty
from repro.network.multicast import build_ip_multicast_tree

GROUPS = 6
MEMBERS = 80


def scribe_quality(pastry, underlay, members, name):
    group = build_scribe_group(pastry, name, members)
    source = group.root_peer
    report = disseminate(group.tree, source, underlay)
    receivers = [m for m in group.members if m != source]
    ip_tree = build_ip_multicast_tree(underlay, source, receivers)
    return (relative_delay_penalty(report, ip_tree),
            link_stress(report, ip_tree))


def test_groupcast_trees_comparable_to_scribe(benchmark,
                                              groupcast_deployment):
    deployment = groupcast_deployment
    underlay = deployment.underlay
    peer_ids = deployment.peer_ids()
    pastry = PastryNetwork(underlay, peer_ids)
    rng = experiment_rng(SEED, "scribe-comparison")

    benchmark.pedantic(
        lambda: pastry.route(peer_ids[0], 0xDEADBEEFDEADBEEF),
        rounds=20, iterations=5)

    gc_rdp, gc_stress, sc_rdp, sc_stress = [], [], [], []
    for index, point in enumerate(
            pick_rendezvous_points(deployment, GROUPS, rng)):
        picks = rng.choice(len(peer_ids), size=MEMBERS, replace=False)
        members = [peer_ids[int(i)] for i in picks]
        run = establish_and_measure_group(
            deployment, point, members, "ssa", rng)
        gc_rdp.append(run.delay_penalty)
        gc_stress.append(run.link_stress)
        rdp, stress = scribe_quality(
            pastry, underlay, members, f"bench-group-{index}")
        sc_rdp.append(rdp)
        sc_stress.append(stress)

    gc_rdp_mean = float(np.mean(gc_rdp))
    sc_rdp_mean = float(np.mean(sc_rdp))
    gc_stress_mean = float(np.mean(gc_stress))
    sc_stress_mean = float(np.mean(sc_stress))
    join_state = pastry.join_state_cost()
    groupcast_state = int(np.mean(
        [deployment.overlay.degree(p) for p in peer_ids]))

    print()
    print("GroupCast (unstructured) vs SCRIBE-on-Pastry (structured)")
    print(f"{'system':<12}{'delay penalty':>15}{'link stress':>13}"
          f"{'join state':>12}")
    print(f"{'groupcast':<12}{gc_rdp_mean:>15.2f}{gc_stress_mean:>13.2f}"
          f"{groupcast_state:>12d}")
    print(f"{'scribe':<12}{sc_rdp_mean:>15.2f}{sc_stress_mean:>13.2f}"
          f"{join_state:>12d}")

    # The paper's claim: tree quality is comparable (within ~2x either
    # way) ...
    assert gc_rdp_mean < 2.0 * sc_rdp_mean
    assert gc_stress_mean < 2.0 * sc_stress_mean
    # ... while the unstructured overlay maintains far less per-node
    # state than the DHT, which is what churn keeps invalidating.
    assert groupcast_state < join_state

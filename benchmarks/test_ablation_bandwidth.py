"""Ablation: the bandwidth (serialization-delay) dissemination model.

The paper's evaluation charges only propagation delay; real forwarders
also pay transmission time per copy, which punishes trees that hang
fan-out on weak peers.  This ablation floods the same groups under both
delay models and shows that the capacity-aware GroupCast trees extend
their latency advantage over the capacity-blind PLOD baseline when
serialization is accounted for.
"""

import numpy as np

from conftest import SEED
from repro.experiments.common import (
    establish_and_measure_group,
    experiment_rng,
    pick_rendezvous_points,
)
from repro.groupcast.dissemination import disseminate

GROUPS = 5
MEMBERS = 100
PAYLOAD_KBITS = 256.0


def mean_delay(deployment, trees, payload_kbits):
    capacities = {info.peer_id: info.capacity
                  for info in deployment.overlay.peers()}
    delays = []
    for tree in trees:
        report = disseminate(
            tree, tree.root, deployment.underlay,
            capacities=capacities if payload_kbits > 0 else None,
            payload_kbits=payload_kbits)
        delays.append(report.average_member_delay_ms)
    return float(np.mean(delays))


def build_trees(deployment):
    rng = experiment_rng(SEED, f"bandwidth-{deployment.kind}")
    ids = deployment.peer_ids()
    trees = []
    for point in pick_rendezvous_points(deployment, GROUPS, rng):
        picks = rng.choice(len(ids), size=MEMBERS, replace=False)
        members = [ids[int(i)] for i in picks]
        run = establish_and_measure_group(
            deployment, point, members, "ssa", rng)
        trees.append(run.tree)
    return trees


def test_bandwidth_model_rewards_capacity_awareness(
        benchmark, groupcast_deployment, plod_deployment):
    gc_trees = build_trees(groupcast_deployment)
    pl_trees = build_trees(plod_deployment)

    benchmark.pedantic(
        lambda: mean_delay(groupcast_deployment, gc_trees, PAYLOAD_KBITS),
        rounds=5, iterations=1)

    gc_prop = mean_delay(groupcast_deployment, gc_trees, 0.0)
    pl_prop = mean_delay(plod_deployment, pl_trees, 0.0)
    gc_band = mean_delay(groupcast_deployment, gc_trees, PAYLOAD_KBITS)
    pl_band = mean_delay(plod_deployment, pl_trees, PAYLOAD_KBITS)

    print()
    print(f"Average delivery delay (ms), {PAYLOAD_KBITS:.0f} kbit payload")
    print(f"{'overlay':<11}{'propagation only':>18}{'with serialization':>20}")
    print(f"{'groupcast':<11}{gc_prop:>18.1f}{gc_band:>20.1f}")
    print(f"{'plod':<11}{pl_prop:>18.1f}{pl_band:>20.1f}")

    # Serialization can only add delay.
    assert gc_band >= gc_prop
    assert pl_band >= pl_prop
    # GroupCast keeps a decisive win under both delay models — the
    # capacity-aware trees avoid stacking fan-out on 1x forwarders.
    # (Serialization charges every hop, so both overlays pay for tree
    # depth; the *ordering* is the robust claim.)
    assert gc_band < 0.75 * pl_band

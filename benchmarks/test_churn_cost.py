"""Churn maintenance cost: the unstructured-overlay advantage.

Section 1's motivating claim — DHT maintenance is expensive under churn
— measured on our own substrates: the live GroupCast churn world versus
the Pastry join-state model.
"""

from conftest import SEED, print_result
from repro.experiments import churn_cost


def test_groupcast_cheaper_than_dht_under_churn(benchmark):
    result = churn_cost.run(max_joins=200, seed=SEED)

    benchmark.pedantic(
        lambda: churn_cost.run_groupcast_churn(
            100, 60_000.0, SEED, sim_horizon_ms=40_000.0),
        rounds=2, iterations=1)

    print_result(result)
    per_event = result.column("gc_msgs_per_event")
    keepalive = result.column("gc_keepalive_state")
    dht_event = result.column("dht_state_per_event")[0]
    dht_keepalive = result.column("dht_keepalive_state")[0]

    for value in per_event:
        # Event handling stays below the DHT's per-event state churn.
        assert value < dht_event
    # Keepalive state (overlay degree vs routing entries) is several
    # times smaller — the structural reason unstructured overlays
    # tolerate churn.
    live = [v for v in keepalive if v > 0]
    assert live
    assert max(live) < 0.5 * dht_keepalive

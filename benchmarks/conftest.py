"""Shared benchmark fixtures.

The full sweeps behind Figures 11-17 are computed once per pytest session
and shared by every per-figure benchmark, which then (a) times the core
protocol operation behind its figure with pytest-benchmark and (b) prints
the regenerated table and asserts the paper's qualitative shape.

Benchmark sweep sizes default to 500-2000 peers so the whole suite runs
in minutes on a laptop; set ``REPRO_FULL_SCALE=1`` to sweep the paper's
1000-32000 range.
"""

from __future__ import annotations

import os

import pytest

from repro.deployment import build_deployment
from repro.experiments import app_performance, service_lookup

BENCH_SIZES = (
    (1000, 2000, 4000, 8000, 16000, 32000)
    if os.environ.get("REPRO_FULL_SCALE")
    else (500, 1000, 2000)
)

SEED = 7


@pytest.fixture(scope="session")
def lookup_results():
    """Figures 11-13 sweep, computed once."""
    return service_lookup.run(sizes=BENCH_SIZES, seed=SEED)


@pytest.fixture(scope="session")
def app_results():
    """Figures 14-17 sweep, computed once."""
    return app_performance.run(sizes=BENCH_SIZES, seed=SEED)


@pytest.fixture(scope="session")
def groupcast_deployment():
    """A mid-size GroupCast deployment for micro-benchmarks."""
    return build_deployment(BENCH_SIZES[0], kind="groupcast", seed=SEED)


@pytest.fixture(scope="session")
def plod_deployment():
    """A mid-size PLOD deployment for micro-benchmarks."""
    return build_deployment(BENCH_SIZES[0], kind="plod", seed=SEED)


def print_result(result) -> None:
    """Emit a regenerated table into the benchmark log."""
    print()
    print(result.format_table())


def series(result, value: str, **filters):
    """Extract one curve from an ExperimentResult as ``{peers: value}``.

    ``filters`` fix column values (e.g. ``overlay="groupcast"``,
    ``scheme="ssa"``); ``value`` names the column to read.
    """
    out = {}
    for row in result.rows:
        record = dict(zip(result.columns, row))
        if all(record[k] == v for k, v in filters.items()):
            out[record["peers"]] = record[value]
    return out

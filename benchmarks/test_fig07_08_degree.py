"""Figures 7-8: log-log degree distributions of both overlays.

The paper shows 5000-peer GroupCast and PLOD overlays both following a
power law, with GroupCast missing PLOD's long tail and exhibiting a lower
clustering coefficient.  Benchmark scale is 2000 peers by default (5000
with ``REPRO_FULL_SCALE=1``).
"""

import os

from conftest import SEED, print_result
from repro.experiments.overlay_structure import run_degree_distribution
from repro.overlay.plod import generate_plod_overlay

PEERS = 5000 if os.environ.get("REPRO_FULL_SCALE") else 2000


def test_fig07_08_degree_distributions(benchmark, groupcast_deployment):
    # Time the PLOD generator itself (the centralized baseline build).
    peers = list(groupcast_deployment.overlay.peers())
    benchmark.pedantic(
        lambda: generate_plod_overlay(
            peers, groupcast_deployment.protocol_rng),
        rounds=3, iterations=1)

    result = run_degree_distribution(PEERS, SEED)
    print_result(result)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}
    groupcast = rows["groupcast"]
    plod = rows["plod"]

    # Both are decaying power-law-ish distributions.
    assert groupcast["powerlaw_exponent"] > 0.8
    assert plod["powerlaw_exponent"] > 0.8
    assert groupcast["fit_r2"] > 0.5
    assert plod["fit_r2"] > 0.4

    # Figure 7 vs 8: GroupCast's distribution has no long tail — its max
    # degree sits well below PLOD's hub degree.
    assert groupcast["max_degree"] < plod["max_degree"]

    # Gnutella-like densities in both overlays.
    assert 3.0 < groupcast["mean_degree"] < 12.0
    assert 3.0 < plod["mean_degree"] < 12.0

"""Figure 15: link stress of ESM over the four combinations.

The paper: ESM on GroupCast overlays produces ~2/3 of the IP traffic of
ESM on random power-law overlays, because payloads travel shorter
physical routes between proximity-matched neighbors.
"""

from conftest import BENCH_SIZES, print_result, series
from repro.network.multicast import build_ip_multicast_tree


def test_fig15_link_stress(benchmark, app_results, groupcast_deployment):
    deployment = groupcast_deployment
    members = deployment.peer_ids()[:80]
    benchmark.pedantic(
        lambda: build_ip_multicast_tree(
            deployment.underlay, members[0], members[1:]),
        rounds=5, iterations=1)

    fig15 = app_results["fig15"]
    print_result(fig15)

    gc_ssa = series(fig15, "link_stress",
                    overlay="groupcast", scheme="ssa")
    gc_nssa = series(fig15, "link_stress",
                     overlay="groupcast", scheme="nssa")
    pl_ssa = series(fig15, "link_stress", overlay="plod", scheme="ssa")
    pl_nssa = series(fig15, "link_stress", overlay="plod", scheme="nssa")

    for size in BENCH_SIZES:
        # Link stress is at least 1 (ESM cannot beat IP multicast).
        assert gc_ssa[size] >= 1.0
        # GroupCast generates less IP traffic at every size and scheme.
        assert gc_ssa[size] < pl_ssa[size]
        assert gc_nssa[size] < 0.75 * pl_nssa[size]

    # The paper: GroupCast's stress is about 2/3 of the random power-law
    # overlay's; assert the factor at the largest size of the sweep.
    largest = BENCH_SIZES[-1]
    assert gc_ssa[largest] < 0.8 * pl_ssa[largest]

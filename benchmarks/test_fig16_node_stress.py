"""Figure 16: node stress of the group-communication trees.

The paper: node stress (average children of non-leaf tree nodes) stays
almost constant in GroupCast as the overlay scales — the capacity-aware
construction spreads forwarding work instead of concentrating it.
"""

import numpy as np

from conftest import BENCH_SIZES, print_result, series
from repro.metrics.tree_metrics import node_stress


def test_fig16_node_stress(benchmark, app_results, groupcast_deployment):
    from repro.groupcast.advertisement import propagate_advertisement
    from repro.groupcast.subscription import subscribe_members
    from repro.sim.random import spawn_rng

    deployment = groupcast_deployment
    rng = spawn_rng(0, "bench-fig16")
    advertisement = propagate_advertisement(
        deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, _ = subscribe_members(
        deployment.overlay, advertisement, deployment.peer_ids()[1:60],
        deployment.peer_distance_ms, deployment.config.announcement)
    benchmark.pedantic(lambda: node_stress([tree]), rounds=10, iterations=1)

    fig16 = app_results["fig16"]
    print_result(fig16)

    gc_ssa = series(fig16, "node_stress",
                    overlay="groupcast", scheme="ssa")

    values = [gc_ssa[size] for size in BENCH_SIZES]
    # Bounded fan-out at every size...
    assert all(1.0 <= v <= 4.0 for v in values)
    # ...and almost constant across the sweep (the paper's headline):
    # total variation across a size sweep stays within 35 %.
    assert max(values) <= 1.35 * min(values)

"""Topology-observatory overhead micro-benchmark.

Times one seeded end-to-end ``GroupSession`` workload (establish a
group, publish payloads, tear nothing down) twice: once bare and once
with a default :class:`~repro.obs.topology.TopologyRecorder` attached
at its default 500 ms cadence with the standard watchdog pack.  The
single reported metric is the wall-clock ``overhead_ratio``
(enabled / disabled); the observatory's budget is **under 15%** at the
default cadence.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        --write BENCH_obs.json               # refresh the committed file
    PYTHONPATH=src python benchmarks/bench_obs.py \
        --repeat 3 --check BENCH_obs.json    # CI regression gate

``--check`` gates on the *measured* ratio, not a cross-machine time: it
fails (exit 1) when the fresh overhead exceeds the committed ratio by
more than the slack factor (default 2x, floored at the 1.15 budget), so
a noisy CI box cannot fail the gate while a real per-snapshot cost
regression still does.  The run also asserts digest equality between
the bare and observed sessions — the benchmark doubles as an end-to-end
bit-transparency check at scale.

The second section times the *dimensional* telemetry columns: one
thousand-group batched pass with the per-group delay-sketch columns off
vs on (``metrics.obs.dims_overhead_ratio``).  The columns are pure
segmented numpy reductions, so their budget is the same < 15%, and the
run asserts the merged digest is bit-identical with dims on or off.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import AnnouncementConfig  # noqa: E402
from repro.core import (  # noqa: E402
    edge_latencies_from_coords,
    run_group_pass,
    synthetic_power_law_csr,
)
from repro.deployment import build_deployment  # noqa: E402
from repro.groupcast.session import GroupSession  # noqa: E402
from repro.obs import (  # noqa: E402
    DEFAULT_SKETCH_LAYOUT,
    Registry,
    Tracer,
    default_watchdogs,
    disable_topology,
    enable_topology,
)
from repro.sim.random import spawn_rng  # noqa: E402
from repro.workloads.groups import sample_group_rows  # noqa: E402

SEED = 7


def _one_run(peers: int, members_count: int, publishes: int) -> str:
    """One full session workload; returns its trace digest."""
    deployment = build_deployment(peers, kind="groupcast", seed=SEED)
    tracer = Tracer()
    session = GroupSession(
        deployment.overlay, deployment.peer_distance_ms,
        spawn_rng(SEED, "bench-obs"),
        announcement=AnnouncementConfig(advertisement_ttl=6,
                                        subscription_search_ttl=3),
        registry=Registry(), tracer=tracer)
    ids = deployment.peer_ids()
    members = ids[:members_count]
    session.establish(1, members[0], members)
    for i in range(publishes):
        session.publish(1, members[i % len(members)])
    return tracer.trace_digest()


def _time(func, repeat: int) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the last return value."""
    best, result = float("inf"), None
    for _ in range(repeat):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_benchmark(peers: int, members_count: int, publishes: int,
                  repeat: int) -> dict:
    """Measure bare vs observed wall time; returns the report dict."""
    disabled_s, bare_digest = _time(
        lambda: _one_run(peers, members_count, publishes), repeat)

    def observed():
        recorder = enable_topology()  # default 500 ms cadence
        for rule in default_watchdogs(group_ids=(1,)):
            recorder.add_watchdog(rule)
        try:
            digest = _one_run(peers, members_count, publishes)
        finally:
            disable_topology()
        if not recorder.snapshots:
            raise RuntimeError("recorder captured no snapshots")
        return digest

    enabled_s, observed_digest = _time(observed, repeat)
    if observed_digest != bare_digest:
        raise RuntimeError(
            "observatory broke digest bit-transparency: "
            f"{observed_digest} != {bare_digest}")
    ratio = enabled_s / disabled_s if disabled_s > 0 else float("inf")
    report = {
        "peers": peers,
        "members": members_count,
        "publishes": publishes,
        "repeat": repeat,
        "metrics": {
            "observatory": {
                "disabled_s": round(disabled_s, 6),
                "enabled_s": round(enabled_s, 6),
                "overhead_ratio": round(ratio, 4),
            },
        },
    }
    print(f"observatory      bare {disabled_s:9.4f}s   "
          f"observed {enabled_s:9.4f}s   overhead {ratio:7.3f}x")
    return report


def run_dims_benchmark(dims_peers: int, dims_groups: int,
                       repeat: int) -> dict:
    """Dims-column overhead over one thousand-group batched pass.

    Times :func:`repro.core.parallel.run_group_pass` with the per-group
    delay-sketch columns off vs on (same world, same groups) and
    asserts the merged digest is bit-identical either way.
    """
    rng = spawn_rng(SEED, "bench-dims-world")
    csr = synthetic_power_law_csr(dims_peers, rng)
    coords = rng.uniform(0.0, 100.0, size=(dims_peers, 2))
    latency = edge_latencies_from_coords(csr, coords)
    roots, member_rows, indptr = sample_group_rows(
        spawn_rng(SEED, "bench-dims-groups"), dims_groups, dims_peers,
        max_size=256)

    def one_pass(layout):
        return run_group_pass(csr, latency, coords, roots, member_rows,
                              indptr, ttl=8, dims_layout=layout)

    off_s, off = _time(lambda: one_pass(None), repeat)
    on_s, on = _time(lambda: one_pass(DEFAULT_SKETCH_LAYOUT), repeat)
    if on.merged_digest() != off.merged_digest():
        raise RuntimeError(
            "dims columns broke digest bit-transparency: "
            f"{on.merged_digest()} != {off.merged_digest()}")
    ratio = on_s / off_s if off_s > 0 else float("inf")
    print(f"dims columns     off  {off_s:9.4f}s   "
          f"on       {on_s:9.4f}s   overhead {ratio:7.3f}x"
          f"   ({dims_groups} groups, {dims_peers} rows)")
    return {
        "dims_peers": dims_peers,
        "dims_groups": dims_groups,
        "obs": {
            "dims_disabled_s": round(off_s, 6),
            "dims_enabled_s": round(on_s, 6),
            "dims_overhead_ratio": round(ratio, 4),
        },
    }


def check_against(report: dict, baseline_path: Path,
                  slack: float) -> int:
    """Gate: measured overheads within ``slack``x of the committed
    ratios (floored at the 1.15 budget, so tightening the baseline
    never makes the gate impossible on slower machines)."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = 0
    gates = (
        ("observatory overhead",
         ("metrics", "observatory", "overhead_ratio")),
        ("dims overhead",
         ("metrics", "obs", "dims_overhead_ratio")),
    )
    for label, path in gates:
        committed, measured = baseline, report
        for key in path:
            committed = committed[key]
            measured = measured[key]
        ceiling = max(1.15, committed * slack)
        ok = measured <= ceiling
        failures += 0 if ok else 1
        print(f"{'ok' if ok else 'FAIL':4s} {label}: measured "
              f"{measured}x, committed {committed}x "
              f"(ceiling {ceiling:.3f}x)")
    return 0 if failures == 0 else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Topology-observatory overhead benchmark.")
    parser.add_argument("--peers", type=int, default=150)
    parser.add_argument("--members", type=int, default=40)
    parser.add_argument("--publishes", type=int, default=6)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--dims-peers", type=int, default=2048)
    parser.add_argument("--dims-groups", type=int, default=1000)
    parser.add_argument(
        "--write", type=Path, default=None, metavar="PATH",
        help="write the report as JSON (the committed baseline)")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the report to this path")
    parser.add_argument(
        "--check", type=Path, default=None, metavar="PATH",
        help="gate the measured overhead against a committed baseline")
    parser.add_argument(
        "--slack", type=float, default=2.0,
        help="allowed measured/committed overhead factor under --check")
    args = parser.parse_args(argv)

    report = run_benchmark(args.peers, args.members, args.publishes,
                           args.repeat)
    dims = run_dims_benchmark(args.dims_peers, args.dims_groups,
                              args.repeat)
    report["dims_peers"] = dims["dims_peers"]
    report["dims_groups"] = dims["dims_groups"]
    report["metrics"]["obs"] = dims["obs"]
    for target in (args.write, args.json):
        if target is not None:
            target.write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
            print(f"wrote {target}")
    if args.check is not None:
        return check_against(report, args.check, args.slack)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 12: advertisement receiving rate and subscription success rate.

The paper's headline: even though SSA pushes the announcement to only a
subset of the overlay, every subscriber on the GroupCast overlay locates
the service with ~100 % success using a TTL-2 ripple search, because the
announcement has already been planted across the topological regions the
utility function favours.
"""

from conftest import BENCH_SIZES, print_result, series
from repro.groupcast.subscription import subscribe_members
from repro.groupcast.advertisement import propagate_advertisement
from repro.sim.random import spawn_rng


def test_fig12_receiving_and_success_rates(benchmark, lookup_results,
                                           groupcast_deployment):
    deployment = groupcast_deployment
    rng = spawn_rng(0, "bench-fig12")
    advertisement = propagate_advertisement(
        deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    members = deployment.peer_ids()[1:80]
    benchmark.pedantic(
        lambda: subscribe_members(
            deployment.overlay, advertisement, members,
            deployment.peer_distance_ms, deployment.config.announcement),
        rounds=5, iterations=1)

    fig12 = lookup_results["fig12"]
    print_result(fig12)

    gc_recv = series(fig12, "receiving_rate",
                     overlay="groupcast", scheme="ssa")
    gc_success = series(fig12, "success_rate",
                        overlay="groupcast", scheme="ssa")
    pl_success = series(fig12, "success_rate",
                        overlay="plod", scheme="ssa")
    nssa_recv = series(fig12, "receiving_rate",
                       overlay="groupcast", scheme="nssa")

    for size in BENCH_SIZES:
        # SSA reaches only part of the overlay; NSSA floods nearly all.
        assert gc_recv[size] < 0.95
        assert nssa_recv[size] > 0.9
        # The paper's headline: ~100 % subscription success on GroupCast
        # with the TTL-2 ripple search.
        assert gc_success[size] >= 0.99
        # The utility-aware overlay sustains a higher success rate than
        # the random power-law baseline.
        assert gc_success[size] >= pl_success[size]

"""Figure 17: overload index of the four combinations.

The paper: both utility-aware mechanisms cut overloading dramatically —
SSA alone reduces overloading on the random power-law overlay, the
GroupCast overlay reduces it by one-to-two orders of magnitude, and the
combination wins at every scale.
"""

from conftest import BENCH_SIZES, print_result, series
from repro.metrics.tree_metrics import aggregate_workloads, overload_index


def test_fig17_overload_index(benchmark, app_results, groupcast_deployment):
    from repro.groupcast.advertisement import propagate_advertisement
    from repro.groupcast.subscription import subscribe_members
    from repro.sim.random import spawn_rng

    deployment = groupcast_deployment
    rng = spawn_rng(0, "bench-fig17")
    advertisement = propagate_advertisement(
        deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, _ = subscribe_members(
        deployment.overlay, advertisement, deployment.peer_ids()[1:60],
        deployment.peer_distance_ms, deployment.config.announcement)
    capacities = {info.peer_id: info.capacity
                  for info in deployment.overlay.peers()}
    benchmark.pedantic(
        lambda: overload_index(aggregate_workloads([tree]), capacities),
        rounds=10, iterations=1)

    fig17 = app_results["fig17"]
    print_result(fig17)

    gc_ssa = series(fig17, "overload_index",
                    overlay="groupcast", scheme="ssa")
    gc_nssa = series(fig17, "overload_index",
                     overlay="groupcast", scheme="nssa")
    pl_ssa = series(fig17, "overload_index", overlay="plod", scheme="ssa")
    pl_nssa = series(fig17, "overload_index",
                     overlay="plod", scheme="nssa")

    for size in BENCH_SIZES:
        # The full GroupCast stack (utility overlay + SSA) always wins.
        assert gc_ssa[size] <= pl_ssa[size]
        assert gc_ssa[size] <= gc_nssa[size] * 1.05
        assert gc_ssa[size] < 0.5 * pl_nssa[size]
        # The utility-aware overlay alone (even with NSSA) beats the
        # random power-law overlay with NSSA.
        assert gc_nssa[size] < pl_nssa[size]

"""Trust extension bench: free-riders get quarantined over rounds.

The conclusion's TrustGuard integration, exercised end-to-end: a
population contains free-riders that accept tree children but drop every
payload.  Each round a fresh group is established — with SSA forwarding
weighted by the reputation ledger — a payload is flooded, and delivery
evidence updates the ledger.  Delivery ratio must recover as the ledger
learns, and the suspects list must converge on the actual free-riders.
"""

import numpy as np

from conftest import SEED
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.subscription import subscribe_members
from repro.sim.random import spawn_rng
from repro.trust.dissemination import disseminate_with_failures
from repro.trust.reputation import ReputationLedger, TrustConfig

ROUNDS = 10
GROUPS_PER_ROUND = 3
MEMBERS = 100
FREE_RIDER_FRACTION = 0.1


def run_round(deployment, ledger, free_riders, rng, use_trust):
    """One learning round: several groups, averaged delivery ratio."""
    trust_fn = ledger.quarantine_fn(threshold=0.3) if use_trust else None
    ids = deployment.peer_ids()
    ratios = []
    for _ in range(GROUPS_PER_ROUND):
        picks = rng.choice(len(ids), size=MEMBERS, replace=False)
        members = [ids[int(i)] for i in picks]
        rendezvous = members[0]
        while rendezvous in free_riders:
            rendezvous = ids[int(rng.integers(len(ids)))]
        advertisement = propagate_advertisement(
            deployment.overlay, rendezvous, 0, "ssa",
            deployment.peer_distance_ms, rng,
            deployment.config.announcement, deployment.config.utility,
            trust_fn=trust_fn)
        tree, _ = subscribe_members(
            deployment.overlay, advertisement, members,
            deployment.peer_distance_ms, deployment.config.announcement)
        report = disseminate_with_failures(
            tree, rendezvous, deployment.underlay, rng,
            free_riders=free_riders, drop_probability=1.0, ledger=ledger)
        ratios.append(report.delivery_ratio)
    return float(np.mean(ratios))


def test_trust_quarantines_free_riders(benchmark, groupcast_deployment):
    deployment = groupcast_deployment
    rng = spawn_rng(SEED, "quarantine")
    ids = deployment.peer_ids()
    rider_picks = rng.choice(
        len(ids), size=int(FREE_RIDER_FRACTION * len(ids)), replace=False)
    free_riders = {ids[int(i)] for i in rider_picks}

    ledger = ReputationLedger(TrustConfig(ewma_alpha=0.5))
    ratios = [run_round(deployment, ledger, free_riders, rng,
                        use_trust=True)
              for _ in range(ROUNDS)]

    # Baseline: same free-riders, no trust feedback into SSA.
    blind_ledger = ReputationLedger()
    blind = [run_round(deployment, blind_ledger, free_riders, rng,
                       use_trust=False)
             for _ in range(ROUNDS)]

    benchmark.pedantic(
        lambda: run_round(deployment, ledger, free_riders, rng, True),
        rounds=3, iterations=1)

    print()
    print(f"Delivery ratio across {ROUNDS} rounds "
          f"({len(free_riders)} free-riders, "
          f"{GROUPS_PER_ROUND} groups/round)")
    print(f"{'round':<7}{'trust-aware':>13}{'trust-blind':>13}")
    for index, (aware, unaware) in enumerate(zip(ratios, blind)):
        print(f"{index:<7d}{aware:>13.2f}{unaware:>13.2f}")

    late = float(np.mean(ratios[-4:]))
    blind_late = float(np.mean(blind[-4:]))
    print(f"late={late:.2f} blind_late={blind_late:.2f}")

    # The quarantine learns: the trust-aware stack ends well above the
    # blind baseline and delivers to the large majority.
    assert late > blind_late + 0.05
    assert late > 0.85
    # And the suspects list converges on real free-riders only.
    suspects = ledger.suspects(threshold=0.3)
    assert len(suspects) >= 0.3 * len(free_riders)
    assert suspects <= free_riders

"""Figures 9-10: average underlay distance to overlay neighbors.

The paper plots per-peer average distance to neighbors for 1000-peer
overlays: GroupCast's utility-aware construction places neighbors far
closer in the physical network than the random power-law baseline, with
a few long links retained by powerful peers (the forwarding backbone).
"""

from conftest import SEED, print_result
from repro.experiments.overlay_structure import run_neighbor_distance
from repro.metrics.overlay_metrics import average_neighbor_distance_ms

PEERS = 1000  # the paper's scale for this experiment


def test_fig09_10_neighbor_distance(benchmark, groupcast_deployment):
    benchmark.pedantic(
        lambda: average_neighbor_distance_ms(
            groupcast_deployment.overlay, groupcast_deployment.underlay),
        rounds=3, iterations=1)

    result = run_neighbor_distance(PEERS, SEED)
    print_result(result)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}
    groupcast = rows["groupcast"]
    plod = rows["plod"]

    # The headline: GroupCast neighbors are much closer on the underlay.
    assert groupcast["mean_ms"] < 0.6 * plod["mean_ms"]
    assert groupcast["median_ms"] < 0.6 * plod["median_ms"]

    # "A few long unicast links" remain (the powerful peers' backbone):
    # the max is far above the median in the GroupCast overlay.
    assert groupcast["max_ms"] > 2.0 * groupcast["median_ms"]

"""Generic baseline comparison gate for benchmark/report JSON files.

Generalizes the ratio gating of ``bench_routing.py --check`` to *any*
pair of JSON documents with numeric leaves: a fresh run is diffed
against a committed baseline (e.g. ``BENCH_routing.json`` or a
``report.json`` written by ``groupcast-experiments --report``) and the
gate fails when a selected metric's fresh/baseline ratio leaves the
allowed band.  Ratios, not absolute values, keep the gate
machine-independent.

Metrics are selected with dotted paths; ``*`` matches any key at one
level::

    # speedups must stay within 2x of the committed ones (the
    # bench_routing CI gate, expressed generically):
    python benchmarks/compare.py fresh.json BENCH_routing.json \
        --metric 'metrics.*.speedup' --min-ratio 0.5

    # message counts in an experiment report must not balloon:
    python benchmarks/compare.py out/report.json baseline_report.json \
        --metric 'counters.net.sent' --max-ratio 1.2 --min-ratio 0.8

``--min-ratio`` bounds regressions of higher-is-better metrics,
``--max-ratio`` bounds growth of lower-is-better ones; pass both for a
two-sided band.  A metric present in the baseline but missing from the
fresh run always fails.  Exit status: 0 when every selected metric is
within bounds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator, Optional


def iter_metrics(data: object, pattern: str,
                 _prefix: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted_path, value)`` for numeric leaves matching
    ``pattern`` (dotted path, ``*`` wildcards one level)."""
    head, _, rest = pattern.partition(".")
    if not isinstance(data, dict):
        return
    keys = sorted(data) if head == "*" else (
        [head] if head in data else [])
    for key in keys:
        path = f"{_prefix}{key}"
        value = data[key]
        if rest:
            yield from iter_metrics(value, rest, _prefix=f"{path}.")
        elif isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            yield path, float(value)


def lookup(data: object, path: str) -> Optional[float]:
    """The numeric leaf at an exact dotted ``path``, or None."""
    node = data
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, (int, float)) and not isinstance(node, bool):
        return float(node)
    return None


def compare(
    fresh: dict,
    baseline: dict,
    patterns: list[str],
    min_ratio: Optional[float] = None,
    max_ratio: Optional[float] = None,
) -> list[str]:
    """Gate ``fresh`` against ``baseline``; returns failure messages.

    For every baseline metric matched by ``patterns``, the fresh value
    must exist and the ratio ``fresh / baseline`` must satisfy
    ``min_ratio <= ratio <= max_ratio`` (each bound optional).  A zero
    baseline only compares for equality with zero.  *Each* pattern
    must match at least one baseline metric: a pattern that matches
    nothing is a hard failure (a renamed metric would otherwise turn
    its gate into a silent no-op).
    """
    failures: list[str] = []
    for pattern in patterns:
        matched = 0
        for path, committed in iter_metrics(baseline, pattern):
            matched += 1
            measured = lookup(fresh, path)
            if measured is None:
                failures.append(f"{path}: missing from fresh run "
                                f"(baseline {committed:g})")
                print(f"FAIL {path}: missing from fresh run")
                continue
            if committed == 0.0:
                ok = measured == 0.0
                detail = (f"{path}: measured {measured:g}, "
                          f"baseline 0 (must stay 0)")
            else:
                ratio = measured / committed
                ok = ((min_ratio is None or ratio >= min_ratio)
                      and (max_ratio is None or ratio <= max_ratio))
                band = "/".join(
                    f"{bound:g}" for bound in (min_ratio, max_ratio)
                    if bound is not None) or "unbounded"
                detail = (f"{path}: measured {measured:g}, baseline "
                          f"{committed:g}, ratio {ratio:.3f} "
                          f"(bounds {band})")
            print(("ok   " if ok else "FAIL ") + detail)
            if not ok:
                failures.append(detail)
        if matched == 0:
            message = f"no baseline metrics matched {pattern!r}"
            print(f"FAIL {message}")
            failures.append(message)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a fresh benchmark/report JSON against a "
                    "committed baseline with ratio thresholds.")
    parser.add_argument("fresh", type=Path,
                        help="JSON written by the current run")
    parser.add_argument("baseline", type=Path,
                        help="committed baseline JSON")
    parser.add_argument(
        "--metric", action="append", default=None, metavar="PATTERN",
        help="dotted path of metrics to gate, '*' wildcards one level "
             "(repeatable; default: metrics.*.speedup)")
    parser.add_argument(
        "--min-ratio", type=float, default=None, metavar="R",
        help="fail when fresh/baseline < R (regression floor for "
             "higher-is-better metrics)")
    parser.add_argument(
        "--max-ratio", type=float, default=None, metavar="R",
        help="fail when fresh/baseline > R (growth ceiling for "
             "lower-is-better metrics)")
    args = parser.parse_args(argv)
    if args.min_ratio is None and args.max_ratio is None:
        parser.error("give --min-ratio and/or --max-ratio")

    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    patterns = args.metric or ["metrics.*.speedup"]
    failures = compare(fresh, baseline, patterns,
                       min_ratio=args.min_ratio,
                       max_ratio=args.max_ratio)
    if failures:
        print(f"{len(failures)} metric(s) out of bounds")
        return 1
    print("all metrics within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main())

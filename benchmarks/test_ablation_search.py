"""Ablation: ripple flooding vs random walks for service lookup.

Section 2.2's stated trade-off — "[flooding] results in heavy
communication overheads, whereas [random walks] may generate very long
search paths which would affect the communication latencies" — measured
on a real GroupCast overlay: subscribers that missed the announcement
search for an informed peer using each primitive.
"""

import numpy as np

from conftest import SEED
from repro.config import AnnouncementConfig
from repro.groupcast.advertisement import propagate_advertisement
from repro.overlay.search import random_walk_search, ripple_search
from repro.sim.random import spawn_rng

SEARCHERS = 60


def test_flooding_vs_random_walks(benchmark, groupcast_deployment):
    deployment = groupcast_deployment
    rng = spawn_rng(SEED, "search-ablation")
    announcement = AnnouncementConfig(ssa_fanout_fraction=0.25)
    outcome = propagate_advertisement(
        deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
        deployment.peer_distance_ms, rng, announcement,
        deployment.config.utility)
    receipts = outcome.receipts
    uninformed = [p for p in deployment.peer_ids()
                  if p not in receipts][:SEARCHERS]
    assert uninformed, "expected some peers to miss the announcement"

    benchmark.pedantic(
        lambda: ripple_search(
            deployment.overlay, uninformed[0],
            lambda p: p in receipts, 2, deployment.peer_distance_ms),
        rounds=10, iterations=1)

    def run_ripple(origin):
        return ripple_search(
            deployment.overlay, origin, lambda p: p in receipts, 2,
            deployment.peer_distance_ms)

    def run_walks(origin):
        return random_walk_search(
            deployment.overlay, origin, lambda p: p in receipts,
            rng, walkers=2, walk_length=32,
            latency_fn=deployment.peer_distance_ms)

    stats = {"ripple": {"messages": [], "latency": [], "hits": 0},
             "walks": {"messages": [], "latency": [], "hits": 0}}
    for origin in uninformed:
        for name, runner in (("ripple", run_ripple), ("walks", run_walks)):
            result = runner(origin)
            stats[name]["messages"].append(result.messages)
            if result.found:
                stats[name]["hits"] += 1
                stats[name]["latency"].append(result.hit.latency_ms)

    print()
    print(f"Search ablation over {len(uninformed)} uninformed subscribers")
    print(f"{'primitive':<10}{'success':>9}{'avg msgs':>10}"
          f"{'avg latency ms':>16}")
    rows = {}
    for name in ("ripple", "walks"):
        success = stats[name]["hits"] / len(uninformed)
        messages = float(np.mean(stats[name]["messages"]))
        latency = (float(np.mean(stats[name]["latency"]))
                   if stats[name]["latency"] else float("nan"))
        rows[name] = (success, messages, latency)
        print(f"{name:<10}{success:>9.2f}{messages:>10.1f}{latency:>16.1f}")

    # The paper's trade-off, reproduced:
    # flooding pays more messages ...
    assert rows["ripple"][1] > rows["walks"][1] * 0.9
    # ... walks pay longer search paths (higher latency on hits).
    assert rows["walks"][2] > rows["ripple"][2]
    # Ripple within TTL 2 stays near-perfect on the GroupCast overlay.
    assert rows["ripple"][0] > 0.95

"""Ablation: what does each half of the utility function buy?

DESIGN.md calls out the combined utility function as the central design
choice; this ablation isolates its components by swapping the SSA
forwarding strategy:

* ``random``   — the basic framework of Section 2.2 (no utility),
* ``distance`` — proximity-only preference,
* ``capacity`` — capacity-only preference,
* ``utility``  — the paper's combined, resource-level-weighted function.

Expectation (the paper's design rationale): distance-only minimises
delay but concentrates load; capacity-only protects weak peers but pays
latency; the combined function sits near the distance strategy on delay
while staying near the capacity strategy on overload.
"""

import numpy as np

from conftest import SEED
from repro.config import AnnouncementConfig
from repro.experiments.common import (
    establish_and_measure_group,
    experiment_rng,
    pick_rendezvous_points,
)
from repro.metrics.tree_metrics import aggregate_workloads, overload_index

STRATEGIES = ("random", "distance", "capacity", "utility")
GROUPS = 8


def measure(deployment, strategy):
    rng = experiment_rng(SEED, f"ablation-{strategy}")
    announcement = AnnouncementConfig(ssa_strategy=strategy)
    runs = []
    for point in pick_rendezvous_points(deployment, GROUPS, rng):
        ids = deployment.peer_ids()
        members = [ids[int(i)]
                   for i in rng.choice(len(ids), size=100, replace=False)]
        runs.append(establish_and_measure_group(
            deployment, point, members, "ssa", rng,
            announcement=announcement))
    capacities = {info.peer_id: info.capacity
                  for info in deployment.overlay.peers()}
    return {
        "delay_penalty": float(np.mean([r.delay_penalty for r in runs])),
        "overload": overload_index(
            aggregate_workloads([r.tree for r in runs]), capacities),
    }


def test_ablation_ssa_strategies(benchmark, groupcast_deployment):
    results = {}
    for strategy in STRATEGIES:
        results[strategy] = measure(groupcast_deployment, strategy)

    benchmark.pedantic(
        lambda: measure(groupcast_deployment, "utility"),
        rounds=1, iterations=1)

    print()
    print("Ablation: SSA forwarding strategy (8 groups, 100 members)")
    print(f"{'strategy':<10}{'delay penalty':>15}{'overload index':>16}")
    for strategy in STRATEGIES:
        row = results[strategy]
        print(f"{strategy:<10}{row['delay_penalty']:>15.3f}"
              f"{row['overload']:>16.3f}")

    # Capacity-awareness lowers overload versus the capacity-blind
    # strategies.
    assert results["utility"]["overload"] < results["random"]["overload"]
    assert results["capacity"]["overload"] < results["distance"]["overload"]
    # The combined function does not pay a large delay premium over the
    # proximity-only variant and beats the random baseline.
    assert (results["utility"]["delay_penalty"]
            < 1.35 * results["distance"]["delay_penalty"])
    assert (results["utility"]["delay_penalty"]
            < 1.1 * results["random"]["delay_penalty"])

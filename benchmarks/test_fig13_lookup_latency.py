"""Figure 13: service lookup latency.

Peers that never received the announcement ripple-search their TTL-2
neighborhood; on the GroupCast overlay their neighbors are physically
close, so lookups resolve far faster than on the random power-law
overlay (the paper reports a 74-84 % reduction).
"""

from conftest import BENCH_SIZES, print_result, series
from repro.groupcast.rendezvous import select_rendezvous
from repro.sim.random import spawn_rng


def test_fig13_lookup_latency(benchmark, lookup_results,
                              groupcast_deployment):
    deployment = groupcast_deployment
    rng = spawn_rng(0, "bench-fig13")
    benchmark.pedantic(
        lambda: select_rendezvous(
            deployment.overlay, deployment.peer_ids()[5], rng,
            deployment.config.rendezvous),
        rounds=10, iterations=1)

    fig13 = lookup_results["fig13"]
    print_result(fig13)

    groupcast = series(fig13, "lookup_latency_ms", overlay="groupcast")
    plod = series(fig13, "lookup_latency_ms", overlay="plod")

    for size in BENCH_SIZES:
        # The paper reports 74-84 % lower lookup latency on GroupCast;
        # assert at least a 50 % reduction at every size.
        assert groupcast[size] < 0.5 * plod[size], (
            f"size {size}: groupcast {groupcast[size]:.1f} ms "
            f"vs plod {plod[size]:.1f} ms")

"""Scale benchmark: array-core session throughput at 10^4-10^6 peers.

Times one full protocol pass — advertisement flood, subscription climb,
ripple-search attach, tree-delay sweep — over the struct-of-arrays core
(:mod:`repro.core`) at increasing peer counts, and compares against the
object-layer protocol (:func:`propagate_advertisement` +
:func:`subscribe_members`) running the *same pass over the same
topology* at a size the object layer can still handle.  Reported per
size:

* ``peers_per_sec`` — session-pass throughput (higher is better);
* ``bytes_per_peer`` — dense state held per peer (adjacency +
  coordinates + per-edge latencies + tree columns), gated against the
  documented budget (machine-independent);
* ``speedup_vs_object`` — array throughput over the object-core
  throughput measured at ``--object-peers`` (machine-independent).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py \
        --write BENCH_scale.json             # refresh the committed file
    PYTHONPATH=src python benchmarks/bench_scale.py \
        --sizes 10000 --repeat 2 --check BENCH_scale.json   # CI gate
    PYTHONPATH=src python benchmarks/bench_scale.py --full  # adds 10^6

``--check`` gates the machine-independent numbers only: each size's
``speedup_vs_object`` must stay above half the committed value and
``bytes_per_peer`` must not grow past 1.2x the committed value
(``benchmarks/compare.py`` applies the same bounds generically).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import AnnouncementConfig  # noqa: E402
from repro.core import (  # noqa: E402
    attach_searchers,
    climb_subscriptions,
    edge_latencies_from_coords,
    flood_advertisement,
    synthetic_power_law_csr,
    tree_delays,
)
from repro.core.store import TreeArrays  # noqa: E402
from repro.groupcast.advertisement import propagate_advertisement  # noqa: E402
from repro.groupcast.subscription import subscribe_members  # noqa: E402
from repro.overlay.graph import OverlayNetwork  # noqa: E402
from repro.peers.peer import PeerInfo  # noqa: E402
from repro.sim.random import spawn_rng  # noqa: E402

SEED = 7
TTL = 12
SEARCH_TTL = 3
MEMBER_FRACTION = 0.05
#: Documented memory budget for the dense state (see EXPERIMENTS.md).
BYTES_PER_PEER_BUDGET = 1024
#: Virtual-time epoch width for the flood, as a multiple of the mean
#: edge latency.  The scale path batches relaxations per epoch: wide
#: buckets cut the Python-level loop count by orders of magnitude at
#: the cost of slight TTL-frontier divergence from the procedural
#: event order (~0.2% of rows at ttl=12; the differential suite runs
#: with the exact single-latency epoch instead).  See
#: ``repro.core.protocol.flood_advertisement``.
EPOCH_LATENCY_MULTIPLE = 4.0


def _build_world(n: int):
    rng = spawn_rng(SEED, "bench-scale", str(n))
    csr = synthetic_power_law_csr(n, rng)
    coords = rng.uniform(0.0, 100.0, size=(n, 2))
    latency = edge_latencies_from_coords(csr, coords)
    members = np.sort(rng.choice(n, size=max(2, int(n * MEMBER_FRACTION)),
                                 replace=False))
    return csr, coords, latency, members


def _session_pass(csr, coords, latency, members):
    epoch_ms = float(latency.mean()) * EPOCH_LATENCY_MULTIPLE
    flood = flood_advertisement(csr, latency, root=0, ttl=TTL,
                                epoch_ms=epoch_ms)
    on_tree, is_member = climb_subscriptions(flood, members)
    parent, on_tree, _failed = attach_searchers(
        csr, flood, members, on_tree, search_ttl=SEARCH_TTL)
    return tree_delays(parent, on_tree, coords=coords, root=0)


def _time(func, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_array_core(n: int, repeat: int) -> dict:
    csr, coords, latency, members = _build_world(n)
    elapsed = _time(lambda: _session_pass(csr, coords, latency, members),
                    repeat)
    tree = TreeArrays(n, root=0)
    state_bytes = (csr.nbytes() + coords.nbytes + latency.nbytes
                   + tree.nbytes())
    return {
        "peers": n,
        "pass_s": round(elapsed, 4),
        "peers_per_sec": round(n / elapsed, 1),
        "bytes_per_peer": round(state_bytes / n, 1),
    }


def _measure_object_core(n: int, repeat: int) -> dict:
    """The same session pass through the per-peer object layer.

    The topology is the identical synthetic CSR, materialized as an
    :class:`OverlayNetwork` of PeerInfo objects, so the comparison
    isolates the data-layout change rather than topology differences.
    """
    csr, coords, latency, members = _build_world(n)
    overlay = OverlayNetwork()
    for row in range(n):
        overlay.add_peer(PeerInfo(row, 1.0, coords[row]))
    for row in range(n):
        for neighbor in csr.neighbors(row):
            if row < int(neighbor):
                overlay.add_link(row, int(neighbor))
    min_latency = 0.01

    def latency_fn(a: int, b: int) -> float:
        delta = coords[a] - coords[b]
        return max(float(np.sqrt((delta * delta).sum())), min_latency)

    config = AnnouncementConfig(advertisement_ttl=TTL,
                                subscription_search_ttl=SEARCH_TTL)
    member_ids = [int(m) for m in members]

    def session_pass():
        advertisement = propagate_advertisement(
            overlay, 0, 1, "nssa", latency_fn,
            spawn_rng(SEED, "bench-object"), config)
        subscribe_members(overlay, advertisement, member_ids, latency_fn,
                          config)

    elapsed = _time(session_pass, repeat)
    return {
        "peers": n,
        "pass_s": round(elapsed, 4),
        "peers_per_sec": round(n / elapsed, 1),
    }


def run_benchmarks(sizes: list[int], object_peers: int,
                   repeat: int) -> dict:
    object_core = _measure_object_core(object_peers, repeat)
    print(f"object core      {object_core['peers']:>9,d} peers   "
          f"pass {object_core['pass_s']:8.3f}s   "
          f"{object_core['peers_per_sec']:>12,.0f} peers/s")
    report = {
        "repeat": repeat,
        "ttl": TTL,
        "member_fraction": MEMBER_FRACTION,
        "bytes_per_peer_budget": BYTES_PER_PEER_BUDGET,
        "object_core": object_core,
        "metrics": {},
    }
    for n in sizes:
        row = _measure_array_core(n, repeat)
        row["speedup_vs_object"] = round(
            row["peers_per_sec"] / object_core["peers_per_sec"], 2)
        if row["bytes_per_peer"] > BYTES_PER_PEER_BUDGET:
            raise SystemExit(
                f"bytes/peer {row['bytes_per_peer']} exceeds the "
                f"documented budget {BYTES_PER_PEER_BUDGET}")
        report["metrics"][f"scale_{n}"] = row
        print(f"array core       {n:>9,d} peers   "
              f"pass {row['pass_s']:8.3f}s   "
              f"{row['peers_per_sec']:>12,.0f} peers/s   "
              f"{row['bytes_per_peer']:6.0f} B/peer   "
              f"speedup {row['speedup_vs_object']:6.1f}x")
    return report


def check_against(report: dict, baseline_path: Path) -> int:
    """Machine-independent gate; mirrors ``compare.py`` bounds."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failed = False
    for name, committed in baseline["metrics"].items():
        measured = report["metrics"].get(name)
        if measured is None:
            print(f"skip {name}: not measured in this run")
            continue
        floor = committed["speedup_vs_object"] / 2.0
        ceiling = committed["bytes_per_peer"] * 1.2
        ok_speed = measured["speedup_vs_object"] >= floor
        ok_bytes = measured["bytes_per_peer"] <= ceiling
        print(f"{'ok  ' if ok_speed else 'FAIL'} {name}: speedup "
              f"{measured['speedup_vs_object']}x (floor {floor:.1f}x)")
        print(f"{'ok  ' if ok_bytes else 'FAIL'} {name}: "
              f"{measured['bytes_per_peer']} B/peer "
              f"(ceiling {ceiling:.0f})")
        failed = failed or not (ok_speed and ok_bytes)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Array-core session throughput at 10^4-10^6 peers.")
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[10_000, 100_000],
                        help="array-core peer counts to measure")
    parser.add_argument("--full", action="store_true",
                        help="append the 10^6-peer tier")
    parser.add_argument("--object-peers", type=int, default=2000,
                        help="object-core reference size")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--write", type=Path, default=None, metavar="PATH",
                        help="write the report (the committed baseline)")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the report to this path")
    parser.add_argument("--check", type=Path, default=None, metavar="PATH",
                        help="gate speedup/bytes-per-peer against a "
                             "committed baseline; exit 1 on regression")
    args = parser.parse_args(argv)

    sizes = list(args.sizes)
    if args.full and 1_000_000 not in sizes:
        sizes.append(1_000_000)
    report = run_benchmarks(sizes, args.object_peers, args.repeat)
    for target in (args.write, args.json):
        if target is not None:
            target.write_text(json.dumps(report, indent=2) + "\n",
                              encoding="utf-8")
            print(f"wrote {target}")
    if args.check is not None:
        return check_against(report, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Section 2.1's claim: GroupCast trees are comparable to all three
multicast-tree families.

Builds one group's tree with every implemented scheme over the same
underlay and member set:

* GroupCast (unstructured overlay + SSA reverse paths),
* NICE (proximity-clustered hierarchy — "choose your parent"),
* Narada (mesh-first + shortest-path tree),
* SCRIBE on Pastry (DHT reverse routes),
* client/server star (the degenerate reference),

and checks that GroupCast's delay penalty and link stress sit within the
envelope of the purpose-built ESM schemes (while being the only one that
needs neither global membership knowledge nor a DHT).
"""

import numpy as np

from conftest import SEED
from repro.baselines.client_server import build_client_server_tree
from repro.baselines.narada import build_narada_tree
from repro.baselines.nice import build_nice_tree
from repro.dht.can import build_group_can, can_multicast
from repro.dht.pastry import PastryNetwork
from repro.dht.scribe import build_scribe_group
from repro.experiments.common import (
    establish_and_measure_group,
    experiment_rng,
)
from repro.groupcast.dissemination import disseminate
from repro.metrics.tree_metrics import link_stress, relative_delay_penalty
from repro.network.multicast import build_ip_multicast_tree

MEMBERS = 80
ROUNDS = 4


def tree_quality(tree, source, underlay):
    report = disseminate(tree, source, underlay)
    receivers = [m for m in tree.members if m != source]
    ip_tree = build_ip_multicast_tree(underlay, source, receivers)
    return (relative_delay_penalty(report, ip_tree),
            link_stress(report, ip_tree))


def test_groupcast_within_esm_envelope(benchmark, groupcast_deployment):
    deployment = groupcast_deployment
    underlay = deployment.underlay
    peer_ids = deployment.peer_ids()
    pastry = PastryNetwork(underlay, peer_ids)
    rng = experiment_rng(SEED, "baseline-comparison")

    quality: dict[str, list[tuple[float, float]]] = {
        name: [] for name in
        ("groupcast", "nice", "narada", "scribe", "can", "star")}

    for round_index in range(ROUNDS):
        picks = rng.choice(len(peer_ids), size=MEMBERS, replace=False)
        members = [peer_ids[int(i)] for i in picks]
        source = members[0]

        run = establish_and_measure_group(
            deployment, source, members, "ssa", rng)
        quality["groupcast"].append((run.delay_penalty, run.link_stress))

        nice_tree = build_nice_tree(underlay, members, rng)
        quality["nice"].append(
            tree_quality(nice_tree, nice_tree.root, underlay))

        narada_tree = build_narada_tree(underlay, source, members, rng)
        quality["narada"].append(tree_quality(narada_tree, source, underlay))

        scribe = build_scribe_group(
            pastry, f"bench-{round_index}", members)
        quality["scribe"].append(
            tree_quality(scribe.tree, scribe.root_peer, underlay))

        mini_can = build_group_can(members, rng)
        can_result = can_multicast(mini_can, source, underlay)
        quality["can"].append(
            tree_quality(can_result.tree, source, underlay))

        star = build_client_server_tree(source, members)
        quality["star"].append(tree_quality(star, source, underlay))

    benchmark.pedantic(
        lambda: build_nice_tree(underlay, peer_ids[:60], rng),
        rounds=3, iterations=1)

    print()
    print(f"Tree quality over {ROUNDS} groups of {MEMBERS} members")
    print(f"{'scheme':<12}{'delay penalty':>15}{'link stress':>13}")
    means = {}
    for name, samples in quality.items():
        rdp = float(np.mean([s[0] for s in samples]))
        stress = float(np.mean([s[1] for s in samples]))
        means[name] = (rdp, stress)
        print(f"{name:<12}{rdp:>15.2f}{stress:>13.2f}")

    esm_rdp = [means[name][0]
               for name in ("nice", "narada", "scribe", "can")]
    esm_stress = [means[name][1]
                  for name in ("nice", "narada", "scribe", "can")]
    # "Comparable to those built using the other three approaches": the
    # purpose-built schemes measure latencies over full membership
    # knowledge (NICE/Narada) or ride O(log N) DHT routes (SCRIBE);
    # GroupCast trees, built from local information only, stay within a
    # small constant factor of the best of them on both metrics.
    assert means["groupcast"][0] < 3.5 * min(esm_rdp)
    assert means["groupcast"][1] < 3.0 * min(esm_stress)
    # And within the envelope's worst case on absolute terms.
    assert means["groupcast"][0] < 10.0

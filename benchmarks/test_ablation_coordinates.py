"""Ablation: GNP (the paper's choice) vs Vivaldi network coordinates.

The overlay protocol only ever consumes coordinate *estimates*; this
ablation swaps the backend and checks the resulting overlay's proximity
quality.  Both embeddings should preserve GroupCast's neighbor-locality
advantage over the random power-law baseline, with GNP (landmark-based,
centrally solved) typically a little tighter than Vivaldi.
"""

from conftest import BENCH_SIZES, SEED
from repro.deployment import build_deployment
from repro.metrics.overlay_metrics import average_neighbor_distance_ms

PEERS = min(BENCH_SIZES[0], 1000)


def mean_neighbor_distance(deployment):
    distances = average_neighbor_distance_ms(
        deployment.overlay, deployment.underlay)
    return float(distances[distances > 0].mean())


def test_ablation_coordinate_backends(benchmark):
    gnp = build_deployment(
        PEERS, kind="groupcast", seed=SEED, coordinates="gnp")
    vivaldi = build_deployment(
        PEERS, kind="groupcast", seed=SEED, coordinates="vivaldi")
    plod = build_deployment(PEERS, kind="plod", seed=SEED)

    benchmark.pedantic(lambda: mean_neighbor_distance(gnp),
                       rounds=3, iterations=1)

    rows = {
        "groupcast+gnp": mean_neighbor_distance(gnp),
        "groupcast+vivaldi": mean_neighbor_distance(vivaldi),
        "plod (baseline)": mean_neighbor_distance(plod),
    }
    print()
    print(f"Ablation: coordinate backend ({PEERS} peers)")
    print(f"{'configuration':<20}{'mean neighbor distance (ms)':>30}")
    for name, value in rows.items():
        print(f"{name:<20}{value:>30.1f}")

    # Both backends preserve the proximity win over the baseline.
    assert rows["groupcast+gnp"] < 0.7 * rows["plod (baseline)"]
    assert rows["groupcast+vivaldi"] < 0.8 * rows["plod (baseline)"]

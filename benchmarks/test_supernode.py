"""Extension bench: two-tier supernode GroupCast vs the flat overlay.

The paper's conclusion suggests adapting GroupCast to supernode
architectures; this bench quantifies the trade on one deployment: the
capacity-elected core yields a competitive delay profile while the weak
majority carries (almost) no forwarding load at all.
"""

import numpy as np

from conftest import SEED
from repro.experiments.common import (
    establish_and_measure_group,
    experiment_rng,
)
from repro.groupcast.dissemination import disseminate
from repro.metrics.tree_metrics import aggregate_workloads
from repro.overlay.supernode import (
    build_two_tier_group_tree,
    build_two_tier_overlay,
)
from repro.sim.random import spawn_rng

GROUPS = 5
MEMBERS = 80


def test_two_tier_shifts_load_to_supernodes(benchmark,
                                            groupcast_deployment):
    deployment = groupcast_deployment
    infos = list(deployment.overlay.peers())
    two_tier = build_two_tier_overlay(
        infos, spawn_rng(SEED, "bench-two-tier"))
    rng = experiment_rng(SEED, "supernode-bench")

    benchmark.pedantic(
        lambda: build_two_tier_overlay(
            infos, spawn_rng(SEED, "bench-two-tier-timed")),
        rounds=3, iterations=1)

    ids = deployment.peer_ids()
    flat_delays, tiered_delays = [], []
    flat_trees, tiered_trees = [], []
    for _ in range(GROUPS):
        picks = rng.choice(len(ids), size=MEMBERS, replace=False)
        members = [ids[int(i)] for i in picks]
        run = establish_and_measure_group(
            deployment, members[0], members, "ssa", rng)
        flat_trees.append(run.tree)
        report = disseminate(run.tree, run.tree.root, deployment.underlay)
        flat_delays.append(report.average_member_delay_ms)

        tiered = build_two_tier_group_tree(
            two_tier, members, members[0], deployment.peer_distance_ms,
            rng, deployment.config.announcement, deployment.config.utility)
        tiered_trees.append(tiered)
        report = disseminate(tiered, tiered.root, deployment.underlay)
        tiered_delays.append(report.average_member_delay_ms)

    capacities = {info.peer_id: info.capacity for info in infos}
    weak = {p for p, c in capacities.items() if c <= 10.0}

    def weak_load_share(trees):
        loads = aggregate_workloads(trees)
        total = sum(loads.values())
        return sum(load for peer, load in loads.items()
                   if peer in weak) / max(total, 1)

    flat_share = weak_load_share(flat_trees)
    tiered_share = weak_load_share(tiered_trees)

    print()
    print(f"Two-tier vs flat over {GROUPS} groups of {MEMBERS}")
    print(f"{'overlay':<10}{'avg delay ms':>14}{'weak-peer load share':>22}")
    print(f"{'flat':<10}{np.mean(flat_delays):>14.1f}{flat_share:>22.2f}")
    print(f"{'two-tier':<10}{np.mean(tiered_delays):>14.1f}"
          f"{tiered_share:>22.2f}")

    # The supernode core removes essentially all forwarding from the
    # weak majority ...
    assert tiered_share < 0.05
    assert tiered_share < flat_share
    # ... without giving up delivery performance (within 50 %).
    assert np.mean(tiered_delays) < 1.5 * np.mean(flat_delays)

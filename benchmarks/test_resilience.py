"""Resilience extension bench: search repair vs backup-parent failover.

The paper lists failure resilience via dynamic replication as ongoing
work; this bench quantifies the trade on real GroupCast trees — backup
parents absorb most failovers with a single message each, versus the
ripple-search cost the plain repair pays, at equal (or better) member
survival.
"""

import numpy as np

from conftest import SEED
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.repair import repair_tree
from repro.groupcast.replication import BackupPlan, failover
from repro.groupcast.subscription import subscribe_members
from repro.sim.random import spawn_rng

FAILURES = 8


def build_tree(deployment, seed):
    rng = spawn_rng(seed, "resilience")
    advertisement = propagate_advertisement(
        deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, _ = subscribe_members(
        deployment.overlay, advertisement, deployment.peer_ids()[1:120],
        deployment.peer_distance_ms, deployment.config.announcement)
    return tree, rng


def inject_failures(deployment, use_replication):
    tree, rng = build_tree(deployment, SEED)
    plan = BackupPlan()
    if use_replication:
        plan.refresh(tree)
    messages = 0
    lost = 0
    for _ in range(FAILURES):
        interior = [n for n in tree.nodes()
                    if n != tree.root and tree.children(n)]
        if not interior:
            break
        victim = interior[int(rng.integers(len(interior)))]
        if use_replication:
            report = failover(tree, plan, deployment.overlay, victim)
            messages += report.messages
        else:
            report = repair_tree(tree, deployment.overlay, victim)
            messages += report.search_messages
        lost += len(report.lost_members)
        tree.validate()
    return messages, lost


def test_backup_failover_beats_search_repair(benchmark,
                                             groupcast_deployment):
    deployment = groupcast_deployment

    replicated_messages, replicated_lost = inject_failures(
        deployment, use_replication=True)
    search_messages, search_lost = inject_failures(
        deployment, use_replication=False)

    benchmark.pedantic(
        lambda: inject_failures(deployment, use_replication=True),
        rounds=3, iterations=1)

    print()
    print(f"Resilience under {FAILURES} interior-node failures")
    print(f"{'scheme':<18}{'repair messages':>17}{'members lost':>14}")
    print(f"{'search repair':<18}{search_messages:>17d}{search_lost:>14d}")
    print(f"{'backup failover':<18}{replicated_messages:>17d}"
          f"{replicated_lost:>14d}")

    # Replication repairs with far fewer messages and loses no more
    # members than plain search repair.
    assert replicated_messages < search_messages
    assert replicated_lost <= search_lost

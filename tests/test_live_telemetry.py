"""Tier-1 tests for the live operations plane's socket-free parts.

The clock seam (tracer/profiler/recorder sampling an attached time
source exactly as sim code passes explicit timestamps), the streaming
drain with its fell-behind accounting, span-forest shape signatures
(the conformance currency between live episodes and their sim twins),
the ARQ attempts histogram and per-recipient window introspection, and
the report's "Live run" section.  Everything here runs without sockets
— the end-to-end live half lives in ``tests/test_live_obs.py`` under
the ``runtime`` marker.
"""

import pytest

from repro.config import AnnouncementConfig
from repro.errors import TelemetryError
from repro.experiments.live_run import build_overlay, latency_ms
from repro.groupcast.session import GroupSession, Payload
from repro.obs import (
    KIND_DELIVER,
    KIND_SEND,
    Profiler,
    Registry,
    SpanForest,
    TopologyRecorder,
    Tracer,
)
from repro.obs.report import build_report, render_markdown
from repro.overlay.messages import MessageKind
from repro.runtime.reliability import ReliableEndpoint
from repro.sim.random import spawn_rng

ANNOUNCEMENT = AnnouncementConfig(advertisement_ttl=7,
                                  subscription_search_ttl=3)


def _forbidden_clock() -> float:
    raise AssertionError("sim paths must never sample the clock")


def _run_session(tracer: Tracer) -> str:
    session = GroupSession(
        overlay=build_overlay(), latency_fn=latency_ms,
        rng=spawn_rng(7, "clock-seam"), announcement=ANNOUNCEMENT,
        registry=Registry(), tracer=tracer)
    session.establish(1, 0, [3, 7, 8, 9], scheme="nssa")
    session.publish(1, 9)
    return tracer.trace_digest()


# ----------------------------------------------------------------------
# Clock seam
# ----------------------------------------------------------------------
def test_sim_digest_bit_identical_with_clock_attached():
    """Attaching a clock cannot move a sim run's digest: every sim
    record site passes an explicit timestamp, proven by a clock that
    explodes if sampled."""
    bare = _run_session(Tracer(spans=True))
    clocked = _run_session(Tracer(spans=True, clock=_forbidden_clock))
    assert clocked == bare


def test_tracer_samples_clock_when_no_timestamp_given():
    ticks = iter([12.5, 40.0])
    tracer = Tracer(clock=lambda: next(ticks))
    tracer.record(None, KIND_SEND, a=1, b=2)
    tracer.record(None, KIND_DELIVER, a=1, b=2)
    at = [rec.at_ms for rec in tracer.records()]
    assert at == [12.5, 40.0]


def test_tracer_without_clock_rejects_sampling():
    tracer = Tracer()
    with pytest.raises(TelemetryError):
        tracer.record(None, KIND_SEND)


def test_profiler_tick_samples_at_clock_time():
    registry = Registry()
    registry.counter("net.sent").inc(3)
    now = [0.0]
    profiler = Profiler(registry, interval_ms=10.0,
                        clock=lambda: now[0])
    now[0] = 25.0
    assert profiler.tick() == 25.0
    series = profiler.series("net.sent")
    assert series.points
    assert series.points[-1][0] == 25.0


def test_profiler_tick_without_clock_raises():
    with pytest.raises(TelemetryError):
        Profiler(Registry(), interval_ms=10.0).tick()


def test_topology_recorder_tick_uses_clock():
    now = [100.0]
    recorder = TopologyRecorder(interval_ms=10.0,
                                clock=lambda: now[0])
    recorder.watch_overlay(build_overlay())
    recorder.tick()
    assert recorder.snapshots
    assert recorder.snapshots[-1].at_ms == 100.0


def test_topology_recorder_tick_without_clock_raises():
    recorder = TopologyRecorder(interval_ms=10.0)
    recorder.watch_overlay(build_overlay())
    with pytest.raises(TelemetryError):
        recorder.tick()


# ----------------------------------------------------------------------
# Streaming drain
# ----------------------------------------------------------------------
def test_drain_returns_only_fresh_records():
    tracer = Tracer(capacity=64)
    for i in range(3):
        tracer.record(float(i), KIND_SEND, seq=i)
    fresh, missed = tracer.drain_records()
    assert [r.seq for r in fresh] == [0, 1, 2]
    assert missed == 0
    for i in range(3, 5):
        tracer.record(float(i), KIND_SEND, seq=i)
    fresh, missed = tracer.drain_records()
    assert [r.seq for r in fresh] == [3, 4]
    assert missed == 0
    assert tracer.drain_records() == ((), 0)
    assert tracer.stream_dropped == 0


def test_drain_counts_records_lost_to_the_ring():
    """A pump that falls behind the ring must see the loss, not a
    silently shortened stream."""
    registry = Registry()
    tracer = Tracer(capacity=4, registry=registry)
    tracer.record(0.0, KIND_SEND, seq=0)
    tracer.drain_records()
    for i in range(1, 11):  # 10 more; ring keeps the last 4
        tracer.record(float(i), KIND_SEND, seq=i)
    fresh, missed = tracer.drain_records()
    assert [r.seq for r in fresh] == [7, 8, 9, 10]
    assert missed == 6
    assert tracer.stream_dropped == 6
    assert tracer.export_meta()["stream_dropped"] == 6
    # Ring eviction itself is already metered by obs.trace.dropped.
    assert registry.counter("obs.trace.dropped").value == 7


def test_clear_resets_stream_accounting():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.record(float(i), KIND_SEND, seq=i)
    tracer.drain_records()
    assert tracer.stream_dropped == 3
    tracer.clear()
    assert tracer.stream_dropped == 0
    assert tracer.drain_records() == ((), 0)


# ----------------------------------------------------------------------
# Span-forest shape signatures
# ----------------------------------------------------------------------
def _toy_episode(tracer: Tracer, offset: float, kind: str) -> None:
    root = tracer.root_span(at_ms=offset, kind=kind)
    hop = tracer.child_span(root)
    tracer.record(offset + 1.0, KIND_SEND, a=1, b=2,
                  detail="payload", span=hop)
    tracer.record(offset + 2.0, KIND_DELIVER, a=1, b=2,
                  detail="payload", span=hop)
    leaf = tracer.child_span(hop)
    tracer.record(offset + 2.0, KIND_SEND, a=2, b=3,
                  detail="payload", span=leaf)
    tracer.record(offset + 5.0, KIND_DELIVER, a=2, b=3,
                  detail="payload", span=leaf)


def test_shape_ignores_timing_but_keeps_structure():
    """Two episodes with identical structure but different timings have
    the same shape — the property that lets a jittery live run compare
    against its virtual-time twin."""
    a, b = Tracer(spans=True), Tracer(spans=True)
    _toy_episode(a, 0.0, "dissemination")
    _toy_episode(b, 1000.0, "dissemination")
    tree_a = SpanForest.from_tracer(a).trees()[0]
    tree_b = SpanForest.from_tracer(b).trees()[0]
    assert tree_a.shape() == tree_b.shape()


def test_shape_distinguishes_different_structures():
    a, b = Tracer(spans=True), Tracer(spans=True)
    _toy_episode(a, 0.0, "dissemination")
    root = b.root_span(at_ms=0.0, kind="dissemination")
    hop = b.child_span(root)
    b.record(1.0, KIND_SEND, a=1, b=2, detail="payload", span=hop)
    b.record(2.0, KIND_DELIVER, a=1, b=2, detail="payload", span=hop)
    tree_a = SpanForest.from_tracer(a).trees()[0]
    tree_b = SpanForest.from_tracer(b).trees()[0]
    assert tree_a.shape() != tree_b.shape()


def test_shape_signature_filters_by_episode_kind():
    tracer = Tracer(spans=True)
    _toy_episode(tracer, 0.0, "dissemination")
    _toy_episode(tracer, 100.0, "heartbeat")
    forest = SpanForest.from_tracer(tracer)
    assert len(forest.shape_signature()) == 2
    filtered = forest.shape_signature(kinds=("dissemination",))
    assert len(filtered) == 1
    assert forest.shape_signature(kinds=("advertisement",)) == ()


def test_shape_signature_is_order_independent():
    a, b = Tracer(spans=True), Tracer(spans=True)
    _toy_episode(a, 0.0, "dissemination")
    _toy_episode(a, 50.0, "heartbeat")
    _toy_episode(b, 0.0, "heartbeat")
    _toy_episode(b, 50.0, "dissemination")
    sig_a = SpanForest.from_tracer(a).shape_signature()
    sig_b = SpanForest.from_tracer(b).shape_signature()
    assert sig_a == sig_b


# ----------------------------------------------------------------------
# ARQ introspection: attempts histogram, per-recipient windows
# ----------------------------------------------------------------------
def test_ack_observes_attempts_histogram():
    registry = Registry()
    sender = ReliableEndpoint(1, registry=registry)
    receiver = ReliableEndpoint(2)
    frame = sender.package(2, Payload(1, 1, 1), MessageKind.PAYLOAD, 0.0)
    # Two retransmits before the ACK lands: 3 attempts total.
    assert len(sender.due_retransmits(300.0)) == 1
    assert len(sender.due_retransmits(900.0)) == 1
    ack = receiver.on_frame(frame, 900.0).ack
    sender.on_frame(ack, 901.0)
    histogram = registry.get("runtime.arq.attempts")
    assert histogram.count == 1
    assert histogram.mean == pytest.approx(3.0)
    assert sender.unacked() == 0


def test_unacked_to_counts_per_recipient_windows():
    sender = ReliableEndpoint(1)
    sender.package(2, Payload(1, 1, 1), MessageKind.PAYLOAD, 0.0)
    sender.package(2, Payload(1, 2, 1), MessageKind.PAYLOAD, 0.0)
    sender.package(3, Payload(1, 3, 1), MessageKind.PAYLOAD, 0.0)
    assert sender.unacked() == 3
    assert sender.unacked_to(2) == 2
    assert sender.unacked_to(3) == 1
    assert sender.unacked_to(9) == 0
    assert sender.forget_peer(2) == 2
    assert sender.unacked_to(2) == 0
    assert sender.unacked() == 1


def test_package_stamps_span_onto_frame():
    from repro.obs import SpanContext

    sender = ReliableEndpoint(1)
    span = SpanContext(3, 14, 1)
    frame = sender.package(2, Payload(1, 1, 1), MessageKind.PAYLOAD,
                           0.0, span=span)
    assert frame.span == span
    assert sender.package(2, Payload(1, 2, 1), MessageKind.PAYLOAD,
                          0.0).span is None


# ----------------------------------------------------------------------
# The report's "Live run" section
# ----------------------------------------------------------------------
class _StubLive:
    def live_section(self):
        return {
            "polls": 42,
            "interval_ms": 50.0,
            "clock_ms": 2100.0,
            "halted": "group 1 has 2 members off the tree (allowed 0)",
            "stream": {"records": 420, "stream_dropped": 7,
                       "path": "out/trace.jsonl"},
            "phases": {"publish": {"calls": 2.0, "total_s": 0.5,
                                   "mean_ms": 250.0}},
            "delivery_lag": {3: {"payloads": 2.0, "mean_ms": 12.0,
                                 "max_ms": 20.0}},
            "arq": {"retransmits": 5, "expired": 0,
                    "duplicates_suppressed": 4, "fault_dropped": 9,
                    "fault_duplicated": 11,
                    "attempts": {"count": 30, "mean": 1.3,
                                 "buckets": [["<= 1", 25], ["<= 2", 5],
                                             ["overflow", 0]]}},
        }


def test_live_report_section_renders():
    report = build_report("live test", live=_StubLive())
    assert report["live"]["polls"] == 42
    text = render_markdown(report)
    assert "## Live run" in text
    assert "42 telemetry polls at 50 ms cadence" in text
    assert "**7 missed**" in text
    assert "HALTED by watchdog" in text
    assert "| publish | 2 | 0.5000 | 250.0000 |" in text
    assert "| 3 | 2 | 12.000 | 20.000 |" in text
    assert "9 dropped, 11 duplicated" in text
    assert "| <= 1 | 25 |" in text


def test_report_without_live_section_unchanged():
    text = render_markdown(build_report("plain"))
    assert "## Live run" not in text

"""Invariant checker pack: green on healthy state, red on corruption.

Each checker is exercised twice: on a healthy fixture (no violations)
and on a deliberately corrupted copy of the same fixture.  The
corruption tests go through a full :class:`InvariantSuite` holding every
checker, asserting that breaking one fixture trips *exactly* the
matching checker and no other — the property the adversarial experiment
relies on to attribute a red checkpoint to a specific protocol defect.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AnnouncementConfig, GroupCastConfig, TransitStubConfig
from repro.deployment import build_deployment
from repro.errors import InvariantViolation
from repro.faults import (
    CounterMonotonicity,
    InvariantSuite,
    check_heartbeat_view,
    check_members_reachable,
    check_overlay_connectivity,
    check_session_tree,
    check_tree_structure,
)
from repro.groupcast.session import GroupSession
from repro.groupcast.spanning_tree import SpanningTree
from repro.obs import Registry
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo
from repro.sim.engine import Simulator
from repro.sim.random import spawn_rng

pytestmark = pytest.mark.faults

TINY_CONFIG = GroupCastConfig(
    underlay=TransitStubConfig(
        transit_domains=2, transit_routers_per_domain=3,
        stub_domains_per_transit=2, routers_per_stub=3),
    seed=42)


# ----------------------------------------------------------------------
# Fixtures (healthy by construction)
# ----------------------------------------------------------------------
def healthy_tree() -> SpanningTree:
    tree = SpanningTree(root=0)
    tree.graft_chain([3, 1, 0])
    tree.graft_chain([4, 1, 0])
    tree.graft_chain([6, 5, 2, 0])
    for member in (3, 4, 6):
        tree.mark_member(member)
    return tree


def healthy_overlay() -> OverlayNetwork:
    """Two triangles joined by one bridge (0-1-2) -- (3-4-5)."""
    overlay = OverlayNetwork()
    for peer in range(6):
        overlay.add_peer(
            PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]:
        overlay.add_link(a, b)
    return overlay


class StubMaintenance:
    """The read surface :func:`check_heartbeat_view` consumes."""

    class _Config:
        missed_heartbeats_for_failure = 2

    def __init__(self, overlay: OverlayNetwork) -> None:
        self.config = self._Config()
        self._alive = set(overlay.peer_ids())
        self.missed: dict[int, dict[int, int]] = {
            peer: {} for peer in self._alive}

    def alive_peers(self) -> list[int]:
        return sorted(self._alive)

    def missed_heartbeats(self, peer_id: int) -> dict[int, int]:
        return dict(self.missed[peer_id])


def healthy_session() -> tuple[GroupSession, int, list[int]]:
    deployment = build_deployment(60, kind="groupcast", config=TINY_CONFIG)
    session = GroupSession(
        deployment.overlay, deployment.peer_distance_ms,
        spawn_rng(5, "inv-session"),
        announcement=AnnouncementConfig(advertisement_ttl=6,
                                        subscription_search_ttl=3))
    ids = deployment.peer_ids()
    members = [ids[i] for i in range(0, 24, 2)]
    session.establish(1, members[0], members)
    return session, 1, members


# ----------------------------------------------------------------------
# Individual checkers: healthy then corrupted
# ----------------------------------------------------------------------
def test_tree_structure_checker():
    tree = healthy_tree()
    assert check_tree_structure(tree) == []
    tree._parent[1] = 3  # 1 -> 3 -> 1 parent-pointer cycle
    messages = check_tree_structure(tree)
    assert any("cycle" in message for message in messages)


def test_tree_structure_detects_orphaned_parent_link():
    tree = healthy_tree()
    tree._children[1].discard(4)  # parent no longer lists its child
    messages = check_tree_structure(tree)
    assert any("does not list child 4" in message for message in messages)


def test_members_reachable_checker():
    tree = healthy_tree()
    expected = [3, 4, 6]
    assert check_members_reachable(tree, expected, set()) == []
    tree.unmark_member(6)  # fell off without being declared lost
    assert check_members_reachable(tree, expected, set()) \
        == ["member 6 fell off the tree without being declared lost"]
    # Declaring it lost silences the checker (callable form too).
    assert check_members_reachable(tree, expected, {6}) == []
    assert check_members_reachable(tree, expected, lambda: {6}) == []


def test_overlay_connectivity_checker():
    overlay = healthy_overlay()
    assert check_overlay_connectivity(overlay) == []
    overlay.remove_link(2, 3)  # cut the bridge: two halves of 3
    assert check_overlay_connectivity(
        overlay, min_largest_fraction=0.6) != []
    assert check_overlay_connectivity(
        overlay, min_largest_fraction=0.5, max_components=1) != []
    # Degradation inside the declared bounds is not a violation.
    assert check_overlay_connectivity(
        overlay, min_largest_fraction=0.5, max_components=2) == []


def test_heartbeat_view_checker():
    overlay = healthy_overlay()
    maintenance = StubMaintenance(overlay)
    assert check_heartbeat_view(maintenance, overlay) == []
    # At-threshold suspicion against a live, still-linked neighbor.
    maintenance.missed[0][1] = 2
    messages = check_heartbeat_view(maintenance, overlay)
    assert messages == ["peer 0 holds 2 missed heartbeats against live "
                       "neighbor 1"]
    # The same count against a dead neighbor is legitimate evidence.
    maintenance._alive.discard(1)
    assert check_heartbeat_view(maintenance, overlay) == []


def test_session_tree_checker():
    session, group_id, members = healthy_session()
    assert check_session_tree(session, group_id) == []
    # Point one member at a peer that is not on the tree.
    victim = members[3]
    off_tree = next(p for p in sorted(session.nodes)
                    if not session.nodes[p].state(group_id).on_tree)
    session.nodes[victim].state(group_id).upstream = off_tree
    messages = check_session_tree(session, group_id)
    assert any(f"member {victim}" in message for message in messages)
    # Declaring the member lost silences it.
    assert check_session_tree(session, group_id, {victim}) == []


def test_session_tree_detects_cycles():
    session, group_id, members = healthy_session()
    a, b = members[2], members[4]
    session.nodes[a].state(group_id).upstream = b
    session.nodes[b].state(group_id).upstream = a
    messages = check_session_tree(session, group_id)
    assert any("cycles" in message for message in messages)


def test_counter_monotonicity_checker():
    registry = Registry()
    counter = registry.counter("x")
    checker = CounterMonotonicity(registry)
    counter.inc(5)
    assert checker() == []
    counter.inc(2)
    assert checker() == []
    counter._value = 3  # corrupt: counters never decrease
    assert checker() == ["counter x decreased from 7 to 3"]
    counter._value = -1
    assert any("negative" in message for message in checker())


# ----------------------------------------------------------------------
# Full suite: one corruption trips exactly one checker
# ----------------------------------------------------------------------
CORRUPTIONS = {
    "tree-structure": lambda f: f["tree"]._parent.__setitem__(1, 3),
    "members-reachable": lambda f: f["tree"].unmark_member(6),
    "overlay-connectivity": lambda f: f["overlay"].remove_link(2, 3),
    "heartbeat-view":
        lambda f: f["maintenance"].missed[0].__setitem__(1, 2),
    "counters-monotone":
        lambda f: setattr(f["counter"], "_value", 0),
}


def full_suite():
    fixtures = {
        "tree": healthy_tree(),
        "overlay": healthy_overlay(),
    }
    fixtures["maintenance"] = StubMaintenance(fixtures["overlay"])
    registry = Registry()
    fixtures["counter"] = registry.counter("x")
    fixtures["counter"].inc(10)
    suite = InvariantSuite()
    suite.add("tree-structure",
              lambda: check_tree_structure(fixtures["tree"]))
    suite.add("members-reachable",
              lambda: check_members_reachable(
                  fixtures["tree"], [3, 4, 6], set()))
    suite.add("overlay-connectivity",
              lambda: check_overlay_connectivity(
                  fixtures["overlay"], min_largest_fraction=0.6))
    suite.add("heartbeat-view",
              lambda: check_heartbeat_view(
                  fixtures["maintenance"], fixtures["overlay"]))
    suite.add("counters-monotone", CounterMonotonicity(registry))
    return suite, fixtures


def test_full_suite_green_on_healthy_fixtures():
    suite, _ = full_suite()
    suite.run(at_ms=1.0)
    suite.run(at_ms=2.0)
    assert suite.healthy
    assert suite.registry.counter("invariants.checks").value == 10
    assert suite.registry.counter("invariants.violations").value == 0


@pytest.mark.parametrize("name", sorted(CORRUPTIONS))
def test_corrupting_one_fixture_fails_exactly_that_checker(name):
    suite, fixtures = full_suite()
    suite.run(at_ms=1.0)  # prime stateful checkers on healthy state
    assert suite.healthy
    CORRUPTIONS[name](fixtures)
    suite.run(at_ms=2.0)
    assert set(suite.violations_by_checker()) == {name}


def test_strict_suite_raises_on_first_violation():
    suite, fixtures = full_suite()
    suite.strict = True
    suite.run(at_ms=1.0)
    CORRUPTIONS["tree-structure"](fixtures)
    with pytest.raises(InvariantViolation):
        suite.run(at_ms=2.0)


def test_suite_checkpoints_ride_the_simulator():
    """`attach` re-checks every interval and stops when the run drains."""
    suite, _ = full_suite()
    simulator = Simulator()
    suite.attach(simulator, interval_ms=100.0)
    ticks: list[float] = []
    simulator.schedule_at(450.0, lambda: ticks.append(simulator.now))
    simulator.run()
    # Checkpoints at 100..500; the 500ms one sees an empty heap and the
    # chain stops instead of keeping the simulation alive forever.
    checks = suite.registry.counter("invariants.checks").value
    assert checks == 5 * len(suite.names())
    assert suite.healthy
    assert ticks == [450.0]

"""Tests for the workload generators and a long-running service study."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.random import spawn_rng
from repro.workloads.groups import (
    GroupArrivals,
    GroupSpec,
    MembershipChurn,
    sample_group_rows,
    zipf_group_sizes,
)
from repro.workloads.traffic import constant_rate, talk_spurts

PEERS = list(range(200))


class TestZipfSizes:
    def test_seed_deterministic(self):
        draws = [zipf_group_sizes(spawn_rng(13, "z"), 1_000)
                 for _ in range(2)]
        assert np.array_equal(draws[0], draws[1])
        roster_runs = [sample_group_rows(spawn_rng(13, "z"), 50, 300)
                       for _ in range(2)]
        for a, b in zip(roster_runs[0], roster_runs[1]):
            assert np.array_equal(a, b)

    def test_sizes_bounded_and_heavy_tailed(self):
        sizes = zipf_group_sizes(spawn_rng(14, "z"), 5_000,
                                 min_size=2, max_size=64)
        assert sizes.min() >= 2 and sizes.max() <= 64
        # P(size = k) ∝ k^-2: the smallest size dominates and the
        # truncated tail still gets hit.
        assert np.mean(sizes == 2) > 0.3
        assert (sizes > 16).any()

    def test_exponent_steers_the_tail(self):
        flat = zipf_group_sizes(spawn_rng(15, "z"), 4_000, exponent=1.1,
                                max_size=64)
        steep = zipf_group_sizes(spawn_rng(15, "z"), 4_000, exponent=3.0,
                                 max_size=64)
        assert flat.mean() > steep.mean()

    def test_sample_group_rows_layout(self):
        roots, rows, indptr = sample_group_rows(spawn_rng(16, "z"),
                                                40, 300, max_size=50)
        assert indptr.shape == (41,) and indptr[0] == 0
        assert indptr[-1] == rows.shape[0]
        sizes = np.diff(indptr)
        assert (sizes >= 2).all() and (sizes <= 50).all()
        for g in range(40):
            members = rows[indptr[g]:indptr[g + 1]]
            assert roots[g] == members[0]
            assert len(set(members.tolist())) == members.shape[0]
            assert (members >= 0).all() and (members < 300).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_group_sizes(spawn_rng(0, "z"), -1)
        with pytest.raises(ConfigurationError):
            zipf_group_sizes(spawn_rng(0, "z"), 1, exponent=0.0)
        with pytest.raises(ConfigurationError):
            zipf_group_sizes(spawn_rng(0, "z"), 1, min_size=8, max_size=4)
        with pytest.raises(ConfigurationError):
            sample_group_rows(spawn_rng(0, "z"), 0, 10)
        with pytest.raises(ConfigurationError):
            sample_group_rows(spawn_rng(0, "z"), 1, 1)


class TestGroupArrivals:
    def test_poisson_interarrivals(self):
        arrivals = GroupArrivals(PEERS, mean_interarrival_ms=10_000.0)
        specs = arrivals.generate(spawn_rng(0, "g"), 500)
        gaps = np.diff([0.0] + [s.created_at_ms for s in specs])
        assert abs(gaps.mean() - 10_000.0) / 10_000.0 < 0.15
        assert all(gap > 0 for gap in gaps)

    def test_sizes_lognormal_and_bounded(self):
        arrivals = GroupArrivals(PEERS, median_size=8.0, max_size=50)
        specs = arrivals.generate(spawn_rng(1, "g"), 400)
        sizes = [len(s.members) for s in specs]
        assert min(sizes) >= 2
        assert max(sizes) <= 50
        assert 4.0 < float(np.median(sizes)) < 14.0

    def test_members_unique_per_group(self):
        arrivals = GroupArrivals(PEERS)
        for spec in arrivals.generate(spawn_rng(2, "g"), 50):
            assert len(set(spec.members)) == len(spec.members)

    def test_locality_bias_concentrates_members(self, groupcast_deployment):
        space = groupcast_deployment.space
        peers = groupcast_deployment.peer_ids()
        biased = GroupArrivals(peers, median_size=20.0,
                               locality_bias=0.95, space=space)
        uniform = GroupArrivals(peers, median_size=20.0)

        def mean_spread(specs):
            spreads = []
            for spec in specs:
                coords = np.stack([space.get(m) for m in spec.members])
                spreads.append(
                    float(np.linalg.norm(coords - coords.mean(axis=0),
                                         axis=1).mean()))
            return float(np.mean(spreads))

        biased_specs = biased.generate(spawn_rng(3, "g"), 30)
        uniform_specs = uniform.generate(spawn_rng(3, "g"), 30)
        assert mean_spread(biased_specs) < mean_spread(uniform_specs)

    def test_zipf_sized_arrivals(self):
        arrivals = GroupArrivals(PEERS, size_distribution="zipf",
                                 zipf_exponent=2.0, max_size=50)
        runs = [arrivals.generate(spawn_rng(17, "g"), 200)
                for _ in range(2)]
        sizes = [len(s.members) for s in runs[0]]
        assert min(sizes) >= 2 and max(sizes) <= 50
        assert float(np.median(sizes)) < 8.0  # heavier small-group mass
        assert [s.members for s in runs[0]] == [s.members
                                                for s in runs[1]]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GroupArrivals([1])
        with pytest.raises(ConfigurationError):
            GroupArrivals(PEERS, size_distribution="pareto")
        with pytest.raises(ConfigurationError):
            GroupArrivals(PEERS, size_distribution="zipf",
                          zipf_exponent=0.0)
        with pytest.raises(ConfigurationError):
            GroupArrivals(PEERS, mean_interarrival_ms=0.0)
        with pytest.raises(ConfigurationError):
            GroupArrivals(PEERS, locality_bias=0.5)  # no space
        with pytest.raises(ConfigurationError):
            GroupArrivals(PEERS).generate(spawn_rng(0, "g"), -1)


class TestMembershipChurn:
    def spec(self):
        return GroupSpec(0, 1_000.0, tuple(range(10)))

    def test_events_sorted_and_within_horizon(self):
        churn = MembershipChurn(mean_membership_ms=50_000.0)
        events = churn.generate(self.spec(), PEERS, spawn_rng(4, "m"),
                                horizon_ms=200_000.0)
        times = [e.at_ms for e in events]
        assert times == sorted(times)
        assert all(1_000.0 <= t < 200_000.0 for t in times)

    def test_initial_members_eventually_leave(self):
        churn = MembershipChurn(mean_membership_ms=10_000.0,
                                join_rate_per_s=0.0)
        events = churn.generate(self.spec(), PEERS, spawn_rng(5, "m"),
                                horizon_ms=1_000_000.0)
        leavers = {e.peer_id for e in events if not e.join}
        assert leavers == set(range(10))

    def test_joiners_come_from_pool(self):
        churn = MembershipChurn(join_rate_per_s=0.5)
        events = churn.generate(self.spec(), PEERS, spawn_rng(6, "m"),
                                horizon_ms=120_000.0)
        joiners = {e.peer_id for e in events if e.join}
        assert joiners
        assert joiners.isdisjoint(range(10))

    def test_every_late_joiner_eventually_leaves_or_horizon(self):
        churn = MembershipChurn(mean_membership_ms=5_000.0,
                                join_rate_per_s=0.5)
        events = churn.generate(self.spec(), PEERS, spawn_rng(7, "m"),
                                horizon_ms=300_000.0)
        joins = [e for e in events if e.join]
        leaves = {e.peer_id for e in events if not e.join}
        # With dwell << horizon, nearly every joiner also leaves.
        assert sum(j.peer_id in leaves for j in joins) >= 0.8 * len(joins)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MembershipChurn(mean_membership_ms=0.0)
        churn = MembershipChurn()
        with pytest.raises(ConfigurationError):
            churn.generate(self.spec(), PEERS, spawn_rng(0, "m"),
                           horizon_ms=10.0)


class TestTraffic:
    def test_constant_rate_period(self):
        events = constant_rate([1], spawn_rng(8, "t"),
                               horizon_ms=100_000.0, period_ms=1_000.0,
                               jitter_fraction=0.0)
        gaps = np.diff([e.at_ms for e in events])
        assert np.allclose(gaps, 1_000.0)

    def test_constant_rate_publisher_subset(self):
        events = constant_rate(list(range(20)), spawn_rng(9, "t"),
                               horizon_ms=10_000.0, publishers=3)
        assert len({e.source for e in events}) == 3

    def test_talk_spurts_one_speaker_at_a_time(self):
        events = talk_spurts(list(range(5)), spawn_rng(10, "t"),
                             horizon_ms=600_000.0)
        assert events
        # Packets inside one spurt share a speaker: consecutive events
        # 200 ms apart always have the same source.
        for a, b in zip(events, events[1:]):
            if abs(b.at_ms - a.at_ms - 200.0) < 1e-6:
                assert a.source == b.source

    def test_talk_spurts_hand_off_between_speakers(self):
        events = talk_spurts(list(range(5)), spawn_rng(11, "t"),
                             horizon_ms=600_000.0)
        assert len({e.source for e in events}) > 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            constant_rate([], spawn_rng(0, "t"), 1_000.0)
        with pytest.raises(ConfigurationError):
            constant_rate([1], spawn_rng(0, "t"), 1_000.0, period_ms=0.0)
        with pytest.raises(ConfigurationError):
            talk_spurts([], spawn_rng(0, "t"), 1_000.0)


class TestLongRunningService:
    def test_service_study_end_to_end(self, groupcast_deployment):
        """Drive the middleware from generated workloads: groups arrive,
        publish talk-spurt traffic, and deliver consistently."""
        from repro.groupcast.middleware import GroupCastMiddleware

        deployment = groupcast_deployment
        middleware = GroupCastMiddleware(deployment)
        rng = spawn_rng(12, "service")
        arrivals = GroupArrivals(deployment.peer_ids(),
                                 mean_interarrival_ms=5_000.0,
                                 median_size=10.0, max_size=30)
        delivered, expected = 0, 0
        for spec in arrivals.generate(rng, 6):
            group = middleware.create_group(list(spec.members))
            traffic = talk_spurts(sorted(group.members), rng,
                                  horizon_ms=10_000.0,
                                  packet_interval_ms=2_000.0)
            for event in traffic[:10]:
                report = middleware.publish(group.group_id, event.source)
                delivered += len(report.member_delays_ms)
                expected += len(group.members) - 1
        assert expected > 0
        assert delivered == expected  # lossless substrate: full delivery

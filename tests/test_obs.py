"""Tests for the observability layer: registry, tracer, determinism."""

import json

import numpy as np
import pytest

from repro.errors import SimulationError, TelemetryError
from repro.groupcast.session import GroupSession
from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Registry,
    TraceRecord,
    Tracer,
    disable_telemetry,
    enable_telemetry,
    get_default_registry,
)
from repro.overlay.graph import OverlayNetwork
from repro.overlay.messages import MessageKind
from repro.peers.peer import PeerInfo
from repro.sim.engine import Simulator
from repro.sim.messaging import MessageNetwork
from repro.sim.random import spawn_rng


class TestInstruments:
    def test_counter_counts(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(TelemetryError):
            Counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == pytest.approx(2.0)

    def test_histogram_buckets_and_moments(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(555.5)
        assert hist.mean == pytest.approx(555.5 / 4)
        # One sample per bucket, overflow bucket included.
        assert hist.bucket_counts() == (1, 1, 1, 1)

    def test_histogram_edge_is_inclusive(self):
        hist = Histogram("h", bounds=(10.0, 20.0))
        hist.observe(10.0)
        assert hist.bucket_counts() == (1, 0, 0)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram("h", bounds=())
        with pytest.raises(TelemetryError):
            Histogram("h", bounds=(5.0, 5.0))


class TestRegistry:
    def test_instruments_are_memoized(self):
        registry = Registry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_type_clash_rejected(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")
        with pytest.raises(TelemetryError):
            registry.histogram("x")

    def test_snapshot_and_counters_view(self):
        registry = Registry()
        registry.counter("messages.payload").inc(3)
        registry.gauge("alive").set(7)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["messages.payload"] == 3
        assert snap["alive"] == 7.0
        assert snap["lat"]["count"] == 1
        assert registry.counters(prefix="messages.") == {
            "messages.payload": 3}

    def test_reset_keeps_names(self):
        registry = Registry()
        registry.counter("a").inc(9)
        registry.reset()
        assert "a" in registry
        assert registry.counter("a").value == 0

    def test_disabled_registry_is_noop(self):
        registry = Registry(enabled=False)
        counter = registry.counter("a")
        counter.inc(100)
        assert counter.value == 0
        registry.gauge("g").set(5.0)
        registry.histogram("h").observe(1.0)
        assert registry.snapshot() == {}
        assert len(registry) == 0

    def test_default_registry_install_and_restore(self):
        assert get_default_registry() is NULL_REGISTRY
        try:
            installed = enable_telemetry()
            assert get_default_registry() is installed
            assert installed.enabled
        finally:
            disable_telemetry()
        assert get_default_registry() is NULL_REGISTRY


class TestTracer:
    def test_records_and_total(self):
        tracer = Tracer(capacity=2)
        tracer.record(1.0, "send", a=1, b=2, detail="payload")
        tracer.record(2.0, "deliver", a=1, b=2)
        tracer.record(3.0, "send", a=2, b=3)
        assert tracer.total_records == 3
        assert len(tracer) == 2  # ring dropped the oldest
        assert [rec.kind for rec in tracer.records()] == ["deliver", "send"]

    def test_digest_covers_dropped_records(self):
        full = Tracer(capacity=100)
        ringed = Tracer(capacity=1)
        for i in range(10):
            full.record(float(i), "fire", seq=i)
            ringed.record(float(i), "fire", seq=i)
        assert full.trace_digest() == ringed.trace_digest()

    def test_digest_distinguishes_streams(self):
        a, b = Tracer(), Tracer()
        a.record(1.0, "send", a=1, b=2)
        b.record(1.0, "send", a=1, b=3)
        assert a.trace_digest() != b.trace_digest()

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.record(1.5, "send", a=4, b=5, detail="heartbeat")
        path = tracer.export_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed == {"at_ms": 1.5, "kind": "send", "seq": -1,
                          "a": 4, "b": 5, "detail": "heartbeat"}

    def test_streaming_export_matches_batch_format(self, tmp_path):
        # iter_jsonl is the streaming producer under both to_jsonl and
        # export_jsonl; all three must agree byte-for-byte, and the
        # format itself is pinned (meta object first when requested,
        # one compact sorted-key JSON object per record, each line
        # newline-terminated) so committed traces stay parseable.
        tracer = Tracer()
        tracer.record(1.5, "send", a=4, b=5, detail="heartbeat")
        tracer.record(2.5, "deliver", a=4, b=5, detail="heartbeat")
        for include_meta in (False, True):
            streamed = "".join(tracer.iter_jsonl(
                include_meta=include_meta))
            assert streamed == tracer.to_jsonl(include_meta=include_meta)
            path = tracer.export_jsonl(tmp_path / "trace.jsonl",
                                       include_meta=include_meta)
            assert path.read_text() == streamed
        lines = tracer.to_jsonl(include_meta=True)
        assert lines.endswith("\n")
        first, *rest = lines.splitlines()
        assert json.loads(first)["meta"] == tracer.export_meta()
        assert rest == [
            '{"a":4,"at_ms":1.5,"b":5,"detail":"heartbeat",'
            '"kind":"send","seq":-1}',
            '{"a":4,"at_ms":2.5,"b":5,"detail":"heartbeat",'
            '"kind":"deliver","seq":-1}',
        ]

    def test_streaming_export_is_lazy(self):
        tracer = Tracer()
        tracer.record(1.0, "fire")
        iterator = tracer.iter_jsonl()
        assert next(iterator) == tracer.records()[0].to_json() + "\n"

    def test_clear_restarts_digest(self):
        tracer = Tracer()
        tracer.record(1.0, "fire")
        empty_digest = Tracer().trace_digest()
        tracer.clear()
        assert tracer.total_records == 0
        assert tracer.trace_digest() == empty_digest

    def test_record_is_frozen_dataclass(self):
        rec = TraceRecord(1.0, "send", a=1, b=2)
        with pytest.raises(AttributeError):
            rec.kind = "other"

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestSpanTransparency:
    """Span capture must be bit-transparent unless explicitly enabled."""

    def test_canonical_format_pinned(self):
        # The span-less encoding is the historical digest unit: any
        # change here silently invalidates every committed digest.
        plain = TraceRecord(1.0, "send", a=1, b=2, detail="payload")
        assert plain.canonical() == "1.0|send|-1|1|2|payload"
        spanned = TraceRecord(1.0, "send", a=1, b=2, detail="payload",
                              trace_id=3, span_id=4, parent_id=2)
        assert spanned.canonical() == "1.0|send|-1|1|2|payload|3|4|2"
        assert "span_id" not in json.loads(plain.to_json())
        assert json.loads(spanned.to_json())["span_id"] == 4

    def test_span_helpers_inert_when_disabled(self):
        tracer = Tracer()  # spans off by default
        assert tracer.root_span(at_ms=0.0, kind="advertisement") is None
        assert tracer.child_span(None) is None
        assert tracer.total_records == 0  # nothing hit the stream

    def test_span_capture_changes_digest_only_when_enabled(self):
        plain, spanned = Tracer(), Tracer(spans=True)
        plain.record(1.0, "send", a=1, b=2)
        spanned.record(1.0, "send", a=1, b=2,
                       span=spanned.root_span())
        assert plain.trace_digest() != spanned.trace_digest()

    def test_ring_drops_counted_and_exported(self):
        registry = Registry()
        tracer = Tracer(capacity=2, registry=registry)
        for i in range(5):
            tracer.record(float(i), "fire")
        assert tracer.dropped_records == 3
        assert registry.counter("obs.trace.dropped").value == 3
        assert tracer.export_meta()["dropped_records"] == 3
        meta = json.loads(
            tracer.to_jsonl(include_meta=True).splitlines()[0])
        assert meta["meta"]["dropped_records"] == 3


#: Per-policy adversarial digests pinned before span tracing existed
#: (same code path as ``resilience.run_adversarial(seed=7)`` at the
#: previous release).  The observability layer — tracing, profiling,
#: telemetry, enabled or not — must never move them.
PRE_SPAN_ADVERSARIAL_DIGESTS = {
    "none":
        "71116d1fc58befe0eacf0ca3f9f9aafb9de7548067690fae7e9fb5961249be0b",
    "repair":
        "afe65f658e899a573858e1a1562e383434d754d57b174bf169ae4e3c0c86b84b",
    "replication":
        "8c7dfa15043c52ef1bd2896455dd5646a79801283716978d49751dd29ba97f89",
}


@pytest.mark.telemetry
@pytest.mark.slow
class TestAdversarialDigestTransparency:
    def _digests(self):
        from repro.experiments import resilience

        result = resilience.run_adversarial(seed=7)
        return {row[0]: row[-1] for row in result.rows}

    def test_defaults_off_reproduce_pre_span_digests(self):
        assert self._digests() == PRE_SPAN_ADVERSARIAL_DIGESTS

    def test_enabled_observability_is_bit_transparent(self):
        from repro.obs import (
            disable_profiling,
            disable_tracing,
            enable_profiling,
            enable_tracing,
        )

        registry = enable_telemetry()
        enable_tracing(registry=registry)
        enable_profiling(registry)
        try:
            digests = self._digests()
        finally:
            disable_tracing()
            disable_profiling()
            disable_telemetry()
        assert digests == PRE_SPAN_ADVERSARIAL_DIGESTS


class TestEngineHooks:
    def test_schedule_and_fire_are_traced(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        sim.schedule(5.0, lambda: None)
        sim.schedule_at(7.0, lambda: None)
        sim.run()
        kinds = [rec.kind for rec in tracer.records()]
        assert kinds == ["schedule", "schedule", "fire", "fire"]
        fires = [rec for rec in tracer.records() if rec.kind == "fire"]
        assert [rec.at_ms for rec in fires] == [5.0, 7.0]

    def test_step_is_traced_and_rejects_past_events(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert [rec.kind for rec in tracer.records()] == [
            "schedule", "fire"]


class TestTransportHooks:
    def test_send_deliver_traced_and_counted(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        network = MessageNetwork(sim, lambda a, b: 2.0, spawn_rng(0, "n"),
                                 tracer=tracer)
        network.register(2, lambda env: None)
        network.send(1, 2, "x", MessageKind.PAYLOAD)
        sim.run()
        kinds = [rec.kind for rec in tracer.records()]
        assert kinds == ["send", "schedule", "fire", "deliver"]
        send = tracer.records()[0]
        assert (send.a, send.b, send.detail) == (1, 2, "payload")
        assert network.registry.counter("messages.payload").value == 1
        assert network.sent == 1 and network.delivered == 1

    def test_dead_letter_traced(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        network = MessageNetwork(sim, lambda a, b: 1.0, spawn_rng(0, "n"),
                                 tracer=tracer)
        network.send(1, 2, "x")
        sim.run()
        assert tracer.records()[-1].kind == "dead_letter"
        assert network.dead_lettered == 1

    def test_loss_traced(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        network = MessageNetwork(sim, lambda a, b: 1.0, spawn_rng(0, "n"),
                                 loss_rate=0.99, tracer=tracer)
        network.register(2, lambda env: None)
        for _ in range(50):
            network.send(1, 2, "x")
        sim.run()
        assert network.lost > 0
        assert any(rec.kind == "lost" for rec in tracer.records())

    def test_shared_registry_across_networks(self):
        registry = Registry()
        for _ in range(2):
            sim = Simulator()
            network = MessageNetwork(sim, lambda a, b: 1.0,
                                     spawn_rng(0, "n"), registry=registry)
            network.register(2, lambda env: None)
            network.send(1, 2, "x")
            sim.run()
        assert registry.counter("net.sent").value == 2
        assert registry.counter("net.delivered").value == 2


# ----------------------------------------------------------------------
# Determinism: two identically-seeded runs are byte-identical.
# ----------------------------------------------------------------------
def _random_overlay(seed: int, n: int = 40) -> OverlayNetwork:
    rng = np.random.default_rng(seed)
    overlay = OverlayNetwork()
    for i in range(n):
        capacity = float(rng.choice([1.0, 10.0, 100.0, 1000.0]))
        overlay.add_peer(PeerInfo(i, capacity, rng.uniform(0, 100, size=2)))
    for i in range(1, n):
        overlay.add_link(i, int(rng.integers(0, i)))
    for _ in range(2 * n):
        a, b = rng.integers(0, n, size=2)
        if a != b and not overlay.has_link(int(a), int(b)):
            overlay.add_link(int(a), int(b))
    return overlay


def _traced_session_run(seed: int) -> tuple[str, GroupSession]:
    """One full SSA establish + publish over a lossy traced transport."""
    overlay = _random_overlay(seed)
    tracer = Tracer(capacity=512)  # deliberately smaller than the trace

    def latency(a, b):
        return max(
            overlay.peer(a).coordinate_distance(overlay.peer(b)), 0.01)

    session = GroupSession(
        overlay, latency, spawn_rng(seed, "determinism"),
        loss_rate=0.02, tracer=tracer)
    members = list(range(1, 20))
    session.establish(1, rendezvous=0, members=members, scheme="ssa")
    session.publish(1, source=0)
    return tracer.trace_digest(), session


@pytest.mark.telemetry
def test_trace_digest_deterministic_across_runs():
    digest_a, session_a = _traced_session_run(seed=11)
    digest_b, session_b = _traced_session_run(seed=11)
    assert digest_a == digest_b
    assert session_a.tracer.total_records == session_b.tracer.total_records
    assert session_a.tracer.total_records > 512  # ring actually overflowed
    assert (session_a.registry.snapshot()
            == session_b.registry.snapshot())


@pytest.mark.telemetry
def test_trace_digest_differs_across_seeds():
    digest_a, _ = _traced_session_run(seed=11)
    digest_c, _ = _traced_session_run(seed=12)
    assert digest_a != digest_c

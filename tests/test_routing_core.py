"""Equivalence suite for the vectorized routing core.

Every bulk method of :class:`~repro.network.underlay.UnderlayNetwork`
must agree **bit-for-bit** with the scalar reference semantics
(:meth:`peer_distance_ms`, :meth:`peer_path_links`, ...) on seeded
topologies — not approximately, exactly: the vectorized gathers were
written to preserve the scalar operand order, and these tests pin that
contract down with ``np.testing.assert_array_equal``.
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np
import pytest

from repro.config import TransitStubConfig
from repro.errors import TopologyError
from repro.groupcast.dissemination import disseminate
from repro.groupcast.spanning_tree import SpanningTree
from repro.network.multicast import (
    _build_ip_multicast_tree_scalar,
    build_ip_multicast_tree,
)
from repro.network.routing import EMPTY_F64, EMPTY_I64, RoutingCore
from repro.network.topology import generate_transit_stub
from repro.network.underlay import UnderlayNetwork
from repro.obs.registry import (
    NULL_REGISTRY,
    enable_telemetry,
    set_default_registry,
)
from repro.sim.random import spawn_rng

PEERS = 40


@pytest.fixture(scope="module")
def attached() -> UnderlayNetwork:
    config = TransitStubConfig(
        transit_domains=2,
        transit_routers_per_domain=3,
        stub_domains_per_transit=2,
        routers_per_stub=3,
    )
    underlay = generate_transit_stub(config, spawn_rng(11, "routing-core"))
    rng = spawn_rng(12, "routing-core-attach")
    for peer in range(PEERS):
        underlay.attach_peer(peer, rng)
    return underlay


@pytest.fixture()
def peers() -> list[int]:
    return list(range(PEERS))


class TestDistanceEquivalence:
    def test_matrix_matches_scalar_bit_for_bit(self, attached, peers):
        matrix = attached.peer_distance_matrix(peers)
        scalar = np.array([[attached.peer_distance_ms(a, b)
                            for b in peers] for a in peers])
        np.testing.assert_array_equal(matrix, scalar)

    def test_rectangular_matrix_matches_scalar(self, attached, peers):
        rows, cols = peers[:7], peers[5:20]
        matrix = attached.peer_distance_matrix(rows, cols)
        scalar = np.array([[attached.peer_distance_ms(a, b)
                            for b in cols] for a in rows])
        np.testing.assert_array_equal(matrix, scalar)

    def test_pair_distances_match_scalar(self, attached):
        rng = spawn_rng(21, "pairs")
        a_ids = [int(rng.choice(PEERS)) for _ in range(200)]
        b_ids = [int(rng.choice(PEERS)) for _ in range(200)]
        flat = attached.peer_pair_distances(a_ids, b_ids)
        scalar = np.array([attached.peer_distance_ms(a, b)
                           for a, b in zip(a_ids, b_ids)])
        np.testing.assert_array_equal(flat, scalar)

    def test_pair_distances_rejects_length_mismatch(self, attached):
        with pytest.raises(TopologyError):
            attached.peer_pair_distances([0, 1], [2])

    def test_matrix_diagonal_is_exactly_zero(self, attached, peers):
        matrix = attached.peer_distance_matrix(peers)
        np.testing.assert_array_equal(np.diag(matrix),
                                      np.zeros(len(peers)))


class TestPathEquivalence:
    def test_path_links_many_match_scalar(self, attached, peers):
        for source in (0, 7, PEERS - 1):
            many = attached.peer_path_links_many(source, peers)
            for other, links in zip(peers, many):
                assert links == attached.peer_path_links(source, other)

    def test_hop_counts_match_scalar(self, attached, peers):
        for source in (0, 13):
            vec = attached.peer_hop_counts(source, peers)
            scalar = np.array([attached.peer_hop_count(source, other)
                               for other in peers])
            np.testing.assert_array_equal(vec, scalar)

    def test_hop_count_equals_path_link_count(self, attached, peers):
        for other in peers[1:15]:
            assert (attached.peer_hop_count(0, other)
                    == len(attached.peer_path_links(0, other)))

    def test_multicast_links_match_union_of_paths(self, attached, peers):
        receivers = peers[1:25]
        union: set[tuple[int, int]] = set()
        for other in receivers:
            union.update(attached.peer_path_links(0, other))
        assert attached.multicast_links(0, receivers) == union

    def test_multicast_links_reject_source_in_receivers(self, attached):
        with pytest.raises(TopologyError):
            attached.multicast_links(0, [0, 1])


class TestTreeEquivalence:
    def test_ip_multicast_tree_matches_scalar_oracle(self, attached, peers):
        fast = build_ip_multicast_tree(attached, 3, peers)
        slow = _build_ip_multicast_tree_scalar(attached, 3, peers)
        assert fast.source == slow.source
        assert fast.subscribers == slow.subscribers
        assert fast.links == slow.links
        assert set(fast.delays_ms) == set(slow.delays_ms)
        for peer, delay in slow.delays_ms.items():
            assert fast.delays_ms[peer] == delay  # exact, not approx

    def test_disseminate_matches_scalar_flood(self, attached):
        tree = SpanningTree(root=0)
        rng = spawn_rng(31, "tree-shape")
        for peer in range(1, 20):
            parent = int(rng.choice(peer))
            tree.graft_chain([peer, parent])
            tree.mark_member(peer)
        report = disseminate(tree, 0, attached)

        # Inline scalar reference: same BFS over sorted adjacency, but
        # per-pair scalar queries.
        adjacency = tree.tree_adjacency()
        delays = {0: 0.0}
        ip_messages = 0
        stress: Counter[tuple[int, int]] = Counter()
        queue = deque([0])
        while queue:
            node = queue.popleft()
            for neighbor in sorted(adjacency[node]):
                if neighbor in delays:
                    continue
                delays[neighbor] = (delays[node]
                                    + attached.peer_distance_ms(
                                        node, neighbor))
                links = attached.peer_path_links(node, neighbor)
                ip_messages += len(links)
                stress.update(links)
                queue.append(neighbor)

        assert report.ip_messages == ip_messages
        assert report.physical_link_stress == dict(stress)
        for member, delay in report.member_delays_ms.items():
            assert delay == delays[member]  # exact


class TestEmptyQueries:
    def test_empty_others_returns_shared_vector(self, attached):
        out = attached.peer_distances_ms(0, [])
        assert out is EMPTY_F64
        assert out.dtype == np.float64
        assert not out.flags.writeable

    def test_empty_hop_counts_returns_shared_vector(self, attached):
        out = attached.peer_hop_counts(0, [])
        assert out is EMPTY_I64
        assert out.dtype == np.int64

    def test_empty_path_links_many(self, attached):
        assert attached.peer_path_links_many(0, []) == []

    def test_empty_pair_distances(self, attached):
        assert attached.peer_pair_distances([], []) is EMPTY_F64


class TestRowCache:
    def _fresh_underlay(self, lru_rows: int) -> UnderlayNetwork:
        config = TransitStubConfig(
            transit_domains=2,
            transit_routers_per_domain=2,
            stub_domains_per_transit=2,
            routers_per_stub=3,
        )
        underlay = generate_transit_stub(config, spawn_rng(41, "cache"))
        underlay._core = RoutingCore(underlay._graph,
                                     underlay.router_count,
                                     lru_rows=lru_rows)
        return underlay

    def test_lru_is_bounded(self):
        underlay = self._fresh_underlay(lru_rows=4)
        for router in range(underlay.router_count):
            underlay.router_distances_from(router)
        core = underlay.routing
        assert core.lru_rows <= core.lru_capacity == 4
        assert core.interned_rows == 0

    def test_interned_rows_survive_ad_hoc_sweeps(self):
        underlay = self._fresh_underlay(lru_rows=2)
        rng = spawn_rng(42, "cache-attach")
        for peer in range(6):
            underlay.attach_peer(peer, rng)
        underlay.peer_distances_ms(0, [1, 2, 3, 4, 5])
        interned_before = underlay.routing.interned_rows
        assert interned_before >= 1
        for router in range(underlay.router_count):
            underlay.router_distances_from(router)
        assert underlay.routing.interned_rows == interned_before
        # Interned sources are still cache hits after the sweep.
        hits_before = underlay.routing.cache_hits
        underlay.peer_distances_ms(0, [1, 2, 3])
        assert underlay.routing.cache_hits == hits_before + 1

    def test_cache_stats_counters_mirror_into_registry(self):
        underlay = self._fresh_underlay(lru_rows=8)
        rng = spawn_rng(43, "cache-attach")
        for peer in range(4):
            underlay.attach_peer(peer, rng)
        registry = enable_telemetry()
        try:
            underlay.peer_distances_ms(0, [1, 2, 3])
            underlay.peer_distances_ms(0, [1, 2, 3])
            stats = underlay.routing.cache_stats()
            assert stats["misses"] >= 1
            assert stats["hits"] >= 1
            assert (registry.get("routing.cache_misses").value
                    == stats["misses"])
            assert (registry.get("routing.cache_hits").value
                    == stats["hits"])
        finally:
            set_default_registry(NULL_REGISTRY)

    def test_bulk_solve_covers_attached_routers(self):
        underlay = self._fresh_underlay(lru_rows=8)
        rng = spawn_rng(44, "cache-attach")
        for peer in range(10):
            underlay.attach_peer(peer, rng)
        underlay.peer_distance_matrix(list(range(10)))
        core = underlay.routing
        assert core.bulk_solves == 1
        assert core.single_solves == 0

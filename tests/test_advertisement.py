"""Unit tests for SSA/NSSA advertisement propagation."""

import numpy as np
import pytest

from repro.config import AnnouncementConfig
from repro.errors import GroupError
from repro.groupcast.advertisement import propagate_advertisement
from repro.overlay.graph import OverlayNetwork
from repro.overlay.messages import MessageKind, MessageStats
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def make_overlay(edges, capacities=None):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        capacity = (capacities or {}).get(peer, 10.0)
        overlay.add_peer(PeerInfo(peer, capacity,
                                  np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


def unit_latency(a, b):
    return 1.0


@pytest.fixture()
def line_overlay():
    return make_overlay([(0, 1), (1, 2), (2, 3), (3, 4)])


class TestNSSA:
    def test_reaches_whole_overlay_within_ttl(self, line_overlay):
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "nssa", unit_latency, spawn_rng(0, "a"))
        assert set(outcome.receipts) == {0, 1, 2, 3, 4}
        assert outcome.receiving_rate(5) == 1.0

    def test_ttl_limits_reach(self, line_overlay):
        config = AnnouncementConfig(advertisement_ttl=2)
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "nssa", unit_latency, spawn_rng(0, "a"),
            config=config)
        assert set(outcome.receipts) == {0, 1, 2}

    def test_upstream_pointers_form_reverse_paths(self, line_overlay):
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "nssa", unit_latency, spawn_rng(0, "a"))
        assert outcome.reverse_path(4) == [4, 3, 2, 1, 0]
        assert outcome.reverse_path(0) == [0]

    def test_duplicates_counted_in_cyclic_topology(self):
        overlay = make_overlay([(0, 1), (1, 2), (2, 0)])
        outcome = propagate_advertisement(
            overlay, 0, 1, "nssa", unit_latency, spawn_rng(0, "a"))
        assert outcome.duplicates > 0
        assert outcome.messages_sent > len(outcome.receipts) - 1

    def test_elapsed_time_accumulates_latency(self, line_overlay):
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "nssa", lambda a, b: 10.0, spawn_rng(0, "a"))
        assert outcome.receipts[3].elapsed_ms == pytest.approx(30.0)
        assert outcome.receipts[3].hops == 3


class TestSSA:
    def test_sends_fewer_messages_than_nssa_on_dense_overlay(self):
        rng = spawn_rng(1, "dense")
        edges = set()
        n = 60
        for i in range(n):
            for j in rng.choice(n, size=8, replace=False):
                if i != int(j):
                    edges.add((min(i, int(j)), max(i, int(j))))
        overlay = make_overlay(sorted(edges))
        config = AnnouncementConfig(ssa_fanout_fraction=0.4)
        ssa = propagate_advertisement(
            overlay, 0, 1, "ssa", unit_latency, spawn_rng(2, "s"),
            config=config)
        nssa = propagate_advertisement(
            overlay, 0, 1, "nssa", unit_latency, spawn_rng(2, "n"),
            config=config)
        assert ssa.messages_sent < nssa.messages_sent

    def test_fanout_fraction_one_behaves_like_flood_reach(self, line_overlay):
        config = AnnouncementConfig(ssa_fanout_fraction=1.0)
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "ssa", unit_latency, spawn_rng(0, "a"),
            config=config)
        assert set(outcome.receipts) == {0, 1, 2, 3, 4}

    def test_min_fanout_respected_on_low_degree_nodes(self, line_overlay):
        config = AnnouncementConfig(
            ssa_fanout_fraction=0.01, ssa_min_fanout=1)
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "ssa", unit_latency, spawn_rng(0, "a"),
            config=config)
        # Line graph: min fanout 1 still pushes the ad down the line.
        assert len(outcome.receipts) == 5

    def test_stats_ledger_records_messages(self, line_overlay):
        stats = MessageStats()
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "ssa", unit_latency, spawn_rng(0, "a"),
            stats=stats)
        assert stats.count(MessageKind.ADVERTISEMENT) == \
            outcome.messages_sent


class TestValidation:
    def test_unknown_scheme_rejected(self, line_overlay):
        with pytest.raises(GroupError):
            propagate_advertisement(
                line_overlay, 0, 1, "broadcast", unit_latency,
                spawn_rng(0, "a"))

    def test_unknown_rendezvous_rejected(self, line_overlay):
        with pytest.raises(GroupError):
            propagate_advertisement(
                line_overlay, 99, 1, "ssa", unit_latency, spawn_rng(0, "a"))

    def test_reverse_path_for_non_receiver_rejected(self, line_overlay):
        config = AnnouncementConfig(advertisement_ttl=1)
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "nssa", unit_latency, spawn_rng(0, "a"),
            config=config)
        with pytest.raises(GroupError):
            outcome.reverse_path(4)

    def test_receiving_rate_validation(self, line_overlay):
        outcome = propagate_advertisement(
            line_overlay, 0, 1, "nssa", unit_latency, spawn_rng(0, "a"))
        with pytest.raises(GroupError):
            outcome.receiving_rate(0)

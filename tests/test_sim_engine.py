"""Unit tests for the discrete-event engine."""

import heapq

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


def test_initial_clock_is_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(9.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(3.0, lambda lab=label: fired.append(lab))
    sim.run()
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]
    assert sim.now == 7.5


def test_run_until_stops_early_and_preserves_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(2.0, lambda: fired.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 3.0)]


def test_cancelled_events_do_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("kept"))
    event.cancel()
    sim.run()
    assert fired == ["kept"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(4.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [4.0]


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    sim.run(max_events=25)
    assert sim.events_processed == 25


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == [1, 2]


def test_step_rejects_past_events_like_run():
    """Regression: step() enforces the same no-past-events invariant as
    run(); a corrupted heap must not silently rewind the clock."""
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    # Simulate heap corruption: inject an event stamped before now.
    heapq.heappush(sim._heap, Event(1.0, 999, lambda: None))
    with pytest.raises(SimulationError):
        sim.step()
    # run() rejects the same corruption identically.
    heapq.heappush(sim._heap, Event(1.0, 1000, lambda: None))
    with pytest.raises(SimulationError):
        sim.run()


def test_step_does_not_rewind_clock_on_past_event():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    heapq.heappush(sim._heap, Event(3.0, 999, lambda: None))
    with pytest.raises(SimulationError):
        sim.step()
    assert sim.now == 10.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5

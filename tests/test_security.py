"""Tests for the EventGuard-style message guards."""

import pytest

from repro.groupcast.session import Advertise, Payload
from repro.security.guards import (
    GroupKeyAuthority,
    SignatureError,
    guard_message,
    verify_message,
)


@pytest.fixture()
def authority():
    return GroupKeyAuthority(master_secret=b"test-master")


class TestKeyAuthority:
    def test_group_keys_deterministic_and_distinct(self, authority):
        assert authority.group_key(1) == authority.group_key(1)
        assert authority.group_key(1) != authority.group_key(2)

    def test_issue_and_authorisation(self, authority):
        key = authority.issue(1, peer_id=7)
        assert key == authority.group_key(1)
        assert authority.is_authorised(1, 7)
        assert not authority.is_authorised(1, 8)
        assert not authority.is_authorised(2, 7)

    def test_revoke(self, authority):
        authority.issue(1, 7)
        authority.revoke(1, 7)
        assert not authority.is_authorised(1, 7)
        authority.revoke(1, 7)  # idempotent

    def test_distinct_masters_distinct_keys(self):
        a = GroupKeyAuthority(b"alpha")
        b = GroupKeyAuthority(b"beta")
        assert a.group_key(1) != b.group_key(1)

    def test_empty_master_rejected(self):
        with pytest.raises(SignatureError):
            GroupKeyAuthority(b"")


class TestGuards:
    def test_roundtrip_verifies(self, authority):
        key = authority.issue(1, 0)
        message = guard_message(
            key, 1, 0, Advertise(1, 0, (0,), 6, "ssa"))
        verify_message(key, message)  # no exception

    def test_wrong_key_rejected(self, authority):
        key = authority.issue(1, 0)
        other = authority.group_key(2)
        message = guard_message(key, 1, 0, "payload")
        with pytest.raises(SignatureError):
            verify_message(other, message)

    def test_tampered_payload_rejected(self, authority):
        key = authority.issue(1, 0)
        message = guard_message(
            key, 1, 0, Payload(group_id=1, payload_id=5, source=0))
        forged = type(message)(
            group_id=message.group_id, sender=message.sender,
            payload=Payload(group_id=1, payload_id=6, source=0),
            token=message.token)
        with pytest.raises(SignatureError):
            verify_message(key, forged)

    def test_spoofed_sender_rejected(self, authority):
        key = authority.issue(1, 0)
        message = guard_message(key, 1, 0, "hello")
        spoofed = type(message)(
            group_id=1, sender=99, payload="hello", token=message.token)
        with pytest.raises(SignatureError):
            verify_message(key, spoofed)

    def test_cross_group_replay_rejected(self, authority):
        key1 = authority.issue(1, 0)
        key2 = authority.issue(2, 0)
        message = guard_message(key1, 1, 0, "announce")
        replayed = type(message)(
            group_id=2, sender=0, payload="announce",
            token=message.token)
        with pytest.raises(SignatureError):
            verify_message(key2, replayed)

    def test_unauthorised_peer_cannot_mint_valid_tokens(self, authority):
        """A peer without the key can only guess; random keys fail."""
        real_key = authority.issue(1, 0)
        attacker_key = b"\x00" * 32
        forged = guard_message(attacker_key, 1, 42, "evil-ad")
        with pytest.raises(SignatureError):
            verify_message(real_key, forged)

    def test_dataclass_canonicalisation_distinguishes_fields(self,
                                                             authority):
        key = authority.issue(1, 0)
        a = guard_message(key, 1, 0, Advertise(1, 0, (0,), 6, "ssa"))
        b = guard_message(key, 1, 0, Advertise(1, 0, (0,), 5, "ssa"))
        assert a.token != b.token

    def test_empty_key_rejected(self):
        with pytest.raises(SignatureError):
            guard_message(b"", 1, 0, "x")


class TestSessionGuard:
    def test_forged_advertisement_never_reaches_the_node(self):
        """An attacker without the group key cannot inject protocol
        messages through the transport."""
        from repro.security.guards import GroupKeyAuthority, guard_message
        from repro.security.session_guard import GuardedNode
        from repro.sim.engine import Simulator
        from repro.sim.messaging import MessageNetwork
        from repro.sim.random import spawn_rng

        simulator = Simulator()
        network = MessageNetwork(simulator, lambda a, b: 1.0,
                                 spawn_rng(0, "net"))
        authority = GroupKeyAuthority(b"secret-master")
        seen = []
        guard = GuardedNode.issue(authority, group_id=1, peer_id=2,
                                  inner_handler=seen.append)
        network.register(2, guard.handle)

        # Legitimate member 3 sends a guarded message.
        member_guard = GuardedNode.issue(authority, 1, 3, lambda e: None)
        network.send(3, 2, member_guard.outgoing(
            Advertise(1, 0, (0,), 6, "ssa")), None)
        # Attacker 66 guesses a key and forges; also sends raw payloads.
        attacker_key = b"\x13" * 32
        network.send(66, 2, guard_message(
            attacker_key, 1, 66, Advertise(1, 66, (66,), 6, "ssa")))
        network.send(66, 2, Advertise(1, 66, (66,), 6, "ssa"))
        simulator.run()

        assert guard.accepted == 1
        assert guard.rejected == 2
        assert len(seen) == 1
        assert seen[0].payload.rendezvous == 0

    def test_guard_unwraps_payload_for_inner_handler(self):
        from repro.security.guards import GroupKeyAuthority
        from repro.security.session_guard import GuardedNode
        from repro.sim.engine import Simulator
        from repro.sim.messaging import MessageNetwork
        from repro.sim.random import spawn_rng

        simulator = Simulator()
        network = MessageNetwork(simulator, lambda a, b: 1.0,
                                 spawn_rng(0, "net"))
        authority = GroupKeyAuthority()
        payloads = []
        guard = GuardedNode.issue(
            authority, 1, 2, lambda env: payloads.append(env.payload))
        network.register(2, guard.handle)
        sender = GuardedNode.issue(authority, 1, 5, lambda e: None)
        network.send(5, 2, sender.outgoing("state-update"))
        simulator.run()
        assert payloads == ["state-update"]

"""End-to-end tests for the live operations plane (real sockets).

One faulted 10-peer loopback episode runs once per module with the
full :class:`~repro.obs.live.LiveTelemetry` pump attached — streaming
tracer, registry sampling, online watchdogs, artifact files — and the
tests check the ISSUE's acceptance criteria against it:

* the live span forest's episode-tree shapes match the simulated
  twin's (cross-datagram span propagation survives real UDP, injected
  drops and duplicates included),
* the streamed ``trace.jsonl`` reconstructs the identical forest,
* the crash window trips the same watchdog class online as in the sim
  twin, with the incident trail written to ``incidents.json``,
* the generated report carries the "Live run" section,
* the OPS introspection survey reflects the repaired cluster.

Separate episodes cover the halt-action kill-switch and the
crash-purges-ARQ-windows regression.  Marked ``runtime``: excluded
from tier-1, run by the CI runtime job.
"""

import asyncio
import json
import os

import pytest

from repro.experiments import live_run
from repro.obs import (
    OrphanedMembers,
    Registry,
    SpanForest,
    TopologyRecorder,
    Tracer,
    default_watchdogs,
)
from repro.obs.live import LIVE_INTERVAL_S, LiveTelemetry
from repro.obs.report import build_report, render_markdown
from repro.groupcast.session import GroupSession, Payload
from repro.overlay.messages import MessageKind
from repro.runtime import RuntimeCluster
from repro.sim.random import spawn_rng

pytestmark = pytest.mark.runtime

BUDGET_S = float(os.environ.get("REPRO_RUNTIME_BUDGET_S", "30"))
SETTLE_S = max(1.0, BUDGET_S / 10.0)

GROUP = live_run.GROUP
RENDEZVOUS = live_run.RENDEZVOUS
MEMBERS = live_run.MEMBERS
SEED = live_run.DEFAULT_SEED

#: The episode kinds whose tree shapes must match the sim twin.
EPISODE_KINDS = ("advertisement", "subscription", "dissemination")


# ----------------------------------------------------------------------
# The shared faulted episode (one live run per module) and its twin
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_episode(tmp_path_factory):
    out = tmp_path_factory.mktemp("live_out")
    cluster, live, survey = asyncio.run(
        live_run._episode(SEED, out, default_watchdogs(),
                          LIVE_INTERVAL_S, BUDGET_S))
    return cluster, live, survey, out


@pytest.fixture(scope="module")
def sim_twin():
    """The same episode on the deterministic simulator, with spans and
    an online orphaned-members watchdog snapshotted at the same
    logical capture points the live pump hits."""
    registry = Registry()
    tracer = Tracer(spans=True, registry=registry)
    session = GroupSession(
        overlay=live_run.build_overlay(), latency_fn=live_run.latency_ms,
        rng=spawn_rng(SEED, "live-sim-twin"),
        announcement=live_run.ANNOUNCEMENT,
        registry=registry, tracer=tracer)
    recorder = TopologyRecorder(interval_ms=50.0, tracer=tracer)
    recorder.watch_session(session)
    recorder.add_watchdog(OrphanedMembers())
    session.establish(GROUP, RENDEZVOUS, list(MEMBERS), scheme="nssa")
    recorder.snapshot(session.simulator.now)
    session.publish(GROUP, 9)
    session.crash_peer(7)
    session.rejoin_async(GROUP, 9)
    # Same deterministic capture point as the live pump: member 9 is
    # off the tree between the crash and the repair settling.
    recorder.snapshot(session.simulator.now)
    session.simulator.run()
    recorder.snapshot(session.simulator.now)
    session.publish(GROUP, 3)
    return session, tracer, recorder


def test_span_forest_shape_matches_sim_twin(live_episode, sim_twin):
    _cluster, live, _survey, _out = live_episode
    _session, sim_tracer, _recorder = sim_twin
    live_sig = SpanForest.from_tracer(live.tracer) \
        .shape_signature(kinds=EPISODE_KINDS)
    sim_sig = SpanForest.from_tracer(sim_tracer) \
        .shape_signature(kinds=EPISODE_KINDS)
    assert live_sig, "live run produced no episode trees"
    assert live_sig == sim_sig


def test_streamed_jsonl_reconstructs_identical_forest(live_episode):
    _cluster, live, _survey, out = live_episode
    trace_path = out / "trace.jsonl"
    assert trace_path.exists()
    streamed = SpanForest.from_jsonl(trace_path).shape_signature()
    in_memory = SpanForest.from_tracer(live.tracer).shape_signature()
    assert streamed == in_memory
    # Nothing fell behind the ring at this episode's scale.
    assert live.tracer.stream_dropped == 0


def test_online_watchdog_fires_same_class_as_sim_twin(live_episode,
                                                      sim_twin):
    _cluster, live, _survey, out = live_episode
    _session, _tracer, sim_recorder = sim_twin
    live_summary = live.recorder.watchdogs.summary()
    assert live_summary["fired"] >= 1
    assert live_summary["by_rule"]["orphaned-members"]["fired"] >= 1
    # The crash window must also heal: the rule clears after repair.
    assert live_summary["by_rule"]["orphaned-members"]["cleared"] >= 1
    sim_summary = sim_recorder.watchdogs.summary()
    assert sim_summary["by_rule"]["orphaned-members"]["fired"] >= 1
    assert sim_summary["by_rule"]["orphaned-members"]["cleared"] >= 1
    incidents = json.loads((out / "incidents.json").read_text())
    assert incidents["halted"] is None
    assert incidents["by_rule"]["orphaned-members"]["fired"] >= 1


def test_live_report_renders_live_section(live_episode):
    _cluster, live, _survey, _out = live_episode
    report = build_report(
        "live episode", tracer=live.tracer, registry=live.registry,
        profiler=live.profiler, topology=live.recorder, live=live)
    text = render_markdown(report)
    assert "## Live run" in text
    assert "Wall-clock phase costs" in text
    assert "advertise" in text
    assert "Per-peer delivery lag" in text
    assert "ARQ reliability" in text
    section = report["live"]
    assert section["polls"] >= 3
    assert section["stream"]["records"] > 0
    assert section["arq"]["fault_dropped"] > 0, \
        "the fault plan injected no drops"
    assert section["arq"]["fault_duplicated"] > 0


def test_deliveries_survive_faults_and_crash(live_episode):
    cluster, _live, _survey, _out = live_episode
    log = cluster.delivery_log()
    # Two publishes; every on-tree member hears each (source included
    # in the record for the pre-crash publish's surviving peers).
    assert len(log) == 2
    for records in log.values():
        assert set(records) & (set(MEMBERS) - {7})


def test_ops_survey_reflects_repaired_cluster(live_episode):
    _cluster, _live, survey, _out = live_episode
    assert sorted(survey) == sorted(set(range(10)) - {7})
    for member in (3, 8, 9):
        row = survey[member].group_row(GROUP)
        assert row is not None
        assert row[2], f"member {member} not on the tree"
        assert row[3], f"member {member} lost its membership"
    for reply in survey.values():
        assert reply.incarnation >= 0
        assert all(age >= 0.0 for _, age in reply.last_seen)


# ----------------------------------------------------------------------
# The halt-action kill-switch
# ----------------------------------------------------------------------
async def _halting_episode():
    cluster = RuntimeCluster(
        overlay=live_run.build_overlay(), seed=SEED,
        announcement=live_run.ANNOUNCEMENT,
        latency_fn=live_run.latency_ms)
    live = LiveTelemetry(cluster, interval_s=0.02,
                         rules=(OrphanedMembers(action="halt"),))
    async with cluster:
        live.start()
        cluster.advertise(GROUP, RENDEZVOUS, scheme="nssa")
        await cluster.settle(SETTLE_S)
        cluster.subscribe(GROUP, MEMBERS)
        await cluster.settle(SETTLE_S)
        await cluster.crash(7)
        cluster.rejoin(GROUP, 9)
        # The pump's next tick sees member 9 off the tree and the
        # halt-action rule takes the cluster down from inside the task.
        await cluster.wait_until(lambda: live.halted is not None,
                                 SETTLE_S)
    await live.close()
    return cluster, live


def test_halt_watchdog_stops_the_cluster():
    cluster, live = asyncio.run(_halting_episode())
    assert live.halted is not None
    assert "off the tree" in live.halted
    assert not cluster.peers, "halt did not stop the cluster"
    summary = live.recorder.watchdogs.summary()
    assert summary["by_rule"]["orphaned-members"]["fired"] >= 1


# ----------------------------------------------------------------------
# Crash/restart purges reliability state (the satellite bugfix)
# ----------------------------------------------------------------------
async def _purge_episode():
    cluster = RuntimeCluster(
        overlay=live_run.build_overlay(), seed=SEED,
        announcement=live_run.ANNOUNCEMENT,
        latency_fn=live_run.latency_ms)
    async with cluster:
        transport = cluster.transport
        # A routed-but-unbound phantom: frames toward it never ack, so
        # the sender's retransmit window stays pinned open.
        transport.add_route(42, "127.0.0.1", 1)
        transport.send(0, 42, Payload(GROUP, 1, 0), MessageKind.PAYLOAD)
        assert transport.arq_window_to(0, 42) == 1
        dead_before = cluster.registry.counter("net.dead_lettered").value
        abandoned = transport.forget_peer(42)
        dead_after = cluster.registry.counter("net.dead_lettered").value
        purged = (abandoned, transport.arq_window_to(0, 42),
                  dead_after - dead_before)

        # A real crash must do the same purge for every survivor.
        cluster.advertise(GROUP, RENDEZVOUS, scheme="nssa")
        await cluster.settle(SETTLE_S)
        cluster.subscribe(GROUP, MEMBERS)
        await cluster.settle(SETTLE_S)
        await cluster.crash(7)
        survivors = [
            transport.arq_window_to(pid, 7) for pid in cluster.peers]
        # New traffic toward the dead peer dead-letters immediately
        # instead of re-opening a window.
        transport.send(4, 7, Payload(GROUP, 2, 4), MessageKind.PAYLOAD)
        survivors.append(transport.arq_window_to(4, 7))
    return purged, survivors


def test_crash_purges_arq_windows_and_dedup_state():
    (abandoned, window, dead_lettered), survivors = asyncio.run(
        _purge_episode())
    assert abandoned == 1
    assert window == 0
    assert dead_lettered >= 1
    assert all(w == 0 for w in survivors)


# ----------------------------------------------------------------------
# Per-tenant SLO burn: the halt action over real sockets
# ----------------------------------------------------------------------
async def _slo_halt_episode(tmp_path):
    from repro.obs import SLOEngine, SLOSpec

    cluster = RuntimeCluster(
        overlay=live_run.build_overlay(), seed=SEED,
        announcement=live_run.ANNOUNCEMENT,
        latency_fn=live_run.latency_ms)
    # Group -> tenant 0; one orphaned member of this small roster
    # burns the 1% error budget orders of magnitude too fast.
    engine = SLOEngine(SLOSpec(min_delivery_ratio=0.99, window=1),
                       tenant_of_group={GROUP: 0})
    live = LiveTelemetry(cluster, interval_s=0.02, output_dir=tmp_path,
                         slo=engine, slo_action="halt")
    async with cluster:
        live.start()
        cluster.advertise(GROUP, RENDEZVOUS, scheme="nssa")
        await cluster.settle(SETTLE_S)
        cluster.subscribe(GROUP, MEMBERS)
        await cluster.settle(SETTLE_S)
        await cluster.crash(7)
        cluster.rejoin(GROUP, 9)
        await cluster.wait_until(lambda: live.halted is not None,
                                 SETTLE_S)
    await live.close()
    return cluster, live, engine


def test_slo_burn_halts_live_cluster(tmp_path):
    cluster, live, engine = asyncio.run(_slo_halt_episode(tmp_path))
    assert live.halted is not None
    assert "tenant 0" in live.halted
    assert "burning error budget" in live.halted
    assert not cluster.peers, "SLO halt did not stop the cluster"
    summary = live.recorder.watchdogs.summary()
    assert summary["by_rule"]["slo-burn"]["fired"] >= 1
    # The per-tenant incident landed in the bounded counter family.
    family = live.recorder.watchdogs.registry.get("slo.burn.incidents")
    assert family.labels(0).value >= 1
    # Burn state is readable through the engine and the incident file.
    states = engine.tenant_states()
    assert states and states[0]["tenant"] == 0
    incidents = json.loads(
        (tmp_path / "incidents.json").read_text(encoding="utf-8"))
    assert incidents["halted"] == live.halted
    assert incidents["slo"]["spec"]["min_delivery_ratio"] == 0.99
    assert incidents["slo"]["burn"][0]["tenant"] == 0

"""Scale smoke tier: a 10^4-peer session run inside hard budgets.

These tests are **excluded from tier-1** (``-m "not scale"`` in the
default addopts) and run in a dedicated CI job (``pytest -m scale``).
They pin the array core's scaling claim, not protocol correctness —
the differential suite does that at seed scale:

* a full advertise → subscribe → disseminate pass over 10^4 peers must
  finish inside a wall-clock budget;
* resident memory must stay inside the documented bytes/peer budget
  (see ``EXPERIMENTS.md``, *Memory budget* knob);
* the kernels must keep their structural invariants at this scale
  (connected flood, all-member trees, finite delays).
"""

from __future__ import annotations

import os
import resource
import time

import numpy as np
import pytest

from repro.core import (
    attach_searchers,
    climb_subscriptions,
    edge_latencies_from_coords,
    flood_advertisement,
    synthetic_power_law_csr,
    tree_delays,
)
from repro.core.store import TreeArrays
from repro.sim.random import spawn_rng

pytestmark = pytest.mark.scale

#: Peers in the smoke run (the benchmark's mid tier).
SCALE_N = 10_000
#: Wall-clock budget for one full session pass, seconds.  Generous on
#: purpose: CI machines are slow and the point is catching quadratic
#: regressions (which overshoot by orders of magnitude), not jitter.
WALL_CLOCK_BUDGET_S = float(os.environ.get("REPRO_SCALE_BUDGET_S", "30"))
#: Resident-set budget for the whole test process, bytes.  The arrays
#: themselves are ~0.5 KiB/peer; the budget leaves room for the
#: interpreter, numpy and pytest overhead.
RSS_BUDGET_BYTES = int(
    os.environ.get("REPRO_SCALE_RSS_BUDGET", str(1_500 * 1024 * 1024)))


def _rss_bytes() -> int:
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return usage * 1024 if usage < 1 << 32 else usage


@pytest.fixture(scope="module")
def scale_world():
    rng = spawn_rng(7, "scale-smoke")
    csr = synthetic_power_law_csr(SCALE_N, rng)
    coords = rng.uniform(0.0, 100.0, size=(SCALE_N, 2))
    latency = edge_latencies_from_coords(csr, coords)
    return csr, coords, latency, rng


def test_full_session_pass_inside_wall_clock_budget(scale_world):
    csr, coords, latency, rng = scale_world
    started = time.perf_counter()

    flood = flood_advertisement(csr, latency, root=0, ttl=12)
    members = np.sort(rng.choice(SCALE_N, size=SCALE_N // 20,
                                 replace=False))
    on_tree, is_member = climb_subscriptions(flood, members)
    parent, on_tree, failed = attach_searchers(
        csr, flood, members, on_tree, search_ttl=3)
    delays = tree_delays(parent, on_tree, coords=coords, root=0)

    elapsed = time.perf_counter() - started
    assert elapsed < WALL_CLOCK_BUDGET_S, (
        f"10^4-peer session pass took {elapsed:.1f}s "
        f"(budget {WALL_CLOCK_BUDGET_S:.0f}s)")

    # Structural sanity at scale: the synthetic overlay is connected,
    # so the flood reaches everyone and every member lands on the tree.
    assert flood.reached.all()
    assert failed.size == 0
    assert is_member[members].all()
    assert on_tree[members].all()
    assert np.isfinite(delays[on_tree]).all()
    assert (delays[~on_tree] == np.inf).all()


def test_ssa_flood_at_scale(scale_world):
    csr, coords, latency, rng = scale_world
    capacities = rng.choice([1.0, 10.0, 100.0, 1000.0], size=SCALE_N)
    started = time.perf_counter()
    flood = flood_advertisement(
        csr, latency, root=0, ttl=12, scheme="ssa",
        capacities=capacities, rng=spawn_rng(7, "scale-ssa"))
    elapsed = time.perf_counter() - started
    assert elapsed < WALL_CLOCK_BUDGET_S
    # Selective forwarding still reaches a substantial fraction of a
    # connected overlay, without flooding every edge.
    assert SCALE_N // 4 < flood.receipt_count() < SCALE_N


def test_tree_columns_support_scale_repair(scale_world):
    csr, coords, latency, rng = scale_world
    flood = flood_advertisement(csr, latency, root=0, ttl=12)
    members = np.sort(rng.choice(SCALE_N, size=SCALE_N // 20,
                                 replace=False))
    on_tree, is_member = climb_subscriptions(flood, members)
    tree = TreeArrays(SCALE_N, root=0)
    rows = np.nonzero(on_tree)[0]
    rows = rows[rows != 0]
    tree.parent[rows] = flood.upstream[rows]
    tree.on_tree[rows] = True
    tree.is_member[np.nonzero(is_member)[0]] = True
    tree.validate()

    alive = np.ones(SCALE_N, dtype=bool)
    victims = rng.choice(rows, size=200, replace=False)
    alive[victims] = False
    started = time.perf_counter()
    detached = tree.repair_dangling(alive)
    elapsed = time.perf_counter() - started
    assert elapsed < WALL_CLOCK_BUDGET_S
    assert tree.dangling_rows(alive).size == 0
    assert detached.size >= victims.size - np.count_nonzero(
        ~tree.on_tree[victims])


def test_resident_memory_inside_budget(scale_world):
    csr, coords, latency, _ = scale_world
    per_peer = (csr.nbytes() + coords.nbytes + latency.nbytes) / SCALE_N
    # The documented array budget: well under a KiB per peer for
    # adjacency + coordinates + per-edge latencies at average degree
    # ~2*min_degree.  A peer *object* graph costs two orders more.
    assert per_peer < 1024, f"{per_peer:.0f} B/peer exceeds budget"
    rss = _rss_bytes()
    assert rss < RSS_BUDGET_BYTES, (
        f"RSS {rss / 1e6:.0f} MB exceeds budget "
        f"{RSS_BUDGET_BYTES / 1e6:.0f} MB")

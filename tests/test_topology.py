"""Tests for the topology observatory (structural snapshot recorder).

The recorder rides the simulator clock exactly like the profiler, so the
two hard guarantees mirror the profiler suite: the cadence samples the
latest crossed boundary only, and an attached recorder is bit-transparent
for the trace digest (it must never schedule events, never draw from a
protocol rng and never record into the run's tracer).
"""

import json

import numpy as np
import pytest

from repro.config import AnnouncementConfig, GroupCastConfig, TransitStubConfig
from repro.deployment import build_deployment
from repro.errors import TelemetryError
from repro.groupcast.session import GroupSession
from repro.groupcast.spanning_tree import SpanningTree
from repro.obs import (
    Registry,
    TopologyRecorder,
    Tracer,
    disable_topology,
    enable_topology,
    get_default_topology_recorder,
    pseudo_diameter,
    reconstruct_epochs,
    tree_cost_metrics,
)
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo
from repro.sim.engine import Simulator
from repro.sim.random import spawn_rng

TOPO_UNDERLAY = TransitStubConfig(
    transit_domains=2,
    transit_routers_per_domain=3,
    stub_domains_per_transit=2,
    routers_per_stub=3,
)
TOPO_CONFIG = GroupCastConfig(underlay=TOPO_UNDERLAY, seed=11)


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


def _run_session(seed: int = 7):
    """One small end-to-end session run; returns (digest, deliveries)."""
    deployment = build_deployment(60, kind="groupcast", config=TOPO_CONFIG)
    tracer = Tracer()
    session = GroupSession(
        deployment.overlay, deployment.peer_distance_ms,
        spawn_rng(seed, "topology-session"),
        announcement=AnnouncementConfig(advertisement_ttl=6,
                                        subscription_search_ttl=3),
        registry=Registry(), tracer=tracer)
    ids = deployment.peer_ids()
    members = [ids[i] for i in range(0, 24, 2)]
    session.establish(1, members[0], members)
    deliveries = session.publish(1, members[0])
    return tracer.trace_digest(), deliveries


# ----------------------------------------------------------------------
# Deterministic structural helpers
# ----------------------------------------------------------------------
class TestPseudoDiameter:
    def test_path_graph_exact(self):
        overlay = make_overlay([(1, 2), (2, 3), (3, 4)])
        assert pseudo_diameter(overlay) == 3

    def test_star_graph(self):
        overlay = make_overlay([(0, i) for i in range(1, 6)])
        assert pseudo_diameter(overlay) == 2

    def test_uses_largest_component(self):
        # Small 2-path component plus a larger 3-path one.
        overlay = make_overlay([(1, 2), (10, 11), (11, 12), (12, 13)])
        assert pseudo_diameter(overlay) == 3

    def test_empty_and_singleton_are_zero(self):
        assert pseudo_diameter(OverlayNetwork()) == 0
        singleton = OverlayNetwork()
        singleton.add_peer(PeerInfo(1, 10.0, np.zeros(2)))
        assert pseudo_diameter(singleton) == 0

    def test_deterministic_without_rng(self):
        overlay = make_overlay([(i, i + 1) for i in range(20)])
        assert pseudo_diameter(overlay) == pseudo_diameter(overlay) == 20


class TestTreeCostMetrics:
    def test_root_only_tree_is_empty(self):
        deployment = build_deployment(10, kind="groupcast",
                                      config=TOPO_CONFIG)
        tree = SpanningTree(root=deployment.peer_ids()[0])
        assert tree_cost_metrics(tree, deployment.underlay) == {}

    def test_ratios_are_sane(self):
        deployment = build_deployment(30, kind="groupcast",
                                      config=TOPO_CONFIG)
        ids = deployment.peer_ids()
        tree = SpanningTree(root=ids[0])
        for member in ids[1:8]:
            tree.graft_chain([member, ids[0]])
            tree.mark_member(member)
        out = tree_cost_metrics(tree, deployment.underlay)
        # A star from an arbitrary root can't beat IP multicast.
        assert out["delay_penalty"] >= 1.0
        assert out["link_stress"] >= 1.0


# ----------------------------------------------------------------------
# Cadence sampling on the simulator clock
# ----------------------------------------------------------------------
class TestCadence:
    def _recorder_on_sim(self, interval_ms=100.0):
        overlay = make_overlay([(1, 2), (2, 3)])
        recorder = TopologyRecorder(interval_ms=interval_ms)
        recorder.watch_overlay(overlay)
        simulator = Simulator()
        recorder.attach(simulator)
        return overlay, recorder, simulator

    def test_snapshot_per_crossed_boundary(self):
        _, recorder, simulator = self._recorder_on_sim()
        for at in (50.0, 150.0, 250.0, 350.0):
            simulator.schedule(at, lambda: None)
        simulator.run()
        assert [s.at_ms for s in recorder.snapshots] == [0.0, 100.0,
                                                         200.0, 300.0]
        assert all(s.kind == "cadence" for s in recorder.snapshots)

    def test_only_latest_boundary_materialized(self):
        _, recorder, simulator = self._recorder_on_sim()
        simulator.schedule(50.0, lambda: None)
        simulator.schedule(450.0, lambda: None)
        simulator.run()
        # The jump from 50 to 450 materializes only the 400 boundary.
        assert [s.at_ms for s in recorder.snapshots] == [0.0, 400.0]

    def test_run_until_samples_idle_time(self):
        _, recorder, simulator = self._recorder_on_sim()
        simulator.schedule(600.0, lambda: None)
        simulator.run(until=350.0)
        # The pending 600 ms event stays queued; stopping the clock at
        # 350 still materializes the last crossed boundary.
        assert [s.at_ms for s in recorder.snapshots] == [300.0]

    def test_disabled_recorder_is_inert(self):
        overlay = make_overlay([(1, 2)])
        recorder = TopologyRecorder(enabled=False)
        recorder.watch_overlay(overlay, baseline_at_ms=0.0)
        simulator = Simulator()
        recorder.attach(simulator)
        simulator.schedule(600.0, lambda: None)
        simulator.run()
        assert recorder.snapshots == ()
        assert recorder.finish(1000.0) is None
        assert recorder.snapshots == ()

    def test_unwatched_recorder_takes_no_snapshots(self):
        recorder = TopologyRecorder()
        simulator = Simulator()
        recorder.attach(simulator)
        simulator.schedule(600.0, lambda: None)
        simulator.run()
        assert recorder.snapshots == ()

    def test_bad_interval_and_detail_rejected(self):
        with pytest.raises(TelemetryError):
            TopologyRecorder(interval_ms=0.0)
        with pytest.raises(TelemetryError):
            TopologyRecorder(detail="verbose")


# ----------------------------------------------------------------------
# Delta encoding and reconstruction
# ----------------------------------------------------------------------
class TestDeltaEncoding:
    def test_baseline_carries_full_graph(self):
        overlay = make_overlay([(1, 2), (2, 3)])
        recorder = TopologyRecorder()
        recorder.watch_overlay(overlay, baseline_at_ms=0.0)
        first = recorder.snapshots[0]
        assert first.kind == "baseline"
        assert first.overlay_delta.added_peers == (1, 2, 3)
        assert set(first.overlay_delta.added_links) == {(1, 2), (2, 3)}
        assert first.structural_changes == 5

    def test_later_snapshots_carry_only_changes(self):
        overlay = make_overlay([(1, 2), (2, 3)])
        recorder = TopologyRecorder()
        recorder.watch_overlay(overlay, baseline_at_ms=0.0)
        overlay.add_peer(PeerInfo(4, 10.0, np.zeros(2)))
        overlay.add_link(3, 4)
        overlay.remove_link(1, 2)
        snap = recorder.snapshot(100.0)
        assert snap.overlay_delta.added_peers == (4,)
        assert snap.overlay_delta.added_links == ((3, 4),)
        assert snap.overlay_delta.removed_links == ((1, 2),)
        # A quiet snapshot carries an empty delta.
        quiet = recorder.snapshot(200.0)
        assert quiet.structural_changes == 0

    def test_reconstruction_matches_final_state(self):
        overlay = make_overlay([(1, 2), (2, 3), (3, 4)])
        recorder = TopologyRecorder()
        recorder.watch_overlay(overlay, baseline_at_ms=0.0)
        overlay.remove_peer(4)
        recorder.snapshot(100.0)
        overlay.add_link(1, 3)
        recorder.snapshot(200.0)
        artifact = recorder.to_dict()
        state = reconstruct_epochs(artifact)[1]
        final = artifact["final"]
        assert sorted(state["peers"]) == final["peers"]
        assert sorted(map(list, state["links"])) == final["links"]

    def test_duplicate_cadence_stamp_deduplicated(self):
        overlay = make_overlay([(1, 2)])
        recorder = TopologyRecorder()
        recorder.watch_overlay(overlay)
        assert recorder.snapshot(100.0) is not None
        assert recorder.snapshot(100.0) is None
        assert len(recorder.snapshots) == 1


class TestEpochs:
    def test_new_overlay_bumps_epoch(self):
        recorder = TopologyRecorder()
        first = make_overlay([(1, 2)])
        second = make_overlay([(5, 6)])
        recorder.watch_overlay(first, baseline_at_ms=0.0)
        assert recorder.epoch == 1
        recorder.watch_overlay(second, baseline_at_ms=0.0)
        assert recorder.epoch == 2
        # Each epoch's baseline sees its own full graph, not a delta
        # against the previous deployment.
        assert recorder.snapshots[1].overlay_delta.added_peers == (5, 6)
        assert recorder.snapshots[1].overlay_delta.removed_peers == ()

    def test_rewatching_same_overlay_keeps_epoch(self):
        recorder = TopologyRecorder()
        overlay = make_overlay([(1, 2)])
        recorder.watch_overlay(overlay, baseline_at_ms=0.0)
        recorder.watch_overlay(overlay)
        assert recorder.epoch == 1
        assert len(recorder.snapshots) == 1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_overlay_metrics_match_direct_calls(self):
        deployment = build_deployment(40, kind="groupcast",
                                      config=TOPO_CONFIG)
        recorder = TopologyRecorder()
        recorder.watch_overlay(deployment.overlay)
        snap = recorder.snapshot(0.0)
        overlay = deployment.overlay
        assert snap.metrics["overlay.peers"] == float(len(overlay))
        assert snap.metrics["overlay.links"] == float(overlay.edge_count)
        assert snap.metrics["overlay.components"] == float(
            len(overlay.connected_component_sizes()))
        assert snap.metrics["overlay.diameter"] == float(
            pseudo_diameter(overlay))
        degrees = overlay.degrees()
        assert snap.metrics["overlay.degree_mean"] == pytest.approx(
            float(degrees.mean()))
        assert snap.metrics["overlay.degree_max"] == float(degrees.max())

    def test_full_detail_adds_neighbor_distance(self):
        deployment = build_deployment(40, kind="groupcast",
                                      config=TOPO_CONFIG)
        structure = TopologyRecorder()
        structure.watch_overlay(deployment.overlay,
                                underlay=deployment.underlay)
        full = TopologyRecorder(detail="full")
        full.watch_overlay(deployment.overlay,
                           underlay=deployment.underlay)
        lean = structure.snapshot(0.0).metrics
        rich = full.snapshot(0.0).metrics
        assert "overlay.neighbor_distance_mean_ms" not in lean
        assert rich["overlay.neighbor_distance_mean_ms"] > 0.0

    def test_largest_component_fraction_under_partition(self):
        overlay = make_overlay([(1, 2), (2, 3), (3, 4)])
        recorder = TopologyRecorder()
        recorder.watch_overlay(overlay)
        whole = recorder.snapshot(0.0)
        assert whole.metrics["overlay.largest_component_fraction"] == 1.0
        overlay.remove_link(2, 3)
        split = recorder.snapshot(100.0)
        assert split.metrics["overlay.components"] == 2.0
        assert split.metrics["overlay.largest_component_fraction"] == 0.5


class TestObserveTree:
    def test_extra_metrics_are_prefixed(self):
        recorder = TopologyRecorder()
        tree = SpanningTree(root=1)
        tree.graft_chain([2, 1])
        tree.mark_member(2)
        snap = recorder.observe_tree(
            tree, group_id=3, at_ms=5.0,
            extra_metrics={"delay_penalty": 2.5})
        assert snap.kind == "observe"
        assert snap.metrics["tree.3.delay_penalty"] == 2.5
        assert snap.metrics["tree.3.nodes"] == 2.0
        assert recorder.registry.counter(
            "topology.observations").value == 1

    def test_compute_costs_from_underlay(self):
        deployment = build_deployment(20, kind="groupcast",
                                      config=TOPO_CONFIG)
        ids = deployment.peer_ids()
        tree = SpanningTree(root=ids[0])
        for member in ids[1:5]:
            tree.graft_chain([member, ids[0]])
            tree.mark_member(member)
        recorder = TopologyRecorder()
        snap = recorder.observe_tree(tree, group_id=0, at_ms=0.0,
                                     underlay=deployment.underlay,
                                     compute_costs=True)
        expected = tree_cost_metrics(tree, deployment.underlay)
        assert snap.metrics["tree.0.delay_penalty"] == pytest.approx(
            expected["delay_penalty"])
        assert snap.metrics["tree.0.link_stress"] == pytest.approx(
            expected["link_stress"])


# ----------------------------------------------------------------------
# Session integration + bit-transparency (pinned)
# ----------------------------------------------------------------------
class TestSessionIntegration:
    def test_attached_recorder_is_digest_transparent(self):
        bare_digest, bare_deliveries = _run_session()
        recorder = enable_topology(interval_ms=500.0)
        try:
            watched_digest, watched_deliveries = _run_session()
        finally:
            disable_topology()
        assert watched_digest == bare_digest
        assert watched_deliveries == bare_deliveries
        # ...and the recorder actually observed the run.
        assert len(recorder.snapshots) >= 2
        assert recorder.epoch == 1

    def test_session_trees_derived_from_upstreams(self):
        recorder = enable_topology(interval_ms=500.0)
        try:
            _run_session()
        finally:
            disable_topology()
        recorder.finish(recorder.snapshots[-1].at_ms + 500.0)
        last = recorder.latest()
        assert last.metrics["tree.1.nodes"] >= 12.0
        assert last.metrics["tree.1.orphans"] == 0.0
        assert last.metrics["tree.1.depth"] >= 1.0
        # The established tree appeared as edge deltas at some point.
        assert any(delta.group_id == 1 and delta.added_edges
                   for snap in recorder.snapshots
                   for delta in snap.tree_deltas)

    def test_deployment_build_takes_baseline_snapshot(self):
        recorder = enable_topology()
        try:
            deployment = build_deployment(30, kind="groupcast",
                                          config=TOPO_CONFIG)
        finally:
            disable_topology()
        assert recorder.epoch == 1
        assert recorder.snapshots[0].kind == "baseline"
        assert recorder.snapshots[0].peer_count == len(deployment.overlay)

    def test_enable_disable_default(self):
        assert get_default_topology_recorder() is None
        recorder = enable_topology(interval_ms=250.0)
        assert get_default_topology_recorder() is recorder
        assert recorder.interval_ms == 250.0
        disable_topology()
        assert get_default_topology_recorder() is None


# ----------------------------------------------------------------------
# Series + export
# ----------------------------------------------------------------------
class TestSeriesAndExport:
    def _small_recorder(self):
        overlay = make_overlay([(1, 2), (2, 3)])
        recorder = TopologyRecorder()
        recorder.watch_overlay(overlay, baseline_at_ms=0.0)
        overlay.remove_link(2, 3)
        recorder.snapshot(100.0)
        return overlay, recorder

    def test_metric_series(self):
        _, recorder = self._small_recorder()
        series = recorder.series("overlay.links")
        assert series.points == [(0.0, 2.0), (100.0, 1.0)]
        assert "overlay.components" in recorder.metric_names()
        assert {s.name for s in recorder.all_series()} == set(
            recorder.metric_names())

    def test_json_artifact_roundtrip(self, tmp_path):
        _, recorder = self._small_recorder()
        path = recorder.export_json(tmp_path / "topology.json")
        artifact = json.loads(path.read_text())
        assert artifact["meta"]["snapshots"] == 2
        assert artifact["meta"]["epochs"] == 1
        assert artifact["final"]["peers"] == [1, 2, 3]
        assert artifact["final"]["links"] == [[1, 2]]
        assert len(artifact["snapshots"]) == 2

    def test_dot_marks_tree_and_broken_edges(self, tmp_path):
        overlay = make_overlay([(1, 2), (2, 3)])
        recorder = TopologyRecorder()
        recorder.watch_overlay(overlay, baseline_at_ms=0.0)
        tree = SpanningTree(root=1)
        tree.graft_chain([2, 1])
        tree.graft_chain([4, 2])
        tree.mark_member(4)
        recorder.watch_tree(7, tree)
        recorder.snapshot(100.0)
        dot = recorder.to_dot()
        assert dot.startswith("graph topology {")
        assert "n1 -- n2 [penwidth=2];" in dot          # tree-carried link
        assert "n2 -- n3 [color=gray];" in dot          # overlay-only link
        assert "n2 -- n4 [style=dashed, color=red];" in dot  # repair debt
        path = recorder.export_dot(tmp_path / "topology.dot")
        assert path.read_text() == dot

    def test_report_section_shape(self):
        _, recorder = self._small_recorder()
        section = recorder.report_section()
        assert section["snapshots"] == 2
        assert section["epochs"] == 1
        assert section["last"]["peer_count"] == 3
        assert any(entry["name"] == "overlay.links"
                   for entry in section["series"])
        assert recorder.watchdog_section() is None

"""Live asyncio loopback integration, checked against the sim twin.

A 10-peer cluster runs the full protocol life-cycle over real UDP
loopback sockets — advertise → subscribe → publish → crash → repair →
publish — using the *identical* node code the simulator runs.  The same
episode is replayed on a :class:`~repro.groupcast.session.GroupSession`
(the deterministic twin) and the two are compared through the
canonicalizing conformance oracle: same tree shape, same member
reachability, same logical message-kind counts, same delivery sets,
all modulo wire-level reordering.

Determinism strategy: the topology is hand-crafted so every peer's
best advertisement path beats its runner-up by >= 14 ms of path-latency
sum, and the live transport *paces* deliveries with the same latency
table the sim uses — loopback jitter (~1-2 ms) cannot flip any
first-arrival decision, so the live NSSA tree converges to the
simulated one on every run.

All waits are deadline-based (transport quiescence / predicate polls),
budgeted by ``REPRO_RUNTIME_BUDGET_S`` (default 30 s for the module).
Marked ``runtime``: excluded from tier-1, run by the CI runtime job.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.config import AnnouncementConfig
from repro.groupcast.session import GroupSession
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo
from repro.runtime import (
    RuntimeCluster,
    assert_equivalent,
    transcript_from_cluster,
    transcript_from_session,
)
from repro.sim.random import spawn_rng

pytestmark = pytest.mark.runtime

#: Wall-clock budget for the whole module's waits (seconds).
BUDGET_S = float(os.environ.get("REPRO_RUNTIME_BUDGET_S", "30"))
#: Per-phase settle deadline; six settles per episode fit the budget.
SETTLE_S = max(1.0, BUDGET_S / 10.0)

GROUP = 1
RENDEZVOUS = 0
MEMBERS = [3, 7, 8, 9]
SEED = 7
ANNOUNCEMENT = AnnouncementConfig(advertisement_ttl=7,
                                  subscription_search_ttl=3)

#: Hand-crafted 10-peer topology.  Path sums from the rendezvous are
#: unique with >= 14 ms separation between any peer's best and
#: second-best advertisement arrival (peer 4: 15 vs 29; peer 9: 32 vs
#: 49), far above loopback jitter.
EDGES = {
    (0, 1): 4.0,
    (0, 2): 9.0,
    (1, 3): 4.0,
    (1, 4): 25.0,
    (2, 4): 6.0,
    (2, 5): 23.0,
    (3, 6): 4.0,
    (4, 7): 6.0,
    (5, 8): 5.0,
    (6, 9): 37.0,
    (7, 9): 11.0,
}
_LATENCY = {frozenset(edge): ms for edge, ms in EDGES.items()}


def latency_ms(a: int, b: int) -> float:
    return _LATENCY[frozenset((a, b))]


def build_overlay() -> OverlayNetwork:
    overlay = OverlayNetwork()
    for peer_id in range(10):
        overlay.add_peer(PeerInfo(
            peer_id=peer_id, capacity=10.0,
            coordinate=np.array([float(peer_id), 0.0])))
    for a, b in EDGES:
        overlay.add_link(a, b)
    return overlay


# ----------------------------------------------------------------------
# The two substrates running the same episode
# ----------------------------------------------------------------------
def run_sim_episode():
    """The deterministic twin; returns (pre_crash, post_repair)."""
    session = GroupSession(
        overlay=build_overlay(),
        latency_fn=latency_ms,
        rng=spawn_rng(SEED, "loopback-sim"),
        announcement=ANNOUNCEMENT,
    )
    session.establish(GROUP, RENDEZVOUS, MEMBERS, scheme="nssa")
    session.publish(GROUP, 9)
    pre_crash = transcript_from_session(session, GROUP)
    session.crash_peer(7)
    session.rejoin(GROUP, 9)
    session.publish(GROUP, 3)
    post_repair = transcript_from_session(session, GROUP)
    return pre_crash, post_repair


async def run_live_episode():
    """The same episode over UDP loopback; returns the transcripts."""
    cluster = RuntimeCluster(
        overlay=build_overlay(),
        seed=SEED,
        announcement=ANNOUNCEMENT,
        latency_fn=latency_ms,
    )
    async with cluster:
        cluster.advertise(GROUP, RENDEZVOUS, scheme="nssa")
        assert await cluster.settle(SETTLE_S), "advertisement stalled"
        cluster.subscribe(GROUP, MEMBERS)
        assert await cluster.settle(SETTLE_S), "subscriptions stalled"
        cluster.publish(GROUP, 9)
        assert await cluster.settle(SETTLE_S), "publish stalled"
        pre_crash = transcript_from_cluster(cluster, GROUP)

        await cluster.crash(7)
        cluster.rejoin(GROUP, 9)
        reattached = await cluster.wait_until(
            lambda: 9 in cluster.members_on_tree(GROUP), SETTLE_S)
        assert reattached, "orphan 9 never reattached after the crash"
        assert await cluster.settle(SETTLE_S), "repair traffic stalled"
        cluster.publish(GROUP, 3)
        assert await cluster.settle(SETTLE_S), "post-repair publish stalled"
        post_repair = transcript_from_cluster(cluster, GROUP)
    return pre_crash, post_repair


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------
def test_loopback_episode_matches_simulated_twin():
    sim_pre, sim_post = run_sim_episode()
    live_pre, live_post = asyncio.run(run_live_episode())
    assert_equivalent(sim_pre, live_pre)
    assert_equivalent(sim_post, live_post)


def test_crash_and_repair_reattach_via_search():
    """After its upstream crashes, the orphan ripple-searches and
    reattaches through the surviving branch (9 -> 6 -> 3)."""

    async def episode():
        cluster = RuntimeCluster(
            overlay=build_overlay(), seed=SEED,
            announcement=ANNOUNCEMENT, latency_fn=latency_ms)
        async with cluster:
            cluster.advertise(GROUP, RENDEZVOUS, scheme="nssa")
            assert await cluster.settle(SETTLE_S)
            cluster.subscribe(GROUP, MEMBERS)
            assert await cluster.settle(SETTLE_S)
            edges = cluster.tree_edges(GROUP)
            assert (9, 7) in edges  # pre-crash: 9 rides through 7

            await cluster.crash(7)
            cluster.rejoin(GROUP, 9)
            assert await cluster.wait_until(
                lambda: 9 in cluster.members_on_tree(GROUP), SETTLE_S)
            assert await cluster.settle(SETTLE_S)
            edges = cluster.tree_edges(GROUP)
            assert (9, 6) in edges  # repaired through the survivor
            assert 7 not in cluster.members_on_tree(GROUP)

            payload_id = cluster.publish(GROUP, 3)
            assert await cluster.settle(SETTLE_S)
            delivered = set(cluster.deliveries(GROUP, payload_id))
            for member in (3, 8, 9):
                assert member in delivered

    asyncio.run(episode())


def test_restarted_peer_comes_back_blank():
    """A restarted peer holds no protocol state until it resubscribes."""

    async def episode():
        cluster = RuntimeCluster(
            overlay=build_overlay(), seed=SEED,
            announcement=ANNOUNCEMENT, latency_fn=latency_ms)
        async with cluster:
            cluster.advertise(GROUP, RENDEZVOUS, scheme="nssa")
            assert await cluster.settle(SETTLE_S)
            cluster.subscribe(GROUP, MEMBERS)
            assert await cluster.settle(SETTLE_S)

            await cluster.crash(7)
            await cluster.restart(7)
            assert not cluster.peers[7].node.groups  # amnesia
            cluster.rejoin(GROUP, 7)
            assert await cluster.wait_until(
                lambda: 7 in cluster.members_on_tree(GROUP), SETTLE_S)

    asyncio.run(episode())

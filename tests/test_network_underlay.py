"""Unit tests for the underlay network: routing and peer attachments."""

import numpy as np
import pytest

from repro.config import TransitStubConfig
from repro.errors import RoutingError, TopologyError
from repro.network.topology import generate_transit_stub
from repro.network.underlay import UnderlayNetwork
from repro.sim.random import spawn_rng


@pytest.fixture()
def underlay(rng):
    config = TransitStubConfig(
        transit_domains=2,
        transit_routers_per_domain=2,
        stub_domains_per_transit=2,
        routers_per_stub=3,
    )
    return generate_transit_stub(config, rng)


@pytest.fixture()
def attached(underlay):
    rng = spawn_rng(9, "attach")
    for peer in range(10):
        underlay.attach_peer(peer, rng)
    return underlay


class TestRouting:
    def test_distance_symmetry(self, underlay):
        n = underlay.router_count
        pairs = [(0, n - 1), (1, n // 2), (2, 3)]
        for a, b in pairs:
            assert underlay.router_distance_ms(a, b) == pytest.approx(
                underlay.router_distance_ms(b, a))

    def test_distance_to_self_is_zero(self, underlay):
        assert underlay.router_distance_ms(4, 4) == 0.0

    def test_triangle_inequality(self, underlay):
        n = underlay.router_count
        for a, b, c in [(0, n // 2, n - 1), (1, 2, 3)]:
            ab = underlay.router_distance_ms(a, b)
            bc = underlay.router_distance_ms(b, c)
            ac = underlay.router_distance_ms(a, c)
            assert ac <= ab + bc + 1e-9

    def test_path_endpoints_and_continuity(self, underlay):
        path = underlay.router_path(0, underlay.router_count - 1)
        assert path[0] == 0
        assert path[-1] == underlay.router_count - 1
        for u, v in zip(path, path[1:]):
            assert underlay.link_latency_ms(u, v) > 0.0

    def test_path_latency_matches_distance(self, underlay):
        a, b = 0, underlay.router_count - 1
        path = underlay.router_path(a, b)
        total = sum(underlay.link_latency_ms(u, v)
                    for u, v in zip(path, path[1:]))
        assert total == pytest.approx(underlay.router_distance_ms(a, b))

    def test_unknown_router_rejected(self, underlay):
        with pytest.raises(RoutingError):
            underlay.router_distances_from(10_000)

    def test_missing_link_rejected(self, underlay):
        # Routers 0 and the last stub router are almost surely not adjacent.
        found_nonadjacent = None
        for candidate in range(underlay.router_count - 1, 0, -1):
            try:
                underlay.link_latency_ms(0, candidate)
            except RoutingError:
                found_nonadjacent = candidate
                break
        assert found_nonadjacent is not None


class TestAttachments:
    def test_attach_and_lookup(self, attached):
        att = attached.attachment(3)
        assert att.peer_id == 3
        assert 0 <= att.router_id < attached.router_count
        assert att.access_latency_ms > 0.0

    def test_double_attach_rejected(self, attached, rng):
        with pytest.raises(TopologyError):
            attached.attach_peer(3, rng)

    def test_unattached_lookup_rejected(self, attached):
        with pytest.raises(TopologyError):
            attached.attachment(999)

    def test_peers_attach_to_stub_routers_only(self, attached):
        from repro.network.topology import RouterLevel

        for peer in range(10):
            att = attached.attachment(peer)
            assert attached.routers[att.router_id].level is RouterLevel.STUB

    def test_peer_distance_symmetry_and_self(self, attached):
        assert attached.peer_distance_ms(0, 0) == 0.0
        assert attached.peer_distance_ms(0, 1) == pytest.approx(
            attached.peer_distance_ms(1, 0))

    def test_peer_distance_includes_access_latency(self, attached):
        a = attached.attachment(0)
        b = attached.attachment(1)
        expected = (a.access_latency_ms
                    + attached.router_distance_ms(a.router_id, b.router_id)
                    + b.access_latency_ms)
        assert attached.peer_distance_ms(0, 1) == pytest.approx(expected)

    def test_vectorized_distances_match_scalar(self, attached):
        others = [1, 2, 3, 0]
        vec = attached.peer_distances_ms(0, others)
        for value, other in zip(vec, others):
            assert value == pytest.approx(attached.peer_distance_ms(0, other))

    def test_vectorized_distances_match_scalar_exhaustively(self, attached):
        """The numpy gather must agree with the scalar path bit-for-bit
        over every attached pair, self-distances included."""
        peers = sorted(att.peer_id for att in
                       (attached.attachment(p) for p in range(10)))
        for source in peers:
            vec = attached.peer_distances_ms(source, peers)
            scalar = [attached.peer_distance_ms(source, other)
                      for other in peers]
            np.testing.assert_array_equal(vec, np.array(scalar))

    def test_vectorized_distances_accept_numpy_ids(self, attached):
        others = np.array([1, 2, 3])
        vec = attached.peer_distances_ms(0, others)
        assert vec.shape == (3,)
        assert (vec > 0.0).all()

    def test_vectorized_distances_empty_list(self, attached):
        assert attached.peer_distances_ms(0, []).shape == (0,)

    def test_vectorized_distances_unattached_peer_rejected(self, attached):
        with pytest.raises(TopologyError):
            attached.peer_distances_ms(0, [1, 999])

    def test_path_links_include_access_links(self, attached):
        links = attached.peer_path_links(0, 1)
        access = [link for link in links if link[0] < 0]
        assert (-0 - 1, attached.attachment(0).router_id) in links
        assert (-1 - 1, attached.attachment(1).router_id) in links
        assert len(access) == 2

    def test_path_links_empty_for_self(self, attached):
        assert attached.peer_path_links(5, 5) == []

    def test_hop_count_positive_between_distinct_peers(self, attached):
        assert attached.peer_hop_count(0, 1) >= 2  # two access links minimum


class TestValidation:
    def test_rejects_disconnected_graph(self):
        from repro.network.topology import Router, RouterLevel

        routers = [Router(i, RouterLevel.STUB, 0) for i in range(4)]
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        with pytest.raises(TopologyError):
            UnderlayNetwork(routers, edges, np.array([0, 1, 2, 3]),
                            (0.5, 1.0))

    def test_rejects_self_loop(self):
        from repro.network.topology import Router, RouterLevel

        routers = [Router(i, RouterLevel.STUB, 0) for i in range(2)]
        with pytest.raises(TopologyError):
            UnderlayNetwork(routers, [(0, 0, 1.0)], np.array([0, 1]),
                            (0.5, 1.0))

    def test_rejects_non_positive_latency(self):
        from repro.network.topology import Router, RouterLevel

        routers = [Router(i, RouterLevel.STUB, 0) for i in range(2)]
        with pytest.raises(TopologyError):
            UnderlayNetwork(routers, [(0, 1, 0.0)], np.array([0, 1]),
                            (0.5, 1.0))

    def test_rejects_empty_edge_list(self):
        from repro.network.topology import Router, RouterLevel

        routers = [Router(0, RouterLevel.STUB, 0)]
        with pytest.raises(TopologyError):
            UnderlayNetwork(routers, [], np.array([0]), (0.5, 1.0))

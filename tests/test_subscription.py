"""Unit tests for subscription management and tree assembly."""

import numpy as np
import pytest

from repro.config import AnnouncementConfig
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.subscription import subscribe_members
from repro.overlay.graph import OverlayNetwork
from repro.overlay.messages import MessageKind, MessageStats
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


def unit_latency(a, b):
    return 1.0


@pytest.fixture()
def line_world():
    overlay = make_overlay([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
    ad = propagate_advertisement(
        overlay, 0, 7, "nssa", unit_latency, spawn_rng(0, "a"))
    return overlay, ad


class TestDirectSubscription:
    def test_receivers_join_via_reverse_path(self, line_world):
        overlay, ad = line_world
        tree, outcome = subscribe_members(
            overlay, ad, [3, 5], unit_latency)
        assert tree.members == frozenset({0, 3, 5})
        assert tree.path_to_root(5) == [5, 4, 3, 2, 1, 0]
        assert not outcome.failed
        assert outcome.success_rate == 1.0

    def test_intermediate_nodes_become_relays(self, line_world):
        overlay, ad = line_world
        tree, _ = subscribe_members(overlay, ad, [4], unit_latency)
        assert tree.relays == frozenset({1, 2, 3})

    def test_direct_subscribers_have_zero_lookup_latency(self, line_world):
        overlay, ad = line_world
        _, outcome = subscribe_members(overlay, ad, [2, 4], unit_latency)
        for record in outcome.records.values():
            assert record.lookup_latency_ms == 0.0
            assert not record.via_search

    def test_subscription_messages_equal_new_hops(self, line_world):
        overlay, ad = line_world
        _, outcome = subscribe_members(overlay, ad, [3], unit_latency)
        assert outcome.records[3].subscription_messages == 3

    def test_rendezvous_subscribes_for_free(self, line_world):
        overlay, ad = line_world
        tree, outcome = subscribe_members(overlay, ad, [0], unit_latency)
        assert outcome.records[0].subscription_messages == 0
        assert tree.members == frozenset({0})

    def test_shared_path_prefix_not_recounted(self, line_world):
        overlay, ad = line_world
        _, outcome = subscribe_members(overlay, ad, [4, 5], unit_latency)
        # 4 pays 4 hops; 5 only pays the one extra hop to reach 4's chain.
        assert outcome.records[4].subscription_messages == 4
        assert outcome.records[5].subscription_messages == 1


class TestRippleSearch:
    def make_world(self, ttl=2):
        """Peer 9 hangs off the line and never receives the TTL-limited ad."""
        overlay = make_overlay(
            [(0, 1), (1, 2), (2, 3), (3, 9)])
        config = AnnouncementConfig(advertisement_ttl=2)
        ad = propagate_advertisement(
            overlay, 0, 7, "nssa", unit_latency, spawn_rng(0, "a"),
            config=config)
        assert 9 not in ad.receipts and 3 not in ad.receipts
        return overlay, ad, AnnouncementConfig(
            advertisement_ttl=2, subscription_search_ttl=ttl)

    def test_search_finds_informed_peer_within_ttl(self):
        overlay, ad, config = self.make_world(ttl=2)
        tree, outcome = subscribe_members(
            overlay, ad, [9], unit_latency, config=config)
        assert 9 in tree.members
        record = outcome.records[9]
        assert record.via_search
        assert record.lookup_latency_ms > 0.0
        tree.validate()

    def test_search_failure_when_ttl_too_small(self):
        overlay, ad, config = self.make_world(ttl=1)
        tree, outcome = subscribe_members(
            overlay, ad, [9], unit_latency, config=config)
        assert outcome.failed == (9,)
        assert outcome.success_rate == 0.0

    def test_search_messages_counted(self):
        overlay, ad, config = self.make_world(ttl=2)
        stats = MessageStats()
        _, outcome = subscribe_members(
            overlay, ad, [9], unit_latency, config=config, stats=stats)
        assert outcome.search_messages > 0
        assert stats.count(MessageKind.SUBSCRIPTION_SEARCH) > 0
        assert stats.count(MessageKind.SEARCH_RESPONSE) == 1

    def test_search_latency_is_round_trip(self):
        overlay, ad, config = self.make_world(ttl=2)
        _, outcome = subscribe_members(
            overlay, ad, [9], unit_latency, config=config)
        # 9 -> 3 -> 2 (informed): out 2 ms, back 2 ms.
        assert outcome.records[9].lookup_latency_ms == pytest.approx(4.0)


class TestEdgeCases:
    def test_member_not_in_overlay_fails(self, line_world):
        overlay, ad = line_world
        _, outcome = subscribe_members(overlay, ad, [77], unit_latency)
        assert outcome.failed == (77,)

    def test_empty_member_list(self, line_world):
        overlay, ad = line_world
        tree, outcome = subscribe_members(overlay, ad, [], unit_latency)
        assert tree.members == frozenset({0})
        assert outcome.success_rate == 1.0

    def test_average_lookup_latency_over_searchers(self):
        overlay = make_overlay([(0, 1), (1, 2), (2, 3), (3, 9)])
        config = AnnouncementConfig(advertisement_ttl=2,
                                    subscription_search_ttl=2)
        ad = propagate_advertisement(
            overlay, 0, 7, "nssa", unit_latency, spawn_rng(0, "a"),
            config=config)
        _, outcome = subscribe_members(
            overlay, ad, [1, 9], unit_latency, config=config)
        assert outcome.average_lookup_latency_ms() == pytest.approx(4.0)
        assert outcome.average_lookup_latency_ms(searchers_only=False) == \
            pytest.approx(2.0)

    def test_tree_validates_after_many_mixed_subscriptions(self):
        rng = spawn_rng(5, "mix")
        edges = set()
        n = 80
        for i in range(1, n):
            j = int(rng.integers(0, i))
            edges.add((j, i))
            extra = int(rng.integers(0, i))
            if extra != i:
                edges.add((min(extra, i), max(extra, i)))
        overlay = make_overlay(sorted(edges))
        config = AnnouncementConfig(advertisement_ttl=3,
                                    subscription_search_ttl=2)
        ad = propagate_advertisement(
            overlay, 0, 7, "ssa", unit_latency, spawn_rng(0, "a"),
            config=config)
        members = [int(m) for m in rng.choice(n, size=30, replace=False)]
        tree, outcome = subscribe_members(
            overlay, ad, members, unit_latency, config=config)
        tree.validate()
        assert len(outcome.records) + len(outcome.failed) == len(set(members))

"""Cross-module integration tests: full pipeline invariants.

These tests exercise the whole stack (underlay -> coordinates -> overlay
-> announcement -> subscription -> dissemination -> metrics) and assert
system-level invariants that no single module can check alone.
"""

import numpy as np
import pytest

from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.dissemination import disseminate
from repro.groupcast.subscription import subscribe_members
from repro.metrics.tree_metrics import link_stress, relative_delay_penalty
from repro.network.multicast import build_ip_multicast_tree
from repro.sim.random import spawn_rng


def establish(deployment, scheme, members, seed=0):
    rng = spawn_rng(seed, "integration")
    rendezvous = deployment.peer_ids()[0]
    advertisement = propagate_advertisement(
        deployment.overlay, rendezvous, 0, scheme,
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, subscription = subscribe_members(
        deployment.overlay, advertisement, members,
        deployment.peer_distance_ms, deployment.config.announcement)
    return advertisement, tree, subscription


class TestTreeEdgesComeFromOverlay:
    """Every spanning-tree edge must be an overlay link (reverse paths)
    or a search graft between overlay-adjacent peers."""

    @pytest.mark.parametrize("scheme", ["ssa", "nssa"])
    def test_tree_edges_are_overlay_links(self, groupcast_deployment,
                                          scheme):
        deployment = groupcast_deployment
        members = deployment.peer_ids()[1:60]
        _, tree, _ = establish(deployment, scheme, members)
        for parent, child in tree.edges():
            assert deployment.overlay.has_link(parent, child)


class TestDelaysAreConsistent:
    def test_esm_delay_decomposes_into_tree_path(self,
                                                 groupcast_deployment):
        deployment = groupcast_deployment
        members = deployment.peer_ids()[1:40]
        _, tree, _ = establish(deployment, "ssa", members)
        source = tree.root
        report = disseminate(tree, source, deployment.underlay)
        for member, delay in report.member_delays_ms.items():
            path = tree.path_to_root(member)
            expected = sum(
                deployment.peer_distance_ms(a, b)
                for a, b in zip(path, path[1:]))
            assert delay == pytest.approx(expected)

    def test_rdp_at_least_one_from_any_source(self, groupcast_deployment):
        deployment = groupcast_deployment
        members = deployment.peer_ids()[1:40]
        _, tree, _ = establish(deployment, "ssa", members)
        for source in sorted(tree.members)[:5]:
            report = disseminate(tree, source, deployment.underlay)
            receivers = [m for m in tree.members if m != source]
            ip_tree = build_ip_multicast_tree(
                deployment.underlay, source, receivers)
            assert relative_delay_penalty(report, ip_tree) >= 1.0 - 1e-9
            assert link_stress(report, ip_tree) >= 1.0 - 1e-9


class TestSchemeComparisons:
    def test_nssa_reaches_at_least_as_many_peers(self,
                                                 groupcast_deployment):
        deployment = groupcast_deployment
        members = deployment.peer_ids()[1:50]
        ssa_ad, _, _ = establish(deployment, "ssa", members)
        nssa_ad, _, _ = establish(deployment, "nssa", members)
        assert len(nssa_ad.receipts) >= len(ssa_ad.receipts)

    def test_nssa_costs_more_messages(self, groupcast_deployment):
        deployment = groupcast_deployment
        members = deployment.peer_ids()[1:50]
        ssa_ad, _, _ = establish(deployment, "ssa", members)
        nssa_ad, _, _ = establish(deployment, "nssa", members)
        assert ssa_ad.messages_sent < nssa_ad.messages_sent

    def test_subscription_success_high_on_groupcast(self,
                                                    groupcast_deployment):
        deployment = groupcast_deployment
        members = deployment.peer_ids()[1:80]
        _, _, subscription = establish(deployment, "ssa", members)
        assert subscription.success_rate > 0.95


class TestStatsConservation:
    def test_middleware_ledger_counts_every_phase(self):
        from repro.groupcast.middleware import GroupCastMiddleware
        from repro.overlay.messages import (
            ADVERTISING_KINDS,
            SUBSCRIPTION_KINDS,
            MessageKind,
        )
        from tests.conftest import SMALL_CONFIG
        from repro.deployment import build_deployment

        deployment = build_deployment(120, kind="groupcast",
                                      config=SMALL_CONFIG)
        middleware = GroupCastMiddleware(deployment)
        group = middleware.create_group(middleware.sample_members(20))
        source = sorted(group.members)[0]
        middleware.publish(group.group_id, source)
        stats = middleware.stats
        assert stats.total(ADVERTISING_KINDS) == \
            group.advertisement.messages_sent
        assert stats.total(SUBSCRIPTION_KINDS) >= \
            group.subscription.subscription_messages
        assert stats.count(MessageKind.PAYLOAD) == \
            group.published[0].overlay_messages


class TestDeterminism:
    def test_full_pipeline_is_reproducible(self):
        from tests.conftest import SMALL_CONFIG
        from repro.deployment import build_deployment

        outcomes = []
        for _ in range(2):
            deployment = build_deployment(100, kind="groupcast",
                                          config=SMALL_CONFIG)
            members = deployment.peer_ids()[1:30]
            advertisement, tree, _ = establish(deployment, "ssa", members,
                                               seed=9)
            report = disseminate(tree, tree.root, deployment.underlay)
            outcomes.append((
                advertisement.messages_sent,
                sorted(tree.edges()),
                report.ip_messages,
            ))
        assert outcomes[0] == outcomes[1]


class TestFailureRecoveryEndToEnd:
    def test_group_survives_relay_failures(self):
        from tests.conftest import SMALL_CONFIG
        from repro.deployment import build_deployment
        from repro.groupcast.middleware import GroupCastMiddleware

        deployment = build_deployment(150, kind="groupcast",
                                      config=SMALL_CONFIG)
        middleware = GroupCastMiddleware(deployment)
        group = middleware.create_group(middleware.sample_members(30))
        rng = np.random.default_rng(4)
        survivors = set(group.members)
        for _ in range(3):
            relays = [r for r in group.tree.relays
                      if group.tree.children(r)]
            if not relays:
                break
            victim = relays[int(rng.integers(len(relays)))]
            report = group.handle_failure(victim, deployment.overlay)
            survivors -= report.lost_members
            group.tree.validate()
        # Whatever survived the churn can still receive payloads.
        source = sorted(group.tree.members)[0]
        report = disseminate(group.tree, source, deployment.underlay)
        reached = set(report.member_delays_ms) | {source}
        assert group.tree.members <= reached

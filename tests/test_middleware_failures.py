"""Tests for middleware-level failure handling across groups."""

import pytest

from repro.deployment import build_deployment
from repro.groupcast.group import CommunicationGroup
from repro.groupcast.middleware import GroupCastMiddleware
from repro.groupcast.repair import RepairReport
from tests.conftest import SMALL_CONFIG


@pytest.fixture()
def middleware():
    deployment = build_deployment(180, kind="groupcast",
                                  config=SMALL_CONFIG)
    return GroupCastMiddleware(deployment)


def test_failure_removes_peer_everywhere(middleware):
    group = middleware.create_group(middleware.sample_members(25))
    relays = [r for r in group.tree.relays if group.tree.children(r)]
    if not relays:
        pytest.skip("no interior relay in this tree")
    victim = relays[0]
    middleware.handle_peer_failure(victim)
    assert victim not in middleware.deployment.overlay
    assert victim not in middleware.deployment.host_cache
    assert victim not in group.tree
    group.tree.validate()


def test_failure_repairs_every_affected_group(middleware):
    groups = [middleware.create_group(middleware.sample_members(25))
              for _ in range(3)]
    # Find a peer forwarding in at least two trees.
    shared = None
    for group in groups:
        for node in group.tree.nodes():
            if node == group.tree.root:
                continue
            count = sum(1 for g in groups if node in g.tree
                        and node != g.rendezvous)
            if count >= 2:
                shared = node
                break
        if shared:
            break
    if shared is None:
        pytest.skip("no shared forwarding peer across groups")
    outcomes = middleware.handle_peer_failure(shared)
    assert len(outcomes) >= 2
    for group in groups:
        group.tree.validate()


def test_unaffected_groups_untouched(middleware):
    group = middleware.create_group(middleware.sample_members(10))
    outsiders = [p for p in middleware.peer_ids()
                 if p not in group.tree]
    victim = outsiders[0]
    edges_before = sorted(group.tree.edges())
    outcomes = middleware.handle_peer_failure(victim)
    assert group.group_id not in outcomes
    assert sorted(group.tree.edges()) == edges_before


def test_rendezvous_failure_reestablishes_group(middleware):
    group = middleware.create_group(middleware.sample_members(20))
    old_id = group.group_id
    rendezvous = group.rendezvous
    members_before = set(group.members) - {rendezvous}
    outcomes = middleware.handle_peer_failure(rendezvous)
    assert old_id in outcomes
    replacement = outcomes[old_id]
    assert isinstance(replacement, CommunicationGroup)
    assert replacement.group_id != old_id
    assert replacement.rendezvous != rendezvous
    # Most members survive into the new group (search may drop a few).
    assert len(set(replacement.members) & members_before) >= \
        0.7 * len(members_before)


def test_repair_reports_returned(middleware):
    group = middleware.create_group(middleware.sample_members(25))
    relays = [r for r in group.tree.relays if group.tree.children(r)]
    if not relays:
        pytest.skip("no interior relay in this tree")
    outcomes = middleware.handle_peer_failure(relays[0])
    report = outcomes[group.group_id]
    assert isinstance(report, RepairReport)


def test_publish_still_works_after_failures(middleware):
    group = middleware.create_group(middleware.sample_members(30))
    for _ in range(3):
        relays = [r for r in group.tree.relays
                  if group.tree.children(r)]
        if not relays:
            break
        middleware.handle_peer_failure(relays[0])
    source = sorted(group.tree.members)[0]
    report = middleware.publish(group.group_id, source)
    reached = set(report.member_delays_ms) | {source}
    assert group.tree.members <= reached


def test_trust_ledger_plumbed_into_advertisements():
    """A middleware built with a trust ledger routes announcements
    around fully distrusted peers."""
    from repro.deployment import build_deployment
    from repro.trust.reputation import ReputationLedger, TrustConfig
    from tests.conftest import SMALL_CONFIG

    deployment = build_deployment(120, kind="groupcast",
                                  config=SMALL_CONFIG)
    ledger = ReputationLedger(TrustConfig(floor=0.0))
    pariah = deployment.peer_ids()[5]
    for observer in deployment.peer_ids()[:20]:
        if observer != pariah:
            for _ in range(40):
                ledger.record(observer, pariah, success=False)
    middleware = GroupCastMiddleware(deployment, trust_ledger=ledger)
    members = [p for p in middleware.sample_members(40) if p != pariah]
    group = middleware.create_group(members)
    # The pariah never serves as anyone's upstream on the ad paths.
    upstreams = {r.upstream
                 for r in group.advertisement.receipts.values()}
    assert pariah not in upstreams

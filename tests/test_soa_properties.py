"""Hypothesis properties of the struct-of-arrays core.

Three invariants pin the scale layer against random churn scripts:

* **Index stability** — store rows are append-only and never reused, so
  a stale row index can never silently alias a different peer (the
  lifecycle contract every vectorized kernel relies on);
* **CSR fidelity** — array snapshots (:meth:`OverlayNetwork.csr` and
  the pooled :class:`SoAStore` adjacency) always round-trip the object
  graph's structure, neighbor order included, under arbitrary mutation
  sequences;
* **Tree repair** — :meth:`TreeArrays.repair_dangling` terminates with
  no on-tree row hanging off a dead or detached upstream.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrays import DynamicAdjacency
from repro.core.overlay_view import SoAOverlayNetwork
from repro.core.store import SoAStore, TreeArrays
from repro.errors import OverlayError
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo

# One churn step: an opcode plus two free integers the interpreter
# maps onto current peers.  Invalid picks (self-links, absent peers)
# degrade to no-ops so every script is executable.
_STEP = st.tuples(
    st.sampled_from(["join", "leave", "link", "unlink", "rejoin"]),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=0, max_value=2**16),
)


def _info(peer_id: int) -> PeerInfo:
    coord = np.asarray(
        [float(peer_id % 7), float(peer_id % 11)], dtype=np.float64)
    return PeerInfo(peer_id, float(1 + peer_id % 5), coord)


class _ChurnInterpreter:
    """Replays one script against an object graph and an array view."""

    def __init__(self) -> None:
        self.overlay = OverlayNetwork()
        self.view = SoAOverlayNetwork()
        self.next_id = 0
        self.departed: list[int] = []

    def _pick(self, token: int) -> int | None:
        ids = self.overlay.peer_ids()
        if not ids:
            return None
        return ids[token % len(ids)]

    def apply(self, op: str, a: int, b: int) -> None:
        if op == "join":
            info = _info(self.next_id)
            self.next_id += 1
            self.overlay.add_peer(info)
            self.view.add_peer(info)
            anchor = self._pick(a)
            if anchor is not None and anchor != info.peer_id:
                self.overlay.add_link(info.peer_id, anchor)
                self.view.add_link(info.peer_id, anchor)
        elif op == "rejoin" and self.departed:
            peer_id = self.departed.pop(a % len(self.departed))
            info = _info(peer_id)
            self.overlay.add_peer(info)
            self.view.add_peer(info)
        elif op == "leave":
            victim = self._pick(a)
            if victim is not None:
                self.overlay.remove_peer(victim)
                self.view.remove_peer(victim)
                self.departed.append(victim)
        elif op in ("link", "unlink"):
            x, y = self._pick(a), self._pick(b)
            if x is None or y is None or x == y:
                return
            if op == "link":
                assert (self.overlay.add_link(x, y)
                        == self.view.add_link(x, y))
            else:
                assert (self.overlay.remove_link(x, y)
                        == self.view.remove_link(x, y))


@settings(max_examples=60, deadline=None)
@given(script=st.lists(_STEP, min_size=1, max_size=50))
def test_view_tracks_object_graph_under_churn(script):
    """Structure equality after every churn script (order included for
    peers added through the view itself; set equality for neighbors,
    whose insertion interleaving legitimately differs on re-links)."""
    sim = _ChurnInterpreter()
    for op, a, b in script:
        sim.apply(op, a, b)
    overlay, view = sim.overlay, sim.view
    assert view.peer_ids() == overlay.peer_ids()
    assert view.edge_count == overlay.edge_count
    for peer in overlay.peer_ids():
        assert set(view.neighbors(peer)) == set(overlay.neighbors(peer))
        assert view.degree(peer) == overlay.degree(peer)
    assert (view.connected_component_sizes()
            == overlay.connected_component_sizes())


@settings(max_examples=60, deadline=None)
@given(script=st.lists(_STEP, min_size=1, max_size=50))
def test_rows_are_never_reused_under_churn(script):
    """No slot aliasing: every (id, incarnation) owns a distinct row,
    departures retire rows forever, and re-joins get fresh rows while
    the retired row still carries the dead incarnation's attributes."""
    sim = _ChurnInterpreter()
    store: SoAStore = sim.view.store
    seen_rows: set[int] = set()
    row_history: list[tuple[int, int]] = []
    live_row: dict[int, int] = {}
    for op, a, b in script:
        before = set(live_row)
        sim.apply(op, a, b)
        after = set(store._live)
        for peer_id in after - before:
            row = store.row_of(peer_id)
            assert row not in seen_rows, "row reused across incarnations"
            seen_rows.add(row)
            row_history.append((peer_id, row))
            live_row[peer_id] = row
        for peer_id in before - after:
            del live_row[peer_id]
    assert store.row_count == len(seen_rows)
    assert len(store._id_of) == store.row_count
    alive = store.live_mask()
    for peer_id, row in row_history:
        # Permanent reverse mapping survives departure...
        assert store.id_of(row) == peer_id
        # ...and liveness of the row matches liveness of the peer only
        # for the *latest* incarnation; earlier rows must read dead.
        if peer_id in store._live and store._live[peer_id] == row:
            assert alive[row]
        else:
            assert not alive[row]
    # Live table agrees with the overlay the interpreter maintained.
    assert store.live_ids() == sim.overlay.peer_ids()


@settings(max_examples=60, deadline=None)
@given(script=st.lists(_STEP, min_size=1, max_size=50))
def test_csr_snapshots_round_trip(script):
    """Both CSR exports reproduce the graph they snapshot, row slices
    in the exact neighbor order the source reported."""
    sim = _ChurnInterpreter()
    for op, a, b in script:
        sim.apply(op, a, b)
    overlay = sim.overlay
    csr, ids = overlay.csr()
    assert csr.node_count == len(ids)
    for row, peer_id in enumerate(ids):
        slice_ids = [ids[int(r)] for r in csr.neighbors(row)]
        assert slice_ids == overlay.neighbors(peer_id)
    # The pooled store snapshot covers retired rows too; live rows must
    # match and retired rows must be empty.
    store = sim.view.store
    pooled = store.snapshot_csr()
    assert pooled.node_count == store.row_count
    live_rows = set(int(r) for r in store.live_rows())
    for row in range(pooled.node_count):
        neighbors = [int(r) for r in pooled.neighbors(row)]
        if row in live_rows:
            peer_id = store.id_of(row)
            assert (store.ids_of(np.asarray(neighbors, dtype=np.int64))
                    == sim.view.neighbors(peer_id))
        else:
            assert neighbors == []


@settings(max_examples=60, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=24),
    parent_seed=st.integers(min_value=0, max_value=2**32 - 1),
    dead=st.sets(st.integers(min_value=1, max_value=23)),
)
def test_repair_dangling_leaves_no_dangling_rows(rows, parent_seed, dead):
    """After repair, every on-tree row's upstream is alive and on-tree,
    the whole structure still validates, and only detached rows lost
    their flags."""
    rng = np.random.default_rng(parent_seed)
    tree = TreeArrays(rows, root=0)
    for row in range(1, rows):
        if rng.random() < 0.8:
            tree.attach(row, int(rng.integers(0, row)))
    alive = np.ones(rows, dtype=bool)
    for row in dead:
        if row < rows:
            alive[row] = False
    before_on_tree = tree.on_tree.copy()
    detached = tree.repair_dangling(alive)
    assert tree.dangling_rows(alive).size == 0
    tree.validate()
    # Detached rows were on the tree before and are fully cleared now.
    assert before_on_tree[detached].all()
    assert not tree.on_tree[detached].any()
    assert (tree.parent[detached] == -1).all()
    # Surviving non-root rows hang off live, on-tree parents.
    survivors = np.nonzero(tree.on_tree)[0]
    survivors = survivors[survivors != tree.root]
    parents = tree.parent[survivors]
    assert (parents >= 0).all()
    assert alive[parents].all()
    assert tree.on_tree[parents].all()


@settings(max_examples=40, deadline=None)
@given(script=st.lists(_STEP, min_size=1, max_size=40),
       compact_at=st.integers(min_value=0, max_value=39))
def test_adjacency_compact_preserves_structure(script, compact_at):
    """`DynamicAdjacency.compact` may run at any point in a churn script
    without disturbing neighbor slices (order included)."""
    sim = _ChurnInterpreter()
    adjacency: DynamicAdjacency = sim.view.store.adjacency
    for step, (op, a, b) in enumerate(script):
        sim.apply(op, a, b)
        if step == compact_at:
            snapshot = {
                row: [int(x) for x in adjacency.neighbors(row)]
                for row in range(sim.view.store.row_count)}
            adjacency.compact()
            for row, expected in snapshot.items():
                assert ([int(x) for x in adjacency.neighbors(row)]
                        == expected)
    for peer in sim.overlay.peer_ids():
        assert set(sim.view.neighbors(peer)) == set(
            sim.overlay.neighbors(peer))


def test_double_join_is_rejected_by_both_backends():
    sim = _ChurnInterpreter()
    sim.apply("join", 0, 0)
    info = _info(0)
    for backend in (sim.overlay, sim.view):
        try:
            backend.add_peer(info)
        except OverlayError:
            continue
        raise AssertionError("duplicate join must raise")

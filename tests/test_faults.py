"""Deterministic fault-injection harness: plans, injection, accounting.

The harness contract under test (see ``repro.faults``):

* a :class:`FaultPlan` is a pure function of its seed, and executing it
  twice yields byte-identical runs (same ``trace_digest``);
* every fault kind actually fires and is counted under ``faults.*``;
* message fates are single-homed — ambient losses, dead letters and
  injected drops land in distinct counters, never double-counted, and
  the transport's conservation identity stays at zero;
* an injector with the empty plan is perfectly transparent: the run is
  bit-identical to one without any injector attached.

The seeded tests read ``REPRO_FAULT_SEEDS`` (comma-separated) so CI can
sweep several schedules; the default keeps the tier-1 run fast.
"""

from __future__ import annotations

import os

import pytest

from repro.config import AnnouncementConfig, GroupCastConfig, TransitStubConfig
from repro.deployment import build_deployment
from repro.errors import FaultPlanError
from repro.experiments import resilience
from repro.faults import (
    CrashEvent,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    PartitionWindow,
    apply_partition,
    heal_partition,
)
from repro.groupcast.session import GroupSession
from repro.obs import Registry, Tracer
from repro.overlay.graph import OverlayNetwork
from repro.overlay.messages import MessageKind
from repro.peers.peer import PeerInfo
from repro.sim.engine import Simulator
from repro.sim.messaging import MessageNetwork
from repro.sim.random import spawn_rng

pytestmark = pytest.mark.faults

FAULT_SEEDS = [int(token) for token in
               os.environ.get("REPRO_FAULT_SEEDS", "7").split(",")
               if token.strip()]

TINY_CONFIG = GroupCastConfig(
    underlay=TransitStubConfig(
        transit_domains=2, transit_routers_per_domain=3,
        stub_domains_per_transit=2, routers_per_stub=3),
    seed=42)


def make_network(registry: Registry, tracer: Tracer | None = None,
                 loss_rate: float = 0.0, seed: int = 1):
    """A two-peer-per-call transport testbed with recording handlers."""
    simulator = Simulator(tracer=tracer)
    network = MessageNetwork(
        simulator, lambda a, b: 5.0, spawn_rng(seed, "net-tests"),
        loss_rate=loss_rate, registry=registry, tracer=tracer)
    inbox: list[tuple[int, object, float]] = []
    for peer in range(4):
        network.register(
            peer, lambda env: inbox.append(
                (env.recipient, env.payload, env.delivered_at_ms)))
    return simulator, network, inbox


# ----------------------------------------------------------------------
# Plan validation and construction
# ----------------------------------------------------------------------
def test_fault_window_validation():
    with pytest.raises(FaultPlanError):
        FaultWindow("mangle", 0.0, 10.0, 0.5)
    with pytest.raises(FaultPlanError):
        FaultWindow("drop", 10.0, 10.0, 0.5)
    with pytest.raises(FaultPlanError):
        FaultWindow("drop", 0.0, 10.0, 0.0)
    with pytest.raises(FaultPlanError):  # non-drop kinds need a magnitude
        FaultWindow("duplicate", 0.0, 10.0, 0.5)
    window = FaultWindow("delay", 5.0, 10.0, 1.0, magnitude_ms=2.0,
                         peers=frozenset({1}))
    assert window.active(5.0) and not window.active(10.0)
    assert window.applies_to(1, 3) and window.applies_to(3, 1)
    assert not window.applies_to(2, 3)


def test_partition_window_validation():
    with pytest.raises(FaultPlanError):
        PartitionWindow(0.0, 10.0, (frozenset({1, 2}),))
    with pytest.raises(FaultPlanError):  # overlapping components
        PartitionWindow(0.0, 10.0, (frozenset({1}), frozenset({1, 2})))
    with pytest.raises(FaultPlanError):
        CrashEvent(at_ms=10.0, peer_id=1, restart_at_ms=5.0)
    with pytest.raises(FaultPlanError):  # partitions must not overlap
        FaultPlan(partitions=(
            PartitionWindow(0.0, 10.0, (frozenset({1}), frozenset({2}))),
            PartitionWindow(5.0, 15.0, (frozenset({1}), frozenset({2})))))
    window = PartitionWindow(0.0, 10.0, (frozenset({1, 2}), frozenset({3})))
    assert window.severed(1, 3) and window.severed(3, 2)
    assert not window.severed(1, 2)
    assert not window.severed(1, 99)  # unassigned peers are unaffected


def test_split_is_a_seeded_disjoint_cover():
    ids = list(range(20))
    first = FaultPlan.split(spawn_rng(3, "split"), ids, 3)
    second = FaultPlan.split(spawn_rng(3, "split"), ids, 3)
    assert first == second  # pure function of the seed
    assert all(component for component in first)
    assert sorted(peer for comp in first for peer in comp) == ids
    with pytest.raises(FaultPlanError):
        FaultPlan.split(spawn_rng(3, "split"), [1], 2)


def test_adversarial_plan_is_pure_in_the_seed():
    ids = list(range(30))
    build = lambda: FaultPlan.adversarial(
        11, ids, start_ms=100.0, duration_ms=4_000.0,
        crash_candidates=ids[5:15], crash_count=2)
    first, second = build(), build()
    assert first == second
    assert not first.is_zero
    assert len(first.crashes) == 2
    assert first.end_ms() <= 100.0 + 4_000.0
    assert FaultPlan.none().is_zero


# ----------------------------------------------------------------------
# Every fault kind fires and is counted
# ----------------------------------------------------------------------
def test_drop_window_counts_every_drop():
    registry = Registry()
    simulator, network, inbox = make_network(registry)
    plan = FaultPlan(windows=(FaultWindow("drop", 0.0, 100.0, 1.0),))
    FaultInjector(plan, spawn_rng(2, "inj"), registry).attach(network)
    for _ in range(10):
        network.send(0, 1, "m", MessageKind.PAYLOAD)
    simulator.run()
    assert registry.counter("faults.dropped").value == 10
    assert network.delivered == 0 and network.lost == 0
    assert network.conservation_gap() == 0


def test_duplicate_window_delivers_two_copies():
    registry = Registry()
    simulator, network, inbox = make_network(registry)
    plan = FaultPlan(windows=(
        FaultWindow("duplicate", 0.0, 100.0, 1.0, magnitude_ms=20.0),))
    FaultInjector(plan, spawn_rng(2, "inj"), registry).attach(network)
    for _ in range(10):
        network.send(0, 1, "m", MessageKind.PAYLOAD)
    simulator.run()
    assert registry.counter("faults.duplicated").value == 10
    assert network.delivered == 20 and len(inbox) == 20
    assert network.sent == 10  # duplicates are not new sends
    assert network.conservation_gap() == 0


def test_delay_window_inflates_transit_time():
    registry = Registry()
    simulator, network, inbox = make_network(registry)
    plan = FaultPlan(windows=(
        FaultWindow("delay", 0.0, 100.0, 1.0, magnitude_ms=50.0),))
    FaultInjector(plan, spawn_rng(2, "inj"), registry).attach(network)
    network.send(0, 1, "m", MessageKind.PAYLOAD)
    simulator.run()
    assert registry.counter("faults.delayed").value == 1
    # base latency 5ms + magnitude 50ms + jitter in [0, 50)
    assert 55.0 <= inbox[0][2] < 105.0


def test_reorder_window_breaks_fifo_order():
    registry = Registry()
    simulator, network, inbox = make_network(registry)
    plan = FaultPlan(windows=(
        FaultWindow("reorder", 0.0, 100.0, 1.0, magnitude_ms=200.0),))
    FaultInjector(plan, spawn_rng(2, "inj"), registry).attach(network)
    for index in range(20):
        network.send(0, 1, index, MessageKind.PAYLOAD)
    simulator.run()
    arrival = [payload for _, payload, _ in inbox]
    assert registry.counter("faults.reordered").value == 20
    assert sorted(arrival) == list(range(20))
    assert arrival != list(range(20))  # FIFO actually broken


def test_partition_severs_cross_component_messages():
    registry = Registry()
    simulator, network, inbox = make_network(registry)
    plan = FaultPlan(partitions=(
        PartitionWindow(0.0, 100.0,
                        (frozenset({0, 1}), frozenset({2, 3}))),))
    injector = FaultInjector(plan, spawn_rng(2, "inj"), registry)
    injector.attach(network)
    network.send(0, 2, "cross", MessageKind.PAYLOAD)
    network.send(0, 1, "local", MessageKind.PAYLOAD)
    simulator.run()
    assert registry.counter("faults.partition_dropped").value == 1
    assert [payload for _, payload, _ in inbox] == ["local"]
    assert network.conservation_gap() == 0
    # After end_ms the same link works again.
    simulator.schedule_at(200.0, lambda: network.send(0, 2, "late", None))
    simulator.run()
    assert [payload for _, payload, _ in inbox] == ["local", "late"]


def test_crash_and_restart_events_fire_callbacks():
    registry = Registry()
    simulator, network, inbox = make_network(registry)
    plan = FaultPlan(crashes=(
        CrashEvent(at_ms=10.0, peer_id=3, restart_at_ms=50.0),))
    injector = FaultInjector(plan, spawn_rng(2, "inj"), registry)
    injector.attach(network)
    log: list[tuple[str, int]] = []
    injector.arm(on_crash=lambda p: log.append(("crash", p)),
                 on_restart=lambda p: log.append(("restart", p)))
    simulator.schedule_at(
        20.0, lambda: log.append(("down", sorted(injector.crashed_peers))))
    simulator.run()
    assert log == [("crash", 3), ("down", [3]), ("restart", 3)]
    assert registry.counter("faults.crashes").value == 1
    assert registry.counter("faults.restarts").value == 1
    assert injector.crashed_peers == frozenset()


def test_double_attach_is_rejected():
    registry = Registry()
    _, network, _ = make_network(registry)
    plan = FaultPlan.none()
    FaultInjector(plan, spawn_rng(2, "a"), registry).attach(network)
    with pytest.raises(FaultPlanError):
        FaultInjector(plan, spawn_rng(2, "b"), registry).attach(network)


def test_apply_and_heal_partition_roundtrip():
    overlay = OverlayNetwork()
    for peer in range(6):
        overlay.add_peer(PeerInfo(peer, 10.0, (0.0, 0.0)))
    for a, b in [(0, 1), (1, 2), (3, 4), (4, 5), (2, 3), (0, 5)]:
        overlay.add_link(a, b)
    components = (frozenset({0, 1, 2}), frozenset({3, 4, 5}))
    severed = apply_partition(overlay, components)
    assert sorted(tuple(sorted(edge)) for edge in severed) == \
        [(0, 5), (2, 3)]
    assert len(overlay.connected_component_sizes()) == 2
    assert heal_partition(overlay, severed) == 2
    assert overlay.connected_component_sizes() == [6]


# ----------------------------------------------------------------------
# Loss accounting is single-homed (regression)
# ----------------------------------------------------------------------
def test_loss_fates_are_single_homed_for_a_seeded_run():
    registry = Registry()
    simulator, network, inbox = make_network(registry, loss_rate=0.2,
                                             seed=9)
    plan = FaultPlan(windows=(
        FaultWindow("drop", 0.0, 1.0, 0.5),))
    FaultInjector(plan, spawn_rng(9, "inj"), registry).attach(network)
    network.unregister(3)  # messages to 3 dead-letter on arrival
    for index in range(100):
        network.send(0, 1 if index % 2 else 3, index, MessageKind.PAYLOAD)
    simulator.run()
    # Pinned realization of seed 9: every message has exactly one fate.
    assert network.sent == 100
    assert network.lost == 12
    assert registry.counter("faults.dropped").value == 49
    assert network.dead_lettered == 19
    assert network.delivered == 20
    assert (network.lost + network.dead_lettered + network.delivered
            + registry.counter("faults.dropped").value) == network.sent
    # Per-kind breakdowns agree with the totals.
    assert registry.counter("net.lost.payload").value == network.lost
    assert registry.counter(
        "net.dead_lettered.payload").value == network.dead_lettered
    assert network.conservation_gap() == 0


def test_ambient_loss_and_injected_drop_never_double_count():
    registry = Registry()
    simulator, network, _ = make_network(registry, loss_rate=0.5, seed=4)
    plan = FaultPlan(windows=(FaultWindow("drop", 0.0, 1.0, 1.0),))
    FaultInjector(plan, spawn_rng(4, "inj"), registry).attach(network)
    for _ in range(60):
        network.send(0, 1, "m", MessageKind.PAYLOAD)
    simulator.run()
    # The certain drop window consumes every ambient survivor; the two
    # counters partition the sends exactly.
    assert network.delivered == 0
    assert (network.lost
            + registry.counter("faults.dropped").value) == network.sent
    assert network.conservation_gap() == 0


# ----------------------------------------------------------------------
# Determinism and transparency
# ----------------------------------------------------------------------
def _session_under_plan(seed: int, plan_builder) -> tuple[str, dict]:
    """Run a small session under a plan; return (digest, counters)."""
    deployment = build_deployment(80, kind="groupcast", config=TINY_CONFIG)
    registry = Registry()
    tracer = Tracer()
    session = GroupSession(
        deployment.overlay, deployment.peer_distance_ms,
        spawn_rng(seed, "faults-session"),
        announcement=AnnouncementConfig(advertisement_ttl=6,
                                        subscription_search_ttl=3),
        registry=registry, tracer=tracer)
    ids = deployment.peer_ids()
    members = [ids[i] for i in range(0, 32, 2)]
    injector = None
    if plan_builder is not None:
        plan = plan_builder(ids)
        injector = FaultInjector(plan, spawn_rng(seed, "faults-inj"),
                                 registry, tracer)
        injector.attach(session.network)
        injector.arm(session.simulator)
    session.establish(1, members[0], members)
    session.publish(1, members[0])
    counters = dict(registry.counters())
    if injector is not None:
        assert session.network.conservation_gap() == 0
    return tracer.trace_digest(), counters


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_seeded_schedule_is_byte_reproducible(seed):
    builder = lambda ids: FaultPlan.adversarial(
        seed, ids, start_ms=0.0, duration_ms=400.0)
    first_digest, first_counters = _session_under_plan(seed, builder)
    second_digest, second_counters = _session_under_plan(seed, builder)
    assert first_digest == second_digest
    assert first_counters == second_counters


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_zero_fault_injector_is_transparent(seed):
    bare_digest, bare_counters = _session_under_plan(seed, None)
    zero_digest, zero_counters = _session_under_plan(
        seed, lambda ids: FaultPlan.none())
    assert zero_digest == bare_digest
    for name, value in bare_counters.items():
        assert zero_counters.get(name) == value
    assert all(value == 0 for name, value in zero_counters.items()
               if name.startswith("faults."))


# ----------------------------------------------------------------------
# The acceptance scenario: adversarial run, all policies, green, twice
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_adversarial_scenario_green_and_reproducible(seed):
    first = resilience.run_adversarial(
        peer_count=100, members_count=24, seed=seed)
    second = resilience.run_adversarial(
        peer_count=100, members_count=24, seed=seed)
    assert [row[0] for row in first.rows] == ["none", "repair",
                                             "replication"]
    for row in first.rows:
        assert row[7] == 0, f"policy {row[0]} violated invariants"
        assert row[4] >= 1  # crashes actually happened
    # Bit-identical digests across the two runs, per policy.
    assert [row[-1] for row in first.rows] == \
        [row[-1] for row in second.rows]

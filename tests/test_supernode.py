"""Unit + integration tests for the two-tier supernode overlay."""

import numpy as np
import pytest

from repro.config import ConfigurationError
from repro.errors import OverlayError
from repro.overlay.supernode import (
    SupernodeConfig,
    TwoTierOverlay,
    build_two_tier_group_tree,
    build_two_tier_overlay,
)
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def make_infos(count, rng, strong_every=5):
    infos = []
    for i in range(count):
        capacity = 1000.0 if i % strong_every == 0 else 10.0
        infos.append(PeerInfo(i, capacity, rng.uniform(0, 100, size=2)))
    return infos


@pytest.fixture()
def two_tier(rng):
    infos = make_infos(100, rng)
    return build_two_tier_overlay(infos, spawn_rng(0, "tt")), infos


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupernodeConfig(capacity_threshold=0.0)
        with pytest.raises(ConfigurationError):
            SupernodeConfig(min_supernode_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SupernodeConfig(leaf_links=0)


class TestElectionAndAttachment:
    def test_high_capacity_peers_become_supernodes(self, two_tier):
        overlay, infos = two_tier
        for info in infos:
            if info.capacity >= 100.0:
                assert info.peer_id in overlay.supernodes
            else:
                assert info.peer_id not in overlay.supernodes

    def test_core_is_connected(self, two_tier):
        overlay, _ = two_tier
        assert overlay.core.is_connected()
        assert overlay.core.peer_count == len(overlay.supernodes)

    def test_every_leaf_assigned(self, two_tier):
        overlay, infos = two_tier
        leaves = [i.peer_id for i in infos
                  if i.peer_id not in overlay.supernodes]
        assert overlay.leaf_count == len(leaves)
        for leaf in leaves:
            assert overlay.supernode_of(leaf) in overlay.supernodes

    def test_supernode_of_self(self, two_tier):
        overlay, _ = two_tier
        supernode = next(iter(overlay.supernodes))
        assert overlay.supernode_of(supernode) == supernode

    def test_leaves_of_inverse_of_assignments(self, two_tier):
        overlay, _ = two_tier
        for supernode in overlay.supernodes:
            for leaf in overlay.leaves_of(supernode):
                assert overlay.supernode_of(leaf) == supernode

    def test_unknown_peer_rejected(self, two_tier):
        overlay, _ = two_tier
        with pytest.raises(OverlayError):
            overlay.supernode_of(10_000)
        with pytest.raises(OverlayError):
            overlay.leaves_of(10_000)

    def test_leaves_attach_to_nearby_supernodes(self, rng):
        """Mean leaf->supernode distance beats random assignment."""
        infos = make_infos(200, rng)
        overlay = build_two_tier_overlay(infos, spawn_rng(1, "tt"))
        by_id = {i.peer_id: i for i in infos}
        supernode_list = sorted(overlay.supernodes)
        actual, random_baseline = [], []
        check_rng = spawn_rng(2, "check")
        for leaf, supernode in overlay.assignments.items():
            actual.append(by_id[leaf].coordinate_distance(by_id[supernode]))
            random_sn = supernode_list[
                int(check_rng.integers(len(supernode_list)))]
            random_baseline.append(
                by_id[leaf].coordinate_distance(by_id[random_sn]))
        assert np.mean(actual) < np.mean(random_baseline)

    def test_capacity_sparse_population_promotes_top_peers(self, rng):
        infos = [PeerInfo(i, 1.0 + i * 0.01, rng.uniform(0, 10, size=2))
                 for i in range(50)]
        overlay = build_two_tier_overlay(infos, spawn_rng(3, "tt"))
        assert len(overlay.supernodes) >= 2
        # The promoted supernodes are the most capable peers.
        top = {i.peer_id for i in sorted(
            infos, key=lambda x: x.capacity, reverse=True)[
                :len(overlay.supernodes)]}
        assert overlay.supernodes == frozenset(top)

    def test_too_few_peers_rejected(self, rng):
        with pytest.raises(OverlayError):
            build_two_tier_overlay(make_infos(1, rng), spawn_rng(0, "tt"))


class TestTwoTierGroups:
    def coordinate_latency(self, infos):
        by_id = {i.peer_id: i for i in infos}

        def latency(a, b):
            return max(by_id[a].coordinate_distance(by_id[b]), 0.01)

        return latency

    def test_group_tree_covers_members(self, two_tier):
        overlay, infos = two_tier
        rng = spawn_rng(4, "group")
        members = [int(m) for m in rng.choice(100, size=30, replace=False)]
        tree = build_two_tier_group_tree(
            overlay, members, members[0],
            self.coordinate_latency(infos), rng)
        assert set(members) <= set(tree.members)

    def test_leaves_hang_under_their_supernodes(self, two_tier):
        overlay, infos = two_tier
        rng = spawn_rng(5, "group")
        members = [int(m) for m in rng.choice(100, size=25, replace=False)]
        tree = build_two_tier_group_tree(
            overlay, members, members[0],
            self.coordinate_latency(infos), rng)
        for member in members:
            if member in overlay.supernodes:
                continue
            assert tree.parent(member) == overlay.supernode_of(member)

    def test_interior_tree_nodes_are_supernodes(self, two_tier):
        overlay, infos = two_tier
        rng = spawn_rng(6, "group")
        members = [int(m) for m in rng.choice(100, size=25, replace=False)]
        tree = build_two_tier_group_tree(
            overlay, members, members[0],
            self.coordinate_latency(infos), rng)
        for node in tree.nodes():
            if tree.children(node):
                assert node in overlay.supernodes


class TestMultiHoming:
    def test_leaf_links_create_backups(self, rng):
        infos = make_infos(100, rng)
        overlay = build_two_tier_overlay(
            infos, spawn_rng(7, "tt"),
            SupernodeConfig(leaf_links=2))
        multihomed = [leaf for leaf in overlay.assignments
                      if overlay.backups_of(leaf)]
        assert multihomed, "expected multi-homed leaves"
        for leaf in multihomed:
            assert overlay.supernode_of(leaf) not in \
                overlay.backups_of(leaf)

    def test_fail_over_promotes_backup(self, rng):
        infos = make_infos(100, rng)
        overlay = build_two_tier_overlay(
            infos, spawn_rng(8, "tt"),
            SupernodeConfig(leaf_links=2))
        leaf = next(l for l in overlay.assignments
                    if overlay.backups_of(l))
        old_primary = overlay.supernode_of(leaf)
        backup = overlay.backups_of(leaf)[0]
        promoted = overlay.fail_over(leaf)
        assert promoted == backup
        assert overlay.supernode_of(leaf) == backup
        assert overlay.supernode_of(leaf) != old_primary

    def test_fail_over_without_backup_rejected(self, rng):
        infos = make_infos(60, rng)
        overlay = build_two_tier_overlay(
            infos, spawn_rng(9, "tt"),
            SupernodeConfig(leaf_links=1))
        leaf = next(iter(overlay.assignments))
        with pytest.raises(OverlayError):
            overlay.fail_over(leaf)

    def test_backups_of_validation(self, rng):
        infos = make_infos(60, rng)
        overlay = build_two_tier_overlay(infos, spawn_rng(10, "tt"))
        supernode = next(iter(overlay.supernodes))
        with pytest.raises(OverlayError):
            overlay.backups_of(supernode)
        with pytest.raises(OverlayError):
            overlay.backups_of(10_000)

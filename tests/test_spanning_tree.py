"""Unit + property tests for the spanning-tree structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TreeError
from repro.groupcast.spanning_tree import SpanningTree


@pytest.fixture()
def tree():
    t = SpanningTree(root=0)
    t.graft_chain([2, 1, 0])   # 0 <- 1 <- 2
    t.mark_member(2)
    t.graft_chain([3, 1])      # 1 <- 3
    t.mark_member(3)
    return t


class TestGrowth:
    def test_root_initial_state(self):
        t = SpanningTree(root=9)
        assert 9 in t
        assert t.parent(9) is None
        assert t.members == frozenset({9})
        assert t.node_count == 1

    def test_graft_builds_parent_chain(self, tree):
        assert tree.parent(2) == 1
        assert tree.parent(1) == 0
        assert sorted(tree.children(1)) == [2, 3]

    def test_relays_vs_members(self, tree):
        assert tree.members == frozenset({0, 2, 3})
        assert tree.relays == frozenset({1})

    def test_graft_returns_new_edge_count(self):
        t = SpanningTree(root=0)
        assert t.graft_chain([2, 1, 0]) == 2
        assert t.graft_chain([3, 1]) == 1
        assert t.graft_chain([3, 1]) == 0  # already present

    def test_graft_requires_anchor_in_tree(self):
        t = SpanningTree(root=0)
        with pytest.raises(TreeError):
            t.graft_chain([2, 1])

    def test_empty_chain_rejected(self):
        with pytest.raises(TreeError):
            SpanningTree(root=0).graft_chain([])

    def test_conflicting_graft_keeps_first_parent(self, tree):
        # Node 2 already hangs under 1; a chain via 3 must not re-parent it.
        tree.graft_chain([2, 3, 1])
        assert tree.parent(2) == 1
        tree.validate()

    def test_mark_member_requires_presence(self, tree):
        with pytest.raises(TreeError):
            tree.mark_member(99)

    def test_unmark_member(self, tree):
        tree.unmark_member(2)
        assert 2 in tree.relays
        with pytest.raises(TreeError):
            tree.unmark_member(0)


class TestQueries:
    def test_path_to_root(self, tree):
        assert tree.path_to_root(2) == [2, 1, 0]
        assert tree.path_to_root(0) == [0]

    def test_depth_and_height(self, tree):
        assert tree.depth(2) == 2
        assert tree.depth(0) == 0
        assert tree.height() == 2

    def test_tree_degree(self, tree):
        assert tree.tree_degree(1) == 3  # parent 0 + children {2, 3}
        assert tree.tree_degree(0) == 1
        assert tree.tree_degree(2) == 1

    def test_edges_enumeration(self, tree):
        assert sorted(tree.edges()) == [(0, 1), (1, 2), (1, 3)]

    def test_node_stress_counts_non_leaves_only(self, tree):
        # Non-leaf nodes: 0 (1 child), 1 (2 children) -> mean 1.5.
        assert tree.node_stress() == pytest.approx(1.5)

    def test_workloads(self, tree):
        loads = tree.workloads()
        assert loads[1] == 2
        assert loads[0] == 1
        assert loads[2] == 0

    def test_tree_adjacency_is_symmetric(self, tree):
        adjacency = tree.tree_adjacency()
        for node, neighbors in adjacency.items():
            for neighbor in neighbors:
                assert node in adjacency[neighbor]


class TestMutation:
    def test_remove_leaf(self, tree):
        tree.remove_leaf(2)
        assert 2 not in tree
        assert tree.children(1) == [3]

    def test_remove_non_leaf_rejected(self, tree):
        with pytest.raises(TreeError):
            tree.remove_leaf(1)

    def test_remove_root_rejected(self):
        t = SpanningTree(root=0)
        with pytest.raises(TreeError):
            t.remove_leaf(0)

    def test_prune_relays_drops_dead_branches(self):
        t = SpanningTree(root=0)
        t.graft_chain([3, 2, 1, 0])  # long relay chain
        t.mark_member(3)
        t.unmark_member(3)
        removed = t.prune_relays()
        assert removed == 3
        assert t.node_count == 1

    def test_prune_keeps_branches_serving_members(self, tree):
        assert tree.prune_relays() == 0
        assert 1 in tree


class TestValidation:
    def test_valid_tree_passes(self, tree):
        tree.validate()

    def test_cycle_detection_via_guard(self):
        t = SpanningTree(root=0)
        t.graft_chain([2, 1, 0])
        # Corrupt internals to create a cycle (white-box).
        t._parent[1] = 2
        t._children[2].add(1)
        with pytest.raises(TreeError):
            t.validate()


@given(
    st.lists(st.integers(min_value=1, max_value=30), min_size=1,
             max_size=25, unique=True),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_random_grafts_always_valid(nodes, seed):
    """Random chains through known nodes keep the structure a valid tree."""
    import numpy as np

    rng = np.random.default_rng(seed)
    tree = SpanningTree(root=0)
    in_tree = [0]
    for node in nodes:
        anchor = int(rng.choice(in_tree))
        if node in tree:
            tree.mark_member(node)
            continue
        tree.graft_chain([node, anchor])
        tree.mark_member(node)
        in_tree.append(node)
    tree.validate()
    assert tree.node_count == len(in_tree)
    # Every member's path reaches the root without cycles.
    for node in in_tree:
        assert tree.path_to_root(node)[-1] == 0

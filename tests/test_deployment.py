"""Integration tests for deployment assembly (all three overlay kinds)."""

import numpy as np
import pytest

from repro.config import GroupCastConfig
from repro.deployment import build_deployment
from repro.errors import ConfigurationError
from repro.metrics.overlay_metrics import average_neighbor_distance_ms
from repro.peers.capacity import PAPER_CAPACITY_DISTRIBUTION
from tests.conftest import SMALL_CONFIG


class TestBuild:
    def test_groupcast_deployment_complete(self, groupcast_deployment):
        d = groupcast_deployment
        assert d.peer_count == 250
        assert d.overlay.is_connected()
        assert len(d.join_results) == 250
        assert len(d.space) == 250
        assert d.underlay.attached_peer_count == 250

    def test_plod_deployment_complete(self, plod_deployment):
        assert plod_deployment.peer_count == 250
        assert plod_deployment.overlay.is_connected()
        assert not plod_deployment.join_results

    def test_random_deployment_complete(self, random_deployment):
        assert random_deployment.peer_count == 250
        assert random_deployment.overlay.is_connected()

    def test_capacities_follow_table1_levels(self, groupcast_deployment):
        levels = set(PAPER_CAPACITY_DISTRIBUTION.levels)
        for info in groupcast_deployment.overlay.peers():
            assert info.capacity in levels

    def test_host_cache_populated(self, groupcast_deployment):
        assert len(groupcast_deployment.host_cache) > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            build_deployment(10, kind="chord", config=SMALL_CONFIG)

    def test_too_few_peers_rejected(self):
        with pytest.raises(ConfigurationError):
            build_deployment(1, config=SMALL_CONFIG)

    def test_determinism_per_seed(self):
        a = build_deployment(60, kind="groupcast", config=SMALL_CONFIG)
        b = build_deployment(60, kind="groupcast", config=SMALL_CONFIG)
        assert sorted(a.overlay.edges()) == sorted(b.overlay.edges())

    def test_seed_override_changes_result(self):
        a = build_deployment(60, kind="groupcast", config=SMALL_CONFIG)
        b = build_deployment(60, kind="groupcast", config=SMALL_CONFIG,
                             seed=999)
        assert sorted(a.overlay.edges()) != sorted(b.overlay.edges())


class TestDistances:
    def test_peer_distance_delegates_to_underlay(self, groupcast_deployment):
        d = groupcast_deployment
        assert d.peer_distance_ms(0, 1) == \
            d.underlay.peer_distance_ms(0, 1)

    def test_coordinate_distance_approximates_true(self,
                                                   groupcast_deployment):
        d = groupcast_deployment
        rng = np.random.default_rng(0)
        errors = []
        for _ in range(100):
            a, b = rng.choice(250, size=2, replace=False)
            true = d.peer_distance_ms(int(a), int(b))
            est = d.coordinate_distance_ms(int(a), int(b))
            errors.append(abs(est - true) / max(true, 1e-9))
        assert float(np.median(errors)) < 0.5


class TestPaperShapes:
    def test_groupcast_neighbors_closer_than_plod(
            self, groupcast_deployment, plod_deployment):
        """The headline of Figures 9-10."""
        gc = average_neighbor_distance_ms(
            groupcast_deployment.overlay, groupcast_deployment.underlay)
        pl = average_neighbor_distance_ms(
            plod_deployment.overlay, plod_deployment.underlay)
        assert gc[gc > 0].mean() < 0.7 * pl[pl > 0].mean()

    def test_powerful_peers_form_high_degree_core(self,
                                                  groupcast_deployment):
        overlay = groupcast_deployment.overlay
        strong, weak = [], []
        for info in overlay.peers():
            degree = overlay.degree(info.peer_id)
            if info.capacity >= 100.0:
                strong.append(degree)
            elif info.capacity <= 10.0:
                weak.append(degree)
        assert np.mean(strong) > np.mean(weak)

    def test_join_protocol_message_overhead_linear(self):
        small = build_deployment(60, kind="groupcast", config=SMALL_CONFIG)
        large = build_deployment(180, kind="groupcast", config=SMALL_CONFIG)
        ratio = large.stats.total() / small.stats.total()
        assert 2.0 < ratio < 5.0  # ~linear in peer count

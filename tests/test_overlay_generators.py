"""Unit tests for the PLOD and random overlay baselines."""

import numpy as np
import pytest

from repro.errors import OverlayError
from repro.metrics.overlay_metrics import degree_histogram, power_law_fit
from repro.overlay.gnutella import generate_random_overlay
from repro.overlay.plod import generate_plod_overlay
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def make_peers(count):
    return [PeerInfo(peer_id=i, capacity=10.0,
                     coordinate=np.array([float(i), 0.0]))
            for i in range(count)]


class TestPLOD:
    def test_connected(self):
        overlay = generate_plod_overlay(make_peers(300), spawn_rng(1, "p"))
        assert overlay.is_connected()

    def test_mean_degree_near_target(self):
        overlay = generate_plod_overlay(
            make_peers(500), spawn_rng(1, "p"), mean_degree=6.0)
        mean = 2 * overlay.edge_count / 500
        assert 3.5 < mean < 7.5

    def test_degree_distribution_is_heavy_tailed(self):
        overlay = generate_plod_overlay(make_peers(800), spawn_rng(2, "p"))
        values, counts = degree_histogram(overlay)
        exponent, r2 = power_law_fit(values, counts)
        assert exponent > 0.5
        assert values.max() > 5 * np.median(
            np.repeat(values, counts))

    def test_max_degree_cap_respected(self):
        overlay = generate_plod_overlay(
            make_peers(400), spawn_rng(3, "p"), max_degree=10)
        # Connectivity patching may add at most a handful of extra links.
        assert overlay.degrees().max() <= 12

    def test_every_peer_has_a_link(self):
        overlay = generate_plod_overlay(make_peers(200), spawn_rng(4, "p"))
        assert (overlay.degrees() >= 1).all()

    def test_too_few_peers_rejected(self):
        with pytest.raises(OverlayError):
            generate_plod_overlay(make_peers(1), spawn_rng(0, "p"))

    def test_invalid_parameters_rejected(self):
        peers = make_peers(10)
        with pytest.raises(OverlayError):
            generate_plod_overlay(peers, spawn_rng(0, "p"), alpha=0.0)
        with pytest.raises(OverlayError):
            generate_plod_overlay(peers, spawn_rng(0, "p"), mean_degree=0.0)
        with pytest.raises(OverlayError):
            generate_plod_overlay(peers, spawn_rng(0, "p"), max_degree=0)


class TestRandomOverlay:
    def test_connected(self):
        overlay = generate_random_overlay(make_peers(200), spawn_rng(5, "g"))
        assert overlay.is_connected()

    def test_degree_at_least_target_for_late_joiners(self):
        overlay = generate_random_overlay(
            make_peers(100), spawn_rng(5, "g"), target_degree=4)
        # Every peer after the 4th connects to exactly 4 others.
        degrees = overlay.degrees()
        assert degrees.min() >= 1
        assert np.median(degrees) >= 4

    def test_no_capacity_bias(self):
        peers = [PeerInfo(i, 1.0 if i % 2 else 10000.0,
                          np.array([float(i), 0.0])) for i in range(200)]
        overlay = generate_random_overlay(peers, spawn_rng(6, "g"))
        strong = [overlay.degree(i) for i in range(0, 200, 2)]
        weak = [overlay.degree(i) for i in range(1, 200, 2)]
        # Uniform attachment: no systematic degree advantage (within 25 %).
        assert abs(np.mean(strong) - np.mean(weak)) < 0.25 * np.mean(weak)

    def test_invalid_target_rejected(self):
        with pytest.raises(OverlayError):
            generate_random_overlay(make_peers(5), spawn_rng(0, "g"),
                                    target_degree=0)

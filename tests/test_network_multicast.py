"""Unit tests for the IP multicast reference model."""

import pytest

from repro.config import TransitStubConfig
from repro.errors import GroupError
from repro.network.multicast import build_ip_multicast_tree
from repro.network.topology import generate_transit_stub
from repro.sim.random import spawn_rng


@pytest.fixture()
def attached_underlay():
    config = TransitStubConfig(
        transit_domains=2,
        transit_routers_per_domain=2,
        stub_domains_per_transit=2,
        routers_per_stub=3,
    )
    underlay = generate_transit_stub(config, spawn_rng(4, "topo"))
    rng = spawn_rng(4, "attach")
    for peer in range(20):
        underlay.attach_peer(peer, rng)
    return underlay


def test_delays_match_unicast_shortest_paths(attached_underlay):
    tree = build_ip_multicast_tree(attached_underlay, 0, list(range(1, 8)))
    for peer, delay in tree.delays_ms.items():
        assert delay == pytest.approx(
            attached_underlay.peer_distance_ms(0, peer))


def test_source_excluded_from_subscribers(attached_underlay):
    tree = build_ip_multicast_tree(attached_underlay, 0, [0, 1, 2])
    assert 0 not in tree.subscribers
    assert set(tree.subscribers) == {1, 2}


def test_link_count_no_larger_than_sum_of_paths(attached_underlay):
    receivers = list(range(1, 10))
    tree = build_ip_multicast_tree(attached_underlay, 0, receivers)
    total_path_links = sum(
        len(attached_underlay.peer_path_links(0, r)) for r in receivers)
    assert tree.link_count <= total_path_links
    assert tree.link_count > 0


def test_merging_shares_links_for_colocated_receivers(attached_underlay):
    """Multicast must beat unicast replication when receivers share paths."""
    receivers = list(range(1, 20))
    tree = build_ip_multicast_tree(attached_underlay, 0, receivers)
    total_path_links = sum(
        len(attached_underlay.peer_path_links(0, r)) for r in receivers)
    assert tree.link_count < total_path_links


def test_average_and_max_delay(attached_underlay):
    tree = build_ip_multicast_tree(attached_underlay, 0, [1, 2, 3])
    delays = list(tree.delays_ms.values())
    assert tree.average_delay_ms == pytest.approx(sum(delays) / 3)
    assert tree.max_delay_ms == pytest.approx(max(delays))


def test_no_receivers_rejected(attached_underlay):
    with pytest.raises(GroupError):
        build_ip_multicast_tree(attached_underlay, 0, [0])


def test_single_receiver_equals_unicast(attached_underlay):
    tree = build_ip_multicast_tree(attached_underlay, 0, [5])
    assert tree.link_count == len(attached_underlay.peer_path_links(0, 5))
    assert tree.average_delay_ms == pytest.approx(
        attached_underlay.peer_distance_ms(0, 5))

"""Unit tests for the utility-aware join protocol."""

import numpy as np
import pytest

from repro.config import OverlayConfig
from repro.overlay.bootstrap import UtilityBootstrap
from repro.overlay.graph import OverlayNetwork
from repro.overlay.hostcache import HostCacheServer
from repro.overlay.messages import MessageKind, MessageStats
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def make_info(peer_id, capacity=10.0, x=None):
    x = float(peer_id) if x is None else x
    return PeerInfo(peer_id=peer_id, capacity=capacity,
                    coordinate=np.array([x, 0.0]))


@pytest.fixture()
def bootstrap():
    overlay = OverlayNetwork()
    cache = HostCacheServer(max_entries=64, dimensions=2,
                            rng=spawn_rng(0, "hc"))
    return UtilityBootstrap(
        overlay=overlay,
        host_cache=cache,
        rng=spawn_rng(0, "proto"),
        stats=MessageStats(),
    )


def grow(bootstrap, count, capacity_fn=lambda i: 10.0):
    results = []
    for i in range(count):
        results.append(bootstrap.join(make_info(i, capacity_fn(i))))
    return results


class TestJoin:
    def test_first_peer_joins_alone(self, bootstrap):
        result = bootstrap.join(make_info(0))
        assert result.degree == 0
        assert 0 in bootstrap.overlay
        assert 0 in bootstrap.host_cache

    def test_second_peer_connects_to_first(self, bootstrap):
        grow(bootstrap, 2)
        assert bootstrap.overlay.has_link(0, 1)

    def test_network_stays_connected(self, bootstrap):
        grow(bootstrap, 60)
        assert bootstrap.overlay.is_connected()

    def test_all_joiners_get_at_least_one_link(self, bootstrap):
        results = grow(bootstrap, 40)
        for result in results[1:]:
            assert result.degree >= 1

    def test_degree_does_not_exceed_target_at_join_time(self, bootstrap):
        results = grow(bootstrap, 40)
        for result in results[1:]:
            assert result.degree <= max(result.target_degree, 1)

    def test_powerful_peers_request_more_links(self, bootstrap):
        config = OverlayConfig()
        assert config.target_degree(10000.0) > config.target_degree(1.0)

    def test_join_messages_recorded(self, bootstrap):
        grow(bootstrap, 10)
        stats = bootstrap.stats
        assert stats.count(MessageKind.HOSTCACHE_QUERY) == 10
        assert stats.count(MessageKind.PROBE) > 0
        assert stats.count(MessageKind.PROBE_RESPONSE) == \
            stats.count(MessageKind.PROBE)
        assert stats.count(MessageKind.CONNECT) >= 9

    def test_back_connect_acks_do_not_exceed_requests(self, bootstrap):
        grow(bootstrap, 30)
        stats = bootstrap.stats
        assert stats.count(MessageKind.BACK_CONNECT_ACK) <= \
            stats.count(MessageKind.BACK_CONNECT_REQUEST)

    def test_resource_level_reflects_capacity_rank(self, bootstrap):
        grow(bootstrap, 30, capacity_fn=lambda i: 10.0)
        weak = bootstrap.join(make_info(100, capacity=1.0))
        strong = bootstrap.join(make_info(101, capacity=10000.0))
        assert weak.resource_level < strong.resource_level

    def test_candidates_seen_grows_with_network(self, bootstrap):
        results = grow(bootstrap, 30)
        assert results[-1].candidates_seen > results[1].candidates_seen


class TestAcquireNeighbors:
    def test_repair_adds_links(self, bootstrap):
        grow(bootstrap, 30)
        info = bootstrap.overlay.peer(5)
        before = bootstrap.overlay.degree(5)
        for neighbor in bootstrap.overlay.neighbors(5):
            bootstrap.overlay.remove_link(5, neighbor)
        added = bootstrap.acquire_neighbors(info, needed=3)
        assert len(added) >= 1
        assert bootstrap.overlay.degree(5) == len(added)
        assert before >= 1

    def test_zero_needed_is_noop(self, bootstrap):
        grow(bootstrap, 10)
        info = bootstrap.overlay.peer(3)
        assert bootstrap.acquire_neighbors(info, 0) == []

    def test_does_not_duplicate_existing_links(self, bootstrap):
        grow(bootstrap, 20)
        info = bootstrap.overlay.peer(4)
        existing = set(bootstrap.overlay.neighbors(4))
        added = bootstrap.acquire_neighbors(info, needed=2)
        assert existing.isdisjoint(added)


class TestTopologyShape:
    def test_powerful_core_emerges(self, bootstrap):
        """Peers with 100x+ capacity end with higher mean degree."""
        rng = spawn_rng(3, "caps")
        capacities = {}

        def capacity_fn(i):
            value = float(rng.choice([1.0, 10.0, 100.0, 1000.0],
                                     p=[0.2, 0.45, 0.3, 0.05]))
            capacities[i] = value
            return value

        grow(bootstrap, 150, capacity_fn)
        degrees = {i: bootstrap.overlay.degree(i) for i in range(150)}
        strong = [degrees[i] for i in range(150) if capacities[i] >= 100.0]
        weak = [degrees[i] for i in range(150) if capacities[i] <= 10.0]
        assert np.mean(strong) > np.mean(weak)

"""Tests for the anomaly watchdog engine and its built-in detectors.

Unit tests drive rules through a hand-held :class:`TopologyRecorder`
(snapshots stamped manually, conditions injected via ``extra_metrics``
or direct overlay surgery); the faults-marked end-to-end tests assert
that the PR-3 adversarial scenario's partition window is *detected* —
one fired/cleared incident per recovery-policy epoch — across the
seeds CI sweeps.
"""

import os

import numpy as np
import pytest

from repro.errors import TelemetryError, WatchdogHalt
from repro.experiments import resilience
from repro.obs import (
    ACTIONS,
    ConservationGapGrowth,
    MetricSpike,
    OrphanedMembers,
    OverlayPartition,
    Registry,
    TopologyRecorder,
    Tracer,
    WatchdogEngine,
    WatchdogRule,
    default_watchdogs,
    node_stress_spike,
    tree_depth_spike,
)
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo

FAULT_SEEDS = [int(token) for token in
               os.environ.get("REPRO_FAULT_SEEDS", "7").split(",")
               if token.strip()]


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


def _watched_recorder(*rules):
    """A recorder over a 4-peer path graph with ``rules`` attached."""
    overlay = make_overlay([(1, 2), (2, 3), (3, 4)])
    recorder = TopologyRecorder()
    recorder.watch_overlay(overlay)
    for rule in rules:
        recorder.add_watchdog(rule)
    return overlay, recorder


# ----------------------------------------------------------------------
# Rule construction
# ----------------------------------------------------------------------
class TestRuleBasics:
    def test_action_validation(self):
        assert ACTIONS == ("record", "warn", "halt")
        with pytest.raises(TelemetryError):
            WatchdogRule("bad", action="explode")

    def test_spike_parameter_validation(self):
        with pytest.raises(TelemetryError):
            MetricSpike("m", factor=1.0)
        with pytest.raises(TelemetryError):
            MetricSpike("m", window=0)
        with pytest.raises(TelemetryError):
            ConservationGapGrowth(window=1)

    def test_duplicate_rule_name_rejected(self):
        engine = WatchdogEngine()
        engine.add(OverlayPartition())
        with pytest.raises(TelemetryError):
            engine.add(OverlayPartition())

    def test_default_pack_contents(self):
        rules = default_watchdogs(group_ids=(1,))
        names = [rule.name for rule in rules]
        assert names == ["overlay-partition", "orphaned-members",
                         "conservation-gap-growth", "heartbeat-staleness",
                         "spike:tree.1.depth", "spike:tree.1.node_stress"]
        warned = default_watchdogs(action="warn")
        assert all(rule.action == "warn" for rule in warned)


# ----------------------------------------------------------------------
# Detectors, driven through real snapshots
# ----------------------------------------------------------------------
class TestOverlayPartition:
    def test_fires_on_split_and_clears_on_repair(self):
        overlay, recorder = _watched_recorder(OverlayPartition())
        recorder.snapshot(0.0)
        assert recorder.alerts == []
        overlay.remove_link(2, 3)
        recorder.snapshot(100.0)
        overlay.add_link(2, 3)
        recorder.snapshot(200.0)
        kinds = [(a.kind, a.at_ms) for a in recorder.alerts]
        assert kinds == [("fired", 100.0), ("cleared", 200.0)]
        assert "2 components" in recorder.alerts[0].message

    def test_stays_silent_while_condition_persists(self):
        overlay, recorder = _watched_recorder(OverlayPartition())
        overlay.remove_link(2, 3)
        for at in (0.0, 100.0, 200.0, 300.0):
            recorder.snapshot(at)
        # Level-triggered with edge reporting: one alert, not four.
        assert [a.kind for a in recorder.alerts] == ["fired"]
        assert recorder.watchdogs.active_rules() == ["overlay-partition"]

    def test_min_largest_fraction(self):
        rule = OverlayPartition(max_components=2,
                                min_largest_fraction=0.9)
        overlay, recorder = _watched_recorder(rule)
        overlay.remove_link(2, 3)  # 2 components allowed, but 0.5 < 0.9
        recorder.snapshot(0.0)
        assert "0.50 of peers" in recorder.alerts[0].message


class TestMetricSpike:
    def test_fires_against_trailing_window(self):
        _, recorder = _watched_recorder(
            MetricSpike("m", factor=2.0, min_history=2))
        for at, value in ((0.0, 1.0), (100.0, 1.0), (200.0, 1.0)):
            recorder.snapshot(at, extra_metrics={"m": value})
        assert recorder.alerts == []
        recorder.snapshot(300.0, extra_metrics={"m": 5.0})
        assert [a.kind for a in recorder.alerts] == ["fired"]
        assert "5.00x" in recorder.alerts[0].message
        recorder.snapshot(400.0, extra_metrics={"m": 1.0})
        assert [a.kind for a in recorder.alerts] == ["fired", "cleared"]

    def test_cold_start_is_not_a_spike(self):
        _, recorder = _watched_recorder(
            MetricSpike("m", factor=2.0, min_history=2))
        recorder.snapshot(0.0, extra_metrics={"m": 1.0})
        recorder.snapshot(100.0, extra_metrics={"m": 50.0})
        # Only one prior value — below min_history, so no judgement.
        assert recorder.alerts == []

    def test_min_value_floor_suppresses_tiny_spikes(self):
        _, recorder = _watched_recorder(tree_depth_spike(1))
        for at, depth in ((0.0, 1.0), (100.0, 1.0), (200.0, 2.5)):
            recorder.snapshot(
                at, extra_metrics={"tree.1.depth": depth})
        # 2.5 is 2.5x the window mean but below the min_value=3 floor.
        assert recorder.alerts == []

    def test_node_stress_helper_names(self):
        assert node_stress_spike(4).metric == "tree.4.node_stress"
        assert tree_depth_spike(4).name == "spike:tree.4.depth"


class TestOrphanedMembers:
    def test_wildcard_scans_every_group(self):
        _, recorder = _watched_recorder(OrphanedMembers())
        recorder.snapshot(0.0, extra_metrics={"tree.1.orphans": 0.0,
                                              "tree.9.orphans": 0.0})
        assert recorder.alerts == []
        recorder.snapshot(100.0, extra_metrics={"tree.1.orphans": 0.0,
                                                "tree.9.orphans": 3.0})
        assert [a.kind for a in recorder.alerts] == ["fired"]
        assert "group 9 has 3 members" in recorder.alerts[0].message

    def test_specific_group_ignores_others(self):
        _, recorder = _watched_recorder(OrphanedMembers(group_id=1))
        recorder.snapshot(0.0, extra_metrics={"tree.9.orphans": 5.0})
        assert recorder.alerts == []


class TestConservationGapGrowth:
    def test_fires_only_on_monotone_growth(self):
        _, recorder = _watched_recorder(
            ConservationGapGrowth(window=3, min_growth=1.0))
        # Bounded in-flight wobble: never monotone, never fires.
        for at, gap in ((0.0, 2.0), (100.0, 5.0), (200.0, 3.0),
                        (300.0, 6.0)):
            recorder.snapshot(at, extra_metrics={"conservation.gap": gap})
        assert recorder.alerts == []
        # Strictly rising across the full window: leak.
        for at, gap in ((400.0, 7.0), (500.0, 9.0)):
            recorder.snapshot(at, extra_metrics={"conservation.gap": gap})
        assert [a.kind for a in recorder.alerts] == ["fired"]
        assert "grew" in recorder.alerts[0].message


# ----------------------------------------------------------------------
# Engine semantics
# ----------------------------------------------------------------------
class TestEngineSemantics:
    def test_counters_track_transitions(self):
        registry = Registry()
        overlay = make_overlay([(1, 2), (2, 3)])
        recorder = TopologyRecorder(registry=registry)
        recorder.watch_overlay(overlay)
        recorder.add_watchdog(OverlayPartition())
        overlay.remove_link(1, 2)
        recorder.snapshot(0.0)
        overlay.add_link(1, 2)
        recorder.snapshot(100.0)
        assert registry.counter("watchdog.fired").value == 1
        assert registry.counter("watchdog.cleared").value == 1
        assert registry.counter(
            "watchdog.overlay-partition.fired").value == 1

    def test_explicit_tracer_records_transitions(self):
        tracer = Tracer()
        overlay = make_overlay([(1, 2), (2, 3)])
        recorder = TopologyRecorder(tracer=tracer)
        recorder.watch_overlay(overlay)
        recorder.add_watchdog(OverlayPartition())
        overlay.remove_link(1, 2)
        recorder.snapshot(0.0)
        records = [record for record in tracer.records()
                   if record.kind == "watchdog"]
        assert len(records) == 1
        assert records[0].detail == "overlay-partition:fired"

    def test_halt_action_aborts_after_collecting(self):
        overlay, recorder = _watched_recorder(
            OverlayPartition(action="halt"))
        overlay.remove_link(2, 3)
        with pytest.raises(WatchdogHalt, match="overlay-partition"):
            recorder.snapshot(0.0)
        # The alert was collected before the abort.
        assert [a.kind for a in recorder.alerts] == ["fired"]

    def test_warn_action_surfaces_in_summary(self):
        overlay, recorder = _watched_recorder(
            OverlayPartition(action="warn"))
        overlay.remove_link(2, 3)
        recorder.snapshot(0.0)
        summary = recorder.watchdog_section()
        assert summary["fired"] == 1
        assert summary["active"] == ["overlay-partition"]
        assert summary["by_rule"]["overlay-partition"]["fired"] == 1
        assert len(summary["warnings"]) == 1
        assert summary["warnings"][0]["rule"] == "overlay-partition"

    def test_new_epoch_resets_firing_state(self):
        first = make_overlay([(1, 2), (2, 3)])
        recorder = TopologyRecorder()
        recorder.watch_overlay(first)
        recorder.add_watchdog(OverlayPartition())
        first.remove_link(1, 2)
        recorder.snapshot(0.0)
        assert recorder.watchdogs.active_rules() == ["overlay-partition"]
        # A fresh connected deployment: the old incident must not leak a
        # phantom "cleared" into the new epoch.
        second = make_overlay([(5, 6), (6, 7)])
        recorder.watch_overlay(second, baseline_at_ms=0.0)
        assert recorder.watchdogs.active_rules() == []
        assert [a.kind for a in recorder.alerts] == ["fired"]
        engine = recorder.watchdogs
        assert engine.fired(epoch=1) and not engine.fired(epoch=2)


# ----------------------------------------------------------------------
# End-to-end: PR-3 adversarial faults are *detected*
# ----------------------------------------------------------------------
@pytest.mark.faults
@pytest.mark.slow
@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_adversarial_partition_detected_across_policies(seed):
    recorder = TopologyRecorder(interval_ms=500.0)
    for rule in default_watchdogs(group_ids=(1,)):
        recorder.add_watchdog(rule)
    table = resilience.run_adversarial(
        peer_count=100, members_count=24, seed=seed, topology=recorder)
    engine = recorder.watchdogs
    assert [row[0] for row in table.rows] == ["none", "repair",
                                              "replication"]
    columns = list(table.columns)
    alert_col = columns.index("watchdog_alerts")
    assert columns[columns.index("violations")] == "violations"
    for epoch, row in enumerate(table.rows, start=1):
        fired = engine.fired(rule="overlay-partition", epoch=epoch)
        cleared = engine.cleared(rule="overlay-partition", epoch=epoch)
        # The injected PartitionWindow was detected...
        assert len(fired) == 1, \
            f"policy {row[0]} (epoch {epoch}): partition not detected"
        # ...and the incident closed once the window healed.
        assert len(cleared) == 1, \
            f"policy {row[0]} (epoch {epoch}): partition never cleared"
        assert cleared[0].at_ms > fired[0].at_ms
        assert row[alert_col] >= 1
        assert row[columns.index("violations")] == 0
    # No incident is still open at the end of the run.
    assert engine.active_rules() == []


@pytest.mark.faults
@pytest.mark.slow
def test_adversarial_watchdogs_are_digest_transparent():
    bare = resilience.run_adversarial(peer_count=100, members_count=24,
                                      seed=FAULT_SEEDS[0])
    recorder = TopologyRecorder(interval_ms=500.0)
    for rule in default_watchdogs(group_ids=(1,)):
        recorder.add_watchdog(rule)
    watched = resilience.run_adversarial(
        peer_count=100, members_count=24, seed=FAULT_SEEDS[0],
        topology=recorder)
    digest_col = list(bare.columns).index("trace_digest")
    assert [row[digest_col] for row in bare.rows] == \
        [row[digest_col] for row in watched.rows]

"""Per-tenant SLO engine: attainment tables and burn-rate watchdogs.

The determinism contract is the centerpiece: the canonical attainment
bytes of a sharded thousand-group pass must be identical for every
worker count, and the burn-rate incident stream of a faulted run must
replay bit-for-bit on the same seed.  Unit tests drive
:class:`SLOBurnRule` through a hand-held
:class:`~repro.obs.topology.TopologyRecorder` exactly like the other
watchdog suites; the end-to-end tests ride the PR-3 adversarial
scenario with per-tenant objectives armed, including the halt action.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_sharded, synthetic_power_law_csr
from repro.core.protocol import edge_latencies_from_coords
from repro.errors import TelemetryError, WatchdogHalt
from repro.experiments import resilience, tenancy
from repro.obs import (
    DEFAULT_SKETCH_LAYOUT,
    AttainmentTable,
    SLOBurnRule,
    SLOEngine,
    SLOSpec,
    TopologyRecorder,
)
from repro.obs.report import build_report, render_markdown
from repro.sim.random import spawn_rng
from repro.workloads.groups import assign_tenants, sample_group_rows


def _small_world(peers=256, groups=60, tenants=8, seed=7):
    rng = spawn_rng(seed, "slo-world")
    csr = synthetic_power_law_csr(peers, rng)
    coords = rng.uniform(0.0, 100.0, size=(peers, 2))
    latency = edge_latencies_from_coords(csr, coords)
    rosters = sample_group_rows(spawn_rng(seed, "slo-groups"), groups,
                                peers, max_size=64)
    tenant_map = assign_tenants(spawn_rng(seed, "slo-tenants"), groups,
                                tenants)
    return csr, latency, coords, rosters, tenant_map


def _pass(jobs=1, dims=True, shards=4):
    csr, latency, coords, (roots, rows, indptr), tenant_map = \
        _small_world()
    result = run_sharded(
        csr, latency, coords, roots, rows, indptr, ttl=8,
        shards=shards, jobs=jobs,
        dims_layout=DEFAULT_SKETCH_LAYOUT if dims else None)
    return result, tenant_map


# ----------------------------------------------------------------------
# Spec validation and burn math
# ----------------------------------------------------------------------
class TestSpec:
    def test_validation(self):
        with pytest.raises(TelemetryError):
            SLOSpec(min_delivery_ratio=0.0)
        with pytest.raises(TelemetryError):
            SLOSpec(min_delivery_ratio=1.5)
        with pytest.raises(TelemetryError):
            SLOSpec(max_p99_delay_ms=-1.0)
        with pytest.raises(TelemetryError):
            SLOSpec(max_repair_ms=0.0)
        with pytest.raises(TelemetryError):
            SLOSpec(window=0)
        with pytest.raises(TelemetryError):
            SLOSpec(burn_threshold=0.0)

    def test_burn_rate(self):
        spec = SLOSpec(min_delivery_ratio=0.9)
        assert spec.error_budget == pytest.approx(0.1)
        assert spec.burn_rate(0.0, 100.0) == 0.0
        assert spec.burn_rate(10.0, 100.0) == pytest.approx(1.0)
        assert spec.burn_rate(20.0, 100.0) == pytest.approx(2.0)
        assert SLOSpec(min_delivery_ratio=1.0).burn_rate(1.0, 10.0) \
            == float("inf")


# ----------------------------------------------------------------------
# Attainment tables
# ----------------------------------------------------------------------
class TestAttainment:
    def test_bytes_identical_across_worker_counts(self):
        spec = SLOSpec(min_delivery_ratio=0.95,
                       max_p99_delay_ms=500.0)
        encodings = []
        for jobs in (1, 2, 4):
            result, tenant_map = _pass(jobs=jobs)
            table = AttainmentTable.from_pass(result, spec, tenant_map)
            encodings.append(table.to_canonical_json())
        assert encodings[0] == encodings[1] == encodings[2]

    def test_counts_are_segmented_sums(self):
        result, tenant_map = _pass()
        table = AttainmentTable.from_pass(result, SLOSpec(), tenant_map)
        assert int(table.members.sum()) == \
            int(result.member_counts.sum())
        assert int(table.delivered.sum()) == \
            int(result.members_on_tree.sum())
        assert int(table.groups.sum()) == result.n_groups
        # Sketch rows fold by addition: total samples conserved.
        assert table.p99_ms is not None

    def test_worst_ordering_and_cdf(self):
        spec = SLOSpec(min_delivery_ratio=0.9)
        table = AttainmentTable(
            spec,
            tenants=np.arange(3), groups=np.array([1, 1, 1]),
            members=np.array([10, 10, 0]),
            delivered=np.array([10, 5, 0]),
            depth=np.array([3, 4, 0]), p99_ms=None)
        worst = table.worst(3)
        assert [row["tenant"] for row in worst] == [1, 0, 2]
        assert not worst[0]["attained"]
        # Empty tenants count as fully delivered.
        assert table.delivery_ratio()[2] == 1.0
        cdf = table.attainment_cdf()
        assert cdf["attained_fraction"] == pytest.approx(2 / 3)
        assert cdf["levels"]["1"] == pytest.approx(2 / 3)

    def test_dims_off_pass_has_no_p99(self):
        result, tenant_map = _pass(dims=False)
        table = AttainmentTable.from_pass(result, SLOSpec(), tenant_map)
        assert table.p99_ms is None
        assert "p99_ms" not in table.rows()[0]

    def test_tenant_map_shape_checked(self):
        result, _ = _pass(dims=False)
        with pytest.raises(TelemetryError):
            AttainmentTable.from_pass(result, SLOSpec(),
                                      np.array([0, 1]))

    def test_p99_objective_gates_attainment(self):
        result, tenant_map = _pass()
        tight = AttainmentTable.from_pass(
            result, SLOSpec(min_delivery_ratio=0.01,
                            max_p99_delay_ms=0.5), tenant_map)
        loose = AttainmentTable.from_pass(
            result, SLOSpec(min_delivery_ratio=0.01,
                            max_p99_delay_ms=1e6), tenant_map)
        assert tight.attained().sum() < loose.attained().sum()

    def test_report_renders_slo_section(self):
        result, tenant_map = _pass()
        engine = SLOEngine(SLOSpec(min_delivery_ratio=0.95))
        engine.observe_pass(result, tenant_map)
        report = build_report(title="slo", slo=engine)
        assert report["slo"]["attainment"]["tenants"] == \
            int(tenant_map.max()) + 1
        text = render_markdown(report)
        assert "Per-tenant SLO attainment" in text
        assert "| tenant |" in text


# ----------------------------------------------------------------------
# Burn-rate watchdogs
# ----------------------------------------------------------------------
def _recorder(*rules):
    recorder = TopologyRecorder()
    for rule in rules:
        recorder.add_watchdog(rule)
    return recorder


def _metrics(orphans_by_group, members=10.0):
    out = {}
    for gid, orphans in orphans_by_group.items():
        out[f"tree.{gid}.members"] = members
        out[f"tree.{gid}.orphans"] = orphans
    return out


class TestBurnRule:
    def test_windowed_burn_fires_and_clears(self):
        spec = SLOSpec(min_delivery_ratio=0.9, window=2)
        recorder = _recorder(SLOBurnRule(spec))
        # Cold start: one bad snapshot cannot fill the 2-wide window.
        recorder.snapshot(0.0, extra_metrics=_metrics({1: 5.0}))
        assert recorder.alerts == []
        recorder.snapshot(100.0, extra_metrics=_metrics({1: 5.0}))
        assert [a.kind for a in recorder.alerts] == ["fired"]
        assert "burning error budget" in recorder.alerts[0].message
        recorder.snapshot(200.0, extra_metrics=_metrics({1: 0.0}))
        recorder.snapshot(300.0, extra_metrics=_metrics({1: 0.0}))
        assert [a.kind for a in recorder.alerts] == ["fired", "cleared"]

    def test_incident_counter_family_per_tenant(self):
        spec = SLOSpec(min_delivery_ratio=0.9, window=1)
        recorder = _recorder(SLOBurnRule(spec))
        recorder.snapshot(0.0, extra_metrics=_metrics({1: 5.0, 2: 0.0}))
        family = recorder.watchdogs.registry.get("slo.burn.incidents")
        assert family.labels(1).value == 1
        assert family.labels(2).value == 0
        # Still violating: the edge machinery records one incident.
        recorder.snapshot(100.0, extra_metrics=_metrics({1: 5.0}))
        assert family.labels(1).value == 1

    def test_tenant_mapping_folds_groups(self):
        spec = SLOSpec(min_delivery_ratio=0.9, window=1)
        rule = SLOBurnRule(spec, tenant_of_group={1: 7, 2: 7})
        recorder = _recorder(rule)
        recorder.snapshot(0.0, extra_metrics=_metrics({1: 2.0, 2: 2.0}))
        states = rule.tenant_states()
        assert [row["tenant"] for row in states] == [7]
        assert states[0]["members"] == 20.0
        assert states[0]["orphans"] == 4.0

    def test_repair_deadline_fires_below_burn_threshold(self):
        # One orphan of 100 members burns at 0.1x — far below the
        # threshold — but staying out of compliance past the repair
        # deadline is an incident on its own.
        spec = SLOSpec(min_delivery_ratio=0.9, window=1,
                       burn_threshold=100.0, max_repair_ms=250.0)
        recorder = _recorder(SLOBurnRule(spec))
        for at_ms in (0.0, 100.0, 200.0):
            recorder.snapshot(at_ms, extra_metrics=_metrics(
                {1: 1.0}, members=100.0))
        assert recorder.alerts == []
        recorder.snapshot(300.0, extra_metrics=_metrics(
            {1: 1.0}, members=100.0))
        assert [a.kind for a in recorder.alerts] == ["fired"]
        assert "repair deadline" in recorder.alerts[0].message

    def test_halt_action_raises(self):
        spec = SLOSpec(min_delivery_ratio=0.9, window=1)
        recorder = _recorder(SLOBurnRule(spec, action="halt"))
        with pytest.raises(WatchdogHalt, match="burning error budget"):
            recorder.snapshot(0.0, extra_metrics=_metrics({1: 9.0}))

    def test_engine_bundles_rules_and_states(self):
        engine = SLOEngine(SLOSpec(min_delivery_ratio=0.9, window=1))
        (rule,) = engine.rules()
        recorder = _recorder(rule)
        recorder.snapshot(0.0, extra_metrics=_metrics({1: 5.0}))
        summary = engine.summary()
        assert summary["burn"][0]["tenant"] == 1
        assert summary["burn"][0]["burn"] == pytest.approx(5.0)


# ----------------------------------------------------------------------
# End-to-end: adversarial faults under per-tenant SLOs
# ----------------------------------------------------------------------
def _adversarial_with_slo(action="record"):
    spec = SLOSpec(min_delivery_ratio=0.99, window=2)
    recorder = TopologyRecorder(interval_ms=500.0)
    for rule in SLOEngine(spec).rules(action=action):
        recorder.add_watchdog(rule)
    table = resilience.run_adversarial(
        peer_count=100, members_count=24, seed=7, topology=recorder)
    return recorder, table


@pytest.mark.faults
@pytest.mark.slow
def test_adversarial_burn_incidents_are_deterministic():
    first, table_a = _adversarial_with_slo()
    second, table_b = _adversarial_with_slo()
    incidents = [(a.rule, a.kind, a.at_ms, a.message)
                 for a in first.alerts]
    assert incidents, "adversarial faults produced no burn incident"
    assert any(kind == "fired" for _, kind, _, _ in incidents)
    assert incidents == [(a.rule, a.kind, a.at_ms, a.message)
                         for a in second.alerts]
    digest_col = list(table_a.columns).index("trace_digest")
    assert [row[digest_col] for row in table_a.rows] == \
        [row[digest_col] for row in table_b.rows]


@pytest.mark.faults
@pytest.mark.slow
def test_adversarial_halt_action_aborts_sim_run():
    with pytest.raises(WatchdogHalt, match="slo-burn"):
        _adversarial_with_slo(action="halt")


# ----------------------------------------------------------------------
# The tenancy experiment artifact
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_tenancy_experiment_artifact_round_trip(tmp_path):
    result, table = tenancy.run(
        seed=7, peers=512, groups=200, tenants=10, jobs=1,
        output_dir=tmp_path)
    artifact = (tmp_path / "attainment.json").read_bytes()
    assert artifact == table.to_canonical_json()
    assert list(result.columns)[0] == "tenant"
    assert len(result.rows) == 10

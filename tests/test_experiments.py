"""Tests for the experiment harness modules and the CLI runner."""

import pytest

from repro.experiments import app_performance, preference, service_lookup
from repro.experiments.common import (
    ExperimentResult,
    group_member_count,
    sweep_sizes,
)
from repro.experiments.overlay_structure import (
    run_degree_distribution,
    run_neighbor_distance,
)
from repro.experiments.runner import main as runner_main


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult("t", columns=("a", "b"))
        result.add_row(1, 2.0)
        result.add_row(3, 4.0)
        assert result.column("a") == [1, 3]
        assert result.column("b") == [2.0, 4.0]

    def test_row_length_validated(self):
        result = ExperimentResult("t", columns=("a", "b"))
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_format_table_aligns(self):
        result = ExperimentResult("Title", columns=("name", "value"))
        result.add_row("groupcast", 1.23456)
        text = result.format_table()
        assert text.splitlines()[0] == "Title"
        assert "groupcast" in text
        assert "1.235" in text  # 4 significant digits


class TestSweepHelpers:
    def test_explicit_sizes_win(self):
        assert sweep_sizes([10, 20]) == (10, 20)

    def test_default_sizes(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert sweep_sizes() == (1000, 2000, 4000, 8000)

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert sweep_sizes()[-1] == 32000

    def test_group_member_count(self):
        assert group_member_count(1000) == 100
        assert group_member_count(50) == 16  # floor


class TestPreferenceExperiment:
    def test_rows_cover_resource_levels(self):
        result = preference.run()
        assert result.column("resource_level") == [0.05, 0.50, 0.95]

    def test_weak_peer_distance_dominated(self):
        result = preference.run()
        weak = dict(zip(result.columns, result.rows[0]))
        assert weak["corr_pref_distance"] < -0.9

    def test_deterministic_given_seed(self):
        a = preference.run(seed=3)
        b = preference.run(seed=3)
        assert a.rows == b.rows


class TestStructureExperiments:
    def test_degree_distribution_rows(self):
        result = run_degree_distribution(peer_count=300, seed=5)
        assert result.column("overlay") == ["groupcast", "plod"]
        for exponent in result.column("powerlaw_exponent"):
            assert exponent > 0.0

    def test_neighbor_distance_rows(self):
        result = run_neighbor_distance(peer_count=200, seed=5)
        rows = {r[0]: dict(zip(result.columns, r)) for r in result.rows}
        assert rows["groupcast"]["mean_ms"] < rows["plod"]["mean_ms"]


class TestSweepExperiments:
    @pytest.fixture(scope="class")
    def lookup(self):
        return service_lookup.run(sizes=[150], seed=5,
                                  rendezvous_points=3)

    def test_lookup_produces_all_figures(self, lookup):
        assert set(lookup) == {"fig11", "fig12", "fig13"}
        assert len(lookup["fig11"].rows) == 4  # 2 overlays x 2 schemes
        assert len(lookup["fig13"].rows) == 2  # SSA only

    def test_lookup_rates_are_probabilities(self, lookup):
        for rate in (lookup["fig12"].column("receiving_rate")
                     + lookup["fig12"].column("success_rate")):
            assert 0.0 <= rate <= 1.0

    def test_app_produces_all_figures(self):
        results = app_performance.run(sizes=[150], seed=5,
                                      groups_per_overlay=2)
        assert set(results) == {"fig14", "fig15", "fig16", "fig17"}
        for penalty in results["fig14"].column("delay_penalty"):
            assert penalty >= 1.0
        for stress in results["fig15"].column("link_stress"):
            assert stress >= 1.0


class TestRunnerCLI:
    def test_preference_runs(self, capsys):
        assert runner_main(["preference"]) == 0
        out = capsys.readouterr().out
        assert "Figures 1-6" in out

    def test_multiple_experiments_deduplicated(self, capsys):
        assert runner_main(["fig1", "fig2"]) == 0
        out = capsys.readouterr().out
        assert out.count("Figures 1-6") == 1

    def test_sizes_flag(self, capsys):
        assert runner_main(["fig9", "--sizes", "150"]) == 0
        out = capsys.readouterr().out
        assert "150 peers" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            runner_main(["figure99"])


class TestDiameterExperiment:
    def test_groupcast_diameter_lower_than_plod(self):
        from repro.experiments.overlay_structure import run_diameter

        result = run_diameter(peer_count=400, seed=5)
        rows = {r[0]: dict(zip(result.columns, r)) for r in result.rows}
        assert rows["groupcast"]["estimated_diameter"] < \
            rows["plod"]["estimated_diameter"]
        assert rows["groupcast"]["hbar"] > 0.5

    def test_runner_exposes_diameter(self, capsys):
        from repro.experiments.runner import main as runner_main

        assert runner_main(["diameter", "--sizes", "200"]) == 0
        assert "estimated_diameter" in capsys.readouterr().out


class TestAnnouncementForSize:
    def test_schedule_matches_defaults_at_laptop_sizes(self):
        from repro.experiments.common import announcement_for_size

        for size in (500, 1000, 4000, 8000):
            assert announcement_for_size(size).advertisement_ttl == 6

    def test_schedule_grows_at_paper_scale(self):
        from repro.experiments.common import announcement_for_size

        assert announcement_for_size(16000).advertisement_ttl == 7
        assert announcement_for_size(24000).advertisement_ttl == 8
        assert announcement_for_size(32000).advertisement_ttl == 9

    def test_explicit_base_ttl_is_never_reduced(self):
        from repro.config import AnnouncementConfig
        from repro.experiments.common import announcement_for_size

        base = AnnouncementConfig(advertisement_ttl=12)
        assert announcement_for_size(32000, base).advertisement_ttl == 12

    def test_other_fields_preserved(self):
        from repro.config import AnnouncementConfig
        from repro.experiments.common import announcement_for_size

        base = AnnouncementConfig(ssa_fanout_fraction=0.5,
                                  ssa_strategy="random")
        scaled = announcement_for_size(32000, base)
        assert scaled.ssa_fanout_fraction == 0.5
        assert scaled.ssa_strategy == "random"


class TestChurnCostExperiment:
    def test_groupcast_churn_world_runs(self):
        from repro.experiments.churn_cost import run_groupcast_churn

        outcome = run_groupcast_churn(
            max_joins=40, mean_lifetime_ms=30_000.0, seed=5,
            sim_horizon_ms=30_000.0)
        assert outcome["events"] >= 40
        assert outcome["per_event"] > 0.0

    def test_pastry_state_cost_positive(self):
        from repro.experiments.churn_cost import (
            pastry_state_cost_per_event,
        )

        assert pastry_state_cost_per_event(60, seed=5) > 5.0


class TestResilienceExperiment:
    def test_recovery_policies_ordered(self):
        from repro.experiments.resilience import run

        result = run(peer_count=250, members_count=50, crash_waves=4,
                     seed=5)
        rows = {r[0]: dict(zip(result.columns, r)) for r in result.rows}
        # Any recovery beats none on delivery and member survival.
        assert rows["repair"]["final_delivery_ratio"] >= \
            rows["none"]["final_delivery_ratio"]
        assert rows["replication"]["final_delivery_ratio"] >= \
            rows["none"]["final_delivery_ratio"]
        assert rows["repair"]["members_lost"] <= rows["none"]["members_lost"]
        # Replication repairs more cheaply than search repair.
        assert rows["replication"]["repair_messages"] <= \
            rows["repair"]["repair_messages"]
        # Policy "none" spends nothing on repair by definition.
        assert rows["none"]["repair_messages"] == 0

    def test_runner_exposes_resilience(self, capsys):
        from repro.experiments.runner import main as runner_main

        assert runner_main(["resilience"]) == 0
        out = capsys.readouterr().out
        assert "replication" in out

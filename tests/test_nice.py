"""Unit tests for the NICE hierarchical-cluster baseline."""

import numpy as np
import pytest

from repro.baselines.nice import NiceConfig, build_nice_tree
from repro.config import ConfigurationError, TransitStubConfig
from repro.errors import GroupError
from repro.groupcast.dissemination import disseminate
from repro.network.topology import generate_transit_stub
from repro.sim.random import spawn_rng


@pytest.fixture(scope="module")
def underlay():
    u = generate_transit_stub(
        TransitStubConfig(transit_domains=2, transit_routers_per_domain=3,
                          stub_domains_per_transit=2, routers_per_stub=3),
        spawn_rng(12, "topo"))
    rng = spawn_rng(12, "attach")
    for peer in range(120):
        u.attach_peer(peer, rng)
    return u


class TestConfig:
    def test_cluster_bounds(self):
        config = NiceConfig(k=3)
        assert config.max_cluster == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NiceConfig(k=1)


class TestHierarchy:
    def test_tree_covers_all_members(self, underlay):
        members = list(range(60))
        tree = build_nice_tree(underlay, members, spawn_rng(0, "nice"))
        assert tree.members == frozenset(members)
        tree.validate()

    def test_fanout_bounded_by_cluster_size(self, underlay):
        config = NiceConfig(k=3)
        members = list(range(100))
        tree = build_nice_tree(underlay, members, spawn_rng(1, "nice"),
                               config)
        # A leader leads at most one cluster per layer and there are
        # O(log_k n) layers; with n=100 and k=3 at most 5 layers.
        max_fanout = max(len(tree.children(n)) for n in tree.nodes())
        assert max_fanout <= config.max_cluster * 5

    def test_height_is_logarithmic(self, underlay):
        members = list(range(100))
        tree = build_nice_tree(underlay, members, spawn_rng(2, "nice"))
        assert tree.height() <= 7  # ~log3(100) layers

    def test_duplicate_members_deduplicated(self, underlay):
        tree = build_nice_tree(underlay, [1, 1, 2, 2, 3],
                               spawn_rng(3, "nice"))
        assert tree.members == frozenset({1, 2, 3})

    def test_too_few_members_rejected(self, underlay):
        with pytest.raises(GroupError):
            build_nice_tree(underlay, [5], spawn_rng(4, "nice"))

    def test_clusters_are_proximity_biased(self, underlay):
        """Parent-child latency should beat random member pairs."""
        members = list(range(100))
        tree = build_nice_tree(underlay, members, spawn_rng(5, "nice"))
        edge_latency = [
            underlay.peer_distance_ms(parent, child)
            for parent, child in tree.edges()]
        rng = spawn_rng(6, "pairs")
        random_latency = []
        for _ in range(200):
            a, b = rng.choice(100, size=2, replace=False)
            random_latency.append(
                underlay.peer_distance_ms(int(a), int(b)))
        assert np.mean(edge_latency) < np.mean(random_latency)

    def test_dissemination_through_nice_tree(self, underlay):
        members = list(range(40))
        tree = build_nice_tree(underlay, members, spawn_rng(7, "nice"))
        report = disseminate(tree, tree.root, underlay)
        assert set(report.member_delays_ms) == \
            set(members) - {tree.root}

    def test_deterministic_given_rng(self, underlay):
        members = list(range(50))
        a = build_nice_tree(underlay, members, spawn_rng(8, "nice"))
        b = build_nice_tree(underlay, members, spawn_rng(8, "nice"))
        assert sorted(a.edges()) == sorted(b.edges())

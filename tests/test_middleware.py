"""Integration tests for the GroupCastMiddleware facade and groups."""

import pytest

from repro.errors import GroupError
from repro.groupcast.middleware import GroupCastMiddleware


@pytest.fixture(scope="module")
def middleware(request):
    from tests.conftest import SMALL_CONFIG
    from repro.deployment import build_deployment

    deployment = build_deployment(250, kind="groupcast", config=SMALL_CONFIG)
    return GroupCastMiddleware(deployment)


@pytest.fixture()
def group(middleware):
    members = middleware.sample_members(25)
    return middleware.create_group(members=members)


class TestGroupLifecycle:
    def test_create_group_subscribes_members(self, middleware, group):
        assert len(group.members) >= 20  # near-perfect subscription
        group.tree.validate()

    def test_rendezvous_auto_selected_is_capable_or_best(self, middleware,
                                                         group):
        capacity = middleware.deployment.peer_info(group.rendezvous).capacity
        assert capacity >= 1.0

    def test_explicit_rendezvous_honoured(self, middleware):
        members = middleware.sample_members(10)
        rendezvous = middleware.peer_ids()[0]
        group = middleware.create_group(members, rendezvous=rendezvous)
        assert group.rendezvous == rendezvous

    def test_group_lookup(self, middleware, group):
        assert middleware.group(group.group_id) is group
        with pytest.raises(GroupError):
            middleware.group(10_000)

    def test_close_group(self, middleware):
        group = middleware.create_group(middleware.sample_members(5))
        middleware.close_group(group.group_id)
        with pytest.raises(GroupError):
            middleware.group(group.group_id)

    def test_scheme_selection(self, middleware):
        members = middleware.sample_members(10)
        nssa_group = middleware.create_group(members, scheme="nssa")
        assert nssa_group.scheme == "nssa"

    def test_empty_member_list_rejected(self, middleware):
        with pytest.raises(GroupError):
            middleware.create_group([])

    def test_group_ids_are_unique(self, middleware):
        a = middleware.create_group(middleware.sample_members(5))
        b = middleware.create_group(middleware.sample_members(5))
        assert a.group_id != b.group_id


class TestPublish:
    def test_publish_reaches_all_members(self, middleware, group):
        source = sorted(group.members)[0]
        report = middleware.publish(group.group_id, source)
        assert set(report.member_delays_ms) == set(group.members) - {source}

    def test_any_member_may_publish(self, middleware, group):
        for source in sorted(group.members)[:3]:
            report = middleware.publish(group.group_id, source)
            assert report.source == source

    def test_non_member_cannot_publish(self, middleware, group):
        outsiders = set(middleware.peer_ids()) - set(group.members)
        with pytest.raises(GroupError):
            middleware.publish(group.group_id, outsiders.pop())

    def test_publications_recorded_on_group(self, middleware):
        group = middleware.create_group(middleware.sample_members(8))
        source = sorted(group.members)[0]
        middleware.publish(group.group_id, source)
        middleware.publish(group.group_id, source)
        assert len(group.published) == 2


class TestIPMulticastReference:
    def test_reference_tree_covers_members(self, middleware, group):
        source = sorted(group.members)[0]
        ip_tree = middleware.ip_multicast_reference(group.group_id, source)
        assert set(ip_tree.subscribers) == set(group.members) - {source}

    def test_esm_is_never_faster_than_ip_multicast(self, middleware, group):
        source = sorted(group.members)[0]
        report = middleware.publish(group.group_id, source)
        ip_tree = middleware.ip_multicast_reference(group.group_id, source)
        assert (report.average_member_delay_ms
                >= ip_tree.average_delay_ms - 1e-9)

    def test_esm_ip_messages_at_least_multicast_links(self, middleware,
                                                      group):
        source = sorted(group.members)[0]
        report = middleware.publish(group.group_id, source)
        ip_tree = middleware.ip_multicast_reference(group.group_id, source)
        assert report.ip_messages >= ip_tree.link_count


class TestMemberLeave:
    def test_leaf_member_leaves_cleanly(self, middleware):
        group = middleware.create_group(middleware.sample_members(12))
        leaf_members = [m for m in group.members
                        if m != group.rendezvous
                        and not group.tree.children(m)]
        assert leaf_members, "expected at least one leaf member"
        victim = leaf_members[0]
        group.leave(victim)
        assert victim not in group.members
        group.tree.validate()

    def test_interior_member_becomes_relay(self, middleware):
        group = middleware.create_group(middleware.sample_members(20))
        interior = [m for m in group.members
                    if m != group.rendezvous and group.tree.children(m)]
        if not interior:
            pytest.skip("no interior members in this tree")
        victim = interior[0]
        group.leave(victim)
        assert victim not in group.members
        assert victim in group.tree.relays
        group.tree.validate()

    def test_rendezvous_cannot_leave(self, middleware, group):
        with pytest.raises(GroupError):
            group.leave(group.rendezvous)

    def test_non_member_cannot_leave(self, middleware, group):
        outsiders = set(middleware.peer_ids()) - set(group.members)
        with pytest.raises(GroupError):
            group.leave(outsiders.pop())


class TestSampling:
    def test_sample_members_unique(self, middleware):
        members = middleware.sample_members(50)
        assert len(set(members)) == 50

    def test_sample_excludes(self, middleware):
        excluded = middleware.peer_ids()[:100]
        members = middleware.sample_members(30, exclude=excluded)
        assert set(members).isdisjoint(excluded)

    def test_oversampling_rejected(self, middleware):
        with pytest.raises(GroupError):
            middleware.sample_members(10_000)

    def test_build_classmethod(self):
        from tests.conftest import SMALL_CONFIG

        mw = GroupCastMiddleware.build(
            peer_count=60, config=SMALL_CONFIG, overlay_kind="random")
        assert mw.peer_count == 60
        group = mw.create_group(mw.sample_members(10))
        assert group.members


class TestConstructionValidation:
    def test_unknown_default_scheme_rejected(self, middleware):
        from repro.errors import GroupError
        from repro.groupcast.middleware import GroupCastMiddleware

        with pytest.raises(GroupError):
            GroupCastMiddleware(middleware.deployment,
                                default_scheme="multicast")

    def test_nssa_default_scheme_applies(self, middleware):
        from repro.groupcast.middleware import GroupCastMiddleware

        nssa_mw = GroupCastMiddleware(middleware.deployment,
                                      default_scheme="nssa")
        group = nssa_mw.create_group(nssa_mw.sample_members(8))
        assert group.scheme == "nssa"

    def test_custom_capacity_distribution(self):
        from repro.peers.capacity import CapacityDistribution
        from repro.groupcast.middleware import GroupCastMiddleware
        from tests.conftest import SMALL_CONFIG

        uniform = CapacityDistribution(levels=(10.0,), weights=(1.0,))
        mw = GroupCastMiddleware.build(
            peer_count=60, config=SMALL_CONFIG, capacities=uniform)
        assert all(info.capacity == 10.0
                   for info in mw.deployment.overlay.peers())

"""Tests for the trust layer: reputation, lossy dissemination, SSA hook."""

import numpy as np
import pytest

from repro.config import AnnouncementConfig, ConfigurationError
from repro.errors import GroupError
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.spanning_tree import SpanningTree
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng
from repro.trust.dissemination import disseminate_with_failures
from repro.trust.reputation import ReputationLedger, TrustConfig


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


class TestReputationLedger:
    def test_initial_score(self):
        ledger = ReputationLedger()
        assert ledger.score(1, 2) == 0.5
        assert ledger.aggregate_score(2) == 0.5

    def test_success_raises_failure_lowers(self):
        ledger = ReputationLedger()
        ledger.record(1, 2, success=True)
        up = ledger.score(1, 2)
        ledger.record(1, 3, success=False)
        down = ledger.score(1, 3)
        assert up > 0.5 > down

    def test_ewma_converges_toward_behavior(self):
        ledger = ReputationLedger()
        for _ in range(30):
            ledger.record(1, 2, success=False)
        assert ledger.score(1, 2) < 0.05

    def test_floor_prevents_zero(self):
        ledger = ReputationLedger(TrustConfig(floor=0.05))
        for _ in range(100):
            ledger.record(1, 2, success=False)
        assert ledger.score(1, 2) >= 0.05

    def test_aggregate_over_observers(self):
        ledger = ReputationLedger()
        ledger.record(1, 9, success=False)
        ledger.record(2, 9, success=False)
        ledger.record(3, 9, success=True)
        aggregate = ledger.aggregate_score(9)
        assert aggregate == pytest.approx(
            (ledger.score(1, 9) + ledger.score(2, 9)
             + ledger.score(3, 9)) / 3)
        assert ledger.observation_count(9) == 3

    def test_suspects_threshold(self):
        ledger = ReputationLedger()
        for observer in (1, 2, 3):
            for _ in range(10):
                ledger.record(observer, 9, success=False)
        ledger.record(1, 5, success=True)
        assert ledger.suspects(threshold=0.25) == {9}

    def test_trust_fn_views(self):
        ledger = ReputationLedger()
        ledger.record(1, 2, success=False)
        local = ledger.trust_fn(use_aggregate=False)
        aggregate = ledger.trust_fn(use_aggregate=True)
        assert local(1, 2) == ledger.score(1, 2)
        assert aggregate(7, 2) == ledger.aggregate_score(2)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TrustConfig(initial_score=0.0)
        with pytest.raises(ConfigurationError):
            TrustConfig(ewma_alpha=0.0)
        with pytest.raises(ConfigurationError):
            TrustConfig(floor=1.0)


@pytest.fixture()
def chain_world():
    """Tree 0 <- 1 <- 2 <- 3 over a matching overlay."""
    tree = SpanningTree(root=0)
    tree.graft_chain([1, 0])
    tree.graft_chain([2, 1])
    tree.graft_chain([3, 2])
    for node in (1, 2, 3):
        tree.mark_member(node)
    from repro.config import TransitStubConfig
    from repro.network.topology import generate_transit_stub

    underlay = generate_transit_stub(
        TransitStubConfig(transit_domains=1, transit_routers_per_domain=2,
                          stub_domains_per_transit=2, routers_per_stub=2),
        spawn_rng(20, "topo"))
    rng = spawn_rng(20, "attach")
    for peer in range(4):
        underlay.attach_peer(peer, rng)
    return tree, underlay


class TestLossyDissemination:
    def test_no_free_riders_full_delivery(self, chain_world):
        tree, underlay = chain_world
        report = disseminate_with_failures(
            tree, 0, underlay, spawn_rng(0, "d"))
        assert report.delivery_ratio == 1.0
        assert not report.starved_members

    def test_free_rider_starves_subtree(self, chain_world):
        tree, underlay = chain_world
        report = disseminate_with_failures(
            tree, 0, underlay, spawn_rng(0, "d"),
            free_riders={1}, drop_probability=1.0)
        # 1 receives but never forwards: 2 and 3 starve.
        assert 1 in report.member_delays_ms
        assert report.starved_members == frozenset({2, 3})
        assert report.drops == 1

    def test_ledger_records_evidence(self, chain_world):
        tree, underlay = chain_world
        ledger = ReputationLedger()
        disseminate_with_failures(
            tree, 0, underlay, spawn_rng(0, "d"),
            free_riders={1}, drop_probability=1.0, ledger=ledger)
        assert ledger.score(2, 1) < 0.5   # 2 blames 1
        assert ledger.score(1, 0) > 0.5   # 1 credits 0

    def test_probabilistic_drops(self, chain_world):
        tree, underlay = chain_world
        delivered = 0
        for seed in range(40):
            report = disseminate_with_failures(
                tree, 0, underlay, spawn_rng(seed, "d"),
                free_riders={1}, drop_probability=0.5)
            delivered += 2 in report.member_delays_ms
        assert 8 < delivered < 32

    def test_validation(self, chain_world):
        tree, underlay = chain_world
        with pytest.raises(GroupError):
            disseminate_with_failures(
                tree, 99, underlay, spawn_rng(0, "d"))
        with pytest.raises(GroupError):
            disseminate_with_failures(
                tree, 0, underlay, spawn_rng(0, "d"),
                drop_probability=1.5)


class TestTrustAwareSSA:
    def test_distrusted_peer_falls_off_advertisement_paths(self):
        """With zero trust in peer 1, SSA never forwards through it."""
        overlay = make_overlay(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)])
        ledger = ReputationLedger(TrustConfig(floor=0.0))
        for observer in (0, 2, 3, 4):
            for _ in range(50):
                ledger.record(observer, 1, success=False)

        config = AnnouncementConfig(ssa_fanout_fraction=0.5,
                                    ssa_min_fanout=1)
        forwarded_through_1 = 0
        for seed in range(20):
            outcome = propagate_advertisement(
                overlay, 0, 1, "ssa", lambda a, b: 1.0,
                spawn_rng(seed, "trust"), config,
                trust_fn=ledger.trust_fn())
            for receipt in outcome.receipts.values():
                if receipt.upstream == 1:
                    forwarded_through_1 += 1
        assert forwarded_through_1 == 0

    def test_neutral_trust_changes_nothing_structurally(self):
        overlay = make_overlay([(0, 1), (1, 2), (2, 3)])
        ledger = ReputationLedger()
        outcome = propagate_advertisement(
            overlay, 0, 1, "ssa", lambda a, b: 1.0,
            spawn_rng(1, "trust"),
            AnnouncementConfig(ssa_fanout_fraction=1.0),
            trust_fn=ledger.trust_fn())
        assert len(outcome.receipts) == 4

"""Unit tests for the deterministic randomness helpers."""

import numpy as np
import pytest

from repro.sim.random import (
    exponential_interarrivals,
    spawn_rng,
    weighted_sample_without_replacement,
)


def test_same_stream_same_draws():
    a = spawn_rng(7, "topology").random(5)
    b = spawn_rng(7, "topology").random(5)
    assert np.array_equal(a, b)


def test_different_streams_differ():
    a = spawn_rng(7, "topology").random(5)
    b = spawn_rng(7, "churn").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = spawn_rng(7, "topology").random(5)
    b = spawn_rng(8, "topology").random(5)
    assert not np.array_equal(a, b)


def test_mixed_int_and_str_stream_components():
    rng = spawn_rng(7, "churn", 3)
    assert rng.random() >= 0.0


def test_exponential_interarrivals_mean():
    rng = spawn_rng(0, "expo")
    draws = exponential_interarrivals(rng, 1000.0, 20_000)
    assert draws.shape == (20_000,)
    assert (draws >= 0.0).all()
    assert abs(draws.mean() - 1000.0) / 1000.0 < 0.05


def test_exponential_interarrivals_validation():
    rng = spawn_rng(0, "expo")
    with pytest.raises(ValueError):
        exponential_interarrivals(rng, -1.0, 5)
    with pytest.raises(ValueError):
        exponential_interarrivals(rng, 10.0, -1)


class TestWeightedSampleWithoutReplacement:
    def test_returns_k_distinct_items(self, rng):
        items = list("abcdefgh")
        weights = [1.0] * 8
        chosen = weighted_sample_without_replacement(rng, items, weights, 5)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5
        assert set(chosen) <= set(items)

    def test_k_zero_returns_empty(self, rng):
        assert weighted_sample_without_replacement(rng, [1, 2], [1, 1], 0) == []

    def test_zero_weight_items_never_chosen(self, rng):
        items = ["never", "always"]
        for _ in range(50):
            chosen = weighted_sample_without_replacement(
                rng, items, [0.0, 1.0], 1)
            assert chosen == ["always"]

    def test_all_zero_weights_returns_empty(self, rng):
        assert weighted_sample_without_replacement(
            rng, [1, 2, 3], [0.0, 0.0, 0.0], 2) == []

    def test_k_larger_than_population(self, rng):
        items = [1, 2, 3]
        chosen = weighted_sample_without_replacement(
            rng, items, [1.0, 1.0, 1.0], 10)
        assert sorted(chosen) == items

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            weighted_sample_without_replacement(rng, [1, 2], [1.0], 1)

    def test_heavier_weight_wins_more_often(self, rng):
        items = ["light", "heavy"]
        wins = sum(
            weighted_sample_without_replacement(
                rng, items, [1.0, 10.0], 1) == ["heavy"]
            for _ in range(500))
        assert wins > 350

"""Unit tests for the client/server, Skype-unicast and Narada baselines."""

import pytest

from repro.baselines.client_server import (
    build_client_server_tree,
    skype_unicast_cost,
)
from repro.baselines.narada import (
    NaradaMesh,
    build_narada_mesh,
    build_narada_tree,
)
from repro.config import TransitStubConfig
from repro.errors import GroupError
from repro.groupcast.dissemination import disseminate
from repro.network.topology import generate_transit_stub
from repro.sim.random import spawn_rng


@pytest.fixture(scope="module")
def underlay():
    u = generate_transit_stub(
        TransitStubConfig(transit_domains=2, transit_routers_per_domain=2,
                          stub_domains_per_transit=2, routers_per_stub=3),
        spawn_rng(8, "topo"))
    rng = spawn_rng(8, "attach")
    for peer in range(30):
        u.attach_peer(peer, rng)
    return u


class TestClientServer:
    def test_star_structure(self):
        tree = build_client_server_tree(0, [1, 2, 3])
        assert tree.height() == 1
        assert tree.children(0) == sorted(tree.children(0))
        assert len(tree.children(0)) == 3
        tree.validate()

    def test_server_in_member_list_is_skipped(self):
        tree = build_client_server_tree(0, [0, 1])
        assert tree.members == frozenset({0, 1})

    def test_server_fanout_grows_linearly(self):
        small = build_client_server_tree(0, list(range(1, 6)))
        large = build_client_server_tree(0, list(range(1, 21)))
        assert len(large.children(0)) == 4 * len(small.children(0))

    def test_empty_group_rejected(self):
        with pytest.raises(GroupError):
            build_client_server_tree(0, [])

    def test_server_workload_versus_groupcast(self, underlay):
        """Star root stress far exceeds a balanced tree's node stress."""
        members = list(range(1, 25))
        tree = build_client_server_tree(0, members)
        assert tree.node_stress() == len(members)


class TestSkypeUnicast:
    def test_cost_and_delay(self, underlay):
        ip_messages, delay = skype_unicast_cost(underlay, 0, [0, 1, 2, 3])
        per_peer = [underlay.peer_distance_ms(0, m) for m in (1, 2, 3)]
        assert delay == pytest.approx(sum(per_peer) / 3)
        assert ip_messages == sum(
            len(underlay.peer_path_links(0, m)) for m in (1, 2, 3))

    def test_no_receivers_rejected(self, underlay):
        with pytest.raises(GroupError):
            skype_unicast_cost(underlay, 0, [0])

    def test_unicast_delay_is_lower_bound_for_star(self, underlay):
        members = list(range(8))
        _, unicast_delay = skype_unicast_cost(underlay, 0, members)
        tree = build_client_server_tree(0, members)
        report = disseminate(tree, 0, underlay)
        assert report.average_member_delay_ms >= unicast_delay - 1e-9


class TestNarada:
    def test_mesh_connects_all_members(self, underlay):
        rng = spawn_rng(1, "narada")
        mesh = build_narada_mesh(underlay, list(range(12)), rng)
        tree = mesh.shortest_path_tree(0)
        assert set(tree.nodes()) == set(range(12))
        tree.validate()

    def test_tree_contains_all_members(self, underlay):
        rng = spawn_rng(1, "narada")
        tree = build_narada_tree(underlay, 0, list(range(1, 15)), rng)
        assert tree.members == frozenset(range(15))
        tree.validate()

    def test_tree_paths_respect_mesh_distances(self, underlay):
        rng = spawn_rng(1, "narada")
        mesh = build_narada_mesh(underlay, list(range(10)), rng)
        tree = mesh.shortest_path_tree(0)
        # Tree path latency equals the Dijkstra distance: recompute one.
        node = 7
        path = tree.path_to_root(node)
        total = sum(mesh.adjacency[a][b] for a, b in zip(path, path[1:]))
        direct = underlay.peer_distance_ms(0, node)
        assert total >= direct - 1e-9  # mesh cannot beat direct unicast

    def test_mesh_edge_count(self):
        mesh = NaradaMesh(members=(1, 2, 3))
        mesh.add_link(1, 2, 5.0)
        mesh.add_link(2, 3, 5.0)
        assert mesh.edge_count == 2

    def test_mesh_self_link_rejected(self):
        mesh = NaradaMesh(members=(1,))
        with pytest.raises(GroupError):
            mesh.add_link(1, 1, 1.0)

    def test_source_must_be_in_mesh(self):
        mesh = NaradaMesh(members=(1, 2))
        mesh.add_link(1, 2, 1.0)
        with pytest.raises(GroupError):
            mesh.shortest_path_tree(99)

    def test_single_member_rejected(self, underlay):
        with pytest.raises(GroupError):
            build_narada_mesh(underlay, [0], spawn_rng(1, "n"))

    def test_duplicate_members_deduplicated(self, underlay):
        rng = spawn_rng(1, "narada")
        tree = build_narada_tree(underlay, 0, [1, 1, 2, 2], rng)
        assert tree.members == frozenset({0, 1, 2})

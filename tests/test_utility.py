"""Unit + property tests for the utility function (Equations 1-6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import UtilityConfig
from repro.errors import ConfigurationError
from repro.utility.backlink import back_link_acceptance_probability
from repro.utility.preference import (
    capacity_preference,
    derive_parameters,
    distance_preference,
    normalized_distances,
    selection_preference,
)
from repro.utility.resource_level import estimate_resource_level

CONFIG = UtilityConfig()


class TestDeriveParameters:
    def test_paper_formulae(self):
        alpha, beta, gamma = derive_parameters(0.5)
        assert alpha == pytest.approx(0.5)
        assert beta == pytest.approx(0.5)
        assert gamma == pytest.approx(0.5 ** (-math.log(0.5)))

    def test_weak_peer_is_distance_dominated(self):
        _, _, gamma = derive_parameters(0.05)
        assert gamma < 0.01

    def test_powerful_peer_is_capacity_dominated(self):
        _, _, gamma = derive_parameters(0.95)
        assert gamma > 0.99

    def test_extreme_inputs_clamped(self):
        for r in (0.0, 1.0, -3.0, 7.0):
            alpha, beta, gamma = derive_parameters(r)
            assert alpha < 1.0
            assert beta < 1.0
            assert 0.0 < gamma <= 1.0


class TestNormalizedDistances:
    def test_eq2_normalisation(self):
        d = normalized_distances(np.array([100.0, 200.0, 400.0]))
        assert np.allclose(d, [0.25, 0.5, 1.0])

    def test_floor_prevents_zero(self):
        d = normalized_distances(np.array([0.0, 10.0]))
        assert d[0] > 0.0

    def test_all_in_unit_interval(self):
        d = normalized_distances(np.array([3.0, 9.0, 1.0, 400.0]))
        assert ((d > 0.0) & (d <= 1.0)).all()

    def test_empty(self):
        assert normalized_distances(np.array([])).size == 0


class TestDistancePreference:
    def test_is_probability_vector(self):
        p = distance_preference(np.array([10.0, 50.0, 300.0]), alpha=0.5)
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0.0).all()

    def test_closer_is_preferred(self):
        p = distance_preference(np.array([10.0, 100.0]), alpha=0.5)
        assert p[0] > p[1]

    def test_high_alpha_sharpens_preference(self):
        distances = np.array([10.0, 100.0])
        mild = distance_preference(distances, alpha=0.0)
        sharp = distance_preference(distances, alpha=0.95)
        assert sharp[0] > mild[0]

    def test_alpha_at_least_one_rejected(self):
        with pytest.raises(ConfigurationError):
            distance_preference(np.array([1.0, 2.0]), alpha=1.0)


class TestCapacityPreference:
    def test_is_probability_vector(self):
        p = capacity_preference(np.array([1.0, 10.0, 100.0]), beta=0.5)
        assert p.sum() == pytest.approx(1.0)
        assert (p > 0.0).all()

    def test_powerful_is_preferred(self):
        p = capacity_preference(np.array([1.0, 1000.0]), beta=0.5)
        assert p[1] > p[0]

    def test_proportionality(self):
        p = capacity_preference(np.array([10.0, 20.0]), beta=0.0)
        assert p[1] / p[0] == pytest.approx(2.0)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            capacity_preference(np.array([0.0, 2.0]), beta=0.5)

    def test_beta_at_least_one_rejected(self):
        with pytest.raises(ConfigurationError):
            capacity_preference(np.array([1.0]), beta=1.5)


class TestSelectionPreference:
    def test_weak_peer_ranks_by_distance(self):
        capacities = np.array([10000.0, 1.0])
        distances = np.array([300.0, 5.0])  # powerful peer is far away
        p = selection_preference(capacities, distances, resource_level=0.05)
        assert p[1] > p[0]

    def test_powerful_peer_ranks_by_capacity(self):
        capacities = np.array([10000.0, 1.0])
        distances = np.array([300.0, 5.0])
        p = selection_preference(capacities, distances, resource_level=0.95)
        assert p[0] > p[1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            selection_preference(np.array([1.0]), np.array([1.0, 2.0]), 0.5)

    def test_empty_candidate_list(self):
        p = selection_preference(np.array([]), np.array([]), 0.5)
        assert p.size == 0

    def test_single_candidate_gets_probability_one(self):
        p = selection_preference(np.array([5.0]), np.array([10.0]), 0.5)
        assert p[0] == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1,
                 max_size=40),
        st.floats(min_value=0.001, max_value=0.999),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_probability_vector(self, capacities, resource_level,
                                         seed):
        rng = np.random.default_rng(seed)
        capacities = np.asarray(capacities)
        distances = rng.uniform(0.1, 400.0, size=capacities.size)
        p = selection_preference(capacities, distances, resource_level)
        assert p.shape == capacities.shape
        assert np.isfinite(p).all()
        assert (p >= 0.0).all()
        assert p.sum() == pytest.approx(1.0)

    @given(st.floats(min_value=0.001, max_value=0.999))
    @settings(max_examples=40, deadline=None)
    def test_property_dominant_candidate_wins(self, resource_level):
        """A candidate both closer and more capable is never dispreferred."""
        capacities = np.array([100.0, 10.0])
        distances = np.array([10.0, 200.0])
        p = selection_preference(capacities, distances, resource_level)
        assert p[0] >= p[1]


class TestResourceLevel:
    def test_fraction_below(self):
        r = estimate_resource_level(100.0, [1.0, 10.0, 1000.0, 50.0])
        assert r == pytest.approx(0.75)

    def test_no_samples_defaults_to_median(self):
        assert estimate_resource_level(10.0, []) == pytest.approx(0.5)

    def test_clamping_at_extremes(self):
        top = estimate_resource_level(1e6, [1.0] * 50)
        bottom = estimate_resource_level(0.5, [10.0] * 50)
        assert top <= CONFIG.max_resource_level
        assert bottom >= CONFIG.min_resource_level

    def test_equal_capacity_not_counted_below(self):
        r = estimate_resource_level(10.0, [10.0, 10.0])
        assert r == CONFIG.min_resource_level

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            estimate_resource_level(0.0, [1.0])


class TestBackLink:
    def test_empty_neighborhood_always_accepts(self):
        p = back_link_acceptance_probability(10.0, 1.0, 50.0, [], [])
        assert p == 1.0

    def test_probability_in_unit_interval(self):
        p = back_link_acceptance_probability(
            10.0, 100.0, 50.0, [1.0, 10.0, 100.0], [10.0, 20.0, 30.0])
        assert 0.0 <= p <= 1.0

    def test_powerful_acceptor_prefers_powerful_requester(self):
        neighbors_c = [1.0, 5.0, 10.0]
        neighbors_d = [50.0, 50.0, 50.0]
        strong_req = back_link_acceptance_probability(
            1000.0, 500.0, 200.0, neighbors_c, neighbors_d)
        weak_req = back_link_acceptance_probability(
            1000.0, 0.5, 200.0, neighbors_c, neighbors_d)
        assert strong_req > weak_req

    def test_weak_acceptor_prefers_close_requester(self):
        neighbors_c = [100.0, 500.0, 1000.0]
        neighbors_d = [50.0, 60.0, 70.0]
        close_req = back_link_acceptance_probability(
            1.0, 1.0, 5.0, neighbors_c, neighbors_d)
        far_req = back_link_acceptance_probability(
            1.0, 1.0, 500.0, neighbors_c, neighbors_d)
        assert close_req > far_req

    def test_paper_formula_exact(self):
        # rc_own = 2/3, rc_req = 1/3, rd_req = 2/3
        p = back_link_acceptance_probability(
            own_capacity=10.0,
            requester_capacity=2.0,
            requester_distance_ms=20.0,
            neighbor_capacities=[1.0, 10.0, 100.0],
            neighbor_distances_ms=[10.0, 20.0, 30.0],
        )
        rc_own = 2.0 / 3.0
        expected = rc_own**2 * (1.0 / 3.0) + (1 - rc_own**2) * (2.0 / 3.0)
        assert p == pytest.approx(expected)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            back_link_acceptance_probability(1.0, 1.0, 1.0, [1.0], [])

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1,
                 max_size=20),
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=0.1, max_value=500.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_valid_probability(self, capacities, own, req, dist,
                                        seed):
        rng = np.random.default_rng(seed)
        distances = rng.uniform(0.1, 500.0, size=len(capacities)).tolist()
        p = back_link_acceptance_probability(
            own, req, dist, capacities, distances)
        assert 0.0 <= p <= 1.0

"""Tests for virtual-time metric sampling and wall-clock phase timing."""

import pytest

from repro.errors import TelemetryError
from repro.obs import (
    Profiler,
    Registry,
    Tracer,
    disable_profiling,
    enable_profiling,
    get_default_profiler,
    histogram_quantile,
    phase_timer,
)
from repro.obs.profiler import _NOOP_TIMER
from repro.overlay.messages import MessageKind
from repro.sim.engine import Simulator
from repro.sim.messaging import MessageNetwork
from repro.sim.random import spawn_rng


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        assert histogram_quantile((1.0, 10.0), (0, 0, 0), 0.5) == 0.0

    def test_linear_interpolation_inside_bucket(self):
        # 4 samples in (0, 10]: the median rank (2 of 4) sits at the
        # bucket midpoint under linear interpolation.
        assert histogram_quantile((10.0, 20.0), (4, 0, 0),
                                  0.5) == pytest.approx(5.0)

    def test_overflow_clamps_to_last_edge(self):
        assert histogram_quantile((1.0, 10.0), (0, 0, 5), 0.99) == 10.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(TelemetryError):
            histogram_quantile((1.0,), (1, 0), 1.5)


class TestProfilerSampling:
    def test_rejects_bad_interval(self):
        with pytest.raises(TelemetryError):
            Profiler(Registry(), interval_ms=0.0)

    def test_samples_on_cadence_boundaries_pre_event(self):
        registry = Registry()
        counter = registry.counter("events")
        profiler = Profiler(registry, interval_ms=100.0)
        simulator = Simulator(profiler=profiler)
        simulator.schedule_at(50.0, counter.inc)
        simulator.schedule_at(250.0, counter.inc)
        simulator.run()
        profiler.finish(simulator.now)
        series = profiler.series("events")
        # Boundary samples see pre-event state: t=0 before the t=50
        # event, t=200 after it, plus the closing sample at t=250.
        assert [(at, v) for at, v in series.points] == [
            (0.0, 0), (200.0, 1), (250.0, 2)]

    def test_quiet_boundaries_are_skipped(self):
        registry = Registry()
        profiler = Profiler(registry, interval_ms=10.0)
        simulator = Simulator(profiler=profiler)
        simulator.schedule_at(5.0, lambda: None)
        simulator.schedule_at(95.0, lambda: None)
        simulator.run()
        series = profiler.series("obs") if registry.names() else None
        assert series is None  # empty registry yields no series
        # Two events → at most two boundary samples, not ten.
        registry.counter("c")
        profiler2 = Profiler(registry, interval_ms=10.0)
        sim2 = Simulator(profiler=profiler2)
        sim2.schedule_at(5.0, lambda: None)
        sim2.schedule_at(95.0, lambda: None)
        sim2.run()
        assert [at for at, _ in profiler2.series("c").points] == [
            0.0, 90.0]

    def test_typed_series_and_summaries(self):
        registry = Registry()
        registry.counter("sent").inc(3)
        registry.gauge("alive").set(7.0)
        registry.histogram("lat", bounds=(10.0, 100.0)).observe(5.0)
        profiler = Profiler(registry, interval_ms=50.0)
        profiler.sample(0.0)
        registry.counter("sent").inc(2)
        registry.gauge("alive").set(4.0)
        registry.histogram("lat").observe(50.0)
        profiler.sample(50.0)
        counter = profiler.series("sent")
        assert counter.kind == "counter"
        assert counter.deltas() == [(50.0, 2.0)]
        assert counter.summary()["total_delta"] == 2.0
        gauge = profiler.series("alive").summary()
        assert (gauge["min"], gauge["max"]) == (4.0, 7.0)
        hist = profiler.series("lat")
        assert hist.kind == "histogram"
        assert hist.points[-1].count == 2
        assert hist.summary()["p99"] > hist.summary()["p50"]
        assert {p["name"] for p in
                (s.to_dict() for s in profiler.all_series())} == {
                    "sent", "alive", "lat"}

    def test_disabled_profiler_never_samples(self):
        registry = Registry()
        registry.counter("c").inc()
        profiler = Profiler(registry, enabled=False)
        profiler.on_advance(1000.0)
        profiler.finish(2000.0)
        assert profiler.all_series() == []

    def test_monotone_sample_guard(self):
        registry = Registry()
        registry.counter("c")
        profiler = Profiler(registry, interval_ms=10.0)
        profiler.sample(20.0)
        profiler.sample(20.0)  # duplicate timestamp ignored
        profiler.sample(10.0)  # regression ignored
        assert len(profiler.series("c")) == 1


class TestDigestTransparency:
    def _run(self, profiler):
        tracer = Tracer()
        simulator = Simulator(tracer=tracer, profiler=profiler)
        network = MessageNetwork(simulator, lambda a, b: 2.0,
                                 spawn_rng(0, "n"), tracer=tracer)
        network.register(2, lambda env: None)
        for i in range(20):
            simulator.schedule_at(
                float(i), lambda: network.send(1, 2, "x",
                                               MessageKind.PAYLOAD))
        simulator.run()
        return tracer.trace_digest()

    def test_attached_profiler_leaves_digest_bit_identical(self):
        registry = Registry()
        registry.counter("c").inc()
        bare = self._run(None)
        profiled = self._run(Profiler(registry, interval_ms=1.0))
        assert profiled == bare


class TestPhaseTimers:
    def test_phase_accumulates_calls_and_time(self):
        profiler = Profiler(Registry())
        for _ in range(3):
            with profiler.phase("solve"):
                pass
        stats = profiler.phase_stats()["solve"]
        assert stats["calls"] == 3
        assert stats["total_s"] >= 0.0
        assert stats["mean_ms"] >= 0.0

    def test_phase_timer_is_shared_noop_when_disabled(self):
        disable_profiling()
        assert phase_timer("anything") is _NOOP_TIMER
        assert phase_timer("other") is _NOOP_TIMER

    def test_phase_timer_uses_default_profiler(self):
        profiler = enable_profiling(Registry())
        try:
            assert get_default_profiler() is profiler
            with phase_timer("hot"):
                pass
            assert profiler.phase_stats()["hot"]["calls"] == 1
        finally:
            disable_profiling()
        assert get_default_profiler() is None

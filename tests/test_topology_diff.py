"""Tests for cross-run topology diffs and the CI regression gate.

The core guarantee the gate relies on: runs are deterministic, so two
same-seed runs reconstruct to byte-identical structural states and the
diff's ``drift`` is exactly zero — any nonzero drift is a regression,
not noise.
"""

import json

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.obs import (
    TopologyRecorder,
    diff_artifacts,
    diff_recorders,
    diff_snapshots,
    reconstruct_epochs,
)
from repro.obs.diff import main as diff_main
from repro.obs.diff import state_at
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


def _recorded_run(extra_link=None, extra_metric=None):
    """A small scripted run; optional structural/metric perturbation."""
    overlay = make_overlay([(1, 2), (2, 3), (3, 4)])
    recorder = TopologyRecorder()
    recorder.watch_overlay(overlay, baseline_at_ms=0.0)
    overlay.remove_link(2, 3)
    recorder.snapshot(100.0)
    overlay.add_link(2, 3)
    if extra_link is not None:
        overlay.add_link(*extra_link)
    metrics = dict(extra_metric or {})
    recorder.snapshot(200.0, extra_metrics=metrics)
    return recorder


class TestReplay:
    def test_reconstruct_matches_final(self):
        recorder = _recorded_run()
        artifact = recorder.to_dict()
        state = reconstruct_epochs(artifact)[1]
        assert sorted(state["peers"]) == artifact["final"]["peers"]
        assert sorted(map(list, state["links"])) == \
            artifact["final"]["links"]
        assert state["snapshots"] == 3
        assert state["last_at_ms"] == 200.0

    def test_state_at_checkpoint(self):
        artifact = _recorded_run().to_dict()
        mid = state_at(artifact, 1)  # after the partition snapshot
        assert (2, 3) not in mid["links"]
        end = state_at(artifact, 2)
        assert (2, 3) in end["links"]
        with pytest.raises(TelemetryError):
            state_at(artifact, 99)

    def test_state_at_replays_only_its_epoch(self):
        recorder = _recorded_run()
        second = make_overlay([(10, 11)])
        recorder.watch_overlay(second, baseline_at_ms=0.0)
        artifact = recorder.to_dict()
        last_seq = artifact["snapshots"][-1]["seq"]
        state = state_at(artifact, last_seq)
        assert state["peers"] == {10, 11}


class TestSelfConsistency:
    def test_same_run_diffed_against_itself_is_zero(self):
        artifact = _recorded_run().to_dict()
        diff = diff_artifacts(artifact, artifact)
        assert diff.drift == 0
        assert diff.structural_drift == 0
        assert diff.metric_drift == 0

    def test_same_seed_cross_run_is_zero(self):
        diff = diff_recorders(_recorded_run(), _recorded_run())
        assert diff.drift == 0
        assert "No structural or metric drift." in diff.render_markdown()


class TestDriftAccounting:
    def test_structural_difference_detected(self):
        diff = diff_recorders(_recorded_run(),
                              _recorded_run(extra_link=(1, 4)))
        epoch = diff.epochs[0]
        assert epoch.links_added == ((1, 4),)
        assert epoch.links_removed == ()
        # One extra link: the delta changed one snapshot's content, not
        # the snapshot count, so drift counts exactly that link.
        assert diff.structural_drift == 1
        assert diff.drift >= 1

    def test_metric_difference_detected(self):
        diff = diff_recorders(
            _recorded_run(extra_metric={"custom.quality": 1.0}),
            _recorded_run(extra_metric={"custom.quality": 3.0}))
        assert diff.structural_drift == 0
        assert diff.metric_drift == 1
        change = diff.metric_changes[0]
        assert change["metric"] == "custom.quality"
        assert change["a"] == 1.0 and change["b"] == 3.0
        assert change["delta"] == 2.0
        assert "| custom.quality |" in diff.render_markdown()

    def test_missing_metric_is_nan_sided(self):
        diff = diff_recorders(
            _recorded_run(),
            _recorded_run(extra_metric={"custom.quality": 3.0}))
        change = next(c for c in diff.metric_changes
                      if c["metric"] == "custom.quality")
        assert np.isnan(change["a"]) and change["b"] == 3.0

    def test_missing_epoch_counts_fully(self):
        single = _recorded_run()
        double = _recorded_run()
        double.watch_overlay(make_overlay([(10, 11)]),
                             baseline_at_ms=0.0)
        diff = diff_recorders(single, double)
        second = next(e for e in diff.epochs if e.epoch == 2)
        assert second.peers_added == (10, 11)
        assert second.structural_drift >= 3  # 2 peers + 1 link + count

    def test_to_dict_roundtrips_through_json(self):
        diff = diff_recorders(_recorded_run(),
                              _recorded_run(extra_link=(1, 4)))
        payload = json.loads(json.dumps(diff.to_dict()))
        assert payload["structural_drift"] == 1
        assert payload["epochs"][0]["links_added"] == [[1, 4]]


class TestSnapshotDiff:
    def test_checkpoint_diff_within_one_run(self):
        artifact = _recorded_run().to_dict()
        diff = diff_snapshots(artifact, 0, 1)
        epoch = diff.epochs[0]
        # The partition snapshot removed one link relative to baseline.
        assert epoch.links_removed == ((2, 3),)
        # Checkpoint counts legitimately differ and must not be drift.
        assert epoch.snapshot_counts == (0, 0)
        assert diff.structural_drift == 1


class TestCLI:
    def _write_artifacts(self, tmp_path, perturb=False):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        _recorded_run().export_json(a)
        run_b = _recorded_run(extra_link=(1, 4) if perturb else None)
        run_b.export_json(b)
        return a, b

    def test_zero_drift_gate_passes(self, tmp_path, capsys):
        a, b = self._write_artifacts(tmp_path)
        assert diff_main([str(a), str(b), "--max-drift", "0"]) == 0
        assert "structural drift 0" in capsys.readouterr().out

    def test_drift_gate_fails(self, tmp_path, capsys):
        a, b = self._write_artifacts(tmp_path, perturb=True)
        assert diff_main([str(a), str(b), "--max-drift", "0"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_no_gate_always_passes(self, tmp_path):
        a, b = self._write_artifacts(tmp_path, perturb=True)
        assert diff_main([str(a), str(b)]) == 0

    def test_write_and_markdown_outputs(self, tmp_path):
        a, b = self._write_artifacts(tmp_path, perturb=True)
        out_json = tmp_path / "diff.json"
        out_md = tmp_path / "diff.md"
        diff_main([str(a), str(b), "--write", str(out_json),
                   "--markdown", str(out_md)])
        payload = json.loads(out_json.read_text())
        assert payload["structural_drift"] == 1
        assert out_md.read_text().startswith("# Topology diff")

    def test_loads_embedded_report_artifact(self, tmp_path):
        artifact = _recorded_run().to_dict()
        report = tmp_path / "report.json"
        report.write_text(json.dumps({"topology": artifact,
                                      "counters": {}}))
        raw = tmp_path / "raw.json"
        _recorded_run().export_json(raw)
        assert diff_main([str(report), str(raw),
                          "--max-drift", "0"]) == 0

    def test_rejects_non_artifact(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{\"counters\": {}}")
        raw = tmp_path / "raw.json"
        _recorded_run().export_json(raw)
        with pytest.raises(TelemetryError):
            diff_main([str(bogus), str(raw)])

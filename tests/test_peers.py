"""Unit tests for peer identity and capacity distributions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.peers.capacity import (
    PAPER_CAPACITY_DISTRIBUTION,
    CapacityDistribution,
    zipf_capacities,
)
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


class TestCapacityDistribution:
    def test_paper_table1_levels(self):
        dist = PAPER_CAPACITY_DISTRIBUTION
        assert dist.levels == (1.0, 10.0, 100.0, 1000.0, 10000.0)
        assert dist.weights == (0.20, 0.45, 0.30, 0.049, 0.001)

    def test_sample_matches_table1_proportions(self):
        rng = spawn_rng(0, "cap")
        draws = PAPER_CAPACITY_DISTRIBUTION.sample(rng, 100_000)
        for level, weight in zip((1.0, 10.0, 100.0), (0.20, 0.45, 0.30)):
            observed = (draws == level).mean()
            assert abs(observed - weight) < 0.01

    def test_sample_one(self):
        rng = spawn_rng(0, "cap")
        value = PAPER_CAPACITY_DISTRIBUTION.sample_one(rng)
        assert value in PAPER_CAPACITY_DISTRIBUTION.levels

    def test_mean(self):
        dist = CapacityDistribution(levels=(1.0, 3.0), weights=(0.5, 0.5))
        assert dist.mean() == pytest.approx(2.0)

    def test_resource_level_of(self):
        dist = PAPER_CAPACITY_DISTRIBUTION
        assert dist.resource_level_of(1.0) == 0.0
        assert dist.resource_level_of(10.0) == pytest.approx(0.20)
        assert dist.resource_level_of(10000.0) == pytest.approx(0.999)
        assert dist.resource_level_of(20000.0) == pytest.approx(1.0)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            CapacityDistribution(levels=(1.0, 2.0), weights=(0.5, 0.6))

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityDistribution(levels=(1.0, 2.0), weights=(-0.1, 1.1))

    def test_non_positive_level_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityDistribution(levels=(0.0, 2.0), weights=(0.5, 0.5))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CapacityDistribution(levels=(), weights=())

    def test_negative_count_rejected(self):
        rng = spawn_rng(0, "cap")
        with pytest.raises(ConfigurationError):
            PAPER_CAPACITY_DISTRIBUTION.sample(rng, -1)


class TestZipfCapacities:
    def test_range_and_truncation(self):
        rng = spawn_rng(1, "zipf")
        draws = zipf_capacities(rng, 10_000, exponent=2.0, max_capacity=1000)
        assert draws.min() >= 1.0
        assert draws.max() <= 1000.0

    def test_heavy_tail_shape(self):
        rng = spawn_rng(1, "zipf")
        draws = zipf_capacities(rng, 50_000, exponent=2.0)
        ones = (draws == 1.0).mean()
        assert 0.5 < ones < 0.75  # zeta(2) gives P(1) ~ 0.61

    def test_exponent_validation(self):
        rng = spawn_rng(1, "zipf")
        with pytest.raises(ConfigurationError):
            zipf_capacities(rng, 10, exponent=1.0)

    def test_count_validation(self):
        rng = spawn_rng(1, "zipf")
        with pytest.raises(ConfigurationError):
            zipf_capacities(rng, -5)


class TestPeerInfo:
    def _info(self, peer_id=3, capacity=10.0):
        return PeerInfo(peer_id=peer_id, capacity=capacity,
                        coordinate=np.array([1.0, 2.0]))

    def test_quadruplet_contents(self):
        info = self._info()
        ip, port, coordinate, capacity = info.quadruplet()
        assert ip.startswith("10.")
        assert 6346 <= port < 7346
        assert coordinate == (1.0, 2.0)
        assert capacity == 10.0

    def test_ip_address_unique_per_peer(self):
        a = self._info(peer_id=1)
        b = self._info(peer_id=2)
        assert a.ip_address != b.ip_address

    def test_coordinate_distance(self):
        a = PeerInfo(1, 1.0, np.array([0.0, 0.0]))
        b = PeerInfo(2, 1.0, np.array([3.0, 4.0]))
        assert a.coordinate_distance(b) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeerInfo(-1, 1.0, np.zeros(2))
        with pytest.raises(ValueError):
            PeerInfo(1, 0.0, np.zeros(2))

    def test_equality_and_hash(self):
        a = self._info()
        b = self._info()
        assert a == b
        assert hash(a) == hash(b)
        assert a != self._info(peer_id=4)

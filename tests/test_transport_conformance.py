"""Differential conformance: the transport seam vs pre-PR dispatch.

The runtime refactor routes every protocol send and timer through a
:class:`~repro.runtime.Transport`.  Its contract is that the simulator
adapter (:class:`~repro.runtime.SimTransport`) is *observably
indistinguishable* from the direct ``MessageNetwork``/``Simulator``
dispatch it replaced: any protocol episode replayed through the seam
must produce a trace digest **bit-identical** to pre-PR behavior.

The pinned values below were captured on the commit *before* the seam
existed, running the exact scenario of :func:`_run_episode`: a full
event-driven session (SSA and NSSA) under the PR-3 adversarial fault
plan (reorder + duplicate windows, a two-component partition, drops,
crashes with partial restarts) for all three recovery policies.  A
mismatch means the transport extraction changed protocol behavior —
that is a bug, not an acceptable approximation (same contract as
``tests/test_soa_equivalence.py``).
"""

from __future__ import annotations

import pytest

from repro.config import AnnouncementConfig
from repro.deployment import build_deployment
from repro.experiments.resilience import (
    POLICIES,
    _publish_if_alive,
    _reset_branch,
)
from repro.faults import FaultInjector, FaultPlan
from repro.groupcast.session import GroupSession
from repro.obs.registry import Registry
from repro.obs.tracer import Tracer
from repro.sim.random import spawn_rng

from .conftest import SMALL_CONFIG

SEED = 7
GROUP = 1
SPAN_MS = 2_000.0
ANNOUNCEMENT = AnnouncementConfig(advertisement_ttl=7,
                                  subscription_search_ttl=3)

#: ``(scheme, policy) -> trace digest`` captured before the transport
#: seam existed.  Any change here invalidates the conformance oracle.
PRE_PR_DIGESTS = {
    ("ssa", "none"):
        "d28009baec8e491c6dce8a8cf0fd4a76f33ae6093d077b3d90a7720336086a24",
    ("ssa", "repair"):
        "f15ece6731dd5c939c39420d3f16d032ea915dfec3e90bf801aecc0f95967533",
    ("ssa", "replication"):
        "cb7cc0b7a0b2aec9c1394ab2a60309b5e497b7089b2d4fd926f297b1fe1ed654",
    ("nssa", "none"):
        "6432c7d7d32b84591d9583a89dbaa4e47b8405dfa626656ac3138b457c9f4a15",
    ("nssa", "repair"):
        "6922347c11496b32b2b7db897e0bab3161a589bc912ebd9729b68579c253afff",
    ("nssa", "replication"):
        "7b91d31a749dd7a8209f85d33099ddb6700a740f80d8471ad9c28981694ef97c",
}


def _run_episode(scheme: str, policy: str, members_count: int = 30):
    """One adversarial fault-schedule session; returns observables.

    Mirrors the ``run_adversarial`` scenario at unit-test scale: the
    overlay is built once, a group establishes over ``scheme``, and a
    seeded :meth:`FaultPlan.adversarial` schedule runs against the
    chosen recovery policy while payloads flow.
    """
    deployment = build_deployment(150, kind="groupcast",
                                  config=SMALL_CONFIG, seed=SEED)
    overlay = deployment.overlay
    registry = Registry()
    tracer = Tracer()
    session = GroupSession(
        overlay, deployment.peer_distance_ms,
        spawn_rng(SEED, "conf-session"), announcement=ANNOUNCEMENT,
        utility=deployment.config.utility, registry=registry,
        tracer=tracer)
    member_rng = spawn_rng(SEED, "conf-members")
    ids = deployment.peer_ids()
    picks = member_rng.choice(len(ids), size=members_count, replace=False)
    members = [ids[int(i)] for i in picks]
    rendezvous = members[0]
    session.establish(GROUP, rendezvous, members, scheme)

    t0 = session.simulator.now
    interior = [peer for peer in sorted(session.nodes)
                if peer != rendezvous
                and session.upstream_children(GROUP, peer)]
    plan = FaultPlan.adversarial(
        SEED, ids, start_ms=t0, duration_ms=SPAN_MS,
        crash_candidates=interior, crash_count=2)
    injector = FaultInjector(plan, spawn_rng(SEED, "conf-faults"),
                             registry, tracer)
    injector.attach(session.network)
    backups = session.backup_parents(GROUP)

    def on_crash(victim: int) -> None:
        orphans = sorted(session.upstream_children(GROUP, victim))
        session.crash_peer(victim)
        if policy == "replication":
            for orphan in orphans:
                backup = backups.get(orphan)
                if backup is None or not session.failover_upstream(
                        GROUP, orphan, backup):
                    _reset_branch(session, GROUP, [orphan])
        elif policy == "repair":
            _reset_branch(session, GROUP, orphans)

    def on_restart(peer_id: int) -> None:
        if peer_id in overlay:
            session.restart_peer(peer_id)

    injector.arm(session.simulator, overlay=overlay,
                 on_crash=on_crash, on_restart=on_restart)

    if policy != "none":
        def sweep() -> None:
            broken = session.broken_upstream_peers(GROUP)
            if broken:
                _reset_branch(session, GROUP, broken)

        session.simulator.every(SPAN_MS / 8, sweep)

    for index in range(4):
        payload_id = next(session._payload_ids)
        session.simulator.schedule_at(
            t0 + (index + 0.5) * SPAN_MS / 4,
            lambda p=payload_id: _publish_if_alive(
                session, GROUP, rendezvous, p))
    session.simulator.run()

    return {
        "digest": tracer.trace_digest(),
        "conservation_gap": session.network.conservation_gap(),
        "members_on_tree": sorted(session.members_on_tree(GROUP)),
        "events": session.simulator.events_processed,
    }


@pytest.mark.telemetry
@pytest.mark.slow
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("scheme", ["ssa", "nssa"])
def test_sim_transport_digest_matches_pre_pr(scheme, policy):
    outcome = _run_episode(scheme, policy)
    assert outcome["digest"] == PRE_PR_DIGESTS[(scheme, policy)]
    assert outcome["conservation_gap"] == 0


@pytest.mark.telemetry
def test_session_routes_through_sim_transport():
    """The refactored session must actually use the seam."""
    from repro.runtime import SimTransport

    deployment = build_deployment(120, kind="groupcast",
                                  config=SMALL_CONFIG, seed=SEED)
    session = GroupSession(
        deployment.overlay, deployment.peer_distance_ms,
        spawn_rng(SEED, "seam"), announcement=ANNOUNCEMENT)
    assert isinstance(session.transport, SimTransport)
    assert session.transport.network is session.network
    assert session.transport.now() == session.simulator.now

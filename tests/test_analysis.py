"""Tests for the analytical models, including model-vs-simulation checks."""

import numpy as np
import pytest

from repro.analysis.message_costs import (
    expected_reach,
    nssa_expected_messages,
    ssa_expected_messages,
    ssa_savings,
)
from repro.analysis.parameters import (
    analytic_parameters,
    resource_level_estimation_error,
)
from repro.analysis.powerlaw import hop_pair_counts, hop_pair_exponent
from repro.errors import ConfigurationError
from repro.peers.capacity import PAPER_CAPACITY_DISTRIBUTION
from repro.sim.random import spawn_rng
from repro.utility.preference import derive_parameters


class TestMessageCostModel:
    def test_nssa_covers_overlay_given_enough_ttl(self):
        estimate = nssa_expected_messages(1000, 8.0, ttl=8)
        assert estimate.reached > 950

    def test_ssa_sends_fewer_messages(self):
        nssa = nssa_expected_messages(1000, 8.0, ttl=6)
        ssa = ssa_expected_messages(1000, 8.0, ttl=6, fanout_fraction=0.35)
        assert ssa.messages < nssa.messages

    def test_traffic_scales_linearly_with_n(self):
        small = nssa_expected_messages(1000, 8.0, ttl=10)
        large = nssa_expected_messages(8000, 8.0, ttl=10)
        ratio = large.messages / small.messages
        assert 5.0 < ratio < 11.0

    def test_savings_between_zero_and_one(self):
        for fraction in (0.2, 0.35, 0.5, 0.9):
            savings = ssa_savings(2000, 8.0, 6, fraction)
            assert 0.0 <= savings < 1.0

    def test_reach_monotone_in_fanout(self):
        low = expected_reach(2000, 8.0, 6, fanout_fraction=0.3)
        high = expected_reach(2000, 8.0, 6, fanout_fraction=0.8)
        assert low <= high <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            nssa_expected_messages(1, 8.0, 6)
        with pytest.raises(ConfigurationError):
            nssa_expected_messages(100, 1.0, 6)
        with pytest.raises(ConfigurationError):
            ssa_expected_messages(100, 8.0, 6, fanout_fraction=0.0)
        with pytest.raises(ConfigurationError):
            nssa_expected_messages(100, 8.0, 0)

    def test_model_matches_simulation_within_factor_two(
            self, groupcast_deployment):
        """The branching model should predict simulated NSSA traffic to
        within a factor of ~2 on a real overlay."""
        from repro.groupcast.advertisement import propagate_advertisement

        deployment = groupcast_deployment
        n = deployment.peer_count
        mean_degree = 2 * deployment.overlay.edge_count / n
        ttl = deployment.config.announcement.advertisement_ttl
        predicted = nssa_expected_messages(n, mean_degree, ttl).messages

        rng = spawn_rng(0, "model-check")
        simulated = []
        for start in deployment.peer_ids()[:5]:
            outcome = propagate_advertisement(
                deployment.overlay, start, 0, "nssa",
                deployment.peer_distance_ms, rng,
                deployment.config.announcement,
                deployment.config.utility)
            simulated.append(outcome.messages_sent)
        observed = float(np.mean(simulated))
        assert 0.4 < predicted / observed < 2.5


class TestPowerLawExpansion:
    def test_hop_pair_counts_monotone(self, groupcast_deployment):
        rng = spawn_rng(1, "expansion")
        totals = hop_pair_counts(groupcast_deployment.overlay, rng,
                                 sample=32)
        assert (np.diff(totals) >= -1e-9).all()

    def test_exponent_positive_and_diameter_low(self,
                                                groupcast_deployment):
        rng = spawn_rng(1, "expansion")
        hbar, max_hops = hop_pair_exponent(
            groupcast_deployment.overlay, rng, sample=32)
        assert hbar > 0.5
        # 250 peers with Gnutella-like degrees: diameter well under 15.
        assert max_hops < 15

    def test_total_pairs_scale(self, groupcast_deployment):
        rng = spawn_rng(2, "expansion")
        totals = hop_pair_counts(groupcast_deployment.overlay, rng,
                                 sample=250)
        n = groupcast_deployment.peer_count
        # Full sample: the last entry counts every ordered reachable pair.
        assert totals[-1] == pytest.approx(n * (n - 1), rel=0.01)


class TestParameterDerivation:
    def test_analytic_matches_derive_parameters(self):
        capacity = 100.0
        exact_r = PAPER_CAPACITY_DISTRIBUTION.resource_level_of(capacity)
        assert analytic_parameters(
            capacity, PAPER_CAPACITY_DISTRIBUTION) == \
            derive_parameters(exact_r)

    def test_estimator_is_nearly_unbiased(self):
        rng = spawn_rng(3, "estimator")
        report = resource_level_estimation_error(
            100.0, PAPER_CAPACITY_DISTRIBUTION, sample_size=30, rng=rng)
        assert abs(report["bias"]) < 0.05
        assert report["rmse"] < 0.15

    def test_rmse_shrinks_with_sample_size(self):
        rng = spawn_rng(4, "estimator")
        small = resource_level_estimation_error(
            100.0, PAPER_CAPACITY_DISTRIBUTION, sample_size=5, rng=rng)
        large = resource_level_estimation_error(
            100.0, PAPER_CAPACITY_DISTRIBUTION, sample_size=100, rng=rng)
        assert large["rmse"] < small["rmse"]

    def test_validation(self):
        rng = spawn_rng(5, "estimator")
        with pytest.raises(ConfigurationError):
            resource_level_estimation_error(
                10.0, PAPER_CAPACITY_DISTRIBUTION, 0, rng)
        with pytest.raises(ConfigurationError):
            resource_level_estimation_error(
                10.0, PAPER_CAPACITY_DISTRIBUTION, 10, rng, trials=0)


class TestScalabilityModels:
    def test_unicast_bound_matches_skype_cap(self):
        from repro.analysis.scalability import max_group_unicast

        # A typical residential uplink good for ~5 concurrent streams
        # supports a 6-party conference - Skype's historical cap.
        assert max_group_unicast(5.0) == 6

    def test_star_bound(self):
        from repro.analysis.scalability import max_group_star

        assert max_group_star(100.0) == 101

    def test_tree_bound_uses_aggregate_capacity(self):
        from repro.analysis.scalability import max_group_tree

        # Five peers of capacity 1 can form a 5-node tree (4 edges).
        assert max_group_tree(np.array([1.0] * 5)) == 5
        # A single strong peer plus weak ones scales further.
        assert max_group_tree(np.array([10.0] + [1.0] * 20)) == 21

    def test_tree_bound_validation(self):
        from repro.analysis.scalability import max_group_tree
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            max_group_tree(np.array([0.0, 1.0]))

    def test_paper_headline_one_to_two_orders(self):
        from repro.analysis.scalability import expected_scalability_gain

        rng = spawn_rng(9, "scalability")
        report = expected_scalability_gain(
            PAPER_CAPACITY_DISTRIBUTION, population=5000, rng=rng)
        # The abstract's claim: one to two orders of magnitude over the
        # unicast/star model for a typical (median-capacity) host.
        assert 1.0 <= report["gain_orders"] <= 3.0
        assert report["tree"] > report["unicast"]

    def test_percentile_validation(self):
        from repro.analysis.scalability import expected_scalability_gain
        from repro.errors import ConfigurationError

        rng = spawn_rng(9, "scalability")
        with pytest.raises(ConfigurationError):
            expected_scalability_gain(
                PAPER_CAPACITY_DISTRIBUTION, 100, rng,
                speaker_percentile=1.5)

    def test_concrete_groupcast_tree_against_budget(
            self, groupcast_deployment):
        from repro.analysis.scalability import tree_respects_capacities
        from repro.groupcast.advertisement import propagate_advertisement
        from repro.groupcast.subscription import subscribe_members

        deployment = groupcast_deployment
        rng = spawn_rng(10, "scal-tree")
        advertisement = propagate_advertisement(
            deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
            deployment.peer_distance_ms, rng,
            deployment.config.announcement, deployment.config.utility)
        tree, _ = subscribe_members(
            deployment.overlay, advertisement,
            deployment.peer_ids()[1:60], deployment.peer_distance_ms,
            deployment.config.announcement)
        capacities = {info.peer_id: info.capacity
                      for info in deployment.overlay.peers()}
        # The utility-aware tree keeps (nearly) all fan-out within
        # capacity; permit a couple of 1x stragglers with 2 children.
        violations = sum(
            1 for node in tree.nodes()
            if len(tree.children(node)) > capacities[node])
        assert violations <= 0.1 * tree.node_count

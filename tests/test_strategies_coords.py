"""Tests for SSA forwarding strategies and coordinate backends."""

import numpy as np
import pytest

from repro.config import AnnouncementConfig, ConfigurationError
from repro.deployment import build_deployment
from repro.groupcast.advertisement import propagate_advertisement
from repro.sim.random import spawn_rng
from tests.conftest import SMALL_CONFIG


def propagate(deployment, scheme="ssa", strategy="utility", seed=0):
    config = AnnouncementConfig(ssa_strategy=strategy)
    return propagate_advertisement(
        deployment.overlay, deployment.peer_ids()[0], 0, scheme,
        deployment.peer_distance_ms, spawn_rng(seed, "strategy"),
        config, deployment.config.utility)


class TestSSAStrategies:
    def test_invalid_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            AnnouncementConfig(ssa_strategy="smart")

    @pytest.mark.parametrize("strategy",
                             ["utility", "random", "distance", "capacity"])
    def test_all_strategies_propagate(self, groupcast_deployment, strategy):
        outcome = propagate(groupcast_deployment, strategy=strategy)
        assert len(outcome.receipts) > 10
        assert outcome.messages_sent > 0

    def test_strategies_produce_different_trees(self, groupcast_deployment):
        utility = propagate(groupcast_deployment, strategy="utility")
        random = propagate(groupcast_deployment, strategy="random")
        assert set(utility.receipts) != set(random.receipts)

    def test_distance_strategy_prefers_short_edges(self,
                                                   groupcast_deployment):
        """Mean ad-hop latency under the distance strategy is lower than
        under the random strategy (averaged over several runs)."""
        deployment = groupcast_deployment

        def mean_edge_latency(strategy, seed):
            outcome = propagate(deployment, strategy=strategy, seed=seed)
            latencies = [
                deployment.peer_distance_ms(r.upstream, r.peer_id)
                for r in outcome.receipts.values()
                if r.upstream is not None
            ]
            return np.mean(latencies)

        distance = np.mean([mean_edge_latency("distance", s)
                            for s in range(5)])
        random = np.mean([mean_edge_latency("random", s)
                          for s in range(5)])
        assert distance < random

    def test_capacity_strategy_prefers_powerful_forwarders(
            self, groupcast_deployment):
        deployment = groupcast_deployment

        def mean_forwarder_capacity(strategy, seed):
            outcome = propagate(deployment, strategy=strategy, seed=seed)
            capacities = [
                deployment.peer_info(r.upstream).capacity
                for r in outcome.receipts.values()
                if r.upstream is not None
            ]
            return np.mean(capacities)

        capacity = np.mean([mean_forwarder_capacity("capacity", s)
                            for s in range(5)])
        random = np.mean([mean_forwarder_capacity("random", s)
                          for s in range(5)])
        assert capacity > random


class TestCoordinateBackends:
    def test_vivaldi_deployment_builds(self):
        deployment = build_deployment(
            80, kind="groupcast", config=SMALL_CONFIG,
            coordinates="vivaldi")
        assert deployment.overlay.is_connected()
        assert len(deployment.space) == 80

    def test_vivaldi_coordinates_approximate_latency(self):
        deployment = build_deployment(
            80, kind="groupcast", config=SMALL_CONFIG,
            coordinates="vivaldi")
        rng = np.random.default_rng(1)
        errors = []
        for _ in range(100):
            a, b = rng.choice(80, size=2, replace=False)
            true = deployment.peer_distance_ms(int(a), int(b))
            est = deployment.coordinate_distance_ms(int(a), int(b))
            errors.append(abs(est - true) / max(true, 1e-9))
        assert float(np.median(errors)) < 0.7

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            build_deployment(10, config=SMALL_CONFIG,
                             coordinates="oracle")

    def test_vivaldi_overlay_still_proximity_aware(self):
        from repro.metrics.overlay_metrics import (
            average_neighbor_distance_ms,
        )

        vivaldi = build_deployment(
            120, kind="groupcast", config=SMALL_CONFIG,
            coordinates="vivaldi")
        plod = build_deployment(120, kind="plod", config=SMALL_CONFIG)
        v = average_neighbor_distance_ms(vivaldi.overlay, vivaldi.underlay)
        p = average_neighbor_distance_ms(plod.overlay, plod.underlay)
        assert v[v > 0].mean() < p[p > 0].mean()

"""Unit tests for heartbeat maintenance and churn handling."""

import numpy as np
import pytest

from repro.config import OverlayConfig
from repro.errors import OverlayError
from repro.overlay.bootstrap import UtilityBootstrap
from repro.overlay.graph import OverlayNetwork
from repro.overlay.hostcache import HostCacheServer
from repro.overlay.maintenance import MaintenanceDaemon
from repro.overlay.messages import MessageKind, MessageStats
from repro.peers.peer import PeerInfo
from repro.sim.engine import Simulator
from repro.sim.random import spawn_rng


def make_info(peer_id, capacity=10.0):
    return PeerInfo(peer_id=peer_id, capacity=capacity,
                    coordinate=np.array([float(peer_id), 0.0]))


@pytest.fixture()
def world():
    simulator = Simulator()
    overlay = OverlayNetwork()
    cache = HostCacheServer(max_entries=64, dimensions=2,
                            rng=spawn_rng(0, "hc"))
    stats = MessageStats()
    bootstrap = UtilityBootstrap(
        overlay=overlay, host_cache=cache, rng=spawn_rng(0, "b"),
        stats=stats)
    config = OverlayConfig(
        heartbeat_interval_ms=1_000.0,
        epoch_ms=5_000.0,
        min_epoch_ms=2_000.0,
        max_epoch_ms=20_000.0,
    )
    daemon = MaintenanceDaemon(
        simulator=simulator, overlay=overlay, host_cache=cache,
        bootstrap=bootstrap, rng=spawn_rng(0, "m"), config=config,
        stats=stats)
    for i in range(20):
        bootstrap.join(make_info(i))
        daemon.activate(i)
    return simulator, overlay, daemon, stats


def test_activation_requires_overlay_membership():
    daemon = MaintenanceDaemon(
        simulator=Simulator(), overlay=OverlayNetwork(),
        host_cache=HostCacheServer(max_entries=8, dimensions=2),
        bootstrap=None, rng=spawn_rng(0, "m"))
    with pytest.raises(OverlayError):
        daemon.activate(99)


def test_double_activation_rejected(world):
    _, _, daemon, _ = world
    with pytest.raises(OverlayError):
        daemon.activate(0)


def test_heartbeats_flow_in_steady_state(world):
    simulator, _, daemon, stats = world
    simulator.run(until=3_000.0)
    assert stats.count(MessageKind.HEARTBEAT) > 0
    assert stats.count(MessageKind.HEARTBEAT_REPLY) == \
        stats.count(MessageKind.HEARTBEAT)


def test_crashed_peer_detected_and_removed(world):
    simulator, overlay, daemon, _ = world
    victim = 5
    assert overlay.degree(victim) > 0
    daemon.crash(victim)
    # Two missed heartbeats at 1s interval -> detected well within 10s.
    simulator.run(until=10_000.0)
    assert victim not in overlay or overlay.degree(victim) == 0
    assert any(dead == victim for _, _, dead in daemon.detected_failures)


def test_crash_unregisters_from_host_cache(world):
    _, _, daemon, _ = world
    daemon.crash(3)
    assert 3 not in daemon.host_cache
    assert not daemon.is_alive(3)


def test_graceful_departure_is_immediate(world):
    _, overlay, daemon, stats = world
    degree = overlay.degree(7)
    daemon.depart(7)
    assert 7 not in overlay
    assert stats.count(MessageKind.DEPARTURE) == degree
    assert not daemon.is_alive(7)


def test_depart_and_crash_are_idempotent(world):
    _, _, daemon, _ = world
    daemon.depart(2)
    daemon.depart(2)
    daemon.crash(2)
    assert not daemon.is_alive(2)


def test_epoch_repair_restores_degree(world):
    simulator, overlay, daemon, _ = world
    victim = 4
    daemon.crash(victim)
    survivors_hit = [n for n in overlay.neighbors(victim)]
    simulator.run(until=40_000.0)
    # Every live neighbor of the victim should be repaired back above zero.
    for peer in survivors_hit:
        if daemon.is_alive(peer):
            assert overlay.degree(peer) >= 1
    assert daemon.repairs or all(
        overlay.degree(p) >= 1 for p in survivors_hit if daemon.is_alive(p))


def test_overlay_stays_connected_under_churn(world):
    simulator, overlay, daemon, _ = world
    rng = spawn_rng(1, "kill")
    victims = rng.choice(20, size=5, replace=False)
    for victim in victims:
        daemon.crash(int(victim))
    simulator.run(until=60_000.0)
    alive = daemon.alive_peers()
    # Check connectivity of the live sub-overlay.
    sizes = overlay.connected_component_sizes()
    assert sizes[0] >= len(alive) * 0.9


def test_alive_peers_listing(world):
    _, _, daemon, _ = world
    assert len(daemon.alive_peers()) == 20
    daemon.crash(0)
    assert len(daemon.alive_peers()) == 19


def test_crash_cancels_pending_timers(world):
    """Crashing disarms both timer chains instead of leaving them to
    fire as scheduled no-ops (the pre-seam latent bug)."""
    _, _, daemon, _ = world
    victim = 6
    state = daemon._states[victim]
    assert state.heartbeat_timer is not None
    assert state.epoch_timer is not None
    daemon.crash(victim)
    assert state.heartbeat_timer is None
    assert state.epoch_timer is None


def test_depart_cancels_pending_timers(world):
    _, _, daemon, _ = world
    state = daemon._states[8]
    daemon.depart(8)
    assert state.heartbeat_timer is None
    assert state.epoch_timer is None


def test_no_dead_peer_events_fire_post_crash(world):
    """A crashed peer must never run another maintenance event — its
    heartbeat and epoch callbacks are cancelled, not merely no-oped."""
    simulator, _, daemon, _ = world
    victim = 9
    fired: list[int] = []
    original_heartbeat = daemon._heartbeat_round
    original_epoch = daemon._epoch_end

    def tracked_heartbeat(peer_id):
        fired.append(peer_id)
        original_heartbeat(peer_id)

    def tracked_epoch(peer_id):
        fired.append(peer_id)
        original_epoch(peer_id)

    daemon._heartbeat_round = tracked_heartbeat
    daemon._epoch_end = tracked_epoch
    daemon.crash(victim)
    simulator.run(until=60_000.0)
    assert victim not in fired
    assert fired  # the survivors' chains kept running


def test_epoch_shrinks_under_churn_and_recovers(world):
    """The adaptive epoch shortens when failures are detected and
    stretches back out in calm periods (within configured bounds)."""
    simulator, overlay, daemon, _ = world
    base = daemon.config.epoch_ms
    # Kill several neighbors of peer 0 so its epochs observe failures.
    victims = list(overlay.neighbors(0))[:3]
    for victim in victims:
        daemon.crash(victim)
    simulator.run(until=15_000.0)
    shaken = daemon._states[0].epoch_ms
    assert shaken <= base
    # Calm period: epochs stretch again, capped at max_epoch_ms.
    simulator.run(until=120_000.0)
    recovered = daemon._states[0].epoch_ms
    assert recovered >= shaken
    assert recovered <= daemon.config.max_epoch_ms

"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.errors import GroupError, OverlayError
from repro.groupcast.dissemination import DisseminationReport
from repro.groupcast.spanning_tree import SpanningTree
from repro.metrics.overlay_metrics import (
    average_neighbor_distance_ms,
    degree_histogram,
    power_law_fit,
)
from repro.metrics.tree_metrics import (
    aggregate_workloads,
    link_stress,
    node_stress,
    overload_index,
    relative_delay_penalty,
)
from repro.network.multicast import IPMulticastTree
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo


def make_report(delays, ip_messages=10):
    return DisseminationReport(
        source=0,
        member_delays_ms=delays,
        overlay_messages=len(delays),
        ip_messages=ip_messages,
        physical_link_stress={},
    )


def make_ip_tree(delays, links=5):
    return IPMulticastTree(
        source=0,
        subscribers=tuple(delays),
        links=frozenset((i, i + 1) for i in range(links)),
        delays_ms=delays,
    )


class TestDelayPenalty:
    def test_ratio_of_average_delays(self):
        report = make_report({1: 30.0, 2: 30.0})
        ip = make_ip_tree({1: 10.0, 2: 20.0})
        assert relative_delay_penalty(report, ip) == pytest.approx(2.0)

    def test_lower_bound_is_one_when_equal(self):
        report = make_report({1: 15.0})
        ip = make_ip_tree({1: 15.0})
        assert relative_delay_penalty(report, ip) == pytest.approx(1.0)

    def test_zero_ip_delay_rejected(self):
        report = make_report({1: 15.0})
        ip = make_ip_tree({1: 0.0})
        with pytest.raises(GroupError):
            relative_delay_penalty(report, ip)


class TestLinkStress:
    def test_ratio_of_message_counts(self):
        report = make_report({1: 1.0}, ip_messages=15)
        ip = make_ip_tree({1: 1.0}, links=5)
        assert link_stress(report, ip) == pytest.approx(3.0)


class TestNodeStress:
    def test_single_star_tree(self):
        tree = SpanningTree(root=0)
        for leaf in (1, 2, 3):
            tree.graft_chain([leaf, 0])
        assert node_stress([tree]) == pytest.approx(3.0)

    def test_averaged_over_multiple_trees(self):
        star = SpanningTree(root=0)
        for leaf in (1, 2, 3):
            star.graft_chain([leaf, 0])
        chain = SpanningTree(root=0)
        chain.graft_chain([2, 1, 0])
        # Fanouts: star root 3; chain nodes 1, 1 -> mean 5/3.
        assert node_stress([star, chain]) == pytest.approx(5.0 / 3.0)

    def test_empty(self):
        assert node_stress([]) == 0.0
        assert node_stress([SpanningTree(root=0)]) == 0.0


class TestOverload:
    def test_workload_aggregation_across_groups(self):
        t1 = SpanningTree(root=0)
        t1.graft_chain([1, 0])
        t1.graft_chain([2, 0])
        t2 = SpanningTree(root=0)
        t2.graft_chain([1, 0])
        loads = aggregate_workloads([t1, t2])
        assert loads[0] == 3
        assert 1 not in loads  # leaves carry no forwarding load

    def test_overload_index_formula(self):
        workloads = {0: 5, 1: 1, 2: 10}
        capacities = {0: 1.0, 1: 10.0, 2: 1.0}
        # Overloaded: 0 (excess 4) and 2 (excess 9); fraction 2/3.
        expected = (2.0 / 3.0) * ((4 + 9) / 2.0)
        assert overload_index(workloads, capacities) == pytest.approx(
            expected)

    def test_no_overload_gives_zero(self):
        assert overload_index({0: 1}, {0: 10.0}) == 0.0
        assert overload_index({}, {}) == 0.0

    def test_capacity_scale(self):
        workloads = {0: 5}
        capacities = {0: 1.0}
        assert overload_index(workloads, capacities,
                              capacity_scale=10.0) == 0.0
        with pytest.raises(GroupError):
            overload_index(workloads, capacities, capacity_scale=0.0)


class TestPowerLawFit:
    def test_recovers_known_exponent(self):
        degrees = np.arange(1, 50)
        counts = np.round(1e4 * degrees ** -2.0).astype(int)
        keep = counts > 0
        exponent, r2 = power_law_fit(degrees[keep], counts[keep])
        assert exponent == pytest.approx(2.0, abs=0.15)
        assert r2 > 0.98

    def test_too_few_points_rejected(self):
        with pytest.raises(OverlayError):
            power_law_fit(np.array([1, 2]), np.array([5, 3]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(OverlayError):
            power_law_fit(np.array([1, 2, 3]), np.array([5, 3]))


class TestDegenerateInputs:
    """Observatory-driven edge cases: every metric helper must survive
    empty trees, singleton overlays and zero-traffic reports without a
    divide-by-zero (the watchdogs sample them on a fixed cadence, so
    these states really occur mid-run)."""

    def test_zero_traffic_report_averages_are_zero(self):
        report = make_report({}, ip_messages=0)
        assert report.average_member_delay_ms == 0.0
        assert report.max_member_delay_ms == 0.0

    def test_link_stress_zero_link_ip_tree_rejected(self):
        report = make_report({1: 1.0})
        ip = make_ip_tree({1: 1.0}, links=0)
        with pytest.raises(GroupError):
            link_stress(report, ip)

    def test_node_stress_root_only_tree(self):
        assert node_stress([SpanningTree(root=7)]) == 0.0
        assert aggregate_workloads([SpanningTree(root=7)]) == {}

    def test_degree_histogram_empty_overlay(self):
        values, counts = degree_histogram(OverlayNetwork())
        assert values.size == 0 and counts.size == 0

    def test_degree_histogram_singleton_drops_zero_degree(self):
        overlay = OverlayNetwork()
        overlay.add_peer(PeerInfo(1, 10.0, np.zeros(2)))
        values, counts = degree_histogram(overlay)
        assert values.size == 0 and counts.size == 0

    def test_power_law_fit_all_zero_counts_rejected(self):
        with pytest.raises(OverlayError):
            power_law_fit(np.array([1, 2, 3]), np.array([0, 0, 0]))

    def test_neighbor_distance_singleton_overlay(self):
        from repro.config import GroupCastConfig, TransitStubConfig
        from repro.deployment import build_deployment

        config = GroupCastConfig(
            underlay=TransitStubConfig(
                transit_domains=2, transit_routers_per_domain=3,
                stub_domains_per_transit=2, routers_per_stub=3),
            seed=5)
        deployment = build_deployment(4, kind="groupcast", config=config)
        lonely = OverlayNetwork()
        lonely.add_peer(deployment.overlay.peer(
            deployment.peer_ids()[0]))
        distances = average_neighbor_distance_ms(
            lonely, deployment.underlay)
        assert distances.tolist() == [0.0]

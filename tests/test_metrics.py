"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.errors import GroupError, OverlayError
from repro.groupcast.dissemination import DisseminationReport
from repro.groupcast.spanning_tree import SpanningTree
from repro.metrics.overlay_metrics import power_law_fit
from repro.metrics.tree_metrics import (
    aggregate_workloads,
    link_stress,
    node_stress,
    overload_index,
    relative_delay_penalty,
)
from repro.network.multicast import IPMulticastTree


def make_report(delays, ip_messages=10):
    return DisseminationReport(
        source=0,
        member_delays_ms=delays,
        overlay_messages=len(delays),
        ip_messages=ip_messages,
        physical_link_stress={},
    )


def make_ip_tree(delays, links=5):
    return IPMulticastTree(
        source=0,
        subscribers=tuple(delays),
        links=frozenset((i, i + 1) for i in range(links)),
        delays_ms=delays,
    )


class TestDelayPenalty:
    def test_ratio_of_average_delays(self):
        report = make_report({1: 30.0, 2: 30.0})
        ip = make_ip_tree({1: 10.0, 2: 20.0})
        assert relative_delay_penalty(report, ip) == pytest.approx(2.0)

    def test_lower_bound_is_one_when_equal(self):
        report = make_report({1: 15.0})
        ip = make_ip_tree({1: 15.0})
        assert relative_delay_penalty(report, ip) == pytest.approx(1.0)

    def test_zero_ip_delay_rejected(self):
        report = make_report({1: 15.0})
        ip = make_ip_tree({1: 0.0})
        with pytest.raises(GroupError):
            relative_delay_penalty(report, ip)


class TestLinkStress:
    def test_ratio_of_message_counts(self):
        report = make_report({1: 1.0}, ip_messages=15)
        ip = make_ip_tree({1: 1.0}, links=5)
        assert link_stress(report, ip) == pytest.approx(3.0)


class TestNodeStress:
    def test_single_star_tree(self):
        tree = SpanningTree(root=0)
        for leaf in (1, 2, 3):
            tree.graft_chain([leaf, 0])
        assert node_stress([tree]) == pytest.approx(3.0)

    def test_averaged_over_multiple_trees(self):
        star = SpanningTree(root=0)
        for leaf in (1, 2, 3):
            star.graft_chain([leaf, 0])
        chain = SpanningTree(root=0)
        chain.graft_chain([2, 1, 0])
        # Fanouts: star root 3; chain nodes 1, 1 -> mean 5/3.
        assert node_stress([star, chain]) == pytest.approx(5.0 / 3.0)

    def test_empty(self):
        assert node_stress([]) == 0.0
        assert node_stress([SpanningTree(root=0)]) == 0.0


class TestOverload:
    def test_workload_aggregation_across_groups(self):
        t1 = SpanningTree(root=0)
        t1.graft_chain([1, 0])
        t1.graft_chain([2, 0])
        t2 = SpanningTree(root=0)
        t2.graft_chain([1, 0])
        loads = aggregate_workloads([t1, t2])
        assert loads[0] == 3
        assert 1 not in loads  # leaves carry no forwarding load

    def test_overload_index_formula(self):
        workloads = {0: 5, 1: 1, 2: 10}
        capacities = {0: 1.0, 1: 10.0, 2: 1.0}
        # Overloaded: 0 (excess 4) and 2 (excess 9); fraction 2/3.
        expected = (2.0 / 3.0) * ((4 + 9) / 2.0)
        assert overload_index(workloads, capacities) == pytest.approx(
            expected)

    def test_no_overload_gives_zero(self):
        assert overload_index({0: 1}, {0: 10.0}) == 0.0
        assert overload_index({}, {}) == 0.0

    def test_capacity_scale(self):
        workloads = {0: 5}
        capacities = {0: 1.0}
        assert overload_index(workloads, capacities,
                              capacity_scale=10.0) == 0.0
        with pytest.raises(GroupError):
            overload_index(workloads, capacities, capacity_scale=0.0)


class TestPowerLawFit:
    def test_recovers_known_exponent(self):
        degrees = np.arange(1, 50)
        counts = np.round(1e4 * degrees ** -2.0).astype(int)
        keep = counts > 0
        exponent, r2 = power_law_fit(degrees[keep], counts[keep])
        assert exponent == pytest.approx(2.0, abs=0.15)
        assert r2 > 0.98

    def test_too_few_points_rejected(self):
        with pytest.raises(OverlayError):
            power_law_fit(np.array([1, 2]), np.array([5, 3]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(OverlayError):
            power_law_fit(np.array([1, 2, 3]), np.array([5, 3]))

"""Unit tests for the blind-search primitives (ripple + random walks)."""

import numpy as np
import pytest

from repro.errors import OverlayError
from repro.overlay.graph import OverlayNetwork
from repro.overlay.search import random_walk_search, ripple_search
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


@pytest.fixture()
def line():
    return make_overlay([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])


@pytest.fixture()
def ring():
    return make_overlay([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])


class TestRippleSearch:
    def test_finds_target_within_ttl(self, line):
        result = ripple_search(line, 0, lambda p: p == 3, ttl=3)
        assert result.found
        assert result.hit.target == 3
        assert result.hit.depth == 3
        assert result.hit.route == (0, 1, 2)

    def test_misses_target_beyond_ttl(self, line):
        result = ripple_search(line, 0, lambda p: p == 5, ttl=2)
        assert not result.found
        assert result.messages == 2  # edges 0-1, 1-2

    def test_shallowest_hit_wins(self, ring):
        # Both 1 (1 hop) and 5 (1 hop the other way) match; depth ties are
        # broken by latency.
        result = ripple_search(
            ring, 0, lambda p: p in (1, 5), ttl=3,
            latency_fn=lambda a, b: 10.0 if b == 1 else 1.0)
        assert result.hit.target == 5

    def test_latency_accumulates(self, line):
        result = ripple_search(line, 0, lambda p: p == 2, ttl=3,
                               latency_fn=lambda a, b: 5.0)
        assert result.hit.latency_ms == pytest.approx(10.0)

    def test_exclusion_blocks_traversal(self, line):
        result = ripple_search(line, 0, lambda p: p == 3, ttl=5,
                               exclude={2})
        assert not result.found

    def test_origin_never_matches(self, line):
        result = ripple_search(line, 0, lambda p: True, ttl=1)
        assert result.hit.target != 0

    def test_unknown_origin_rejected(self, line):
        with pytest.raises(OverlayError):
            ripple_search(line, 99, lambda p: True, ttl=1)

    def test_message_count_bounded_by_edges(self, ring):
        result = ripple_search(ring, 0, lambda p: False, ttl=10)
        assert not result.found
        assert result.messages <= ring.edge_count * 2


class TestRandomWalkSearch:
    def test_walk_finds_target_on_line(self, line, rng):
        # On a line with predecessor-avoidance the walker marches forward.
        result = random_walk_search(
            line, 0, lambda p: p == 5, rng, walkers=1, walk_length=10)
        assert result.found
        assert result.hit.target == 5

    def test_walks_cost_fewer_messages_than_flood_on_dense_graph(self):
        rng = spawn_rng(3, "dense")
        edges = set()
        for i in range(60):
            for j in rng.choice(60, size=6, replace=False):
                if i != int(j):
                    edges.add((min(i, int(j)), max(i, int(j))))
        overlay = make_overlay(sorted(edges))
        target = 59
        flood = ripple_search(overlay, 0, lambda p: p == target, ttl=6)
        walk = random_walk_search(
            overlay, 0, lambda p: p == target, spawn_rng(4, "w"),
            walkers=2, walk_length=40)
        assert walk.messages < flood.messages

    def test_walker_budget_respected(self, ring, rng):
        result = random_walk_search(
            ring, 0, lambda p: False, rng, walkers=3, walk_length=7)
        assert not result.found
        assert result.messages <= 3 * 7

    def test_exclusion_respected(self, line, rng):
        result = random_walk_search(
            line, 0, lambda p: p == 3, rng, walkers=2, walk_length=10,
            exclude={2})
        assert not result.found

    def test_latency_accumulates_along_walk(self, line, rng):
        result = random_walk_search(
            line, 0, lambda p: p == 3, rng, walkers=1, walk_length=10,
            latency_fn=lambda a, b: 2.0)
        assert result.found
        assert result.hit.latency_ms == pytest.approx(2.0 * result.hit.depth)

    def test_invalid_budget_rejected(self, line, rng):
        with pytest.raises(OverlayError):
            random_walk_search(line, 0, lambda p: True, rng, walkers=0)
        with pytest.raises(OverlayError):
            random_walk_search(line, 0, lambda p: True, rng, walk_length=0)

    def test_unknown_origin_rejected(self, line, rng):
        with pytest.raises(OverlayError):
            random_walk_search(line, 99, lambda p: True, rng)

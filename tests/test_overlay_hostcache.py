"""Unit tests for the host cache server."""

import numpy as np
import pytest

from repro.errors import BootstrapError
from repro.overlay.hostcache import HostCacheServer
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def make_info(peer_id, x=0.0, y=0.0, capacity=10.0):
    return PeerInfo(peer_id=peer_id, capacity=capacity,
                    coordinate=np.array([x, y]))


@pytest.fixture()
def cache():
    return HostCacheServer(max_entries=16, dimensions=2,
                           rng=spawn_rng(0, "hc"))


def test_register_and_len(cache):
    cache.register(make_info(1))
    cache.register(make_info(2))
    assert len(cache) == 2
    assert 1 in cache and 3 not in cache


def test_register_is_idempotent(cache):
    cache.register(make_info(1, x=1.0))
    cache.register(make_info(1, x=9.0))
    assert len(cache) == 1
    entry = cache.entries()[0]
    assert entry.coordinate[0] == 9.0  # refreshed metadata


def test_unregister_idempotent(cache):
    cache.register(make_info(1))
    cache.unregister(1)
    cache.unregister(1)
    assert len(cache) == 0


def test_empty_cache_returns_no_candidates(cache, rng):
    assert cache.bootstrap_candidates(make_info(99), rng) == []


def test_joiner_never_returned(cache, rng):
    cache.register(make_info(7))
    result = cache.bootstrap_candidates(make_info(7), rng)
    assert result == []


def test_closest_half_is_by_coordinate_distance(cache, rng):
    # Peers at increasing distance from the origin-based joiner.
    for i in range(10):
        cache.register(make_info(i, x=float(i * 10)))
    joiner = make_info(99, x=0.0)
    result = cache.bootstrap_candidates(joiner, rng, list_size=8)
    closest_ids = {info.peer_id for info in result[:4]}
    assert closest_ids == {0, 1, 2, 3}


def test_random_half_excludes_closest(cache, rng):
    for i in range(12):
        cache.register(make_info(i, x=float(i * 10)))
    joiner = make_info(99, x=0.0)
    result = cache.bootstrap_candidates(joiner, rng, list_size=8)
    assert len(result) == 8
    random_ids = {info.peer_id for info in result[4:]}
    assert random_ids.isdisjoint({0, 1, 2, 3})


def test_small_cache_returns_everything(cache, rng):
    for i in range(3):
        cache.register(make_info(i, x=float(i)))
    result = cache.bootstrap_candidates(make_info(99), rng, list_size=8)
    assert {info.peer_id for info in result} == {0, 1, 2}


def test_eviction_keeps_bound(rng):
    cache = HostCacheServer(max_entries=8, dimensions=2,
                            rng=spawn_rng(1, "hc"))
    for i in range(50):
        cache.register(make_info(i))
    assert len(cache) == 8
    # All slots hold distinct live peers.
    ids = [info.peer_id for info in cache.entries()]
    assert len(set(ids)) == 8


def test_reregister_after_eviction(rng):
    cache = HostCacheServer(max_entries=4, dimensions=2,
                            rng=spawn_rng(1, "hc"))
    for i in range(20):
        cache.register(make_info(i))
    survivor = cache.entries()[0].peer_id
    cache.register(make_info(survivor, x=5.0))
    assert len(cache) == 4


def test_unregister_frees_slot_for_reuse():
    cache = HostCacheServer(max_entries=2, dimensions=2,
                            rng=spawn_rng(2, "hc"))
    cache.register(make_info(1))
    cache.register(make_info(2))
    cache.unregister(1)
    cache.register(make_info(3))
    assert len(cache) == 2
    assert 3 in cache and 1 not in cache


def test_validation():
    with pytest.raises(BootstrapError):
        HostCacheServer(max_entries=1)
    with pytest.raises(BootstrapError):
        HostCacheServer(dimensions=0)
    cache = HostCacheServer(max_entries=4, dimensions=2)
    with pytest.raises(BootstrapError):
        cache.bootstrap_candidates(make_info(1), spawn_rng(0, "x"),
                                   list_size=1)

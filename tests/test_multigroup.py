"""Differential suite for the multi-group batch core.

Pins the contracts the batched kernels and the sharded executor are
built on (``repro.core.multigroup`` / ``repro.core.parallel``):

* every per-group output row of a batched pass is **bit-identical** to
  the single-group kernel run on that group alone (NSSA and SSA);
* results are independent of batch composition — slicing the group set
  and merging in group order reproduces the full batch exactly;
* the sharded executor produces identical merged metrics and digests
  for every ``shards``/``jobs`` combination, including the inline path;
* the kernel-backed ``subscribe_members`` walk and the bulk
  ``edge_latencies`` gather match their procedural references exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AnnouncementConfig
from repro.core import (
    GroupBatch,
    SoAOverlayNetwork,
    climb_subscriptions,
    climb_subscriptions_batch,
    edge_latencies_from_coords,
    flood_advertisement,
    flood_advertisements_batch,
    pack_members,
    run_group_pass,
    run_group_pass_loop,
    run_sharded,
    merge_results,
    shard_bounds,
    synthetic_power_law_csr,
    tree_delays,
    tree_delays_batch,
)
from repro.core.store import TreeArrays
from repro.errors import GroupError, SubscriptionError
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.subscription import subscribe_members
from repro.obs.registry import Registry
from repro.overlay.messages import MessageStats
from repro.sim.engine import Simulator
from repro.sim.messaging import MessageNetwork
from repro.sim.random import spawn_rng
from repro.workloads.groups import sample_group_rows

SEED = 7
N = 400
GROUPS = 24
TTL = 8


@pytest.fixture(scope="module")
def world():
    rng = spawn_rng(SEED, "multigroup-world")
    csr = synthetic_power_law_csr(N, rng)
    coords = rng.uniform(0.0, 100.0, size=(N, 2))
    latency = edge_latencies_from_coords(csr, coords)
    capacities = rng.choice([1.0, 10.0, 100.0, 1000.0], size=N)
    roots, member_rows, indptr = sample_group_rows(
        spawn_rng(SEED, "multigroup-groups"), GROUPS, N, max_size=64)
    return csr, coords, latency, capacities, roots, member_rows, indptr


def _pass_kwargs(world, scheme):
    csr, coords, latency, capacities, roots, member_rows, indptr = world
    kwargs = dict(ttl=TTL, scheme=scheme)
    if scheme == "ssa":
        kwargs.update(capacities=capacities, ssa_seed=SEED)
    return (csr, latency, coords, roots, member_rows, indptr), kwargs


# ----------------------------------------------------------------------
# Batched kernels vs the per-group single-kernel loop
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["nssa", "ssa"])
def test_batched_pass_matches_per_group_loop(world, scheme):
    args, kwargs = _pass_kwargs(world, scheme)
    batched = run_group_pass(*args, **kwargs)
    loop = run_group_pass_loop(*args, **kwargs)
    assert np.array_equal(batched.digests, loop.digests)
    assert batched.metrics() == loop.metrics()


@pytest.mark.parametrize("scheme", ["nssa", "ssa"])
def test_flood_rows_bit_identical_to_single_group(world, scheme):
    csr, coords, latency, capacities, roots, member_rows, indptr = world
    rngs = None
    if scheme == "ssa":
        rngs = [spawn_rng(SEED, "multigroup", g) for g in range(GROUPS)]
    batch = flood_advertisements_batch(
        csr, latency, roots, TTL, scheme, capacities=capacities,
        rngs=rngs)
    for g in range(GROUPS):
        rng = spawn_rng(SEED, "multigroup", g) if scheme == "ssa" else None
        single = flood_advertisement(
            csr, latency, int(roots[g]), TTL, scheme,
            capacities=capacities if scheme == "ssa" else None, rng=rng)
        assert np.array_equal(batch.arrival[g], single.arrival)
        assert np.array_equal(batch.upstream[g], single.upstream)
        assert np.array_equal(batch.hops[g], single.hops)


def test_climb_and_delays_rows_match_single_group(world):
    csr, coords, latency, capacities, roots, member_rows, indptr = world
    flood = flood_advertisements_batch(csr, latency, roots, TTL)
    on_tree, is_member = climb_subscriptions_batch(
        flood, member_rows, indptr)
    parent = np.where(on_tree, flood.upstream, -1)
    delays = tree_delays_batch(parent, on_tree, coords=coords,
                               roots=roots)
    for g in range(GROUPS):
        single = flood_advertisement(csr, latency, int(roots[g]), TTL)
        members = member_rows[indptr[g]:indptr[g + 1]]
        tree_mask, member_mask = climb_subscriptions(single, members)
        assert np.array_equal(on_tree[g], tree_mask)
        assert np.array_equal(is_member[g], member_mask)
        single_delays = tree_delays(
            np.where(tree_mask, single.upstream, -1), tree_mask,
            coords=coords, root=int(roots[g]))
        assert np.array_equal(delays[g], single_delays)


def test_batch_composition_invariance(world):
    """Any slicing of the group set reproduces the full batch exactly."""
    args, kwargs = _pass_kwargs(world, "ssa")
    csr, latency, coords, roots, member_rows, indptr = args
    full = run_group_pass(*args, **kwargs)
    cut = GROUPS // 3
    parts = []
    for lo, hi in ((0, cut), (cut, GROUPS)):
        parts.append(run_group_pass(
            csr, latency, coords, roots[lo:hi],
            member_rows[indptr[lo]:indptr[hi]],
            indptr[lo:hi + 1] - indptr[lo],
            group_offset=lo, **kwargs))
    merged = merge_results(parts)
    assert np.array_equal(full.digests, merged.digests)
    assert full.metrics() == merged.metrics()


# ----------------------------------------------------------------------
# Sharded executor: identical output for every shards/jobs combination
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["nssa", "ssa"])
def test_sharded_output_independent_of_jobs(world, scheme):
    args, kwargs = _pass_kwargs(world, scheme)
    reference = run_group_pass_loop(*args, **kwargs)
    for shards in (1, 3, 4):
        for jobs in (1, 2, 4):
            result = run_sharded(*args, shards=shards, jobs=jobs,
                                 **kwargs)
            assert np.array_equal(result.digests, reference.digests), (
                f"shards={shards} jobs={jobs}")
            assert result.metrics() == reference.metrics()


def test_shard_bounds_cover_and_balance():
    bounds = shard_bounds(10, 4)
    assert bounds[0][0] == 0 and bounds[-1][1] == 10
    assert all(lo < hi for lo, hi in bounds)
    assert all(bounds[i][1] == bounds[i + 1][0]
               for i in range(len(bounds) - 1))
    sizes = [hi - lo for lo, hi in bounds]
    assert max(sizes) - min(sizes) <= 1
    # More shards than groups collapses to one group per shard.
    assert len(shard_bounds(3, 16)) == 3
    with pytest.raises(GroupError):
        shard_bounds(0, 4)


# ----------------------------------------------------------------------
# GroupBatch stacking round-trip
# ----------------------------------------------------------------------
def test_group_batch_round_trip(world):
    csr, coords, latency, capacities, roots, member_rows, indptr = world
    trees = []
    rng = spawn_rng(SEED, "batch-trees")
    for g in range(4):
        tree = TreeArrays(N, root=int(roots[g]))
        rows = rng.choice(N, size=16, replace=False)
        rows = rows[rows != roots[g]]
        tree.parent[rows] = roots[g]
        tree.on_tree[rows] = True
        tree.is_member[rows[: 8]] = True
        trees.append(tree)
    batch = GroupBatch.from_trees(trees)
    assert batch.n_groups == 4 and batch.rows == N
    assert batch.nbytes() > 0
    for original, rebuilt in zip(trees, batch.to_trees()):
        assert rebuilt.root == original.root
        assert np.array_equal(rebuilt.parent, original.parent)
        assert np.array_equal(rebuilt.on_tree, original.on_tree)
        assert np.array_equal(rebuilt.is_member, original.is_member)
        assert np.array_equal(rebuilt.has_ad, original.has_ad)


def test_pack_members_ragged():
    rows, indptr = pack_members(
        [np.array([3, 1]), np.array([], dtype=np.int64), np.array([7])])
    assert np.array_equal(rows, [3, 1, 7])
    assert np.array_equal(indptr, [0, 2, 2, 3])


# ----------------------------------------------------------------------
# Kernel-backed subscribe_members vs the procedural walk
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheme", ["nssa", "ssa"])
def test_subscription_kernel_matches_procedural(groupcast_deployment,
                                                scheme):
    deployment = groupcast_deployment
    view = SoAOverlayNetwork.from_overlay(deployment.overlay)
    ids = view.peer_ids()
    advertisement = propagate_advertisement(
        view, ids[3], 42, scheme, deployment.peer_distance_ms,
        spawn_rng(SEED, "sub-ad"), AnnouncementConfig(advertisement_ttl=6),
        deployment.config.utility)
    holders = [p for p in ids if p in advertisement.receipts][:30]
    # Holders plus the rendezvous, a missing peer and a duplicate: every
    # non-search case the walk distinguishes.
    members = holders + [ids[3], 10 ** 9, holders[0]]
    outputs = {}
    for walk in ("procedural", "kernel"):
        registry, stats = Registry(), MessageStats()
        tree, outcome = subscribe_members(
            view, advertisement, members, deployment.peer_distance_ms,
            stats=stats, registry=registry, walk=walk)
        outputs[walk] = (tree, outcome, registry)
    tree_p, outcome_p, registry_p = outputs["procedural"]
    tree_k, outcome_k, registry_k = outputs["kernel"]
    assert set(tree_p.nodes()) == set(tree_k.nodes())
    assert tree_p.members == tree_k.members
    for node in tree_p.nodes():
        assert tree_p.parent(node) == tree_k.parent(node)
    assert outcome_p.records == outcome_k.records
    assert outcome_p.failed == outcome_k.failed
    assert outcome_p.subscription_messages == outcome_k.subscription_messages
    assert registry_p.snapshot() == registry_k.snapshot()


def test_subscription_kernel_requires_no_searchers(groupcast_deployment):
    deployment = groupcast_deployment
    view = SoAOverlayNetwork.from_overlay(deployment.overlay)
    ids = view.peer_ids()
    advertisement = propagate_advertisement(
        view, ids[3], 7, "nssa", deployment.peer_distance_ms,
        spawn_rng(SEED, "sub-ad2"), AnnouncementConfig(advertisement_ttl=2),
        deployment.config.utility)
    searcher = next(p for p in ids
                    if p not in advertisement.receipts and p != ids[3])
    # auto silently falls back to the procedural walk...
    tree, outcome = subscribe_members(
        view, advertisement, [searcher], deployment.peer_distance_ms,
        stats=MessageStats(), registry=Registry())
    assert searcher in outcome.failed or (
        outcome.records[searcher].via_search)
    # ...while an explicit kernel request refuses.
    with pytest.raises(SubscriptionError):
        subscribe_members(
            view, advertisement, [searcher], deployment.peer_distance_ms,
            stats=MessageStats(), registry=Registry(), walk="kernel")
    with pytest.raises(SubscriptionError):
        subscribe_members(
            view, advertisement, [searcher], deployment.peer_distance_ms,
            walk="bogus")


# ----------------------------------------------------------------------
# Bulk edge-latency gather vs the per-edge loop
# ----------------------------------------------------------------------
def test_edge_latencies_bulk_matches_scalar(groupcast_deployment):
    deployment = groupcast_deployment
    view = SoAOverlayNetwork.from_overlay(deployment.overlay)
    csr = view.csr()
    ids = np.fromiter((view.store.id_of(row)
                       for row in range(view.store.row_count)),
                      dtype=np.int64, count=view.store.row_count)
    simulator = Simulator()
    bulk = MessageNetwork(simulator, deployment.peer_distance_ms,
                          spawn_rng(SEED, "net"))
    assert bulk.bulk_latency_fn is not None  # auto-derived from the owner
    scalar = MessageNetwork(
        simulator, lambda a, b: deployment.peer_distance_ms(a, b),
        spawn_rng(SEED, "net"))
    assert scalar.bulk_latency_fn is None
    assert np.array_equal(bulk.edge_latencies(csr, ids),
                          scalar.edge_latencies(csr, ids))


# ----------------------------------------------------------------------
# Dimensional telemetry columns (depth + per-group delay sketch rows)
# ----------------------------------------------------------------------
def _dims_layout():
    from repro.obs import DEFAULT_SKETCH_LAYOUT
    return DEFAULT_SKETCH_LAYOUT


@pytest.mark.parametrize("scheme", ["nssa", "ssa"])
def test_dims_columns_batch_match_loop(world, scheme):
    args, kwargs = _pass_kwargs(world, scheme)
    layout = _dims_layout()
    batched = run_group_pass(*args, dims_layout=layout, **kwargs)
    loop = run_group_pass_loop(*args, dims_layout=layout, **kwargs)
    assert np.array_equal(batched.delay_cells, loop.delay_cells)
    assert np.array_equal(batched.depth, loop.depth)
    assert batched.delay_cells.shape == (GROUPS, layout.cells)


def test_dims_columns_sharded_bit_identical(world):
    args, kwargs = _pass_kwargs(world, "nssa")
    layout = _dims_layout()
    reference = run_group_pass(*args, dims_layout=layout, **kwargs)
    for shards, jobs in ((1, 1), (3, 1), (3, 2), (4, 4)):
        result = run_sharded(*args, shards=shards, jobs=jobs,
                             dims_layout=layout, **kwargs)
        assert result.delay_cells.tobytes() == \
            reference.delay_cells.tobytes(), f"{shards=} {jobs=}"
        assert np.array_equal(result.depth, reference.depth)


def test_dims_columns_are_digest_transparent(world):
    args, kwargs = _pass_kwargs(world, "nssa")
    with_dims = run_group_pass(*args, dims_layout=_dims_layout(),
                               **kwargs)
    without = run_group_pass(*args, **kwargs)
    assert with_dims.merged_digest() == without.merged_digest()
    # Dims off: a (n_groups, 0) placeholder, not a missing column.
    assert without.delay_cells.shape == (GROUPS, 0)
    # Depth is always on (one segmented max), dims or not.
    assert np.array_equal(with_dims.depth, without.depth)


def test_delay_cells_conserve_on_tree_members(world):
    args, kwargs = _pass_kwargs(world, "nssa")
    result = run_group_pass(*args, dims_layout=_dims_layout(), **kwargs)
    assert np.array_equal(result.delay_cells.sum(axis=1),
                          result.members_on_tree)
    assert result.metrics()["depth_max"] == int(result.depth.max())

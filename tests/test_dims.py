"""Dimensional telemetry: sketch algebra, labeled families, encodings.

Three property groups pin the obs v4 primitives:

* **Sketch merge algebra** (Hypothesis) — the log-scale
  :class:`QuantileSketch`'s state is one integer count vector, so merge
  must be commutative, associative and bit-identical however a value
  stream is split into shards; quantiles obey the geometric rank-error
  bound ``x <= q(v) <= x * gamma``.
* **Label-set overflow accounting** (Hypothesis) — a bounded
  :class:`MetricFamily` must conserve every observation: beyond
  ``max_series`` the shared overflow child absorbs the rest and
  ``overflow_routed`` counts exactly the routed observations — nothing
  is silently dropped.
* **Pinned dump/merge encoding** — the family entry layout inside
  :meth:`Registry.dump_state` is a cross-process wire format; this file
  is the regression test that keeps it stable, including histogram
  family merges with disjoint and overlapping label sets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import group_delay_cells_batch
from repro.errors import TelemetryError
from repro.obs import (
    OVERFLOW_SERIES,
    MetricFamily,
    QuantileSketch,
    Registry,
    SketchLayout,
    segment_log_histogram,
    sketch_quantiles,
)

LAYOUT = SketchLayout(lo=0.1, hi=1e4, bins=64)

# Delay-like values spanning the layout, plus under/overflow outliers.
_VALUES = st.lists(
    st.one_of(
        st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
        st.floats(min_value=1e-4, max_value=0.1, allow_nan=False),
        st.floats(min_value=1e4, max_value=1e8, allow_nan=False),
    ),
    max_size=80)


def _sketch(values) -> QuantileSketch:
    sketch = QuantileSketch("s", LAYOUT)
    sketch.observe_many(np.asarray(values, dtype=np.float64))
    return sketch


# ----------------------------------------------------------------------
# Sketch merge algebra
# ----------------------------------------------------------------------
class TestSketchAlgebra:
    @given(a=_VALUES, b=_VALUES)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutes(self, a, b):
        ab, ba = _sketch(a), _sketch(b)
        ab.merge(_sketch(b))
        ba.merge(_sketch(a))
        assert ab.state_bytes() == ba.state_bytes()

    @given(a=_VALUES, b=_VALUES, c=_VALUES)
    @settings(max_examples=60, deadline=None)
    def test_merge_associates(self, a, b, c):
        left = _sketch(a)
        left.merge(_sketch(b))
        left.merge(_sketch(c))
        bc = _sketch(b)
        bc.merge(_sketch(c))
        right = _sketch(a)
        right.merge(bc)
        assert left.state_bytes() == right.state_bytes()

    @given(values=_VALUES, shards=st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_sharded_merge_bit_identical(self, values, shards):
        whole = _sketch(values)
        merged = QuantileSketch("s", LAYOUT)
        for chunk in np.array_split(
                np.asarray(values, dtype=np.float64), shards):
            merged.merge(_sketch(chunk))
        assert merged.state_bytes() == whole.state_bytes()
        assert merged.count == len(values)

    @given(values=st.lists(
        # Strictly inside (lo, hi): the geometric bound is only
        # promised for values the finite bins cover — under/overflow
        # cells clamp to lo / inf by design.
        st.floats(min_value=0.11, max_value=9.9e3, allow_nan=False),
        min_size=1, max_size=80),
        q=st.sampled_from([0.5, 0.9, 0.99, 1.0]))
    @settings(max_examples=80, deadline=None)
    def test_rank_error_bound(self, values, q):
        sketch = _sketch(values)
        estimate = sketch.quantile(q)
        rank = max(1, int(np.ceil(q * len(values))))
        exact = sorted(values)[rank - 1]
        # The estimate is the upper edge of the exact value's cell.
        assert exact <= estimate * (1.0 + 1e-9)
        assert estimate <= exact * LAYOUT.gamma * (1.0 + 1e-9)

    def test_layout_edges(self):
        sketch = QuantileSketch("s", LAYOUT)
        sketch.observe_many(np.array([1e-9, LAYOUT.lo / 2,
                                      LAYOUT.hi * 2, np.nan]))
        cells = sketch.cell_counts()
        assert cells[0] == 2          # underflow
        assert cells[-1] == 2         # overflow (incl. NaN)
        assert sketch.count == 4

    def test_layout_mismatch_rejected(self):
        other = QuantileSketch("s", SketchLayout(lo=0.1, hi=1e4,
                                                 bins=32))
        with pytest.raises(TelemetryError):
            _sketch([1.0]).merge(other)

    @given(values=_VALUES)
    @settings(max_examples=40, deadline=None)
    def test_vectorized_quantiles_match_scalar(self, values):
        sketch = _sketch(values)
        rows = sketch.cell_counts()[np.newaxis, :]
        for q in (0.5, 0.9, 0.99):
            vector = sketch_quantiles(rows, q, LAYOUT)[0]
            assert vector == sketch.quantile(q)

    @given(values=_VALUES,
           groups=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_segmented_histogram_matches_per_group_sketches(
            self, values, groups):
        data = np.asarray(values, dtype=np.float64)
        gids = np.arange(data.shape[0], dtype=np.int64) % groups
        rows = segment_log_histogram(gids, data, groups, LAYOUT)
        for g in range(groups):
            assert np.array_equal(
                rows[g], _sketch(data[gids == g]).cell_counts())


def test_group_delay_cells_conserve_memberships():
    delays = np.array([[1.0, np.inf, 10.0], [np.nan, 5.0, 2.0]])
    member = np.array([[True, True, True], [True, True, False]])
    cells = group_delay_cells_batch(delays, member, LAYOUT)
    assert cells.shape == (2, LAYOUT.cells)
    # Only finite delays of members are counted, none lost or invented.
    assert cells[0].sum() == 2 and cells[1].sum() == 1


# ----------------------------------------------------------------------
# Bounded label sets
# ----------------------------------------------------------------------
class TestFamilyOverflow:
    @given(labels=st.lists(st.integers(min_value=0, max_value=30),
                           max_size=120),
           max_series=st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_observation_conservation(self, labels, max_series):
        registry = Registry()
        family = registry.family("f.count", ("tenant",),
                                 max_series=max_series)
        for label in labels:
            family.labels(label).inc()
        dedicated = sum(child.value for _, child in family.series())
        overflow = 0 if family.overflow is None else family.overflow.value
        assert dedicated + overflow == len(labels)
        assert family.series_count <= max_series
        # overflow_routed counts exactly the observations whose label
        # arrived after the series budget was spent.
        owners: list[str] = []
        for label in labels:
            text = str(label)
            if text not in owners and len(owners) < max_series:
                owners.append(text)
        routed = sum(1 for label in labels if str(label) not in owners)
        assert family.overflow_routed == routed == overflow

    def test_overflow_series_name_in_snapshot(self):
        registry = Registry()
        family = registry.family("f.count", ("tenant",), max_series=1)
        family.labels("a").inc(3)
        family.labels("b").inc(2)
        snap = registry.snapshot()
        assert snap["f.count{tenant=a}"] == 3
        assert snap[f"f.count{{{OVERFLOW_SERIES}}}"] == 2
        # One routed labels() lookup (the overflow child keeps the
        # observation values themselves).
        assert snap["f.count.__overflow_routed"] == 1

    def test_disabled_registry_family_is_free(self):
        family = Registry(enabled=False).family("f", ("t",))
        family.labels("x").inc()
        assert isinstance(family, MetricFamily)
        assert family.series_count == 0


# ----------------------------------------------------------------------
# Pinned dump/merge encoding
# ----------------------------------------------------------------------
def _labeled_registry(pairs) -> Registry:
    registry = Registry()
    family = registry.family("lat.ms", ("tenant",), "histogram",
                             bounds=(1.0, 10.0), max_series=4)
    for tenant, value in pairs:
        family.labels(tenant).observe(value)
    return registry


class TestFamilyStateEncoding:
    def test_dump_entry_layout_is_pinned(self):
        registry = Registry()
        family = registry.family("f.count", ("tenant", "region"),
                                 max_series=2)
        family.labels("a", "eu").inc(3)
        family.labels("b", "us").inc(1)
        family.labels("c", "ap").inc(2)       # routed to overflow
        entry = dict(registry.dump_state())["f.count"]
        assert entry == (
            "family", "counter", ("tenant", "region"), 2, None,
            ((("a", "eu"), ("counter", 3)),
             (("b", "us"), ("counter", 1))),
            ("counter", 2),
            1,
        )

    def test_merge_state_doubles_family_values(self):
        registry = Registry()
        family = registry.family("f.count", ("tenant",), max_series=2)
        family.labels("a").inc(5)
        family.labels("b").inc(1)
        family.labels("c").inc(2)
        state = registry.dump_state()
        registry.merge_state(state)
        assert family.labels("a").value == 10
        assert family.overflow.value == 4
        assert family.overflow_routed == 2

    def test_histogram_merge_disjoint_label_sets(self):
        left = _labeled_registry([("a", 0.5), ("a", 5.0)])
        right = _labeled_registry([("b", 20.0)])
        left.merge_state(right.dump_state())
        family = left.get("lat.ms")
        by_label = dict(family.series())
        assert by_label[("a",)].count == 2
        assert by_label[("b",)].count == 1
        assert by_label[("b",)].sum == 20.0

    def test_histogram_merge_overlapping_label_sets(self):
        left = _labeled_registry([("a", 0.5), ("b", 2.0)])
        right = _labeled_registry([("a", 5.0), ("c", 1.0)])
        left.merge_state(right.dump_state())
        by_label = dict(left.get("lat.ms").series())
        assert by_label[("a",)].count == 2
        assert by_label[("a",)].sum == 5.5
        assert by_label[("b",)].count == 1
        assert by_label[("c",)].count == 1

    def test_merged_dump_is_deterministic(self):
        # Merging B into A and A into B must agree on every series
        # (the merge is commutative series-by-series; dump order is
        # sorted, so the encodings line up exactly).
        left = _labeled_registry([("a", 0.5), ("b", 2.0)])
        right = _labeled_registry([("a", 5.0), ("c", 1.0)])
        mirror_left = _labeled_registry([("a", 0.5), ("b", 2.0)])
        mirror_right = _labeled_registry([("a", 5.0), ("c", 1.0)])
        left.merge_state(mirror_right.dump_state())
        mirror_right.merge_state(mirror_left.dump_state())
        assert left.dump_state() == mirror_right.dump_state()
        assert right.dump_state() != left.dump_state()

    def test_sketch_round_trips_through_state(self):
        registry = Registry()
        sketch = registry.sketch("delay", LAYOUT)
        sketch.observe_many(np.array([0.5, 3.0, 700.0]))
        clone = Registry()
        clone.merge_state(registry.dump_state())
        merged = clone.get("delay")
        assert merged.state_bytes() == sketch.state_bytes()
        assert merged.layout == LAYOUT

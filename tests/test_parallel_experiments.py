"""Determinism of the process-parallel experiment fan-out.

The tables produced with ``--jobs N`` must be *identical* — same rows,
same floats, same order — to a sequential run, and worker telemetry must
fold back into the parent registry independent of worker count.
"""

from __future__ import annotations

import pytest

from repro.experiments import app_performance, service_lookup
from repro.experiments.parallel import run_points
from repro.experiments.runner import main as runner_main
from repro.obs.registry import (
    NULL_REGISTRY,
    enable_telemetry,
    set_default_registry,
)

SIZES = [120, 150]


def _square(x: int) -> int:
    return x * x


def _record_and_square(x: int) -> int:
    from repro.obs.registry import get_default_registry

    registry = get_default_registry()
    registry.counter("test.points").inc()
    registry.histogram("test.values", (1.0, 10.0)).observe(float(x))
    return x * x


class TestRunPoints:
    def test_inline_matches_pool(self):
        args = [(x,) for x in range(6)]
        assert (run_points(_square, args, jobs=1)
                == run_points(_square, args, jobs=3)
                == [x * x for x in range(6)])

    def test_jobs_clamped_to_one_point(self):
        assert run_points(_square, [(5,)], jobs=8) == [25]

    def test_telemetry_merges_across_workers(self):
        args = [(x,) for x in range(5)]
        registry = enable_telemetry()
        try:
            run_points(_record_and_square, args, jobs=2)
            assert registry.get("test.points").value == 5
            hist = registry.get("test.values")
            assert hist.count == 5
            assert hist.sum == sum(range(5))
        finally:
            set_default_registry(NULL_REGISTRY)

    def test_telemetry_identical_for_any_jobs(self):
        args = [(x,) for x in range(4)]
        snapshots = []
        for jobs in (1, 2):
            registry = enable_telemetry()
            try:
                run_points(_record_and_square, args, jobs=jobs)
                snapshots.append(registry.snapshot())
            finally:
                set_default_registry(NULL_REGISTRY)
        assert snapshots[0] == snapshots[1]


@pytest.mark.slow
class TestSweepDeterminism:
    def test_service_lookup_rows_identical(self):
        sequential = service_lookup.run(
            sizes=SIZES, seed=3, rendezvous_points=2, topologies=2,
            jobs=1)
        parallel = service_lookup.run(
            sizes=SIZES, seed=3, rendezvous_points=2, topologies=2,
            jobs=4)
        for fig in sequential:
            assert sequential[fig].rows == parallel[fig].rows

    def test_app_performance_rows_identical(self):
        sequential = app_performance.run(
            sizes=SIZES, seed=3, groups_per_overlay=2, topologies=2,
            jobs=1)
        parallel = app_performance.run(
            sizes=SIZES, seed=3, groups_per_overlay=2, topologies=2,
            jobs=4)
        for fig in sequential:
            assert sequential[fig].rows == parallel[fig].rows


class TestRunnerCli:
    def test_jobs_flag_parses_and_runs(self, capsys):
        code = runner_main(["fig11", "--sizes", "120", "--jobs", "2",
                            "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out

    def test_jobs_output_matches_sequential(self, capsys):
        runner_main(["fig14", "--sizes", "120", "--jobs", "1",
                     "--seed", "3", "--topologies", "2"])
        sequential = capsys.readouterr().out
        runner_main(["fig14", "--sizes", "120", "--jobs", "3",
                     "--seed", "3", "--topologies", "2"])
        parallel = capsys.readouterr().out
        assert sequential == parallel

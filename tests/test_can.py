"""Unit tests for the CAN substrate and CAN-multicast."""

import numpy as np
import pytest

from repro.config import TransitStubConfig
from repro.dht.can import (
    CANNetwork,
    Zone,
    build_group_can,
    can_multicast,
    torus_distance,
    zones_adjacent,
)
from repro.errors import ConfigurationError, GroupError, OverlayError
from repro.network.topology import generate_transit_stub
from repro.sim.random import spawn_rng


@pytest.fixture(scope="module")
def underlay():
    u = generate_transit_stub(
        TransitStubConfig(transit_domains=2, transit_routers_per_domain=2,
                          stub_domains_per_transit=2, routers_per_stub=3),
        spawn_rng(13, "topo"))
    rng = spawn_rng(13, "attach")
    for peer in range(60):
        u.attach_peer(peer, rng)
    return u


@pytest.fixture()
def can():
    return CANNetwork(list(range(40)), spawn_rng(0, "can"))


class TestZones:
    def test_split_halves_volume(self):
        zone = Zone(0, np.zeros(2), np.ones(2))
        new = zone.split(1)
        v_old = float(np.prod(zone.highs - zone.lows))
        v_new = float(np.prod(new.highs - new.lows))
        assert v_old == pytest.approx(0.5)
        assert v_new == pytest.approx(0.5)

    def test_split_along_longest_dimension(self):
        zone = Zone(0, np.array([0.0, 0.0]), np.array([1.0, 0.5]))
        new = zone.split(1)
        assert zone.highs[0] == pytest.approx(0.5)  # x split, y intact
        assert new.lows[0] == pytest.approx(0.5)

    def test_contains(self):
        zone = Zone(0, np.array([0.25, 0.0]), np.array([0.5, 0.5]))
        assert zone.contains(np.array([0.3, 0.1]))
        assert not zone.contains(np.array([0.6, 0.1]))
        assert not zone.contains(np.array([0.5, 0.1]))  # high edge open

    def test_adjacency(self):
        left = Zone(0, np.array([0.0, 0.0]), np.array([0.5, 1.0]))
        right = Zone(1, np.array([0.5, 0.0]), np.array([1.0, 1.0]))
        assert zones_adjacent(left, right)
        assert zones_adjacent(right, left)  # torus wrap also abuts

    def test_diagonal_zones_not_adjacent(self):
        a = Zone(0, np.array([0.0, 0.0]), np.array([0.5, 0.5]))
        b = Zone(1, np.array([0.5, 0.5]), np.array([1.0, 1.0]))
        assert not zones_adjacent(a, b)

    def test_torus_distance_wraps(self):
        assert torus_distance(np.array([0.05]), np.array([0.95])) == \
            pytest.approx(0.1)


class TestCANNetwork:
    def test_zones_tile_the_torus(self, can):
        can.validate()
        assert can.size == 40

    def test_every_point_has_one_owner(self, can):
        rng = spawn_rng(1, "points")
        for _ in range(50):
            point = rng.random(2)
            owner = can.owner_of(point)
            assert can.zone_of(owner).contains(point)

    def test_neighbor_symmetry(self, can):
        for peer in range(40):
            for neighbor in can.neighbors(peer):
                assert peer in can.neighbors(neighbor)

    def test_neighbors_are_adjacent_zones(self, can):
        for peer in range(40):
            for neighbor in can.neighbors(peer):
                assert zones_adjacent(can.zone_of(peer),
                                      can.zone_of(neighbor))

    def test_routing_reaches_owner(self, can):
        rng = spawn_rng(2, "routes")
        for _ in range(30):
            source = int(rng.integers(40))
            point = rng.random(2)
            path = can.route(source, point)
            assert path[0] == source
            assert can.zone_of(path[-1]).contains(point)
            assert len(set(path)) == len(path)

    def test_route_length_scales_as_sqrt_n(self, can):
        rng = spawn_rng(3, "routes")
        lengths = [len(can.route(int(rng.integers(40)), rng.random(2)))
                   for _ in range(50)]
        # d=2, n=40: expected ~ (d/2) n^(1/d) ~ 6; generous bound.
        assert float(np.mean(lengths)) < 12.0

    def test_duplicate_join_rejected(self):
        with pytest.raises(OverlayError):
            CANNetwork([1, 1], spawn_rng(0, "can"))

    def test_validation(self):
        with pytest.raises(OverlayError):
            CANNetwork([], spawn_rng(0, "can"))
        with pytest.raises(ConfigurationError):
            CANNetwork([1, 2], spawn_rng(0, "can"), dimensions=0)

    def test_higher_dimensions(self):
        can3 = CANNetwork(list(range(20)), spawn_rng(4, "can"),
                          dimensions=3)
        can3.validate()
        path = can3.route(0, np.array([0.9, 0.9, 0.9]))
        assert path


class TestCANMulticast:
    def test_flood_reaches_every_member(self, underlay):
        members = list(range(30))
        can = build_group_can(members, spawn_rng(5, "group-can"))
        result = can_multicast(can, members[0], underlay)
        assert result.tree.members == frozenset(members)

    def test_tree_edges_are_zone_adjacencies(self, underlay):
        members = list(range(20))
        can = build_group_can(members, spawn_rng(6, "group-can"))
        result = can_multicast(can, members[0], underlay)
        for parent, child in result.tree.edges():
            assert child in can.neighbors(parent)

    def test_duplicates_counted(self, underlay):
        members = list(range(25))
        can = build_group_can(members, spawn_rng(7, "group-can"))
        result = can_multicast(can, members[0], underlay)
        assert result.messages == \
            (result.tree.node_count - 1) + result.duplicates

    def test_source_must_be_member(self, underlay):
        can = build_group_can([1, 2, 3], spawn_rng(8, "group-can"))
        with pytest.raises(GroupError):
            can_multicast(can, 99, underlay)

    def test_mini_can_requires_two_members(self):
        with pytest.raises(GroupError):
            build_group_can([1], spawn_rng(9, "group-can"))

    def test_dissemination_metrics_computable(self, underlay):
        from repro.groupcast.dissemination import disseminate

        members = list(range(30))
        can = build_group_can(members, spawn_rng(10, "group-can"))
        result = can_multicast(can, members[0], underlay)
        report = disseminate(result.tree, members[0], underlay)
        assert set(report.member_delays_ms) == set(members[1:])

"""Integration tests for the churn process driving joins and leaves."""

import pytest

from repro.config import OverlayConfig, TransitStubConfig
from repro.coords.gnp import GNPSystem
from repro.errors import ConfigurationError
from repro.network.topology import generate_transit_stub
from repro.overlay.bootstrap import UtilityBootstrap
from repro.overlay.churn import ChurnConfig, ChurnProcess
from repro.overlay.graph import OverlayNetwork
from repro.overlay.hostcache import HostCacheServer
from repro.overlay.maintenance import MaintenanceDaemon
from repro.overlay.messages import MessageStats
from repro.sim.engine import Simulator
from repro.sim.random import spawn_rng


def build_world(churn_config):
    simulator = Simulator()
    underlay = generate_transit_stub(
        TransitStubConfig(transit_domains=2, transit_routers_per_domain=2,
                          stub_domains_per_transit=2, routers_per_stub=3),
        spawn_rng(0, "topo"))
    gnp = GNPSystem()
    gnp.fit_landmarks(underlay, spawn_rng(0, "lm"))
    space = gnp.make_space()
    overlay = OverlayNetwork()
    cache = HostCacheServer(max_entries=128, dimensions=space.dimensions,
                            rng=spawn_rng(0, "hc"))
    stats = MessageStats()
    bootstrap = UtilityBootstrap(
        overlay=overlay, host_cache=cache, rng=spawn_rng(0, "b"),
        stats=stats)
    maintenance = MaintenanceDaemon(
        simulator=simulator, overlay=overlay, host_cache=cache,
        bootstrap=bootstrap, rng=spawn_rng(0, "m"),
        config=OverlayConfig(heartbeat_interval_ms=1_000.0,
                             epoch_ms=5_000.0, min_epoch_ms=2_000.0,
                             max_epoch_ms=20_000.0),
        stats=stats)
    churn = ChurnProcess(
        simulator=simulator, underlay=underlay, gnp=gnp, space=space,
        bootstrap=bootstrap, maintenance=maintenance,
        rng=spawn_rng(0, "churn"), config=churn_config)
    return simulator, overlay, maintenance, churn


def test_joins_arrive_at_configured_rate():
    config = ChurnConfig(join_interarrival_ms=100.0,
                         mean_lifetime_ms=1e9, max_joins=50)
    simulator, overlay, _, churn = build_world(config)
    churn.start()
    simulator.run(until=60_000.0)
    assert len(churn.joined) == 50
    assert overlay.peer_count == 50


def test_lifetimes_cause_departures_and_crashes():
    config = ChurnConfig(join_interarrival_ms=50.0,
                         mean_lifetime_ms=2_000.0,
                         crash_fraction=0.5, max_joins=60)
    simulator, overlay, maintenance, churn = build_world(config)
    churn.start()
    simulator.run(until=120_000.0)
    assert churn.departed, "expected graceful departures"
    assert churn.crashed, "expected crashes"
    assert len(churn.departed) + len(churn.crashed) <= len(churn.joined)


def test_live_network_survives_churn():
    config = ChurnConfig(join_interarrival_ms=100.0,
                         mean_lifetime_ms=8_000.0,
                         crash_fraction=0.4, max_joins=80)
    simulator, overlay, maintenance, churn = build_world(config)
    churn.start()
    simulator.run(until=60_000.0)
    alive = set(maintenance.alive_peers())
    if len(alive) >= 2:
        sizes = overlay.connected_component_sizes()
        assert sizes[0] >= 0.8 * len(alive)


def test_crash_fraction_zero_means_only_departures():
    config = ChurnConfig(join_interarrival_ms=50.0,
                         mean_lifetime_ms=1_000.0,
                         crash_fraction=0.0, max_joins=40)
    simulator, _, _, churn = build_world(config)
    churn.start()
    simulator.run(until=100_000.0)
    assert not churn.crashed
    assert churn.departed


def test_on_join_callback_invoked():
    seen = []
    config = ChurnConfig(join_interarrival_ms=10.0,
                         mean_lifetime_ms=1e9, max_joins=5)
    simulator, _, _, churn = build_world(config)
    churn._on_join = seen.append
    churn.start()
    simulator.run(until=10_000.0)
    assert len(seen) == 5


def test_churn_config_validation():
    with pytest.raises(ConfigurationError):
        ChurnConfig(join_interarrival_ms=0.0)
    with pytest.raises(ConfigurationError):
        ChurnConfig(crash_fraction=1.5)
    with pytest.raises(ConfigurationError):
        ChurnConfig(max_joins=0)
    with pytest.raises(ConfigurationError):
        ChurnConfig(mean_lifetime_ms=-1.0)

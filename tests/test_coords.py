"""Unit tests for coordinate spaces, GNP, and Vivaldi embeddings."""

import numpy as np
import pytest

from repro.config import TransitStubConfig
from repro.coords.base import CoordinateSpace
from repro.coords.gnp import GNPConfig, GNPSystem
from repro.coords.vivaldi import VivaldiConfig, VivaldiSystem
from repro.errors import ConfigurationError, PeerNotFoundError
from repro.network.topology import generate_transit_stub
from repro.sim.random import spawn_rng


@pytest.fixture()
def underlay():
    config = TransitStubConfig(
        transit_domains=3,
        transit_routers_per_domain=3,
        stub_domains_per_transit=2,
        routers_per_stub=3,
    )
    u = generate_transit_stub(config, spawn_rng(2, "topo"))
    rng = spawn_rng(2, "attach")
    for peer in range(40):
        u.attach_peer(peer, rng)
    return u


class TestCoordinateSpace:
    def test_set_get_roundtrip(self):
        space = CoordinateSpace(3)
        space.set(1, [1.0, 2.0, 3.0])
        assert np.array_equal(space.get(1), [1.0, 2.0, 3.0])

    def test_wrong_dimension_rejected(self):
        space = CoordinateSpace(3)
        with pytest.raises(ValueError):
            space.set(1, [1.0, 2.0])

    def test_missing_peer_raises(self):
        with pytest.raises(PeerNotFoundError):
            CoordinateSpace(2).get(9)

    def test_distance_is_euclidean(self):
        space = CoordinateSpace(2)
        space.set(1, [0.0, 0.0])
        space.set(2, [3.0, 4.0])
        assert space.distance(1, 2) == pytest.approx(5.0)

    def test_distances_from_matches_scalar(self):
        space = CoordinateSpace(2)
        for i in range(5):
            space.set(i, [float(i), 0.0])
        vec = space.distances_from(0, [1, 2, 3, 4])
        assert np.allclose(vec, [1.0, 2.0, 3.0, 4.0])

    def test_distances_from_empty(self):
        space = CoordinateSpace(2)
        space.set(0, [0.0, 0.0])
        assert space.distances_from(0, []).size == 0

    def test_remove_is_idempotent(self):
        space = CoordinateSpace(2)
        space.set(0, [0.0, 0.0])
        space.remove(0)
        space.remove(0)
        assert 0 not in space

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CoordinateSpace(0)


class TestGNP:
    def test_requires_fit_before_embedding(self, underlay):
        gnp = GNPSystem()
        space = gnp.make_space()
        with pytest.raises(ConfigurationError):
            gnp.embed_peer(0, space, spawn_rng(0, "x"))

    def test_landmark_fit_error_is_small(self, underlay):
        gnp = GNPSystem()
        gnp.fit_landmarks(underlay, spawn_rng(3, "lm"))
        assert gnp.landmark_fit_error() < 0.35

    def test_embedding_preserves_distances_approximately(self, underlay):
        gnp = GNPSystem()
        gnp.fit_landmarks(underlay, spawn_rng(3, "lm"))
        space = gnp.make_space()
        peers = list(range(40))
        gnp.embed_peers(peers, space, spawn_rng(3, "embed"))
        rng = spawn_rng(3, "check")
        errors = []
        for _ in range(200):
            a, b = rng.choice(40, size=2, replace=False)
            true = underlay.peer_distance_ms(int(a), int(b))
            est = space.distance(int(a), int(b))
            errors.append(abs(est - true) / max(true, 1e-9))
        assert float(np.median(errors)) < 0.5

    def test_embed_single_peer_matches_batch_scale(self, underlay):
        gnp = GNPSystem()
        gnp.fit_landmarks(underlay, spawn_rng(3, "lm"))
        space = gnp.make_space()
        coord = gnp.embed_peer(7, space, spawn_rng(3, "one"))
        assert coord.shape == (gnp.config.dimensions,)
        assert 7 in space

    def test_embed_peers_empty_list(self, underlay):
        gnp = GNPSystem()
        gnp.fit_landmarks(underlay, spawn_rng(3, "lm"))
        out = gnp.embed_peers([], gnp.make_space(), spawn_rng(3, "none"))
        assert out.shape == (0, gnp.config.dimensions)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GNPConfig(dimensions=0)
        with pytest.raises(ConfigurationError):
            GNPConfig(dimensions=5, landmark_count=5)
        with pytest.raises(ConfigurationError):
            GNPConfig(learning_rate=0.0)


class TestVivaldi:
    def test_fit_produces_coordinates_for_all_peers(self, underlay):
        vivaldi = VivaldiSystem(VivaldiConfig(rounds=10))
        peers = list(range(20))
        space = vivaldi.fit(underlay, peers, spawn_rng(5, "viv"))
        for peer in peers:
            assert peer in space

    def test_relative_error_reasonable(self, underlay):
        vivaldi = VivaldiSystem(VivaldiConfig(rounds=25))
        peers = list(range(40))
        space = vivaldi.fit(underlay, peers, spawn_rng(5, "viv"))
        err = vivaldi.relative_error(
            underlay, space, peers, spawn_rng(5, "check"))
        assert err < 0.6

    def test_single_peer_gets_origin(self, underlay):
        vivaldi = VivaldiSystem()
        space = vivaldi.fit(underlay, [0], spawn_rng(5, "viv"))
        assert np.allclose(space.get(0), 0.0)

    def test_empty_peer_list(self, underlay):
        vivaldi = VivaldiSystem()
        space = vivaldi.fit(underlay, [], spawn_rng(5, "viv"))
        assert len(space) == 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            VivaldiConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            VivaldiConfig(cc=0.0)

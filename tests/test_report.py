"""Tests for experiment reports and the baseline comparison gate."""

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

from repro.faults import InvariantSuite
from repro.groupcast.session import GroupSession
from repro.obs import Profiler, Registry, Tracer
from repro.obs.report import build_report, render_markdown, write_report
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def _load_compare():
    """Import ``benchmarks/compare.py`` (a script, not a package)."""
    path = Path(__file__).resolve().parent.parent / "benchmarks" \
        / "compare.py"
    spec = importlib.util.spec_from_file_location("bench_compare", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _traced_run(seed: int = 5):
    """A small traced + profiled session run, all pieces attached."""
    rng = np.random.default_rng(seed)
    overlay = OverlayNetwork()
    n = 30
    for i in range(n):
        overlay.add_peer(PeerInfo(i, 10.0, rng.uniform(0, 100, size=2)))
    for i in range(1, n):
        overlay.add_link(i, int(rng.integers(0, i)))

    def latency(a, b):
        return max(
            overlay.peer(a).coordinate_distance(overlay.peer(b)), 0.01)

    registry = Registry()
    tracer = Tracer(spans=True, registry=registry)
    profiler = Profiler(registry, interval_ms=100.0)
    session = GroupSession(overlay, latency, spawn_rng(seed, "report"),
                           registry=registry, tracer=tracer)
    session.simulator.profiler = profiler
    suite = InvariantSuite(registry)
    suite.add("always-green", lambda: [])
    session.establish(1, rendezvous=0, members=list(range(1, 12)),
                      scheme="ssa")
    session.publish(1, source=0)
    suite.run(session.simulator.now)
    profiler.finish(session.simulator.now)
    return tracer, registry, profiler, suite


@pytest.mark.telemetry
class TestBuildReport:
    def test_full_report_sections(self):
        tracer, registry, profiler, suite = _traced_run()
        report = build_report("test run", tracer=tracer,
                              registry=registry, profiler=profiler,
                              invariant_suite=suite)
        assert report["title"] == "test run"
        assert report["trace"]["total_records"] == tracer.total_records
        assert report["episodes"]["count"] > 0
        top = report["episodes"]["top_by_critical_path"]
        assert top and top[0]["critical_path_ms"] >= \
            top[-1]["critical_path_ms"]
        assert "advertisement" in report["episodes"]["cost_by_kind"]
        assert "advertisement" in \
            report["episodes"]["cost_by_episode_kind"]
        assert report["conservation"]["balanced"] is True
        assert report["series"]  # cadence samples landed
        assert report["invariants"]["violations"] == 0
        assert report["invariants"]["checks"] >= 1
        # JSON-serializable as-is.
        json.dumps(report)

    def test_sections_are_optional(self):
        report = build_report("empty")
        assert set(report) == {"title"}
        markdown = render_markdown(report)
        assert markdown.startswith("# empty")

    def test_conservation_absent_without_transport(self):
        registry = Registry()
        registry.counter("something.else").inc()
        report = build_report("no transport", registry=registry)
        assert report["conservation"] is None

    def test_markdown_renders_all_sections(self):
        tracer, registry, profiler, suite = _traced_run()
        report = build_report("md run", tracer=tracer, registry=registry,
                              profiler=profiler, invariant_suite=suite)
        markdown = render_markdown(report)
        for heading in ("## Trace stream", "## Causal episodes",
                        "## Message cost by kind",
                        "## Cost by protocol phase",
                        "## Transport conservation",
                        "## Invariant checks",
                        "## Metric time-series"):
            assert heading in markdown, heading
        assert "**0 dropped**" in markdown

    def test_write_report_creates_both_files(self, tmp_path):
        report = build_report("files")
        md_path, json_path = write_report(report, tmp_path / "nested")
        assert md_path.read_text(encoding="utf-8").startswith("# files")
        assert json.loads(json_path.read_text(encoding="utf-8")) == report


class TestCompareGate:
    def test_iter_metrics_wildcards(self):
        compare = _load_compare()
        data = {"metrics": {"a": {"speedup": 2.0, "note": "x"},
                            "b": {"speedup": 4.0}}}
        found = dict(compare.iter_metrics(data, "metrics.*.speedup"))
        assert found == {"metrics.a.speedup": 2.0,
                         "metrics.b.speedup": 4.0}
        assert compare.lookup(data, "metrics.b.speedup") == 4.0
        assert compare.lookup(data, "metrics.c.speedup") is None

    def test_within_band_passes(self):
        compare = _load_compare()
        baseline = {"metrics": {"m": {"speedup": 10.0}}}
        fresh = {"metrics": {"m": {"speedup": 6.0}}}
        failures = compare.compare(fresh, baseline,
                                   ["metrics.*.speedup"], min_ratio=0.5)
        assert failures == []

    def test_regression_fails(self):
        compare = _load_compare()
        baseline = {"metrics": {"m": {"speedup": 10.0}}}
        fresh = {"metrics": {"m": {"speedup": 3.0}}}
        failures = compare.compare(fresh, baseline,
                                   ["metrics.*.speedup"], min_ratio=0.5)
        assert len(failures) == 1

    def test_growth_ceiling_and_missing_metric(self):
        compare = _load_compare()
        baseline = {"counters": {"net.sent": 100, "net.lost": 1}}
        fresh = {"counters": {"net.sent": 150}}
        failures = compare.compare(fresh, baseline, ["counters.*"],
                                   max_ratio=1.2)
        assert len(failures) == 2  # ballooned sent + missing lost

    def test_no_match_fails(self):
        compare = _load_compare()
        failures = compare.compare({}, {}, ["metrics.*.speedup"],
                                   min_ratio=0.5)
        assert failures

    def test_each_pattern_must_match(self):
        # A pattern matching nothing is a hard failure even when the
        # other patterns matched — a renamed metric must not turn its
        # gate into a silent no-op.
        compare = _load_compare()
        baseline = {"metrics": {"m": {"speedup": 10.0}}}
        fresh = {"metrics": {"m": {"speedup": 10.0}}}
        failures = compare.compare(
            fresh, baseline,
            ["metrics.*.speedup", "metrics.*.renamed_ratio"],
            min_ratio=0.5)
        assert len(failures) == 1
        assert "metrics.*.renamed_ratio" in failures[0]

    def test_cli_end_to_end(self, tmp_path, capsys):
        compare = _load_compare()
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(
            {"metrics": {"m": {"speedup": 10.0}}}), encoding="utf-8")
        fresh.write_text(json.dumps(
            {"metrics": {"m": {"speedup": 9.0}}}), encoding="utf-8")
        assert compare.main([str(fresh), str(baseline),
                             "--min-ratio", "0.5"]) == 0
        assert compare.main([str(fresh), str(baseline),
                             "--min-ratio", "0.95"]) == 1
        capsys.readouterr()


@pytest.mark.telemetry
class TestRunnerReport:
    def test_report_flag_writes_artifacts(self, tmp_path):
        from repro.experiments.runner import main

        assert main(["preference", "--report",
                     "--output", str(tmp_path)]) == 0
        report_md = (tmp_path / "report.md").read_text(encoding="utf-8")
        assert report_md.startswith("# GroupCast run report: preference")
        report = json.loads(
            (tmp_path / "report.json").read_text(encoding="utf-8"))
        assert report["trace"]["spans"] is True
        trace_lines = (tmp_path / "trace.jsonl").read_text(
            encoding="utf-8").splitlines()
        assert json.loads(trace_lines[0])["meta"]["total_records"] \
            == report["trace"]["total_records"]

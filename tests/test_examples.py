"""Smoke tests for the runnable examples.

Every example must at least compile; the fast ones are executed
end-to-end with their output sanity-checked, so the examples cannot rot
as the library evolves.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute in the unit-test suite.
FAST_EXAMPLES = {
    "quickstart.py": ("relative delay penalty", "link stress"),
}


def test_expected_examples_present():
    assert set(ALL_EXAMPLES) >= {
        "quickstart.py",
        "conference.py",
        "streaming_esm.py",
        "skype_scaling.py",
        "supernode_overlay.py",
        "community_advertising.py",
        "trusted_groups.py",
    }


@pytest.mark.parametrize("example", ALL_EXAMPLES)
def test_example_compiles(example):
    py_compile.compile(str(EXAMPLES_DIR / example), doraise=True)


@pytest.mark.parametrize("example", sorted(FAST_EXAMPLES))
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    for marker in FAST_EXAMPLES[example]:
        assert marker in completed.stdout


@pytest.mark.parametrize("example", ALL_EXAMPLES)
def test_example_has_module_docstring_with_run_line(example):
    source = (EXAMPLES_DIR / example).read_text()
    assert source.startswith('"""')
    assert f"python examples/{example}" in source

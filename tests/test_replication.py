"""Unit tests for backup-parent replication and failover."""

import numpy as np
import pytest

from repro.errors import TreeError
from repro.groupcast.replication import BackupPlan, failover
from repro.groupcast.spanning_tree import SpanningTree
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


def make_chain_tree():
    """0 <- 1 <- 2 <- 3, with 4 under 1."""
    tree = SpanningTree(root=0)
    tree.graft_chain([1, 0])
    tree.graft_chain([2, 1])
    tree.graft_chain([3, 2])
    tree.graft_chain([4, 1])
    for node in (2, 3, 4):
        tree.mark_member(node)
    return tree


class TestBackupPlan:
    def test_grandparent_is_preferred_backup(self):
        tree = make_chain_tree()
        plan = BackupPlan()
        plan.refresh(tree)
        assert plan.backup_for(3) == 1   # grandparent of 3
        assert plan.backup_for(2) == 0   # grandparent of 2
        assert plan.backup_for(4) == 0

    def test_children_of_root_fall_back_to_root(self):
        tree = make_chain_tree()
        plan = BackupPlan()
        plan.refresh(tree)
        assert plan.backup_for(1) == 0

    def test_root_has_no_backup(self):
        tree = make_chain_tree()
        plan = BackupPlan()
        plan.refresh(tree)
        assert plan.backup_for(0) is None

    def test_refresh_clears_stale_entries(self):
        tree = make_chain_tree()
        plan = BackupPlan()
        plan.refresh(tree)
        tree.remove_leaf(3)
        plan.refresh(tree)
        assert plan.backup_for(3) is None


class TestFailover:
    def test_instant_failover_to_grandparent(self):
        overlay = make_overlay([(0, 1), (1, 2), (2, 3), (1, 4), (0, 2)])
        tree = make_chain_tree()
        plan = BackupPlan()
        plan.refresh(tree)
        overlay.remove_peer(2)
        report = failover(tree, plan, overlay, 2)
        assert report.fully_repaired
        assert report.instant_failovers == {3: 1}
        assert report.instant_fraction == 1.0
        assert tree.parent(3) == 1
        tree.validate()

    def test_failover_messages_cheaper_than_search(self):
        overlay = make_overlay(
            [(0, 1), (1, 2), (2, 3), (1, 4), (0, 2), (3, 0)])
        # With a plan: single message.
        tree = make_chain_tree()
        plan = BackupPlan()
        plan.refresh(tree)
        overlay_a = make_overlay(
            [(0, 1), (1, 2), (2, 3), (1, 4), (0, 2), (3, 0)])
        overlay_a.remove_peer(2)
        report = failover(tree, plan, overlay_a, 2)
        # Without a plan: the repair module searches the overlay.
        from repro.groupcast.repair import repair_tree

        tree_b = make_chain_tree()
        overlay_b = make_overlay(
            [(0, 1), (1, 2), (2, 3), (1, 4), (0, 2), (3, 0)])
        overlay_b.remove_peer(2)
        search_report = repair_tree(tree_b, overlay_b, 2)
        assert report.messages <= search_report.search_messages + 1

    def test_dead_backup_falls_back_to_search(self):
        # Backup of 3 is 1; kill both 2 (parent) and 1 (backup).
        overlay = make_overlay([(0, 1), (1, 2), (2, 3), (1, 4), (3, 0),
                                (4, 0)])
        tree = make_chain_tree()
        plan = BackupPlan()
        plan.refresh(tree)
        overlay.remove_peer(2)
        overlay.remove_peer(1)
        report = failover(tree, plan, overlay, 1)
        # 2 and 4 were orphaned by 1's failure; 2's backup (0) works.
        tree.validate()
        assert not report.lost_members

    def test_unreachable_orphan_still_lost(self):
        overlay = make_overlay([(0, 1), (1, 2)])
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        tree.graft_chain([2, 1])
        tree.mark_member(2)
        plan = BackupPlan()
        plan.refresh(tree)
        # 2's backup is the root 0, but 0 is unreachable in the overlay
        # once we also disconnect it... here backup 0 IS in the tree and
        # alive, so failover succeeds instantly instead.
        overlay.remove_peer(1)
        report = failover(tree, plan, overlay, 1)
        assert report.fully_repaired
        assert tree.parent(2) == 0

    def test_root_failure_rejected(self):
        overlay = make_overlay([(0, 1)])
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        plan = BackupPlan()
        plan.refresh(tree)
        with pytest.raises(TreeError):
            failover(tree, plan, overlay, 0)

    def test_plan_refreshed_after_failover(self):
        overlay = make_overlay([(0, 1), (1, 2), (2, 3), (1, 4), (0, 2)])
        tree = make_chain_tree()
        plan = BackupPlan()
        plan.refresh(tree)
        overlay.remove_peer(2)
        failover(tree, plan, overlay, 2)
        # 3 now hangs under 1; its new backup is 1's parent, the root.
        assert plan.backup_for(3) == 0

    def test_repeated_failures_on_real_tree(self, groupcast_deployment):
        from repro.groupcast.advertisement import propagate_advertisement
        from repro.groupcast.subscription import subscribe_members
        from repro.sim.random import spawn_rng

        deployment = groupcast_deployment
        rng = spawn_rng(11, "replication")
        advertisement = propagate_advertisement(
            deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
            deployment.peer_distance_ms, rng,
            deployment.config.announcement, deployment.config.utility)
        tree, _ = subscribe_members(
            deployment.overlay, advertisement, deployment.peer_ids()[1:50],
            deployment.peer_distance_ms, deployment.config.announcement)
        plan = BackupPlan()
        plan.refresh(tree)
        instant_total, orphan_total = 0, 0
        for _ in range(5):
            interior = [n for n in tree.nodes()
                        if n != tree.root and tree.children(n)]
            if not interior:
                break
            victim = interior[int(rng.integers(len(interior)))]
            report = failover(tree, plan, deployment.overlay, victim)
            instant_total += len(report.instant_failovers)
            orphan_total += (len(report.instant_failovers)
                             + len(report.searched_failovers))
            tree.validate()
        if orphan_total:
            # Backups should absorb the large majority of failovers.
            assert instant_total / orphan_total > 0.6

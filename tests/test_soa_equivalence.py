"""Differential equivalence: object overlay vs struct-of-arrays core.

The scale refactor's contract is that the array backend is *observably
indistinguishable* from the object backend at seed scale:

* :class:`~repro.core.overlay_view.SoAOverlayNetwork` snapshotted from
  an object overlay replays every iteration order, statistic and rng
  draw bit-for-bit;
* full event-driven sessions (SSA and NSSA, and all three recovery
  policies under a fault schedule) produce **identical trace digests**,
  conservation gaps and tree state over either backend;
* the vectorized NSSA flood of :mod:`repro.core.protocol` reproduces
  the procedural heap simulation receipt-for-receipt.

A digest mismatch here means the array path diverged from the pinned
protocol behavior — that is a bug, not an acceptable approximation.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.config import AnnouncementConfig, GroupCastConfig
from repro.core import SoAOverlayNetwork, flood_advertisement
from repro.deployment import Deployment, build_deployment
from repro.experiments.resilience import (
    POLICIES,
    _publish_if_alive,
    _reset_branch,
)
from repro.faults import CrashEvent, FaultInjector, FaultPlan, FaultWindow
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.session import GroupSession
from repro.groupcast.subscription import subscribe_members
from repro.metrics import (
    node_stress,
    node_stress_arrays,
    overload_index,
    overload_index_arrays,
)
from repro.obs.registry import Registry
from repro.obs.tracer import Tracer
from repro.sim.random import spawn_rng

from .conftest import SMALL_CONFIG

SEED = 42
GROUP = 1
ANNOUNCEMENT = AnnouncementConfig(advertisement_ttl=7,
                                  subscription_search_ttl=3)


def _view(deployment: Deployment) -> SoAOverlayNetwork:
    return SoAOverlayNetwork.from_overlay(deployment.overlay)


# ----------------------------------------------------------------------
# Overlay view: every observable matches the object graph
# ----------------------------------------------------------------------
class TestOverlayViewEquivalence:
    def test_structure_is_identical(self, groupcast_deployment):
        overlay = groupcast_deployment.overlay
        view = _view(groupcast_deployment)
        assert view.peer_ids() == overlay.peer_ids()
        assert len(view) == len(overlay)
        assert view.edge_count == overlay.edge_count
        for peer in overlay.peer_ids():
            assert view.neighbors(peer) == overlay.neighbors(peer)
            assert view.degree(peer) == overlay.degree(peer)
            assert view.peer(peer) == overlay.peer(peer)
        assert sorted(view.edges()) == sorted(overlay.edges())

    def test_statistics_match_bit_for_bit(self, groupcast_deployment):
        overlay = groupcast_deployment.overlay
        view = _view(groupcast_deployment)
        assert np.array_equal(view.degrees(), overlay.degrees())
        values_a, counts_a = overlay.degree_distribution()
        values_b, counts_b = view.degree_distribution()
        assert np.array_equal(values_a, values_b)
        assert np.array_equal(counts_a, counts_b)
        assert (view.clustering_coefficient()
                == overlay.clustering_coefficient())
        assert (view.connected_component_sizes()
                == overlay.connected_component_sizes())
        assert view.is_connected() == overlay.is_connected()
        start = overlay.peer_ids()[3]
        assert (view.hop_distances_from(start)
                == overlay.hop_distances_from(start))

    def test_sampled_statistics_consume_identical_rng(
            self, groupcast_deployment):
        overlay = groupcast_deployment.overlay
        view = _view(groupcast_deployment)
        assert (overlay.clustering_coefficient(spawn_rng(SEED, "cc"), 40)
                == view.clustering_coefficient(spawn_rng(SEED, "cc"), 40))
        assert (overlay.estimated_diameter(spawn_rng(SEED, "diam"), 8)
                == view.estimated_diameter(spawn_rng(SEED, "diam"), 8))

    def test_mutations_track_the_object_graph(self):
        deployment = build_deployment(120, kind="groupcast",
                                      config=SMALL_CONFIG)
        overlay = deployment.overlay
        view = _view(deployment)
        ids = overlay.peer_ids()
        # Removals preserve the surviving neighbor order in both
        # backends; link re-addition is excluded from the equivalence
        # contract (set slot reuse vs list append diverges).
        for victim in (ids[7], ids[31], ids[64]):
            overlay.remove_peer(victim)
            view.remove_peer(victim)
        a, b = ids[3], ids[90]
        if overlay.has_link(a, b):
            overlay.remove_link(a, b)
            view.remove_link(a, b)
        assert view.peer_ids() == overlay.peer_ids()
        for peer in overlay.peer_ids():
            assert view.neighbors(peer) == overlay.neighbors(peer)
        assert view.edge_count == overlay.edge_count


# ----------------------------------------------------------------------
# Full sessions: identical digests over either backend
# ----------------------------------------------------------------------
def _run_session(overlay, deployment: Deployment, scheme: str,
                 policy: str, members_count: int = 30):
    """One fault-schedule session; returns its full observable state.

    The fault plan deliberately has **no partition**: partition heal
    re-adds overlay links, whose position differs between a Python set
    (slot reuse) and the pooled array rows (append) — the one documented
    place the backends may diverge.  Crashes, restarts, drops,
    duplicates and reorder windows never touch overlay adjacency.
    """
    registry = Registry()
    tracer = Tracer()
    session = GroupSession(
        overlay, deployment.peer_distance_ms,
        spawn_rng(SEED, "soa-session"), announcement=ANNOUNCEMENT,
        utility=deployment.config.utility, registry=registry,
        tracer=tracer)
    member_rng = spawn_rng(SEED, "soa-members")
    ids = deployment.peer_ids()
    picks = member_rng.choice(len(ids), size=members_count, replace=False)
    members = [ids[int(i)] for i in picks]
    rendezvous = members[0]
    session.establish(GROUP, rendezvous, members, scheme)

    t0 = session.simulator.now
    interior = [peer for peer in sorted(session.nodes)
                if peer != rendezvous
                and session.upstream_children(GROUP, peer)]
    victims = interior[:2]
    span = 2_000.0
    plan = FaultPlan(
        windows=(
            FaultWindow("drop", t0, t0 + span / 4, 0.08),
            FaultWindow("duplicate", t0 + span / 4, t0 + span / 2,
                        0.15, magnitude_ms=3.0),
            FaultWindow("reorder", t0 + span / 2, t0 + span,
                        0.2, magnitude_ms=5.0),
        ),
        crashes=tuple(
            CrashEvent(t0 + span * (0.2 + 0.3 * i), victim,
                       restart_at_ms=t0 + span * 0.9 if i == 0 else None)
            for i, victim in enumerate(victims)),
    )
    injector = FaultInjector(plan, spawn_rng(SEED, "soa-faults"),
                             registry, tracer)
    injector.attach(session.network)
    backups = session.backup_parents(GROUP)

    def on_crash(victim: int) -> None:
        orphans = sorted(session.upstream_children(GROUP, victim))
        session.crash_peer(victim)
        if policy == "replication":
            for orphan in orphans:
                backup = backups.get(orphan)
                if backup is None or not session.failover_upstream(
                        GROUP, orphan, backup):
                    _reset_branch(session, GROUP, [orphan])
        elif policy == "repair":
            _reset_branch(session, GROUP, orphans)

    def on_restart(peer_id: int) -> None:
        if peer_id in overlay:
            session.restart_peer(peer_id)

    injector.arm(session.simulator, overlay=overlay,
                 on_crash=on_crash, on_restart=on_restart)

    if policy != "none":
        def sweep() -> None:
            broken = session.broken_upstream_peers(GROUP)
            if broken:
                _reset_branch(session, GROUP, broken)

        session.simulator.every(span / 8, sweep)

    for index in range(4):
        payload_id = next(session._payload_ids)
        session.simulator.schedule_at(
            t0 + (index + 0.5) * span / 4,
            lambda p=payload_id: _publish_if_alive(
                session, GROUP, rendezvous, p))
    session.simulator.run()

    view = session.tree_view(GROUP)
    fanout = Counter(
        int(upstream) for upstream, on in
        zip(view.upstream_id, view.on_tree) if on and upstream >= 0)
    return {
        "digest": tracer.trace_digest(),
        "conservation_gap": session.network.conservation_gap(),
        "members_on_tree": sorted(session.members_on_tree(GROUP)),
        "fanout": dict(fanout),
        "deliveries": {
            key: sorted(delivered.items())
            for key, delivered in sorted(session.deliveries.items())},
        "events": session.simulator.events_processed,
    }


@pytest.mark.slow
@pytest.mark.parametrize("scheme", ["ssa", "nssa"])
def test_session_digest_identical_across_backends(scheme):
    deployment = build_deployment(150, kind="groupcast",
                                  config=SMALL_CONFIG)
    view = _view(deployment)
    object_run = _run_session(deployment.overlay, deployment, scheme,
                              "none")
    array_run = _run_session(view, deployment, scheme, "none")
    assert object_run == array_run
    assert object_run["conservation_gap"] == 0


@pytest.mark.slow
@pytest.mark.parametrize("policy", POLICIES)
def test_recovery_policies_identical_across_backends(policy):
    deployment = build_deployment(150, kind="groupcast",
                                  config=SMALL_CONFIG)
    view = _view(deployment)
    object_run = _run_session(deployment.overlay, deployment, "ssa",
                              policy)
    array_run = _run_session(view, deployment, "ssa", policy)
    assert object_run == array_run
    assert object_run["conservation_gap"] == 0


# ----------------------------------------------------------------------
# Vectorized flood vs procedural heap simulation
# ----------------------------------------------------------------------
def _exact_edge_latencies(csr, store, deployment: Deployment):
    sources = csr.edge_sources()
    return np.fromiter(
        (deployment.peer_distance_ms(store.id_of(int(sources[edge])),
                                     store.id_of(int(csr.indices[edge])))
         for edge in range(csr.indices.shape[0])),
        dtype=np.float64, count=csr.indices.shape[0])


@pytest.mark.parametrize("ttl", [2, 4, 7])
def test_vectorized_nssa_flood_matches_heap_simulation(
        groupcast_deployment, ttl):
    deployment = groupcast_deployment
    overlay = deployment.overlay
    rendezvous = overlay.peer_ids()[5]
    outcome = propagate_advertisement(
        overlay, rendezvous, GROUP, "nssa", deployment.peer_distance_ms,
        spawn_rng(SEED, "flood"),
        config=AnnouncementConfig(advertisement_ttl=ttl))

    view = _view(deployment)
    csr, store = view.csr(), view.store
    latency = _exact_edge_latencies(csr, store, deployment)
    flood = flood_advertisement(csr, latency,
                                root=store.row_of(rendezvous), ttl=ttl)

    assert flood.receipt_count() == len(outcome.receipts)
    for peer, receipt in outcome.receipts.items():
        row = store.row_of(peer)
        assert flood.arrival[row] == receipt.elapsed_ms
        assert flood.hops[row] == receipt.hops
        upstream = (None if flood.upstream[row] < 0
                    else store.id_of(int(flood.upstream[row])))
        assert upstream == receipt.upstream


def test_vectorized_ssa_flood_is_deterministic(groupcast_deployment):
    view = _view(groupcast_deployment)
    csr, store = view.csr(), view.store
    latency = _exact_edge_latencies(csr, store, groupcast_deployment)
    capacities = store.peers.capacity[: store.row_count]
    runs = [
        flood_advertisement(
            csr, latency, root=0, ttl=6, scheme="ssa",
            capacities=capacities, rng=spawn_rng(SEED, "ssa-flood"))
        for _ in range(2)
    ]
    assert np.array_equal(runs[0].arrival, runs[1].arrival)
    assert np.array_equal(runs[0].upstream, runs[1].upstream)
    # A selective flood must actually be selective.
    assert 0 < runs[0].receipt_count() <= csr.node_count


# ----------------------------------------------------------------------
# Tree interop: SpanningTree <-> TreeArrays and metric fast paths
# ----------------------------------------------------------------------
def _procedural_tree(deployment: Deployment):
    overlay = deployment.overlay
    ids = overlay.peer_ids()
    rng = spawn_rng(SEED, "tree")
    picks = rng.choice(len(ids), size=40, replace=False)
    members = [ids[int(i)] for i in picks]
    advertisement = propagate_advertisement(
        overlay, members[0], GROUP, "ssa", deployment.peer_distance_ms,
        rng, ANNOUNCEMENT, deployment.config.utility)
    tree, _ = subscribe_members(
        overlay, advertisement, members, deployment.peer_distance_ms,
        ANNOUNCEMENT)
    return tree


def test_spanning_tree_array_round_trip(groupcast_deployment):
    tree = _procedural_tree(groupcast_deployment)
    view = _view(groupcast_deployment)
    store = view.store
    arrays = tree.to_arrays(store._live, rows=store.row_count)
    arrays.validate()
    rebuilt = type(tree).from_arrays(arrays, store._id_of)
    assert rebuilt.root == tree.root
    assert set(rebuilt.nodes()) == set(tree.nodes())
    assert rebuilt.members == tree.members
    for node in tree.nodes():
        assert rebuilt.parent(node) == tree.parent(node)
        assert set(rebuilt.children(node)) == set(tree.children(node))

    depth = arrays.depths()
    assert depth[store.row_of(tree.root)] == 0
    assert arrays.height() == max(
        len(tree.path_to_root(node)) - 1 for node in tree.nodes())


def test_metric_fast_paths_match_object_metrics(groupcast_deployment):
    tree = _procedural_tree(groupcast_deployment)
    view = _view(groupcast_deployment)
    store = view.store
    arrays = tree.to_arrays(store._live, rows=store.row_count)
    assert node_stress_arrays([arrays]) == pytest.approx(
        node_stress([tree]))
    workloads = {peer: fanout
                 for peer, fanout in tree.workloads().items() if fanout}
    capacities = {peer: groupcast_deployment.overlay.peer(peer).capacity
                  for peer in workloads}
    dense_load = np.zeros(store.row_count, dtype=np.int64)
    dense_cap = store.peers.capacity[: store.row_count]
    for peer, fanout in workloads.items():
        dense_load[store.row_of(peer)] = fanout
    assert overload_index_arrays(
        dense_load, dense_cap, capacity_scale=0.01) == pytest.approx(
        overload_index(workloads, capacities, capacity_scale=0.01))

"""Cross-validation: event-driven and procedural paths count alike.

The procedural fast path (:func:`propagate_advertisement` +
:func:`subscribe_members`) and the event-driven session runtime
(:class:`GroupSession` over :class:`MessageNetwork`) implement the same
protocol; with a deterministic NSSA announcement on the same seeded
topology their per-:class:`MessageKind` traffic must agree *exactly*.
Each path records into its own observability :class:`Registry` and the
test compares the ``messages.*`` instruments — precisely the quantities
Figure 11 charges per scheme.
"""

import pytest

from repro.config import AnnouncementConfig
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.session import GroupSession
from repro.groupcast.subscription import subscribe_members
from repro.obs import Registry
from repro.sim.random import spawn_rng


@pytest.fixture(scope="module")
def nssa_config():
    return AnnouncementConfig(advertisement_ttl=8,
                              subscription_search_ttl=2)


def test_per_kind_counts_agree(groupcast_deployment, nssa_config):
    deployment = groupcast_deployment
    rendezvous = deployment.peer_ids()[0]

    # --- procedural fast path -----------------------------------------
    procedural = Registry()
    advertisement = propagate_advertisement(
        deployment.overlay, rendezvous, 1, "nssa",
        deployment.peer_distance_ms, spawn_rng(1, "proc"), nssa_config,
        deployment.config.utility, registry=procedural)

    # Members that hold the advertisement join over the reverse path, so
    # no ripple search runs and the comparison is exact.
    members = sorted(set(advertisement.receipts) - {rendezvous})[:40]
    _, outcome = subscribe_members(
        deployment.overlay, advertisement, members,
        deployment.peer_distance_ms, nssa_config, registry=procedural)
    assert not outcome.failed
    assert outcome.search_messages == 0

    # --- event-driven session, same member order, sequential ----------
    event_driven = Registry()
    session = GroupSession(
        deployment.overlay, deployment.peer_distance_ms,
        spawn_rng(2, "event"), announcement=nssa_config,
        utility=deployment.config.utility, registry=event_driven)
    session.nodes[rendezvous].start_advertisement(1, "nssa")
    session.simulator.run()
    for member in members:
        session.nodes[member].start_subscription(1)
        session.simulator.run()

    # Identical reach: every procedural receipt also received in-session.
    assert set(session.receipts[1]) | {rendezvous} == \
        set(advertisement.receipts)
    assert session.members_on_tree(1) >= set(members)

    # Per-kind counts agree exactly between the two registries (zero
    # counters are dropped: the paths pre-create different instruments).
    def nonzero(registry):
        return {name: value
                for name, value in registry.counters("messages.").items()
                if value}

    assert nonzero(event_driven) == nonzero(procedural)
    assert event_driven.counter("messages.advertisement").value == \
        advertisement.messages_sent
    assert event_driven.counter("messages.subscription").value == \
        outcome.subscription_messages
    assert event_driven.counter("messages.subscription_search").value == 0

    # Duplicate suppression drops the same number of copies.
    assert session.duplicates == advertisement.duplicates


def test_counts_diverge_without_members(groupcast_deployment, nssa_config):
    """Sanity check of the harness: advertisement-only traffic is still
    equal, and nonzero, when nobody subscribes."""
    deployment = groupcast_deployment
    rendezvous = deployment.peer_ids()[0]

    procedural = Registry()
    advertisement = propagate_advertisement(
        deployment.overlay, rendezvous, 1, "nssa",
        deployment.peer_distance_ms, spawn_rng(3, "proc"), nssa_config,
        deployment.config.utility, registry=procedural)

    event_driven = Registry()
    session = GroupSession(
        deployment.overlay, deployment.peer_distance_ms,
        spawn_rng(4, "event"), announcement=nssa_config,
        utility=deployment.config.utility, registry=event_driven)
    session.nodes[rendezvous].start_advertisement(1, "nssa")
    session.simulator.run()

    advertised = event_driven.counter("messages.advertisement").value
    assert advertised == advertisement.messages_sent
    assert advertised > deployment.peer_count  # NSSA floods duplicates
    assert event_driven.counter("messages.subscription").value == 0

"""Tests for the event-driven protocol session (messaging + agents)."""

import numpy as np
import pytest

from repro.config import AnnouncementConfig
from repro.errors import GroupError, SimulationError
from repro.groupcast.session import GroupSession
from repro.overlay.graph import OverlayNetwork
from repro.overlay.messages import MessageKind
from repro.peers.peer import PeerInfo
from repro.sim.engine import Simulator
from repro.sim.messaging import MessageNetwork
from repro.sim.random import spawn_rng


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


def unit_latency(a, b):
    return 1.0


class TestMessageNetwork:
    def test_delivery_after_latency(self):
        simulator = Simulator()
        network = MessageNetwork(simulator, lambda a, b: 7.5,
                                 spawn_rng(0, "net"))
        received = []
        network.register(2, lambda env: received.append(env))
        network.send(1, 2, "hello")
        simulator.run()
        assert len(received) == 1
        assert received[0].payload == "hello"
        assert received[0].transit_ms == pytest.approx(7.5)
        assert network.delivered == 1

    def test_self_send_rejected(self):
        network = MessageNetwork(Simulator(), unit_latency,
                                 spawn_rng(0, "net"))
        with pytest.raises(SimulationError):
            network.send(1, 1, "x")

    def test_unregistered_recipient_dead_letters(self):
        simulator = Simulator()
        network = MessageNetwork(simulator, unit_latency,
                                 spawn_rng(0, "net"))
        network.send(1, 2, "x")
        simulator.run()
        assert network.dead_lettered == 1
        assert network.delivered == 0

    def test_unregister_mid_flight(self):
        simulator = Simulator()
        network = MessageNetwork(simulator, unit_latency,
                                 spawn_rng(0, "net"))
        received = []
        network.register(2, lambda env: received.append(env))
        network.send(1, 2, "x")
        network.unregister(2)
        simulator.run()
        assert not received
        assert network.dead_lettered == 1

    def test_loss_rate_drops_messages(self):
        simulator = Simulator()
        network = MessageNetwork(simulator, unit_latency,
                                 spawn_rng(0, "net"), loss_rate=0.5)
        received = []
        network.register(2, lambda env: received.append(env))
        for _ in range(400):
            network.send(1, 2, "x")
        simulator.run()
        assert 120 < len(received) < 280
        assert network.lost + network.delivered == 400

    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(SimulationError):
            MessageNetwork(Simulator(), unit_latency,
                           spawn_rng(0, "net"), loss_rate=1.0)

    def test_stats_recorded_by_kind(self):
        simulator = Simulator()
        network = MessageNetwork(simulator, unit_latency,
                                 spawn_rng(0, "net"))
        network.register(2, lambda env: None)
        network.send(1, 2, "x", MessageKind.PAYLOAD)
        assert network.stats.count(MessageKind.PAYLOAD) == 1

    def test_broadcast_sends_unicast_copies(self):
        simulator = Simulator()
        network = MessageNetwork(simulator, unit_latency,
                                 spawn_rng(0, "net"))
        counts = {2: 0, 3: 0}
        network.register(2, lambda env: counts.__setitem__(2, counts[2] + 1))
        network.register(3, lambda env: counts.__setitem__(3, counts[3] + 1))
        network.broadcast(1, [2, 3], "x")
        simulator.run()
        assert counts == {2: 1, 3: 1}


class TestGroupSession:
    def make_session(self, edges, **kwargs):
        overlay = make_overlay(edges)
        return GroupSession(overlay, unit_latency,
                            spawn_rng(0, "session"), **kwargs)

    def test_establish_and_publish_on_line(self):
        session = self.make_session([(0, 1), (1, 2), (2, 3), (3, 4)])
        session.establish(1, rendezvous=0, members=[2, 4])
        assert {0, 2, 4} <= session.members_on_tree(1)
        delays = session.publish(1, source=0)
        assert set(delays) == {2, 4}
        assert delays[2] == pytest.approx(2.0)   # two unit hops
        assert delays[4] == pytest.approx(4.0)

    def test_any_member_may_publish(self):
        session = self.make_session([(0, 1), (1, 2), (2, 3)])
        session.establish(1, rendezvous=0, members=[3])
        delays = session.publish(1, source=3)
        assert 0 in delays  # rendezvous is a member and receives

    def test_duplicate_advertisements_suppressed(self):
        session = self.make_session([(0, 1), (1, 2), (2, 0)])
        session.establish(1, rendezvous=0, members=[1, 2])
        # Triangle: each node hears the ad from two sides.
        assert session.duplicates >= 1

    def test_search_fallback_when_ad_missed(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 9)]
        overlay = make_overlay(edges)
        session = GroupSession(
            overlay, unit_latency, spawn_rng(0, "session"),
            announcement=AnnouncementConfig(advertisement_ttl=2,
                                            subscription_search_ttl=2))
        session.establish(1, rendezvous=0, members=[9])
        assert 9 in session.members_on_tree(1)
        delays = session.publish(1, source=0)
        assert 9 in delays

    def test_failed_subscription_recorded(self):
        edges = [(0, 1), (1, 2), (2, 3), (3, 9)]
        overlay = make_overlay(edges)
        session = GroupSession(
            overlay, unit_latency, spawn_rng(0, "session"),
            announcement=AnnouncementConfig(advertisement_ttl=1,
                                            subscription_search_ttl=1))
        session.establish(1, rendezvous=0, members=[9])
        assert 9 not in session.members_on_tree(1)

    def test_unknown_member_fails_gracefully(self):
        session = self.make_session([(0, 1)])
        session.establish(1, rendezvous=0, members=[99])
        assert 99 in session.failures[1]

    def test_non_member_publish_rejected(self):
        session = self.make_session([(0, 1), (1, 2)])
        session.establish(1, rendezvous=0, members=[2])
        with pytest.raises(GroupError):
            session.publish(1, source=1)

    def test_unknown_rendezvous_rejected(self):
        session = self.make_session([(0, 1)])
        with pytest.raises(GroupError):
            session.establish(1, rendezvous=42, members=[0])


class TestCrossValidation:
    """The event-driven runtime must agree with the procedural path."""

    def test_session_matches_procedural_on_deployment(
            self, groupcast_deployment):
        from repro.groupcast.advertisement import propagate_advertisement
        from repro.groupcast.subscription import subscribe_members

        deployment = groupcast_deployment
        members = deployment.peer_ids()[1:40]
        rendezvous = deployment.peer_ids()[0]
        nssa = AnnouncementConfig(advertisement_ttl=6,
                                  subscription_search_ttl=2)

        # Procedural path (NSSA is deterministic: no sampling involved).
        advertisement = propagate_advertisement(
            deployment.overlay, rendezvous, 1, "nssa",
            deployment.peer_distance_ms, spawn_rng(1, "x"), nssa,
            deployment.config.utility)
        tree, _ = subscribe_members(
            deployment.overlay, advertisement, members,
            deployment.peer_distance_ms, nssa)

        # Event-driven path.
        session = GroupSession(
            deployment.overlay, deployment.peer_distance_ms,
            spawn_rng(2, "y"), announcement=nssa,
            utility=deployment.config.utility)
        session.establish(1, rendezvous=rendezvous, members=list(members),
                          scheme="nssa")

        # Same receipt set (first-arrival parentage may differ in ties).
        assert set(session.receipts[1]) | {rendezvous} == \
            set(advertisement.receipts)
        # Same subscribed membership.
        assert session.members_on_tree(1) >= tree.members - {rendezvous}

        # Delivery delays from the rendezvous match the tree flood.
        from repro.groupcast.dissemination import disseminate

        report = disseminate(tree, rendezvous, deployment.underlay)
        session_delays = session.publish(1, source=rendezvous)
        shared = set(report.member_delays_ms) & set(session_delays)
        assert shared
        for member in shared:
            assert session_delays[member] == pytest.approx(
                report.member_delays_ms[member], rel=0.15, abs=10.0)


class TestMidSessionChurn:
    def make_session(self, edges, **kwargs):
        overlay = make_overlay(edges)
        return GroupSession(overlay, unit_latency,
                            spawn_rng(0, "session"), **kwargs)

    def test_departed_relay_breaks_delivery(self):
        session = self.make_session([(0, 1), (1, 2), (2, 3)])
        session.establish(1, rendezvous=0, members=[3])
        assert 3 in session.publish(1, source=0)
        session.remove_peer(2)
        delays = session.publish(1, source=0)
        assert 3 not in delays  # branch through 2 is dead

    def test_rejoin_restores_delivery(self):
        # Ring: 3 can reach the live tree around the dead relay.
        session = self.make_session(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
        session.establish(1, rendezvous=0, members=[2, 3, 4])
        session.remove_peer(2)
        session.rejoin(1, 3)
        delays = session.publish(1, source=0)
        assert 3 in delays

    def test_removed_peer_messages_dead_letter(self):
        session = self.make_session([(0, 1), (1, 2)])
        session.establish(1, rendezvous=0, members=[2])
        session.remove_peer(2)
        before = session.network.dead_lettered
        session.publish(1, source=0)
        assert session.network.dead_lettered > before

    def test_rejoin_unknown_peer_rejected(self):
        session = self.make_session([(0, 1)])
        session.establish(1, rendezvous=0, members=[1])
        session.remove_peer(1)
        with pytest.raises(GroupError):
            session.rejoin(1, 1)


class TestLossyTransport:
    def test_establish_tolerates_moderate_loss(self, groupcast_deployment):
        """With 5 % message loss, NSSA's redundancy still builds a group
        that delivers to the large majority of members."""
        deployment = groupcast_deployment
        session = GroupSession(
            deployment.overlay, deployment.peer_distance_ms,
            spawn_rng(5, "lossy"),
            announcement=deployment.config.announcement,
            utility=deployment.config.utility,
            loss_rate=0.05)
        members = deployment.peer_ids()[1:60]
        session.establish(1, rendezvous=deployment.peer_ids()[0],
                          members=list(members), scheme="nssa")
        on_tree = session.members_on_tree(1)
        assert len(on_tree) >= 0.8 * len(members)
        delays = session.publish(1, source=deployment.peer_ids()[0])
        # Payload loss prunes some branches; most members still receive.
        assert len(delays) >= 0.7 * len(on_tree)

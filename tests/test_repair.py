"""Unit tests for tree surgery and failure repair."""

import numpy as np
import pytest

from repro.errors import TreeError
from repro.groupcast.repair import repair_tree
from repro.groupcast.spanning_tree import SpanningTree
from repro.overlay.graph import OverlayNetwork
from repro.overlay.messages import MessageStats
from repro.peers.peer import PeerInfo


def make_overlay(edges):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        overlay.add_peer(PeerInfo(peer, 10.0, np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


class TestTreeSurgery:
    def make_tree(self):
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        tree.graft_chain([2, 1])
        tree.graft_chain([3, 1])
        tree.graft_chain([4, 2])
        for node in (2, 3, 4):
            tree.mark_member(node)
        return tree

    def test_subtree_nodes(self):
        tree = self.make_tree()
        assert tree.subtree_nodes(1) == {1, 2, 3, 4}
        assert tree.subtree_nodes(2) == {2, 4}
        assert tree.subtree_nodes(4) == {4}

    def test_remove_failed_node_creates_orphans(self):
        tree = self.make_tree()
        orphans = tree.remove_failed_node(1)
        assert sorted(orphans) == [2, 3]
        assert 1 not in tree
        assert tree.parent(2) is None
        assert tree.parent(3) is None

    def test_remove_root_rejected(self):
        tree = self.make_tree()
        with pytest.raises(TreeError):
            tree.remove_failed_node(0)

    def test_reattach_restores_validity(self):
        tree = self.make_tree()
        tree.remove_failed_node(1)
        tree.reattach(2, 0)
        tree.reattach(3, 0)
        tree.validate()
        assert tree.parent(2) == 0

    def test_reattach_rejects_cycles(self):
        tree = self.make_tree()
        tree.remove_failed_node(1)
        with pytest.raises(TreeError):
            tree.reattach(2, 4)  # 4 is inside 2's own subtree

    def test_reattach_rejects_non_orphans(self):
        tree = self.make_tree()
        with pytest.raises(TreeError):
            tree.reattach(2, 0)

    def test_drop_subtree(self):
        tree = self.make_tree()
        tree.remove_failed_node(1)
        dropped = tree.drop_subtree(2)
        assert dropped == {2, 4}
        assert 4 not in tree
        tree.reattach(3, 0)
        tree.validate()


class TestRepair:
    def test_repair_reattaches_orphans(self):
        # Overlay ring gives orphans alternate routes to the tree.
        overlay = make_overlay(
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        tree.graft_chain([2, 1])
        tree.graft_chain([3, 2])
        for node in (2, 3):
            tree.mark_member(node)
        overlay.remove_peer(1)  # peer 1 crashes
        report = repair_tree(tree, overlay, 1)
        assert report.fully_repaired
        assert 2 in report.reattached
        tree.validate()
        assert tree.members == frozenset({0, 2, 3})

    def test_unreachable_subtree_is_dropped(self):
        # Peer 2 only connects through the failed peer 1.
        overlay = make_overlay([(0, 1), (1, 2)])
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        tree.graft_chain([2, 1])
        tree.mark_member(2)
        overlay.remove_peer(1)
        report = repair_tree(tree, overlay, 1)
        assert not report.fully_repaired
        assert report.lost_members == frozenset({2})
        assert 2 not in tree
        tree.validate()

    def test_root_failure_rejected(self):
        overlay = make_overlay([(0, 1)])
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        with pytest.raises(TreeError):
            repair_tree(tree, overlay, 0)

    def test_cascaded_failures(self):
        # Both 1 and its child 2 crashed; 3 must re-home on its own.
        overlay = make_overlay([(0, 1), (1, 2), (2, 3), (3, 0)])
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        tree.graft_chain([2, 1])
        tree.graft_chain([3, 2])
        tree.mark_member(3)
        overlay.remove_peer(1)
        overlay.remove_peer(2)
        report = repair_tree(tree, overlay, 1)
        assert 3 in report.reattached
        assert report.reattached[3] == 0
        tree.validate()

    def test_search_messages_counted(self):
        overlay = make_overlay([(0, 1), (1, 2), (2, 0)])
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        tree.graft_chain([2, 1])
        tree.mark_member(2)
        overlay.remove_peer(1)
        stats = MessageStats()
        report = repair_tree(tree, overlay, 1, stats=stats)
        assert report.search_messages >= 1

    def test_repair_on_realistic_deployment(self, groupcast_deployment):
        """End-to-end: fail a relay in a real tree; members survive."""
        import copy

        from repro.groupcast.advertisement import propagate_advertisement
        from repro.groupcast.subscription import subscribe_members
        from repro.sim.random import spawn_rng

        deployment = groupcast_deployment
        rng = spawn_rng(3, "repair-e2e")
        advertisement = propagate_advertisement(
            deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
            deployment.peer_distance_ms, rng,
            deployment.config.announcement, deployment.config.utility)
        tree, _ = subscribe_members(
            deployment.overlay, advertisement, deployment.peer_ids()[1:40],
            deployment.peer_distance_ms, deployment.config.announcement)
        relays = [r for r in tree.relays if tree.children(r)]
        if not relays:
            pytest.skip("tree has no interior relay to fail")
        victim = relays[0]
        members_before = set(tree.members)
        report = repair_tree(tree, deployment.overlay, victim)
        tree.validate()
        assert members_before - report.lost_members <= set(tree.members)

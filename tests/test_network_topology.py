"""Unit tests for the transit-stub topology generator."""

import numpy as np
import pytest

from repro.config import TransitStubConfig
from repro.errors import ConfigurationError
from repro.network.topology import RouterLevel, generate_transit_stub
from repro.sim.random import spawn_rng


@pytest.fixture()
def config():
    return TransitStubConfig(
        transit_domains=3,
        transit_routers_per_domain=2,
        stub_domains_per_transit=2,
        routers_per_stub=3,
    )


def test_router_count_matches_config(config, rng):
    underlay = generate_transit_stub(config, rng)
    assert underlay.router_count == config.router_count
    # 3*2 transit + 6*2*3 stub routers
    assert config.router_count == 6 + 36


def test_level_assignment(config, rng):
    underlay = generate_transit_stub(config, rng)
    transit = [r for r in underlay.routers if r.level is RouterLevel.TRANSIT]
    stub = [r for r in underlay.routers if r.level is RouterLevel.STUB]
    assert len(transit) == 6
    assert len(stub) == 36


def test_topology_is_connected(config, rng):
    underlay = generate_transit_stub(config, rng)
    distances = underlay.router_distances_from(0)
    assert np.isfinite(distances).all()


def test_stub_domains_have_distinct_ids(config, rng):
    underlay = generate_transit_stub(config, rng)
    stub_domains = {r.domain for r in underlay.routers
                    if r.level is RouterLevel.STUB}
    assert len(stub_domains) == 6 * 2  # transit routers x stubs each


def test_deterministic_given_seed(config):
    u1 = generate_transit_stub(config, spawn_rng(5, "topo"))
    u2 = generate_transit_stub(config, spawn_rng(5, "topo"))
    assert u1.link_count == u2.link_count
    assert np.array_equal(u1.router_distances_from(0),
                          u2.router_distances_from(0))


def test_different_seeds_differ(config):
    u1 = generate_transit_stub(config, spawn_rng(5, "topo"))
    u2 = generate_transit_stub(config, spawn_rng(6, "topo"))
    assert not np.array_equal(u1.router_distances_from(0),
                              u2.router_distances_from(0))


def test_single_domain_single_router(rng):
    config = TransitStubConfig(
        transit_domains=1,
        transit_routers_per_domain=1,
        stub_domains_per_transit=1,
        routers_per_stub=2,
    )
    underlay = generate_transit_stub(config, rng)
    assert underlay.router_count == 3
    assert np.isfinite(underlay.router_distances_from(0)).all()


def test_intra_stub_cheaper_than_backbone_on_average(config, rng):
    """Stub-local paths should usually be shorter than cross-domain ones."""
    underlay = generate_transit_stub(config, rng)
    by_domain: dict[int, list[int]] = {}
    for router in underlay.routers:
        if router.level is RouterLevel.STUB:
            by_domain.setdefault(router.domain, []).append(router.router_id)
    local, remote = [], []
    domains = list(by_domain.values())
    for members in domains:
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                local.append(
                    underlay.router_distance_ms(members[i], members[j]))
    for a in domains[0]:
        for b in domains[-1]:
            remote.append(underlay.router_distance_ms(a, b))
    assert np.mean(local) < np.mean(remote)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        TransitStubConfig(transit_domains=0)
    with pytest.raises(ConfigurationError):
        TransitStubConfig(extra_stub_edge_prob=1.5)
    with pytest.raises(ConfigurationError):
        TransitStubConfig(intra_stub_latency=(5.0, 1.0))
    with pytest.raises(ConfigurationError):
        TransitStubConfig(peer_access_latency=(0.0, 1.0))

"""Tests for span-tree reconstruction and causal analysis.

Two layers: hand-built record streams pin the reconstruction semantics
(roots, closers, critical path, orphan promotion), and a full traced
session run asserts the protocol-wide guarantees — every sent message
carries a valid span whose parent resolves, and every reconstructed
episode is a rooted acyclic tree.
"""

import numpy as np
import pytest

from repro.config import AnnouncementConfig
from repro.errors import TelemetryError
from repro.deployment import build_deployment
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.session import GroupSession
from repro.groupcast.subscription import subscribe_members
from repro.obs import (
    KIND_DELIVER,
    KIND_LOST,
    KIND_SEND,
    SpanForest,
    Tracer,
)
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng

from .conftest import SMALL_CONFIG


def _episode_tracer() -> Tracer:
    """One hand-built advertisement episode: 1 → 2 → {3 (ok), 4 (lost)}."""
    tracer = Tracer(capacity=1024, spans=True)
    root = tracer.root_span(at_ms=0.0, kind="advertisement")
    first = tracer.child_span(root)
    tracer.record(0.0, KIND_SEND, a=1, b=2, detail="advertisement",
                  span=first)
    tracer.record(10.0, KIND_DELIVER, a=1, b=2, detail="advertisement",
                  span=first)
    deep = tracer.child_span(first)
    tracer.record(10.0, KIND_SEND, a=2, b=3, detail="advertisement",
                  span=deep)
    tracer.record(25.0, KIND_DELIVER, a=2, b=3, detail="advertisement",
                  span=deep)
    lost = tracer.child_span(first)
    tracer.record(10.0, KIND_SEND, a=2, b=4, detail="advertisement",
                  span=lost)
    tracer.record(14.0, KIND_LOST, a=2, b=4, detail="advertisement",
                  span=lost)
    return tracer


class TestSpanTree:
    def test_reconstruction_shape(self):
        forest = SpanForest.from_tracer(_episode_tracer())
        assert len(forest) == 1
        tree = forest.trees("advertisement")[0]
        tree.validate()
        stats = tree.stats()
        assert stats.span_count == 4          # root + 3 messages
        assert stats.message_count == 3
        assert stats.depth == 2
        assert stats.max_fan_out == 2
        statuses = sorted(s.status for s in tree.message_spans())
        assert statuses == ["delivered", "delivered", "lost"]

    def test_critical_path_follows_latest_finish(self):
        tree = SpanForest.from_tracer(_episode_tracer()).trees()[0]
        path = tree.critical_path()
        # root → (1→2) → (2→3), the chain ending at t=25.
        assert [(s.a, s.b) for s in path[1:]] == [(1, 2), (2, 3)]
        assert tree.critical_path_latency_ms() == pytest.approx(25.0)
        assert tree.stats().critical_path_hops == 2

    def test_cost_by_kind_counts_only_delivered_latency(self):
        tree = SpanForest.from_tracer(_episode_tracer()).trees()[0]
        cost = tree.cost_by_kind()["advertisement"]
        assert cost["messages"] == 3
        assert cost["delivered"] == 2
        assert cost["total_latency_ms"] == pytest.approx(25.0)
        assert cost["mean_latency_ms"] == pytest.approx(12.5)

    def test_child_before_parent_rejected(self):
        tracer = Tracer(spans=True)
        root = tracer.root_span(at_ms=10.0, kind="advertisement")
        early = tracer.child_span(root)
        tracer.record(5.0, KIND_SEND, a=1, b=2, detail="advertisement",
                      span=early)
        forest = SpanForest.from_tracer(tracer)
        with pytest.raises(TelemetryError):
            forest.validate()

    def test_orphan_subtree_promoted_to_partial_root(self):
        tracer = Tracer(spans=True)
        root = tracer.root_span(at_ms=0.0, kind="subscription")
        attached = tracer.child_span(root)
        tracer.record(0.0, KIND_SEND, a=1, b=2, detail="subscription",
                      span=attached)
        # A child whose parent never reached the stream (ring overflow):
        # it must surface as its own partial tree, not vanish.
        ghost_parent = tracer.child_span(root)
        orphan = tracer.child_span(ghost_parent)
        tracer.record(3.0, KIND_SEND, a=5, b=6, detail="subscription",
                      span=orphan)
        forest = SpanForest.from_records(
            [r for r in tracer.records()
             if r.span_id != ghost_parent.span_id])
        assert len(forest) == 2
        roots = sorted((t.root.a, t.root.b) for t in forest)
        assert roots == [(-1, -1), (5, 6)]

    def test_closer_without_opener_synthesizes_stub(self):
        tracer = Tracer(spans=True)
        root = tracer.root_span(at_ms=0.0, kind="dissemination")
        span = tracer.child_span(root)
        tracer.record(9.0, KIND_DELIVER, a=1, b=2, detail="payload",
                      span=span)
        tree = SpanForest.from_tracer(tracer).trees()[0]
        stub = tree.span(span.span_id)
        assert stub.status == "delivered"
        assert stub.latency_ms == 0.0

    def test_jsonl_roundtrip_preserves_forest(self, tmp_path):
        tracer = _episode_tracer()
        path = tracer.export_jsonl(tmp_path / "trace.jsonl",
                                   include_meta=True)
        direct = SpanForest.from_tracer(tracer)
        parsed = SpanForest.from_jsonl(path)
        assert len(parsed) == len(direct) == 1
        assert parsed.trees()[0].stats() == direct.trees()[0].stats()


# ----------------------------------------------------------------------
# Protocol-wide guarantees on a real traced run
# ----------------------------------------------------------------------
def _traced_session(seed: int = 5):
    rng = np.random.default_rng(seed)
    overlay = OverlayNetwork()
    n = 36
    for i in range(n):
        overlay.add_peer(PeerInfo(i, 10.0, rng.uniform(0, 100, size=2)))
    for i in range(1, n):
        overlay.add_link(i, int(rng.integers(0, i)))
    for _ in range(2 * n):
        a, b = rng.integers(0, n, size=2)
        if a != b and not overlay.has_link(int(a), int(b)):
            overlay.add_link(int(a), int(b))

    def latency(a, b):
        return max(
            overlay.peer(a).coordinate_distance(overlay.peer(b)), 0.01)

    tracer = Tracer(spans=True)
    session = GroupSession(overlay, latency, spawn_rng(seed, "causality"),
                           tracer=tracer)
    session.establish(1, rendezvous=0, members=list(range(1, 16)),
                      scheme="ssa")
    session.publish(1, source=0)
    return tracer, session


@pytest.mark.telemetry
class TestSessionCausality:
    def test_every_sent_message_carries_a_parented_span(self):
        tracer, _ = _traced_session()
        sends = [r for r in tracer.records() if r.kind == KIND_SEND]
        assert sends
        assert {r.detail for r in sends} >= {"advertisement", "payload"}
        span_ids = {r.span_id for r in tracer.records() if r.span_id >= 0}
        for rec in sends:
            assert rec.span_id >= 0, f"unspanned send {rec}"
            assert rec.parent_id >= 0, f"rootless send {rec}"
            assert rec.parent_id in span_ids, f"dangling parent {rec}"

    def test_forest_is_rooted_acyclic_and_covers_the_protocol(self):
        tracer, _ = _traced_session()
        forest = SpanForest.from_tracer(tracer)
        forest.validate()  # single root, acyclic, parent-ordered
        kinds = {tree.kind for tree in forest}
        assert {"advertisement", "subscription",
                "dissemination"} <= kinds
        for tree in forest:
            stats = tree.stats()
            assert stats.critical_path_ms >= 0.0
            assert stats.finish_ms >= stats.start_ms

    def test_span_capture_is_deterministic(self):
        first, _ = _traced_session(seed=9)
        second, _ = _traced_session(seed=9)
        assert first.trace_digest() == second.trace_digest()
        assert [r for r in first.records()] == \
            [r for r in second.records()]


@pytest.mark.telemetry
class TestProceduralCausality:
    """The fast procedural paths emit the same span shapes."""

    def test_procedural_advertisement_and_subscription_trees(self):
        deployment = build_deployment(120, kind="groupcast",
                                      config=SMALL_CONFIG)
        rng = spawn_rng(3, "proc-causality")
        tracer = Tracer(spans=True)
        advertisement = propagate_advertisement(
            deployment.overlay, deployment.peer_ids()[0], 0, "ssa",
            deployment.peer_distance_ms, rng,
            deployment.config.announcement, deployment.config.utility,
            tracer=tracer)
        members = deployment.peer_ids()[1:9]
        subscribe_members(
            deployment.overlay, advertisement, list(members),
            deployment.peer_distance_ms,
            AnnouncementConfig(subscription_search_ttl=3),
            tracer=tracer)
        forest = SpanForest.from_tracer(tracer)
        forest.validate()
        ads = forest.trees("advertisement")
        subs = forest.trees("subscription")
        assert len(ads) == 1
        assert ads[0].stats().message_count > 0
        assert subs  # one episode per member walk
        for tree in subs:
            # Reverse-path grafts chain hop by hop: depth == hops.
            assert tree.stats().depth >= 1


# ----------------------------------------------------------------------
# Baseline protocols join the span forest (cross-protocol attribution)
# ----------------------------------------------------------------------
class TestBaselineSpans:
    """Narada, NICE, Skype-unicast and SCRIBE emit span episodes when
    tracing is on, and stay digest-transparent when it is off — so the
    comparison benches of Section 2.1 attribute cost like-for-like with
    GroupCast."""

    @pytest.fixture(scope="class")
    def underlay(self):
        from repro.config import TransitStubConfig
        from repro.network.topology import generate_transit_stub

        u = generate_transit_stub(
            TransitStubConfig(transit_domains=2,
                              transit_routers_per_domain=3,
                              stub_domains_per_transit=2,
                              routers_per_stub=3),
            spawn_rng(6, "topo"))
        rng = spawn_rng(6, "attach")
        for peer in range(40):
            u.attach_peer(peer, rng)
        return u

    def test_narada_mesh_probe_episode(self, underlay):
        from repro.baselines.narada import build_narada_mesh

        tracer = Tracer(spans=True)
        mesh = build_narada_mesh(underlay, list(range(10)),
                                 spawn_rng(2, "narada"), tracer=tracer)
        forest = SpanForest.from_tracer(tracer)
        forest.validate()
        trees = forest.trees("narada-mesh")
        assert len(trees) == 1
        stats = trees[0].stats()
        # One probe send/deliver pair per undirected mesh link.
        assert stats.message_count == mesh.edge_count
        assert trees[0].cost_by_kind()["probe"]["messages"] == \
            mesh.edge_count

    def test_nice_cluster_subscription_episode(self, underlay):
        from repro.baselines.nice import build_nice_tree

        tracer = Tracer(spans=True)
        tree = build_nice_tree(underlay, list(range(12)),
                               spawn_rng(3, "nice"), tracer=tracer)
        forest = SpanForest.from_tracer(tracer)
        forest.validate()
        episodes = forest.trees("nice-cluster")
        assert len(episodes) == 1
        # Every non-root hierarchy node chose exactly one parent.
        assert episodes[0].stats().message_count == len(tree) - 1

    def test_unicast_fan_episode(self, underlay):
        from repro.baselines.client_server import skype_unicast_cost

        tracer = Tracer(spans=True)
        skype_unicast_cost(underlay, 0, list(range(6)), tracer=tracer)
        forest = SpanForest.from_tracer(tracer)
        forest.validate()
        episodes = forest.trees("unicast")
        assert len(episodes) == 1
        fan_out, _ = episodes[0].fan_out()
        assert episodes[0].stats().message_count == 5  # 6 members - source
        assert fan_out == 5  # flat fan, no relaying

    def test_scribe_join_episodes_chain_route_hops(self, underlay):
        from repro.dht.pastry import PastryNetwork
        from repro.dht.scribe import build_scribe_group

        pastry = PastryNetwork(underlay, list(range(40)))
        tracer = Tracer(spans=True)
        group = build_scribe_group(pastry, "room", list(range(8)),
                                   underlay=underlay, tracer=tracer)
        forest = SpanForest.from_tracer(tracer)
        forest.validate()
        episodes = forest.trees("scribe-join")
        # One episode per member whose join actually walked the ring.
        walkers = [m for m, hops in group.join_hops.items() if hops > 0]
        assert len(episodes) == len(walkers)
        total_hops = sum(tree.stats().message_count
                         for tree in episodes)
        assert total_hops == sum(group.join_hops.values())
        for tree in episodes:
            # Chained spans: each hop parents the next, so depth == hops.
            assert tree.stats().depth == tree.stats().message_count

    def test_baselines_silent_without_spans(self, underlay):
        from repro.baselines.client_server import skype_unicast_cost
        from repro.baselines.narada import build_narada_mesh
        from repro.baselines.nice import build_nice_tree
        from repro.dht.pastry import PastryNetwork
        from repro.dht.scribe import build_scribe_group

        tracer = Tracer()  # spans disabled
        build_narada_mesh(underlay, list(range(10)),
                          spawn_rng(2, "narada"), tracer=tracer)
        build_nice_tree(underlay, list(range(12)),
                        spawn_rng(3, "nice"), tracer=tracer)
        skype_unicast_cost(underlay, 0, list(range(6)), tracer=tracer)
        pastry = PastryNetwork(underlay, list(range(40)))
        build_scribe_group(pastry, "room", list(range(8)),
                           underlay=underlay, tracer=tracer)
        assert tracer.total_records == 0
        assert tracer.trace_digest() == Tracer().trace_digest()

"""Unit tests for configuration objects and the message ledger."""

import math

import pytest

from repro.config import (
    AnnouncementConfig,
    GroupCastConfig,
    OverlayConfig,
    RendezvousConfig,
    UtilityConfig,
)
from repro.errors import ConfigurationError
from repro.overlay.messages import (
    ADVERTISING_KINDS,
    SUBSCRIPTION_KINDS,
    AdvertisementMessage,
    MessageKind,
    MessageStats,
)


class TestUtilityConfig:
    def test_clamp(self):
        cfg = UtilityConfig()
        assert cfg.clamp_resource_level(-1.0) == cfg.min_resource_level
        assert cfg.clamp_resource_level(2.0) == cfg.max_resource_level
        assert cfg.clamp_resource_level(0.4) == 0.4

    def test_gamma_formula(self):
        cfg = UtilityConfig()
        assert cfg.gamma(0.5) == pytest.approx(0.5 ** (-math.log(0.5)))

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UtilityConfig(min_resource_level=0.9, max_resource_level=0.1)
        with pytest.raises(ConfigurationError):
            UtilityConfig(min_distance_ms=0.0)


class TestOverlayConfig:
    def test_target_degree_monotone_in_capacity(self):
        cfg = OverlayConfig()
        degrees = [cfg.target_degree(c) for c in (1, 10, 100, 1000, 10000)]
        assert degrees == sorted(degrees)
        assert degrees[0] == cfg.min_degree

    def test_target_degree_clamped(self):
        cfg = OverlayConfig(min_degree=3, max_degree=5)
        assert cfg.target_degree(1e12) == 5

    def test_target_degree_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            OverlayConfig().target_degree(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OverlayConfig(min_degree=10, max_degree=5)
        with pytest.raises(ConfigurationError):
            OverlayConfig(bootstrap_list_size=1)
        with pytest.raises(ConfigurationError):
            OverlayConfig(back_link_fallback_prob=2.0)
        with pytest.raises(ConfigurationError):
            OverlayConfig(epoch_ms=1.0, min_epoch_ms=10.0)


class TestOtherConfigs:
    def test_announcement_validation(self):
        with pytest.raises(ConfigurationError):
            AnnouncementConfig(ssa_fanout_fraction=0.0)
        with pytest.raises(ConfigurationError):
            AnnouncementConfig(advertisement_ttl=0)
        AnnouncementConfig(subscription_search_ttl=0)  # allowed

    def test_rendezvous_validation(self):
        with pytest.raises(ConfigurationError):
            RendezvousConfig(walk_length=0)
        with pytest.raises(ConfigurationError):
            RendezvousConfig(min_capacity=0.0)

    def test_groupcast_config_defaults_compose(self):
        cfg = GroupCastConfig()
        assert cfg.underlay.router_count > 0
        assert cfg.seed >= 0
        with pytest.raises(ConfigurationError):
            GroupCastConfig(join_interarrival_ms=0.0)


class TestMessageStats:
    def test_record_and_count(self):
        stats = MessageStats()
        stats.record(MessageKind.PROBE, 3)
        stats.record(MessageKind.PROBE)
        assert stats.count(MessageKind.PROBE) == 4
        assert stats.count(MessageKind.CONNECT) == 0

    def test_total_with_and_without_filter(self):
        stats = MessageStats()
        stats.record(MessageKind.ADVERTISEMENT, 5)
        stats.record(MessageKind.SUBSCRIPTION, 2)
        stats.record(MessageKind.SUBSCRIPTION_SEARCH, 3)
        assert stats.total() == 10
        assert stats.total(ADVERTISING_KINDS) == 5
        assert stats.total(SUBSCRIPTION_KINDS) == 5

    def test_merge(self):
        a, b = MessageStats(), MessageStats()
        a.record(MessageKind.PROBE, 2)
        b.record(MessageKind.PROBE, 3)
        b.record(MessageKind.CONNECT)
        a.merge(b)
        assert a.count(MessageKind.PROBE) == 5
        assert a.count(MessageKind.CONNECT) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MessageStats().record(MessageKind.PROBE, -1)

    def test_snapshot_keys_are_strings(self):
        stats = MessageStats()
        stats.record(MessageKind.HEARTBEAT)
        assert stats.snapshot() == {"heartbeat": 1}


class TestAdvertisementMessage:
    def test_forwarded_extends_path_and_decrements_ttl(self):
        msg = AdvertisementMessage(
            group_id=1, rendezvous=0, path=(0,), ttl=5)
        fwd = msg.forwarded(via=3, link_latency_ms=7.0)
        assert fwd.path == (0, 3)
        assert fwd.ttl == 4
        assert fwd.elapsed_ms == pytest.approx(7.0)
        assert fwd.group_id == 1

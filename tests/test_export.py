"""Tests for experiment result export and the runner's output flags."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.experiments.export import (
    render,
    slug_for,
    to_csv,
    to_json,
    write_result,
)
from repro.experiments.runner import main as runner_main


@pytest.fixture()
def result():
    r = ExperimentResult(
        title="Figure 99: a test figure",
        columns=("peers", "overlay", "value"),
    )
    r.add_row(1000, "groupcast", 1.5)
    r.add_row(1000, "plod", 3.25)
    return r


class TestFormats:
    def test_csv_roundtrip(self, result):
        text = to_csv(result)
        lines = text.strip().splitlines()
        assert lines[0] == "peers,overlay,value"
        assert lines[1] == "1000,groupcast,1.5"
        assert len(lines) == 3

    def test_json_structure(self, result):
        data = json.loads(to_json(result))
        assert data["title"].startswith("Figure 99")
        assert data["columns"] == ["peers", "overlay", "value"]
        assert data["rows"][1] == {
            "peers": 1000, "overlay": "plod", "value": 3.25}

    def test_json_handles_numpy_scalars(self):
        import numpy as np

        r = ExperimentResult(title="t", columns=("x",))
        r.add_row(np.float64(1.5))
        data = json.loads(to_json(r))
        assert data["rows"][0]["x"] == 1.5

    def test_render_dispatch(self, result):
        assert render(result, "text") == result.format_table()
        assert render(result, "csv") == to_csv(result)
        assert render(result, "json") == to_json(result)
        with pytest.raises(ConfigurationError):
            render(result, "xml")

    def test_slug(self, result):
        assert slug_for(result) == "figure-99"

    def test_write_result(self, result, tmp_path):
        path = write_result(result, "csv", tmp_path / "out")
        assert path.name == "figure-99.csv"
        assert path.read_text().startswith("peers,overlay,value")


class TestRunnerOutputFlags:
    def test_csv_to_stdout(self, capsys):
        assert runner_main(["preference", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("resource_level,")

    def test_output_directory(self, tmp_path, capsys):
        assert runner_main([
            "preference", "--format", "json",
            "--output", str(tmp_path)]) == 0
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        data = json.loads(files[0].read_text())
        assert len(data["rows"]) == 3


def test_write_result_text_format(result, tmp_path):
    path = write_result(result, "text", tmp_path)
    assert path.suffix == ".txt"
    assert path.read_text().startswith("Figure 99")

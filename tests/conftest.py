"""Shared fixtures.

Deployments are expensive to build, so the common ones are session-scoped;
tests must not mutate them (tests that mutate build their own).
"""

from __future__ import annotations

import pytest

from repro.config import GroupCastConfig, TransitStubConfig
from repro.deployment import Deployment, build_deployment
from repro.sim.random import spawn_rng

#: A compact underlay so unit tests stay fast.
SMALL_UNDERLAY = TransitStubConfig(
    transit_domains=2,
    transit_routers_per_domain=3,
    stub_domains_per_transit=2,
    routers_per_stub=3,
)

SMALL_CONFIG = GroupCastConfig(underlay=SMALL_UNDERLAY, seed=42)


@pytest.fixture(autouse=True)
def _isolate_default_observability():
    """Order-independence guard for the process-wide observability state.

    Tests that call ``enable_telemetry``/``enable_tracing``/
    ``enable_profiling`` (or run the experiment CLI with ``--telemetry``
    / ``--report``) would otherwise leak an enabled registry, tracer or
    profiler into whichever test happens to run next, making results
    depend on test order.  Snapshot the defaults before each test and
    restore them afterwards, no matter how the test exits.
    """
    from repro.obs import (
        get_default_profiler,
        get_default_registry,
        get_default_topology_recorder,
        get_default_tracer,
        set_default_profiler,
        set_default_registry,
        set_default_topology_recorder,
        set_default_tracer,
    )

    registry = get_default_registry()
    tracer = get_default_tracer()
    profiler = get_default_profiler()
    topology = get_default_topology_recorder()
    yield
    set_default_registry(registry)
    set_default_tracer(tracer)
    set_default_profiler(profiler)
    set_default_topology_recorder(topology)


@pytest.fixture(scope="session")
def groupcast_deployment() -> Deployment:
    """A 250-peer utility-aware deployment (read-only)."""
    return build_deployment(250, kind="groupcast", config=SMALL_CONFIG)


@pytest.fixture(scope="session")
def plod_deployment() -> Deployment:
    """A 250-peer PLOD power-law deployment (read-only)."""
    return build_deployment(250, kind="plod", config=SMALL_CONFIG)


@pytest.fixture(scope="session")
def random_deployment() -> Deployment:
    """A 250-peer random-overlay deployment (read-only)."""
    return build_deployment(250, kind="random", config=SMALL_CONFIG)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return spawn_rng(1234, "tests")

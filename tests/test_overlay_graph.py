"""Unit + property tests for the overlay graph container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OverlayError, PeerNotFoundError
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo


def make_info(peer_id, capacity=10.0):
    return PeerInfo(peer_id=peer_id, capacity=capacity,
                    coordinate=np.array([float(peer_id), 0.0]))


@pytest.fixture()
def triangle():
    overlay = OverlayNetwork()
    for i in range(3):
        overlay.add_peer(make_info(i))
    overlay.add_link(0, 1)
    overlay.add_link(1, 2)
    overlay.add_link(0, 2)
    return overlay


class TestVertices:
    def test_add_and_lookup(self):
        overlay = OverlayNetwork()
        overlay.add_peer(make_info(5, capacity=100.0))
        assert 5 in overlay
        assert overlay.peer(5).capacity == 100.0
        assert overlay.peer_count == 1

    def test_duplicate_peer_rejected(self):
        overlay = OverlayNetwork()
        overlay.add_peer(make_info(1))
        with pytest.raises(OverlayError):
            overlay.add_peer(make_info(1))

    def test_remove_peer_clears_links(self, triangle):
        triangle.remove_peer(1)
        assert 1 not in triangle
        assert triangle.edge_count == 1
        assert triangle.neighbors(0) == [2]

    def test_unknown_peer_raises(self):
        overlay = OverlayNetwork()
        with pytest.raises(PeerNotFoundError):
            overlay.peer(9)
        with pytest.raises(PeerNotFoundError):
            overlay.neighbors(9)


class TestEdges:
    def test_links_are_undirected(self, triangle):
        assert triangle.has_link(0, 1)
        assert triangle.has_link(1, 0)
        assert 0 in triangle.neighbors(1)
        assert 1 in triangle.neighbors(0)

    def test_add_link_idempotent(self, triangle):
        assert triangle.add_link(0, 1) is False
        assert triangle.edge_count == 3

    def test_self_link_rejected(self, triangle):
        with pytest.raises(OverlayError):
            triangle.add_link(0, 0)

    def test_remove_link(self, triangle):
        assert triangle.remove_link(0, 1) is True
        assert triangle.remove_link(0, 1) is False
        assert triangle.edge_count == 2

    def test_edges_iteration_normalised(self, triangle):
        assert sorted(triangle.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2
        triangle.remove_link(0, 1)
        assert triangle.degree(0) == 1


class TestStatistics:
    def test_degree_distribution(self, triangle):
        values, counts = triangle.degree_distribution()
        assert list(values) == [2]
        assert list(counts) == [3]

    def test_clustering_of_triangle_is_one(self, triangle):
        assert triangle.clustering_coefficient() == pytest.approx(1.0)

    def test_clustering_of_path_is_zero(self):
        overlay = OverlayNetwork()
        for i in range(3):
            overlay.add_peer(make_info(i))
        overlay.add_link(0, 1)
        overlay.add_link(1, 2)
        assert overlay.clustering_coefficient() == 0.0

    def test_connectivity(self, triangle):
        assert triangle.is_connected()
        triangle.add_peer(make_info(7))
        assert not triangle.is_connected()
        assert triangle.connected_component_sizes() == [3, 1]

    def test_hop_distances(self, triangle):
        triangle.remove_link(0, 2)
        dist = triangle.hop_distances_from(0)
        assert dist == {0: 0, 1: 1, 2: 2}

    def test_estimated_diameter(self, rng):
        overlay = OverlayNetwork()
        for i in range(6):
            overlay.add_peer(make_info(i))
        for i in range(5):
            overlay.add_link(i, i + 1)
        assert overlay.estimated_diameter(rng, samples=6) == 5

    def test_to_networkx(self, triangle):
        graph = triangle.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3
        assert graph.nodes[0]["capacity"] == 10.0

    def test_empty_graph_statistics(self):
        overlay = OverlayNetwork()
        assert overlay.is_connected()
        assert overlay.clustering_coefficient() == 0.0
        values, counts = overlay.degree_distribution()
        assert values.size == 0 and counts.size == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(
            lambda edge: edge[0] != edge[1]),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_edge_count_matches_adjacency(edge_list):
    """edge_count stays consistent under arbitrary add/remove sequences."""
    overlay = OverlayNetwork()
    for i in range(15):
        overlay.add_peer(make_info(i))
    reference: set[tuple[int, int]] = set()
    for a, b in edge_list:
        key = (min(a, b), max(a, b))
        if key in reference:
            overlay.remove_link(a, b)
            reference.discard(key)
        else:
            overlay.add_link(a, b)
            reference.add(key)
    assert overlay.edge_count == len(reference)
    assert set(overlay.edges()) == reference
    degrees = overlay.degrees()
    assert degrees.sum() == 2 * len(reference)

"""Unit tests for rendezvous selection and payload dissemination."""

import numpy as np
import pytest

from repro.config import RendezvousConfig, TransitStubConfig
from repro.errors import GroupError, RendezvousError
from repro.groupcast.dissemination import disseminate
from repro.groupcast.rendezvous import select_rendezvous
from repro.groupcast.spanning_tree import SpanningTree
from repro.network.topology import generate_transit_stub
from repro.overlay.graph import OverlayNetwork
from repro.overlay.messages import MessageKind, MessageStats
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def make_overlay(edges, capacities=None):
    peers = sorted({p for edge in edges for p in edge})
    overlay = OverlayNetwork()
    for peer in peers:
        capacity = (capacities or {}).get(peer, 1.0)
        overlay.add_peer(PeerInfo(peer, capacity,
                                  np.array([float(peer), 0.0])))
    for a, b in edges:
        overlay.add_link(a, b)
    return overlay


class TestRendezvous:
    def test_initiator_qualifies_immediately(self):
        overlay = make_overlay([(0, 1)], capacities={0: 500.0})
        chosen = select_rendezvous(overlay, 0, spawn_rng(0, "r"))
        assert chosen == 0

    def test_walk_finds_capable_peer(self):
        overlay = make_overlay(
            [(0, 1), (1, 2), (2, 3)], capacities={3: 1000.0})
        chosen = select_rendezvous(
            overlay, 0, spawn_rng(0, "r"),
            RendezvousConfig(walk_length=32, min_capacity=100.0))
        assert chosen == 3

    def test_falls_back_to_best_seen(self):
        overlay = make_overlay(
            [(0, 1), (1, 2)], capacities={0: 1.0, 1: 5.0, 2: 2.0})
        chosen = select_rendezvous(
            overlay, 0, spawn_rng(0, "r"),
            RendezvousConfig(walk_length=16, min_capacity=1e6))
        assert overlay.peer(chosen).capacity >= 1.0
        assert chosen in (0, 1, 2)

    def test_walk_messages_counted(self):
        overlay = make_overlay([(0, 1), (1, 2), (2, 3)],
                               capacities={3: 1000.0})
        stats = MessageStats()
        select_rendezvous(overlay, 0, spawn_rng(0, "r"),
                          RendezvousConfig(walk_length=16,
                                           min_capacity=100.0),
                          stats)
        assert stats.count(MessageKind.RANDOM_WALK) >= 1

    def test_isolated_initiator_returns_itself(self):
        overlay = OverlayNetwork()
        overlay.add_peer(PeerInfo(0, 1.0, np.zeros(2)))
        assert select_rendezvous(overlay, 0, spawn_rng(0, "r")) == 0

    def test_unknown_initiator_rejected(self):
        overlay = make_overlay([(0, 1)])
        with pytest.raises(RendezvousError):
            select_rendezvous(overlay, 42, spawn_rng(0, "r"))


@pytest.fixture()
def underlay_with_peers():
    underlay = generate_transit_stub(
        TransitStubConfig(transit_domains=2, transit_routers_per_domain=2,
                          stub_domains_per_transit=2, routers_per_stub=3),
        spawn_rng(1, "topo"))
    rng = spawn_rng(1, "attach")
    for peer in range(6):
        underlay.attach_peer(peer, rng)
    return underlay


@pytest.fixture()
def star_tree():
    tree = SpanningTree(root=0)
    for leaf in (1, 2, 3):
        tree.graft_chain([leaf, 0])
        tree.mark_member(leaf)
    return tree


class TestDissemination:
    def test_all_members_receive(self, underlay_with_peers, star_tree):
        report = disseminate(star_tree, 0, underlay_with_peers)
        assert set(report.member_delays_ms) == {1, 2, 3}

    def test_source_excluded_from_delays(self, underlay_with_peers,
                                         star_tree):
        report = disseminate(star_tree, 1, underlay_with_peers)
        assert 1 not in report.member_delays_ms
        # The root (rendezvous) is always a member of its tree.
        assert set(report.member_delays_ms) == {0, 2, 3}

    def test_delays_accumulate_along_tree_path(self, underlay_with_peers,
                                               star_tree):
        report = disseminate(star_tree, 1, underlay_with_peers)
        expected = (underlay_with_peers.peer_distance_ms(1, 0)
                    + underlay_with_peers.peer_distance_ms(0, 2))
        assert report.member_delays_ms[2] == pytest.approx(expected)

    def test_overlay_messages_equal_tree_edges(self, underlay_with_peers,
                                               star_tree):
        report = disseminate(star_tree, 0, underlay_with_peers)
        assert report.overlay_messages == 3

    def test_ip_messages_count_physical_hops(self, underlay_with_peers,
                                             star_tree):
        report = disseminate(star_tree, 0, underlay_with_peers)
        expected = sum(
            len(underlay_with_peers.peer_path_links(0, leaf))
            for leaf in (1, 2, 3))
        assert report.ip_messages == expected

    def test_link_stress_counts_shared_links(self, underlay_with_peers):
        tree = SpanningTree(root=0)
        tree.graft_chain([1, 0])
        tree.graft_chain([2, 0])
        tree.mark_member(1)
        tree.mark_member(2)
        report = disseminate(tree, 0, underlay_with_peers)
        # Source access link carries both copies.
        source_access = (-0 - 1,
                         underlay_with_peers.attachment(0).router_id)
        assert report.physical_link_stress[source_access] == 2
        assert report.max_physical_link_stress >= 2

    def test_relays_forward_but_do_not_appear_in_delays(
            self, underlay_with_peers):
        tree = SpanningTree(root=0)
        tree.graft_chain([2, 1, 0])  # 1 is a relay
        tree.mark_member(2)
        report = disseminate(tree, 0, underlay_with_peers)
        assert set(report.member_delays_ms) == {2}
        assert report.overlay_messages == 2

    def test_payload_messages_recorded(self, underlay_with_peers, star_tree):
        stats = MessageStats()
        disseminate(star_tree, 0, underlay_with_peers, stats)
        assert stats.count(MessageKind.PAYLOAD) == 3

    def test_source_not_on_tree_rejected(self, underlay_with_peers,
                                         star_tree):
        with pytest.raises(GroupError):
            disseminate(star_tree, 42, underlay_with_peers)


class TestBandwidthModel:
    def test_zero_payload_matches_pure_propagation(
            self, underlay_with_peers, star_tree):
        plain = disseminate(star_tree, 0, underlay_with_peers)
        modelled = disseminate(
            star_tree, 0, underlay_with_peers,
            capacities={n: 1.0 for n in star_tree.nodes()},
            payload_kbits=0.0)
        assert plain.member_delays_ms == modelled.member_delays_ms

    def test_serialization_delay_accumulates_per_child(
            self, underlay_with_peers, star_tree):
        capacities = {n: 1.0 for n in star_tree.nodes()}  # 64 kbps each
        report = disseminate(
            star_tree, 0, underlay_with_peers,
            capacities=capacities, payload_kbits=64.0)  # 1 s per copy
        # Children 1, 2, 3 are sent sequentially: +1 s, +2 s, +3 s.
        for position, child in enumerate(sorted((1, 2, 3)), start=1):
            expected = (position * 1000.0
                        + underlay_with_peers.peer_distance_ms(0, child))
            assert report.member_delays_ms[child] == pytest.approx(expected)

    def test_strong_forwarder_is_faster(self, underlay_with_peers):
        def star_with_root_capacity(capacity):
            tree = SpanningTree(root=0)
            for leaf in (1, 2, 3):
                tree.graft_chain([leaf, 0])
                tree.mark_member(leaf)
            capacities = {0: capacity, 1: 10.0, 2: 10.0, 3: 10.0}
            return disseminate(
                tree, 0, underlay_with_peers,
                capacities=capacities, payload_kbits=64.0)

        weak = star_with_root_capacity(1.0)
        strong = star_with_root_capacity(100.0)
        assert strong.average_member_delay_ms < weak.average_member_delay_ms

    def test_negative_payload_rejected(self, underlay_with_peers,
                                       star_tree):
        with pytest.raises(GroupError):
            disseminate(star_tree, 0, underlay_with_peers,
                        capacities={}, payload_kbits=-1.0)

    def test_capacity_aware_trees_win_under_bandwidth_model(
            self, underlay_with_peers):
        """With serialization delay, hanging many children off a weak
        node costs more than off a strong node - the design rationale of
        the capacity preference."""
        def chain_under(forwarder_capacity):
            tree = SpanningTree(root=0)
            tree.graft_chain([1, 0])
            for leaf in (2, 3, 4, 5):
                tree.graft_chain([leaf, 1])
                tree.mark_member(leaf)
            capacities = {0: 100.0, 1: forwarder_capacity,
                          2: 10.0, 3: 10.0, 4: 10.0, 5: 10.0}
            return disseminate(
                tree, 0, underlay_with_peers,
                capacities=capacities, payload_kbits=64.0)

        weak_hub = chain_under(1.0)
        strong_hub = chain_under(1000.0)
        assert (strong_hub.max_member_delay_ms
                < 0.5 * weak_hub.max_member_delay_ms)

"""Hypothesis fuzz tests: protocol invariants over random topologies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnnouncementConfig
from repro.groupcast.advertisement import propagate_advertisement
from repro.groupcast.repair import repair_tree
from repro.groupcast.spanning_tree import SpanningTree
from repro.groupcast.subscription import subscribe_members
from repro.overlay.graph import OverlayNetwork
from repro.peers.peer import PeerInfo
from repro.sim.random import spawn_rng


def random_connected_overlay(seed: int, n: int) -> OverlayNetwork:
    """A random connected overlay with heterogeneous capacities."""
    rng = np.random.default_rng(seed)
    overlay = OverlayNetwork()
    for i in range(n):
        capacity = float(rng.choice([1.0, 10.0, 100.0, 1000.0]))
        overlay.add_peer(PeerInfo(i, capacity, rng.uniform(0, 100, size=2)))
    for i in range(1, n):
        overlay.add_link(i, int(rng.integers(0, i)))  # random tree spine
    extra = int(rng.integers(0, 2 * n))
    for _ in range(extra):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            overlay.add_link(int(a), int(b))
    return overlay


def coordinate_latency(overlay):
    def latency(a, b):
        return max(
            overlay.peer(a).coordinate_distance(overlay.peer(b)), 0.01)

    return latency


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=3, max_value=40),
    scheme=st.sampled_from(["ssa", "nssa"]),
)
@settings(max_examples=50, deadline=None)
def test_advertisement_invariants(seed, n, scheme):
    """Receipts form a forest rooted at the rendezvous with sane fields."""
    overlay = random_connected_overlay(seed, n)
    ttl = 5
    outcome = propagate_advertisement(
        overlay, 0, 1, scheme, coordinate_latency(overlay),
        spawn_rng(seed, "ad"),
        AnnouncementConfig(advertisement_ttl=ttl))
    assert 0 in outcome.receipts
    for peer, receipt in outcome.receipts.items():
        assert receipt.hops <= ttl
        assert receipt.elapsed_ms >= 0.0
        chain = outcome.reverse_path(peer)
        assert chain[0] == peer
        assert chain[-1] == 0
        # Elapsed time decreases strictly toward the rendezvous.
        times = [outcome.receipts[node].elapsed_ms for node in chain]
        assert all(a >= b for a, b in zip(times, times[1:]))
    assert outcome.messages_sent >= len(outcome.receipts) - 1


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=4, max_value=40),
)
@settings(max_examples=50, deadline=None)
def test_subscription_tree_invariants(seed, n):
    """Any member sample yields a valid tree whose edges are overlay links."""
    overlay = random_connected_overlay(seed, n)
    rng = np.random.default_rng(seed + 1)
    members = [int(m) for m in
               rng.choice(n, size=min(n, 1 + n // 2), replace=False)]
    latency = coordinate_latency(overlay)
    outcome = propagate_advertisement(
        overlay, 0, 1, "ssa", latency, spawn_rng(seed, "ad"),
        AnnouncementConfig(advertisement_ttl=5))
    tree, subscription = subscribe_members(
        overlay, outcome, members, latency,
        AnnouncementConfig(subscription_search_ttl=2))
    tree.validate()
    joined = set(subscription.records)
    assert joined | set(subscription.failed) >= set(members)
    for member in joined:
        assert member in tree.members or member == 0
    for parent, child in tree.edges():
        assert overlay.has_link(parent, child)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=5, max_value=35),
    failures=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_repair_never_corrupts_tree(seed, n, failures):
    """Random interior failures always leave a valid tree behind."""
    overlay = random_connected_overlay(seed, n)
    rng = np.random.default_rng(seed + 2)
    latency = coordinate_latency(overlay)
    outcome = propagate_advertisement(
        overlay, 0, 1, "nssa", latency, spawn_rng(seed, "ad"),
        AnnouncementConfig(advertisement_ttl=6))
    members = [int(m) for m in rng.choice(n, size=min(n - 1, 8),
                                          replace=False) if m != 0]
    tree, _ = subscribe_members(overlay, outcome, members, latency)
    members_before = set(tree.members)
    lost_total: set[int] = set()
    for _ in range(failures):
        candidates = [node for node in tree.nodes() if node != tree.root]
        if not candidates:
            break
        victim = candidates[int(rng.integers(len(candidates)))]
        if victim in overlay:
            overlay.remove_peer(victim)
        report = repair_tree(tree, overlay, victim)
        lost_total |= set(report.lost_members)
        lost_total.add(victim)
        tree.validate()
    # Conservation: every original member is still on the tree or was
    # explicitly reported lost / failed itself.
    assert members_before <= (set(tree.members) | lost_total)


def adversarial_tree(shape: str, n: int, rng) -> SpanningTree:
    """Worst-case subtree shapes for repair: the structures where a
    single interior failure orphans the most state.

    * ``chain``       — one deep path (failure cuts off everything
                        below);
    * ``star``        — one hub under the root (failure orphans every
                        leaf at once);
    * ``caterpillar`` — a spine with a leaf leg per vertebra (failure
                        orphans a mixed subtree);
    * ``broom``       — a chain ending in a star (deep *and* wide).
    """
    tree = SpanningTree(root=0)
    if shape == "chain":
        for node in range(1, n):
            tree.graft_chain([node, node - 1])
    elif shape == "star":
        tree.graft_chain([1, 0])
        for node in range(2, n):
            tree.graft_chain([node, 1])
    elif shape == "caterpillar":
        spine = list(range(0, n, 2))
        for previous, vertebra in zip(spine, spine[1:]):
            tree.graft_chain([vertebra, previous])
            if vertebra + 1 < n:
                tree.graft_chain([vertebra + 1, vertebra])
    else:  # broom
        handle = max(2, n // 2)
        for node in range(1, handle):
            tree.graft_chain([node, node - 1])
        for node in range(handle, n):
            tree.graft_chain([node, handle - 1])
    for node in tree.nodes():
        if node != 0 and rng.random() < 0.6:
            tree.mark_member(node)
    return tree


def overlay_embedding(tree: SpanningTree, n: int, rng) -> OverlayNetwork:
    """An overlay containing every tree edge plus random shortcuts, so
    orphans have somewhere to search after a failure."""
    overlay = OverlayNetwork()
    for node in range(n):
        overlay.add_peer(
            PeerInfo(node, float(rng.choice([1.0, 10.0, 100.0])),
                     rng.uniform(0, 100, size=2)))
    for parent, child in tree.edges():
        overlay.add_link(parent, child)
    for _ in range(2 * n):
        a, b = rng.integers(0, n, size=2)
        if a != b:
            overlay.add_link(int(a), int(b))
    return overlay


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=5, max_value=40),
    shape=st.sampled_from(["chain", "star", "caterpillar", "broom"]),
)
@settings(max_examples=60, deadline=None)
def test_repair_on_adversarial_shapes(seed, n, shape):
    """No subtree shape makes repair emit a cycle or silently lose a
    member: everyone ends up back on the tree or in ``lost_members``."""
    rng = np.random.default_rng(seed)
    tree = adversarial_tree(shape, n, rng)
    overlay = overlay_embedding(tree, n, rng)
    members_before = set(tree.members)
    interior = [node for node in tree.nodes()
                if node != tree.root and tree.children(node)]
    victim = (interior[int(rng.integers(len(interior)))]
              if interior else 1)
    overlay.remove_peer(victim)
    report = repair_tree(tree, overlay, victim)
    tree.validate()  # acyclic, single-parent, consistent child sets
    for member in members_before - {victim}:
        assert member in tree.members or member in report.lost_members
    # A reattached orphan may still end up lost (its new anchor sat in
    # a subtree dropped later), but never the other way around: every
    # surviving tree member must be outside ``lost_members``.
    assert not (set(tree.members) & set(report.lost_members))


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=5, max_value=40),
    shape=st.sampled_from(["chain", "star", "caterpillar", "broom"]),
    failures=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_failover_preserves_membership(seed, n, shape, failures):
    """Backup-parent failover keeps every surviving member on a valid
    tree, across repeated failures with plan refreshes in between."""
    from repro.groupcast.replication import BackupPlan, failover

    rng = np.random.default_rng(seed)
    tree = adversarial_tree(shape, n, rng)
    overlay = overlay_embedding(tree, n, rng)
    plan = BackupPlan()
    plan.refresh(tree)
    members_before = set(tree.members)
    crashed: set[int] = set()
    lost: set[int] = set()
    for _ in range(failures):
        interior = [node for node in tree.nodes()
                    if node != tree.root and tree.children(node)]
        if not interior:
            break
        victim = interior[int(rng.integers(len(interior)))]
        overlay.remove_peer(victim)
        crashed.add(victim)
        report = failover(tree, plan, overlay, victim)
        lost |= set(report.lost_members)
        tree.validate()
        # Every orphan's fate is accounted: instant, searched, or lost
        # with its subtree.
        assert not (set(report.instant_failovers)
                    & set(report.searched_failovers))
    for member in members_before - crashed:
        assert member in tree.members or member in lost


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=3, max_value=25),
)
@settings(max_examples=40, deadline=None)
def test_dissemination_reaches_every_tree_node_once(seed, n):
    """Payload floods deliver exactly one copy per tree node."""
    rng = np.random.default_rng(seed)
    tree = SpanningTree(root=0)
    for node in range(1, n):
        anchor = int(rng.integers(0, node))
        tree.graft_chain([node, anchor])
        if rng.random() < 0.7:
            tree.mark_member(node)
    adjacency = tree.tree_adjacency()
    # Simulated flood with a visit counter (structural property only).
    visits = {node: 0 for node in tree.nodes()}
    stack = [(0, None)]
    while stack:
        node, parent = stack.pop()
        visits[node] += 1
        for neighbor in adjacency[node]:
            if neighbor != parent:
                stack.append((neighbor, node))
    assert all(count == 1 for count in visits.values())


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=8, max_value=60),
)
@settings(max_examples=25, deadline=None)
def test_pastry_routing_invariants(seed, n):
    """Routes terminate at the numerically closest node, in few hops."""
    from repro.config import TransitStubConfig
    from repro.dht.pastry import ID_BITS, PastryNetwork
    from repro.network.topology import generate_transit_stub

    underlay = generate_transit_stub(
        TransitStubConfig(transit_domains=1, transit_routers_per_domain=2,
                          stub_domains_per_transit=2, routers_per_stub=2),
        spawn_rng(seed, "topo"))
    rng = np.random.default_rng(seed)
    attach_rng = spawn_rng(seed, "attach")
    for peer in range(n):
        underlay.attach_peer(peer, attach_rng)
    pastry = PastryNetwork(underlay, list(range(n)))
    for _ in range(5):
        source = int(rng.integers(n))
        key = int(rng.integers(1 << ID_BITS, dtype=np.uint64))
        path = pastry.route(source, key)
        assert path[0] == source
        assert path[-1] == pastry.peer_for(pastry.root_of(key))
        assert len(set(path)) == len(path)  # loop-free
        assert len(path) <= 2 + 4 * 16  # guard bound


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=2, max_value=60),
    dimensions=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_can_zones_always_tile_the_torus(seed, n, dimensions):
    """Any join sequence leaves the CAN a perfect tiling with symmetric
    neighbor sets."""
    from repro.dht.can import CANNetwork, zones_adjacent

    can = CANNetwork(list(range(n)), spawn_rng(seed, "can-prop"),
                     dimensions=dimensions)
    can.validate()
    for peer in range(n):
        for neighbor in can.neighbors(peer):
            assert peer in can.neighbors(neighbor)
            assert zones_adjacent(can.zone_of(peer),
                                  can.zone_of(neighbor))


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    outcomes=st.lists(st.booleans(), min_size=1, max_size=60),
)
@settings(max_examples=50, deadline=None)
def test_reputation_scores_stay_in_unit_interval(seed, outcomes):
    """Any interaction history keeps every score in (0, 1]."""
    from repro.trust.reputation import ReputationLedger

    ledger = ReputationLedger()
    rng = np.random.default_rng(seed)
    for outcome in outcomes:
        observer = int(rng.integers(5))
        subject = int(rng.integers(5, 10))
        ledger.record(observer, subject, outcome)
    for subject in range(5, 10):
        assert 0.0 < ledger.aggregate_score(subject) <= 1.0
    # All-success histories dominate all-failure histories.
    ledger2 = ReputationLedger()
    for _ in range(10):
        ledger2.record(0, 1, True)
        ledger2.record(0, 2, False)
    assert ledger2.score(0, 1) > ledger2.score(0, 2)


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=30, deadline=None)
def test_group_workload_invariants(seed, count):
    """Generated groups are well-formed: positive gaps, unique members,
    bounded sizes; traffic is time-sorted within the horizon."""
    from repro.workloads.groups import GroupArrivals
    from repro.workloads.traffic import talk_spurts

    peers = list(range(100))
    arrivals = GroupArrivals(peers, median_size=6.0, max_size=30)
    rng = spawn_rng(seed, "wl-prop")
    specs = arrivals.generate(rng, count)
    assert len(specs) == count
    last = 0.0
    for spec in specs:
        assert spec.created_at_ms > last
        last = spec.created_at_ms
        assert 2 <= len(spec.members) <= 30
        assert len(set(spec.members)) == len(spec.members)
        assert set(spec.members) <= set(peers)
    events = talk_spurts(list(specs[0].members), rng, horizon_ms=60_000.0)
    times = [e.at_ms for e in events]
    assert times == sorted(times)
    assert all(0.0 <= t < 60_000.0 for t in times)
    assert all(e.source in specs[0].members for e in events)

"""Hypothesis property tests for the utility equations (Eqs. 1-5).

The paper derives ``alpha = 1 - r``, ``beta = r`` and
``gamma = r ** (-ln r)`` from a peer's resource level ``r`` and combines
distance and capacity preferences into one selection-preference
probability vector.  These tests pin the algebraic invariants for
arbitrary inputs: parameter coupling, gamma's monotonicity and bounds,
probability-vector structure, ordering by merit, and invariance under
rescaling of the distance vector (Eq. 2 normalises by the maximum).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import UtilityConfig
from repro.utility.preference import (
    capacity_preference,
    derive_parameters,
    distance_preference,
    normalized_distances,
    selection_preference,
)

CONFIG = UtilityConfig()

#: Resource levels inside the clamp range, so derivations are exact.
resource_levels = st.floats(min_value=1e-3, max_value=1.0 - 1e-3,
                            allow_nan=False, allow_infinity=False)

#: Candidate lists: positive capacities and distances, well away from
#: the ``min_distance_ms`` floor so scaling cannot cross it.
capacity_lists = st.lists(
    st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=30)
distance_values = st.floats(min_value=0.1, max_value=1e4)


@given(r=resource_levels)
@settings(max_examples=100, deadline=None)
def test_alpha_beta_sum_to_one(r):
    alpha, beta, gamma = derive_parameters(r, CONFIG)
    assert alpha + beta == pytest.approx(1.0, abs=1e-12)
    assert 0.0 < beta < 1.0
    assert 0.0 < alpha < 1.0
    assert gamma == pytest.approx(r ** (-math.log(r)))


@given(r1=resource_levels, r2=resource_levels)
@settings(max_examples=100, deadline=None)
def test_gamma_monotone_increasing_on_unit_interval(r1, r2):
    low, high = sorted((r1, r2))
    _, _, gamma_low = derive_parameters(low, CONFIG)
    _, _, gamma_high = derive_parameters(high, CONFIG)
    assert gamma_low <= gamma_high + 1e-12


@given(r=resource_levels)
@settings(max_examples=100, deadline=None)
def test_gamma_bounded_in_unit_interval(r):
    _, _, gamma = derive_parameters(r, CONFIG)
    assert 0.0 < gamma <= 1.0


@given(
    capacities=capacity_lists,
    r=resource_levels,
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_selection_preference_is_probability_vector(capacities, r, data):
    distances = data.draw(st.lists(
        distance_values, min_size=len(capacities),
        max_size=len(capacities)))
    preference = selection_preference(
        np.array(capacities), np.array(distances), r, CONFIG)
    assert preference.shape == (len(capacities),)
    assert (preference >= -1e-12).all()
    assert (preference <= 1.0 + 1e-9).all()
    assert preference.sum() == pytest.approx(1.0)


@given(
    capacities=capacity_lists,
    r=resource_levels,
    scale=st.floats(min_value=0.5, max_value=100.0),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_selection_preference_distance_scale_invariant(
        capacities, r, scale, data):
    """Eq. 2 normalises by the max distance, so rescaling every distance
    by the same factor leaves the selection preference unchanged."""
    distances = np.array(data.draw(st.lists(
        distance_values, min_size=len(capacities),
        max_size=len(capacities))))
    base = selection_preference(
        np.array(capacities), distances, r, CONFIG)
    scaled = selection_preference(
        np.array(capacities), distances * scale, r, CONFIG)
    np.testing.assert_allclose(scaled, base, rtol=1e-9, atol=1e-12)


@given(
    distances=st.lists(distance_values, min_size=2, max_size=30),
    r=resource_levels,
)
@settings(max_examples=100, deadline=None)
def test_distance_preference_favours_nearer_candidates(distances, r):
    alpha, _, _ = derive_parameters(r, CONFIG)
    preference = distance_preference(np.array(distances), alpha, CONFIG)
    assert preference.sum() == pytest.approx(1.0)
    order = np.argsort(distances)
    ranked = preference[order]
    assert all(a >= b - 1e-12 for a, b in zip(ranked, ranked[1:]))


@given(
    capacities=st.lists(st.floats(min_value=1.0, max_value=1e4),
                        min_size=2, max_size=30),
    r=resource_levels,
)
@settings(max_examples=100, deadline=None)
def test_capacity_preference_favours_stronger_candidates(capacities, r):
    _, beta, _ = derive_parameters(r, CONFIG)
    preference = capacity_preference(np.array(capacities), beta)
    assert preference.sum() == pytest.approx(1.0)
    order = np.argsort(capacities)[::-1]
    ranked = preference[order]
    assert all(a >= b - 1e-12 for a, b in zip(ranked, ranked[1:]))


@given(distances=st.lists(distance_values, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_normalized_distances_lie_in_unit_interval(distances):
    norm = normalized_distances(np.array(distances), CONFIG)
    assert (norm > 0.0).all()
    assert (norm <= 1.0 + 1e-12).all()
    assert norm.max() == pytest.approx(1.0)

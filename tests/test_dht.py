"""Unit tests for the Pastry substrate and SCRIBE multicast."""

import numpy as np
import pytest

from repro.config import TransitStubConfig
from repro.dht.pastry import (
    ID_BITS,
    PastryConfig,
    PastryNetwork,
    node_id_for_peer,
)
from repro.dht.scribe import build_scribe_group, group_key
from repro.errors import (
    ConfigurationError,
    GroupError,
    OverlayError,
    PeerNotFoundError,
)
from repro.network.topology import generate_transit_stub
from repro.sim.random import spawn_rng


@pytest.fixture(scope="module")
def underlay():
    u = generate_transit_stub(
        TransitStubConfig(transit_domains=2, transit_routers_per_domain=3,
                          stub_domains_per_transit=2, routers_per_stub=3),
        spawn_rng(6, "topo"))
    rng = spawn_rng(6, "attach")
    for peer in range(150):
        u.attach_peer(peer, rng)
    return u


@pytest.fixture(scope="module")
def pastry(underlay):
    return PastryNetwork(underlay, list(range(150)))


class TestIdentifiers:
    def test_node_ids_are_deterministic(self):
        assert node_id_for_peer(5) == node_id_for_peer(5)
        assert node_id_for_peer(5) != node_id_for_peer(6)

    def test_node_ids_fit_in_64_bits(self):
        for peer in range(100):
            assert 0 <= node_id_for_peer(peer) < (1 << ID_BITS)

    def test_digit_extraction(self, pastry):
        node_id = 0xF0F0F0F0F0F0F0F0
        assert pastry.digit(node_id, 0) == 0xF
        assert pastry.digit(node_id, 1) == 0x0
        assert pastry.digit(node_id, 15) == 0x0

    def test_shared_prefix_length(self, pastry):
        a = 0xAB00000000000000
        b = 0xAB10000000000000
        assert pastry.shared_prefix_length(a, b) == 2
        assert pastry.shared_prefix_length(a, a) == 16

    def test_ring_distance_wraps(self, pastry):
        assert PastryNetwork.ring_distance(0, (1 << ID_BITS) - 1) == 1
        assert PastryNetwork.ring_distance(5, 5) == 0


class TestConstruction:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PastryConfig(digit_bits=3)
        with pytest.raises(ConfigurationError):
            PastryConfig(leaf_set_size=5)

    def test_too_few_nodes_rejected(self, underlay):
        with pytest.raises(OverlayError):
            PastryNetwork(underlay, [0])

    def test_leaf_sets_are_ring_neighbors(self, pastry):
        ids = pastry.node_ids()
        node = ids[10]
        state = pastry._by_node_id[node]
        # Every leaf is among the 2*half ring-adjacent ids.
        index = ids.index(node)
        expected = {ids[(index + off) % len(ids)]
                    for off in (-4, -3, -2, -1, 1, 2, 3, 4)}
        assert set(state.leaf_set) <= expected

    def test_unknown_lookups_rejected(self, pastry):
        with pytest.raises(PeerNotFoundError):
            pastry.peer_for(123456)
        with pytest.raises(PeerNotFoundError):
            pastry.node_for_peer(10_000)


class TestRouting:
    def test_route_reaches_key_root(self, pastry):
        rng = spawn_rng(1, "routes")
        for _ in range(50):
            source = int(rng.integers(150))
            key = int(rng.integers(1 << ID_BITS, dtype=np.uint64))
            path = pastry.route(source, key)
            assert path[0] == source
            root_peer = pastry.peer_for(pastry.root_of(key))
            assert path[-1] == root_peer

    def test_route_to_own_key(self, pastry):
        node = pastry.node_for_peer(7)
        path = pastry.route(7, node)
        assert path == [7]

    def test_route_length_logarithmic(self, pastry):
        rng = spawn_rng(2, "routes")
        lengths = []
        for _ in range(100):
            source = int(rng.integers(150))
            key = int(rng.integers(1 << ID_BITS, dtype=np.uint64))
            lengths.append(len(pastry.route(source, key)) - 1)
        # log16(150) ~ 1.8; allow generous slack for leaf-set detours.
        assert np.mean(lengths) < 6.0
        assert max(lengths) <= 12

    def test_route_latency_positive(self, pastry):
        path = pastry.route(3, node_id_for_peer(120))
        if len(path) > 1:
            assert pastry.route_latency_ms(path) > 0.0

    def test_root_of_is_numerically_closest(self, pastry):
        rng = spawn_rng(3, "roots")
        ids = pastry.node_ids()
        for _ in range(30):
            key = int(rng.integers(1 << ID_BITS, dtype=np.uint64))
            root = pastry.root_of(key)
            best = min(ids,
                       key=lambda i: PastryNetwork.ring_distance(i, key))
            assert PastryNetwork.ring_distance(root, key) == \
                PastryNetwork.ring_distance(best, key)

    def test_join_state_cost_scales_with_log_n(self, underlay):
        small = PastryNetwork(underlay, list(range(20)))
        large = PastryNetwork(underlay, list(range(150)))
        assert large.join_state_cost() > small.join_state_cost()


class TestScribe:
    def test_group_tree_covers_members(self, pastry):
        members = list(range(0, 60, 2))
        group = build_scribe_group(pastry, "room-1", members)
        assert set(members) <= set(group.members)
        group.tree.validate()

    def test_root_is_key_root(self, pastry):
        group = build_scribe_group(pastry, "room-2", [1, 2, 3])
        expected_root = pastry.peer_for(
            pastry.root_of(group_key("room-2")))
        assert group.root_peer == expected_root
        assert group.tree.root == expected_root

    def test_group_key_deterministic(self):
        assert group_key("a") == group_key("a")
        assert group_key("a") != group_key("b")

    def test_join_hops_recorded(self, pastry):
        members = list(range(20))
        group = build_scribe_group(pastry, "room-3", members)
        for member in members:
            assert member in group.join_hops
            assert group.join_hops[member] >= 0

    def test_shared_routes_merge(self, pastry):
        """Later joiners should sometimes stop at existing forwarders."""
        members = list(range(80))
        group = build_scribe_group(pastry, "room-4", members)
        total_hops = sum(group.join_hops.values())
        independent = sum(
            len(pastry.route(m, group.key)) - 1
            for m in members if m != group.root_peer)
        assert total_hops <= independent

    def test_source_to_root_latency(self, pastry, underlay):
        group = build_scribe_group(pastry, "room-5", [4, 5, 6])
        latency = group.source_to_root_latency_ms(4, underlay)
        assert latency == pytest.approx(
            underlay.peer_distance_ms(4, group.root_peer))

    def test_non_member_source_rejected(self, pastry, underlay):
        group = build_scribe_group(pastry, "room-6", [4, 5])
        with pytest.raises(GroupError):
            group.source_to_root_latency_ms(99, underlay)

    def test_empty_member_list_rejected(self, pastry):
        with pytest.raises(GroupError):
            build_scribe_group(pastry, "room-7", [])

    def test_multicast_through_scribe_tree(self, pastry, underlay):
        from repro.groupcast.dissemination import disseminate

        members = list(range(0, 100, 3))
        group = build_scribe_group(pastry, "room-8", members)
        report = disseminate(group.tree, group.root_peer, underlay)
        reached = set(report.member_delays_ms)
        assert set(group.members) - {group.root_peer} <= reached

"""Property tests for datagram framing and the sans-IO ARQ layer.

Hypothesis drives three families of invariants:

* **Round trip** — ``decode(encode(frame)) == frame`` for every frame
  type and every registered payload dataclass, with and without the
  optional causal span header, and decode never accepts garbage
  silently (it raises :class:`FramingError`).  Span-less frames must
  produce the exact pre-header wire bytes (back-compat: peers that
  never heard of spans interoperate).
* **Idempotent delivery** — a duplicated DATA frame is re-acked but
  delivered at most once, no matter how often it arrives.
* **Retransmit-until-ack** — over a seeded lossy channel built from
  the PR-3 fault vocabulary (:class:`FaultWindow` drop/duplicate/
  reorder schedules interpreted by
  :class:`~repro.runtime.faulty.FaultyTransport`), every packaged
  payload is delivered **exactly once** as long as the loss window
  ends before the retry budget runs out.  The whole exchange runs on a
  virtual clock — no sockets, no sleeps, fully deterministic per seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FramingError, TransportError
from repro.faults.plan import FaultPlan, FaultWindow
from repro.groupcast.session import (
    Advertise,
    Payload,
    Search,
    SearchReply,
    Subscribe,
)
from repro.obs import SpanContext
from repro.overlay.messages import MessageKind
from repro.runtime.faulty import FaultyTransport
from repro.runtime.ops import OpsReply, OpsRequest
from repro.runtime.framing import (
    ACK,
    DATA,
    MAX_FRAME_BYTES,
    Frame,
    decode_frame,
    encode_frame,
)
from repro.runtime.reliability import ReliableEndpoint, RetryPolicy
from repro.sim.random import spawn_rng

ids = st.integers(min_value=0, max_value=2**31 - 1)
paths = st.lists(ids, min_size=1, max_size=6).map(tuple)
finite_ms = st.floats(min_value=0.0, max_value=1e12,
                      allow_nan=False, allow_infinity=False)

group_rows = st.lists(
    st.tuples(ids, st.one_of(st.just(-1), ids), st.integers(0, 1),
              st.integers(0, 1), st.integers(0, 64)),
    max_size=4).map(tuple)
ages = st.lists(st.tuples(ids, finite_ms), max_size=4).map(tuple)

payloads = st.one_of(
    st.builds(Advertise, group_id=ids, rendezvous=ids, path=paths,
              ttl=st.integers(1, 12),
              scheme=st.sampled_from(["ssa", "nssa"])),
    st.builds(Subscribe, group_id=ids, subscriber=ids),
    st.builds(Search, group_id=ids, origin=ids,
              ttl=st.integers(0, 12)),
    st.builds(SearchReply, group_id=ids, informed_peer=ids),
    st.builds(Payload, group_id=ids, payload_id=ids, source=ids),
    st.builds(OpsRequest, probe_id=ids),
    st.builds(OpsReply, peer_id=ids, probe_id=ids,
              incarnation=st.integers(-1, 2**31 - 1), at_ms=finite_ms,
              unacked=st.integers(0, 2**31 - 1), groups=group_rows,
              last_seen=ages),
)

spans = st.one_of(
    st.none(),
    st.builds(SpanContext, trace_id=ids, span_id=ids,
              parent_id=st.one_of(st.just(-1), ids)),
)

data_frames = st.builds(
    Frame,
    frame_type=st.just(DATA),
    sender=ids,
    recipient=ids,
    seq=st.integers(0, 2**31 - 1),
    kind=st.sampled_from(
        [k.value for k in MessageKind] + [""]),
    sent_at_ms=finite_ms,
    payload=payloads,
    span=spans,
)

ack_frames = st.builds(
    Frame,
    frame_type=st.just(ACK),
    sender=ids,
    recipient=ids,
    seq=st.integers(0, 2**31 - 1),
    sent_at_ms=finite_ms,
    span=spans,
)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
@given(frame=st.one_of(data_frames, ack_frames))
@settings(max_examples=200, deadline=None)
def test_frame_round_trip(frame):
    assert decode_frame(encode_frame(frame)) == frame


@given(payload=payloads)
@settings(max_examples=100, deadline=None)
def test_every_registered_payload_survives_the_wire(payload):
    frame = Frame(DATA, 1, 2, 0, "", 0.0, payload)
    decoded = decode_frame(encode_frame(frame))
    assert decoded.payload == payload
    assert type(decoded.payload) is type(payload)


@given(garbage=st.binary(max_size=64))
@settings(max_examples=100, deadline=None)
def test_decode_rejects_garbage(garbage):
    try:
        frame = decode_frame(garbage)
    except FramingError:
        return
    # Only a datagram that *is* a valid encoding may decode.
    assert encode_frame(frame) == garbage


@given(frame=st.one_of(data_frames, ack_frames))
@settings(max_examples=100, deadline=None)
def test_spanless_wire_bytes_carry_no_span_header(frame):
    """Frames without a span encode to the exact pre-header format: no
    ``"c"`` key on the wire, so historical captures and span-unaware
    peers round-trip unchanged."""
    import dataclasses
    import json

    bare = dataclasses.replace(frame, span=None)
    body = json.loads(encode_frame(bare)[len(b"GC1\x00"):])
    assert "c" not in body
    decoded = decode_frame(encode_frame(bare))
    assert decoded.span is None
    assert decoded == bare


def test_headerless_datagram_decodes_with_no_span():
    """A datagram hand-built without the span header (the pre-span wire
    format) still decodes — back-compat is a hard wire contract."""
    frame = Frame(DATA, 1, 2, 9, "payload", 41.5, Payload(1, 3, 1))
    datagram = encode_frame(frame)
    assert b'"c"' not in datagram
    decoded = decode_frame(datagram)
    assert decoded == frame
    assert decoded.span is None


def test_span_header_round_trips():
    span = SpanContext(trace_id=5, span_id=17, parent_id=4)
    frame = Frame(DATA, 1, 2, 0, "payload", 0.0, Payload(1, 3, 1),
                  span=span)
    datagram = encode_frame(frame)
    assert b'"c":[5,17,4]' in datagram
    assert decode_frame(datagram).span == span


def test_malformed_span_header_rejected():
    span = SpanContext(1, 2, 3)
    good = encode_frame(Frame(DATA, 1, 2, 0, "", 0.0, span=span))
    bad = good.replace(b'"c":[1,2,3]', b'"c":[1,2]')
    with pytest.raises(FramingError):
        decode_frame(bad)


def test_unregistered_payload_rejected():
    with pytest.raises(FramingError):
        encode_frame(Frame(DATA, 1, 2, 0, "", 0.0, payload=object()))


def test_oversize_frame_rejected():
    huge = Advertise(1, 2, tuple(range(20_000)), 5, "ssa")
    with pytest.raises(FramingError):
        encode_frame(Frame(DATA, 1, 2, 0, "", 0.0, huge))
    assert MAX_FRAME_BYTES == 32_768


# ----------------------------------------------------------------------
# Idempotent delivery
# ----------------------------------------------------------------------
@given(payload=payloads, copies=st.integers(2, 6))
@settings(max_examples=50, deadline=None)
def test_duplicate_data_frames_deliver_once(payload, copies):
    sender = ReliableEndpoint(1)
    receiver = ReliableEndpoint(2)
    frame = sender.package(2, payload, None, 0.0)
    delivered = 0
    acks = 0
    duplicates = 0
    for attempt in range(copies):
        result = receiver.on_frame(frame, float(attempt))
        assert result.ack is not None  # every copy is re-acked
        acks += 1
        delivered += int(result.deliver)
        duplicates += int(result.duplicate)
    assert delivered == 1
    assert acks == copies
    assert duplicates == copies - 1


@given(payload=payloads)
@settings(max_examples=25, deadline=None)
def test_stray_frames_are_dropped_silently(payload):
    receiver = ReliableEndpoint(7)
    stray = Frame(DATA, 1, 2, 0, "", 0.0, payload)  # not addressed to 7
    result = receiver.on_frame(stray, 0.0)
    assert result.ack is None
    assert not result.deliver


# ----------------------------------------------------------------------
# Retransmit-until-ack over a seeded lossy channel
# ----------------------------------------------------------------------
def _run_lossy_exchange(seed: int, plan: FaultPlan, message_count: int,
                        horizon_ms: float = 60_000.0) -> list[int]:
    """Drive sender -> channel -> receiver on a virtual clock.

    Both directions (DATA and ACK) traverse the same faulty channel.
    Returns the payload ids delivered at the receiver, in order.
    """
    policy = RetryPolicy(timeout_ms=25.0, backoff=1.5,
                         max_timeout_ms=400.0, max_retries=60)
    sender = ReliableEndpoint(1, policy)
    receiver = ReliableEndpoint(2, policy)
    channel = FaultyTransport(plan, spawn_rng(seed, "lossy-channel"))
    wire: list[tuple[float, int, Frame]] = []  # (at_ms, tiebreak, frame)
    tiebreak = 0
    now = 0.0
    delivered: list[int] = []

    def transmit(frame: Frame, at_ms: float) -> None:
        nonlocal tiebreak
        for deliver_at, copy in channel.transmit(frame, at_ms):
            wire.append((deliver_at, tiebreak, copy))
            tiebreak += 1

    for payload_id in range(message_count):
        transmit(sender.package(
            2, Payload(1, payload_id, 1), MessageKind.PAYLOAD, now), now)

    while now < horizon_ms and (wire or sender.unacked()):
        next_wire = min((at for at, _, _ in wire), default=None)
        next_retry = sender.next_due_ms()
        candidates = [t for t in (next_wire, next_retry) if t is not None]
        if not candidates:
            break
        now = max(now, min(candidates))
        arrived = sorted(
            [entry for entry in wire if entry[0] <= now])
        wire[:] = [entry for entry in wire if entry[0] > now]
        for _, _, frame in arrived:
            if frame.recipient == 2:
                result = receiver.on_frame(frame, now)
                if result.deliver:
                    delivered.append(frame.payload.payload_id)
                if result.ack is not None:
                    transmit(result.ack, now)
            else:
                sender.on_frame(frame, now)
        for frame in sender.due_retransmits(now):
            transmit(frame, now)
    return delivered


@given(seed=st.integers(0, 2**31 - 1),
       drop_probability=st.floats(0.05, 0.9),
       message_count=st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_every_payload_delivered_exactly_once_despite_drops(
        seed, drop_probability, message_count):
    plan = FaultPlan(windows=(
        FaultWindow("drop", 0.0, 4_000.0, drop_probability),
    ))
    delivered = _run_lossy_exchange(seed, plan, message_count)
    assert sorted(delivered) == list(range(message_count))


@given(seed=st.integers(0, 2**31 - 1), message_count=st.integers(1, 5))
@settings(max_examples=30, deadline=None)
def test_exactly_once_under_adversarial_duplication_and_reorder(
        seed, message_count):
    plan = FaultPlan(windows=(
        FaultWindow("drop", 0.0, 2_000.0, 0.3),
        FaultWindow("duplicate", 0.0, 3_000.0, 0.5, 40.0),
        FaultWindow("reorder", 0.0, 3_000.0, 0.5, 60.0),
    ))
    delivered = _run_lossy_exchange(seed, plan, message_count)
    assert sorted(delivered) == list(range(message_count))


def test_expired_frames_surface_after_budget_exhaustion():
    """A permanently dead link expires the frame instead of retrying
    forever; the expiry is reported exactly once."""
    policy = RetryPolicy(timeout_ms=10.0, backoff=1.0,
                         max_timeout_ms=10.0, max_retries=3)
    sender = ReliableEndpoint(1, policy)
    sender.package(2, Payload(1, 0, 1), MessageKind.PAYLOAD, 0.0)
    retransmits = 0
    now = 0.0
    for _ in range(10):
        now += 10.0
        retransmits += len(sender.due_retransmits(now))
    assert retransmits == policy.max_retries
    expired = sender.take_expired()
    assert len(expired) == 1
    assert sender.take_expired() == []
    assert sender.unacked() == 0
    assert sender.registry.counter("runtime.expired").value == 1


def test_retry_policy_validation():
    with pytest.raises(TransportError):
        RetryPolicy(timeout_ms=0.0)
    with pytest.raises(TransportError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(TransportError):
        RetryPolicy(max_timeout_ms=1.0, timeout_ms=2.0)
    policy = RetryPolicy(timeout_ms=100.0, backoff=2.0,
                         max_timeout_ms=350.0)
    assert policy.delay_ms(0) == 100.0
    assert policy.delay_ms(1) == 200.0
    assert policy.delay_ms(2) == 350.0  # capped

"""Shared coordinate-space container used by every embedding backend."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import PeerNotFoundError


class CoordinateSpace:
    """Euclidean coordinates for a set of peers.

    GroupCast uses network coordinates (GNP in the paper) to estimate
    inter-peer latency without measuring every pair: the utility function's
    ``D(i, j)`` and the host cache's distance sort both read from this
    object.  Coordinates are plain Euclidean vectors; distance is the
    2-norm, interpreted in milliseconds.
    """

    def __init__(self, dimensions: int) -> None:
        if dimensions < 1:
            raise ValueError("coordinate space needs at least one dimension")
        self.dimensions = dimensions
        self._coords: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._coords)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._coords

    def set(self, peer_id: int, coordinate: Sequence[float]) -> None:
        """Record the coordinate of ``peer_id`` (overwrites any previous)."""
        vector = np.asarray(coordinate, dtype=float)
        if vector.shape != (self.dimensions,):
            raise ValueError(
                f"coordinate must have {self.dimensions} dimensions, "
                f"got shape {vector.shape}")
        self._coords[peer_id] = vector

    def get(self, peer_id: int) -> np.ndarray:
        """Return the coordinate of ``peer_id``."""
        try:
            return self._coords[peer_id]
        except KeyError:
            raise PeerNotFoundError(f"no coordinate for peer {peer_id}")

    def remove(self, peer_id: int) -> None:
        """Forget the coordinate of a departed peer (idempotent)."""
        self._coords.pop(peer_id, None)

    def distance(self, a: int, b: int) -> float:
        """Estimated latency (ms) between two peers."""
        return float(np.linalg.norm(self.get(a) - self.get(b)))

    def distances_from(self, peer_id: int,
                       others: Iterable[int]) -> np.ndarray:
        """Vector of estimated latencies from ``peer_id`` to ``others``."""
        origin = self.get(peer_id)
        other_list = list(others)
        if not other_list:
            return np.empty(0, dtype=float)
        matrix = np.stack([self.get(other) for other in other_list])
        return np.linalg.norm(matrix - origin, axis=1)

    def peer_ids(self) -> list[int]:
        """All peers with a recorded coordinate."""
        return list(self._coords)

"""Network coordinate systems (GNP landmarks, Vivaldi, oracle)."""

from .base import CoordinateSpace
from .gnp import GNPConfig, GNPSystem
from .vivaldi import VivaldiConfig, VivaldiSystem

__all__ = [
    "CoordinateSpace",
    "GNPConfig",
    "GNPSystem",
    "VivaldiConfig",
    "VivaldiSystem",
]

"""GNP-style landmark coordinate embedding.

The paper assigns each peer a network coordinate using GNP (Ng & Zhang).
GNP works in two stages:

1. a small set of *landmarks* measure latencies among themselves and solve
   for landmark coordinates that minimise squared embedding error;
2. every joining host measures its latency to the landmarks and solves for
   its own coordinate against the (now fixed) landmark coordinates.

We implement both stages with plain gradient descent — stage 2 is
vectorised across all peers so embedding tens of thousands of hosts stays
fast.  Landmarks are routers of the underlay (a deployment would use
well-known hosts; the math is identical).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ConfigurationError
from ..network.underlay import UnderlayNetwork
from ..sim.random import RandomSource
from .base import CoordinateSpace


@dataclass(frozen=True)
class GNPConfig:
    """Tunables of the GNP embedding."""

    dimensions: int = 5
    landmark_count: int = 12
    landmark_iterations: int = 400
    peer_iterations: int = 120
    learning_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        if self.landmark_count <= self.dimensions:
            raise ConfigurationError(
                "need more landmarks than dimensions for a stable embedding")
        if self.landmark_iterations < 1 or self.peer_iterations < 1:
            raise ConfigurationError("iteration counts must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigurationError("learning_rate must be in (0, 1]")


class GNPSystem:
    """Landmark-based coordinate assignment for underlay-attached peers."""

    def __init__(self, config: GNPConfig | None = None) -> None:
        self.config = config or GNPConfig()
        self._landmark_routers: np.ndarray | None = None
        self._landmark_coords: np.ndarray | None = None
        self._underlay: UnderlayNetwork | None = None

    @property
    def is_fitted(self) -> bool:
        """True once the landmark frame has been solved."""
        return self._landmark_coords is not None

    # ------------------------------------------------------------------
    # Stage 1: landmark frame
    # ------------------------------------------------------------------
    def fit_landmarks(self, underlay: UnderlayNetwork,
                      rng: RandomSource) -> None:
        """Choose landmark routers and solve their coordinate frame."""
        cfg = self.config
        count = min(cfg.landmark_count, underlay.router_count)
        if count <= cfg.dimensions:
            raise ConfigurationError(
                "underlay too small for the requested landmark count")
        routers = rng.choice(underlay.router_count, size=count, replace=False)
        routers = np.sort(routers.astype(np.int64))
        measured = np.empty((count, count), dtype=float)
        for i, router in enumerate(routers):
            measured[i] = underlay.router_distances_from(int(router))[routers]

        coords = rng.normal(scale=measured.mean() / 4.0,
                            size=(count, cfg.dimensions))
        for _ in range(cfg.landmark_iterations):
            coords -= cfg.learning_rate * _landmark_gradient(coords, measured)
        self._landmark_routers = routers
        self._landmark_coords = coords
        self._underlay = underlay

    def landmark_fit_error(self) -> float:
        """Mean relative embedding error over landmark pairs (diagnostic)."""
        self._require_fitted()
        assert self._underlay is not None
        routers = self._landmark_routers
        coords = self._landmark_coords
        measured = np.empty((len(routers), len(routers)), dtype=float)
        for i, router in enumerate(routers):
            measured[i] = self._underlay.router_distances_from(
                int(router))[routers]
        embedded = _pairwise_distances(coords)
        mask = ~np.eye(len(routers), dtype=bool)
        return float(np.mean(
            np.abs(embedded[mask] - measured[mask])
            / np.maximum(measured[mask], 1e-9)))

    # ------------------------------------------------------------------
    # Stage 2: peer embedding
    # ------------------------------------------------------------------
    def embed_peer(self, peer_id: int, space: CoordinateSpace,
                   rng: RandomSource) -> np.ndarray:
        """Solve the coordinate of one attached peer and record it."""
        coords = self.embed_peers([peer_id], space, rng)
        return coords[0]

    def embed_peers(self, peer_ids: list[int], space: CoordinateSpace,
                    rng: RandomSource) -> np.ndarray:
        """Vectorised stage-2 solve for many peers at once."""
        self._require_fitted()
        assert self._underlay is not None
        cfg = self.config
        landmarks = self._landmark_coords
        routers = self._landmark_routers
        n = len(peer_ids)
        if n == 0:
            return np.empty((0, cfg.dimensions), dtype=float)

        # Measured peer->landmark latencies, (n, L).
        measured = np.empty((n, len(routers)), dtype=float)
        for j, router in enumerate(routers):
            dist = self._underlay.router_distances_from(int(router))
            for i, peer in enumerate(peer_ids):
                att = self._underlay.attachment(peer)
                measured[i, j] = att.access_latency_ms + dist[att.router_id]

        # Initialise each peer at the centroid of its two closest landmarks
        # plus noise; descend on squared embedding error.
        nearest = np.argsort(measured, axis=1)[:, :2]
        positions = landmarks[nearest].mean(axis=1)
        positions = positions + rng.normal(scale=1.0, size=positions.shape)
        for _ in range(cfg.peer_iterations):
            diff = positions[:, None, :] - landmarks[None, :, :]  # (n, L, d)
            embedded = np.linalg.norm(diff, axis=2)               # (n, L)
            safe = np.maximum(embedded, 1e-9)
            scale = (embedded - measured) / safe                  # (n, L)
            grad = 2.0 * np.einsum("nl,nld->nd", scale, diff) / len(routers)
            positions -= cfg.learning_rate * grad

        for i, peer in enumerate(peer_ids):
            space.set(peer, positions[i])
        return positions

    def make_space(self) -> CoordinateSpace:
        """Create an empty coordinate space with this system's dimensions."""
        return CoordinateSpace(self.config.dimensions)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise ConfigurationError(
                "GNPSystem.fit_landmarks must be called first")


def _pairwise_distances(coords: np.ndarray) -> np.ndarray:
    diff = coords[:, None, :] - coords[None, :, :]
    return np.linalg.norm(diff, axis=2)


def _landmark_gradient(coords: np.ndarray,
                       measured: np.ndarray) -> np.ndarray:
    """Gradient of the squared embedding error over landmark coordinates."""
    diff = coords[:, None, :] - coords[None, :, :]
    embedded = np.linalg.norm(diff, axis=2)
    safe = np.maximum(embedded, 1e-9)
    scale = (embedded - measured) / safe
    np.fill_diagonal(scale, 0.0)
    # d/dx_i sum_{jk} (e_{jk} - m_{jk})^2: each pair contributes twice.
    return 4.0 * np.einsum("ij,ijd->id", scale, diff) / len(coords)

"""Vivaldi decentralized network coordinates.

The paper cites Vivaldi (Dabek et al., SIGCOMM'04) alongside GNP as a way
to obtain network coordinates.  We implement the classic adaptive-timestep
spring-relaxation algorithm: each sample pulls/pushes a node's coordinate
along the unit vector to its neighbor proportionally to the embedding
error, with a per-node confidence weight that damps updates as estimates
converge.  Useful both as an alternative backend for the middleware and as
an ablation target against GNP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ConfigurationError
from ..network.underlay import UnderlayNetwork
from ..sim.random import RandomSource
from .base import CoordinateSpace


@dataclass(frozen=True)
class VivaldiConfig:
    """Tunables of the Vivaldi relaxation."""

    dimensions: int = 5
    rounds: int = 30
    samples_per_round: int = 8
    cc: float = 0.25
    ce: float = 0.25

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        if self.rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        if self.samples_per_round < 1:
            raise ConfigurationError("samples_per_round must be >= 1")
        if not 0.0 < self.cc <= 1.0 or not 0.0 < self.ce <= 1.0:
            raise ConfigurationError("cc and ce must be in (0, 1]")


class VivaldiSystem:
    """Decentralized coordinate computation over an underlay."""

    def __init__(self, config: VivaldiConfig | None = None) -> None:
        self.config = config or VivaldiConfig()

    def make_space(self) -> CoordinateSpace:
        """Create an empty coordinate space with this system's dimensions."""
        return CoordinateSpace(self.config.dimensions)

    def fit(
        self,
        underlay: UnderlayNetwork,
        peer_ids: list[int],
        rng: RandomSource,
        space: CoordinateSpace | None = None,
    ) -> CoordinateSpace:
        """Run Vivaldi over ``peer_ids`` and return their coordinate space.

        Each round, every peer samples ``samples_per_round`` random other
        peers, measures the true latency on the underlay, and applies the
        Vivaldi update rule.
        """
        cfg = self.config
        if space is None:
            space = self.make_space()
        n = len(peer_ids)
        if n == 0:
            return space
        if n == 1:
            space.set(peer_ids[0], np.zeros(cfg.dimensions))
            return space

        positions = rng.normal(scale=1.0, size=(n, cfg.dimensions))
        error = np.ones(n)
        index = {peer: i for i, peer in enumerate(peer_ids)}

        for _ in range(cfg.rounds):
            for peer in peer_ids:
                i = index[peer]
                samples = rng.choice(n, size=min(cfg.samples_per_round, n - 1),
                                     replace=False)
                targets = [int(j) for j in samples if int(j) != i]
                if not targets:
                    continue
                # One vectorized probe batch per (peer, round); the rng
                # stream and update order match the scalar loop exactly.
                rtts = underlay.peer_distances_ms(
                    peer, [peer_ids[j] for j in targets])
                for j, rtt in zip(targets, rtts):
                    self._update(positions, error, i, j, float(rtt), rng)

        for peer, i in index.items():
            space.set(peer, positions[i])
        return space

    def _update(self, positions: np.ndarray, error: np.ndarray,
                i: int, j: int, rtt: float, rng: RandomSource) -> None:
        cfg = self.config
        delta_vec = positions[i] - positions[j]
        dist = float(np.linalg.norm(delta_vec))
        if dist < 1e-9:
            # Coincident nodes: pick a random direction to separate them.
            delta_vec = rng.normal(size=positions.shape[1])
            dist = float(np.linalg.norm(delta_vec))
        unit = delta_vec / dist

        w = error[i] / max(error[i] + error[j], 1e-9)
        sample_err = abs(dist - rtt) / max(rtt, 1e-9)
        error[i] = min(
            sample_err * cfg.ce * w + error[i] * (1.0 - cfg.ce * w), 10.0)
        step = cfg.cc * w
        positions[i] += step * (rtt - dist) * unit

    def relative_error(self, underlay: UnderlayNetwork,
                       space: CoordinateSpace, peer_ids: list[int],
                       rng: RandomSource, samples: int = 500) -> float:
        """Median relative embedding error over random peer pairs."""
        n = len(peer_ids)
        if n < 2:
            return 0.0
        pairs = [rng.choice(n, size=2, replace=False)
                 for _ in range(samples)]
        a_ids = [peer_ids[int(i)] for i, _ in pairs]
        b_ids = [peer_ids[int(j)] for _, j in pairs]
        true_ms = underlay.peer_pair_distances(a_ids, b_ids)
        errors = []
        for a, b, true in zip(a_ids, b_ids, true_ms):
            est = space.distance(a, b)
            errors.append(abs(est - float(true)) / max(float(true), 1e-9))
        return float(np.median(errors))

"""A Pastry-style structured overlay (Rowstron & Druschel, 2001).

Implements the parts of Pastry that SCRIBE-style multicast and the
paper's structured-vs-unstructured comparison need:

* 64-bit node identifiers viewed as ``ID_DIGITS`` digits of base
  ``2**DIGIT_BITS`` (default 16 digits of base 16);
* per-node state: a *leaf set* (the ``leaf_set_size`` numerically
  closest nodes on each side of the circular id space) and a *routing
  table* indexed by shared-prefix length and next digit, filled with the
  underlay-closest qualifying candidate (Pastry's proximity heuristic);
* greedy prefix routing: each hop either resolves within the leaf set or
  forwards to a node sharing a strictly longer id prefix with the key
  (falling back to any numerically closer node), which terminates in
  ``O(log N)`` hops.

The network is constructed centrally from the full membership — the
usual simulator shortcut; Pastry's join protocol converges to the same
state.  Churn cost is modelled by :meth:`PastryNetwork.join_state_cost`,
the number of state entries a joining node must fetch and the peers it
must notify, which is what makes DHT maintenance expensive under churn
(Section 1 of the paper).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, OverlayError, PeerNotFoundError
from ..network.underlay import UnderlayNetwork

ID_BITS = 64


def node_id_for_peer(peer_id: int) -> int:
    """Deterministic 64-bit DHT identifier for an application peer id."""
    digest = hashlib.sha1(f"pastry-{peer_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class PastryConfig:
    """Tunables of the Pastry substrate."""

    digit_bits: int = 4
    leaf_set_size: int = 8

    def __post_init__(self) -> None:
        if self.digit_bits not in (1, 2, 4, 8):
            raise ConfigurationError("digit_bits must divide 64: 1/2/4/8")
        if self.leaf_set_size < 2 or self.leaf_set_size % 2:
            raise ConfigurationError("leaf_set_size must be even and >= 2")

    @property
    def digits(self) -> int:
        """Number of id digits."""
        return ID_BITS // self.digit_bits

    @property
    def base(self) -> int:
        """Digit alphabet size."""
        return 1 << self.digit_bits


@dataclass
class _NodeState:
    peer_id: int
    node_id: int
    leaf_set: list[int] = field(default_factory=list)  # node ids
    # routing_table[row][digit] -> node id (or None)
    routing_table: list[list[int | None]] = field(default_factory=list)


class PastryNetwork:
    """A fully built Pastry overlay over underlay-attached peers."""

    def __init__(self, underlay: UnderlayNetwork, peer_ids: list[int],
                 config: PastryConfig | None = None) -> None:
        if len(peer_ids) < 2:
            raise OverlayError("Pastry needs at least two nodes")
        self.config = config or PastryConfig()
        self.underlay = underlay
        self._by_node_id: dict[int, _NodeState] = {}
        self._peer_of: dict[int, int] = {}
        for peer_id in peer_ids:
            node_id = node_id_for_peer(peer_id)
            if node_id in self._by_node_id:
                raise OverlayError(
                    f"node id collision for peer {peer_id}")
            self._by_node_id[node_id] = _NodeState(peer_id, node_id)
            self._peer_of[node_id] = peer_id
        self._sorted_ids = sorted(self._by_node_id)
        self._build_leaf_sets()
        self._build_routing_tables()

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes in the DHT."""
        return len(self._by_node_id)

    def node_ids(self) -> list[int]:
        """All node ids in ring order."""
        return list(self._sorted_ids)

    def peer_for(self, node_id: int) -> int:
        """Application peer behind a DHT node id."""
        try:
            return self._peer_of[node_id]
        except KeyError:
            raise PeerNotFoundError(f"unknown node id {node_id:#x}")

    def node_for_peer(self, peer_id: int) -> int:
        """DHT node id of an application peer (must be a member)."""
        node_id = node_id_for_peer(peer_id)
        if node_id not in self._by_node_id:
            raise PeerNotFoundError(f"peer {peer_id} is not in the DHT")
        return node_id

    def digit(self, node_id: int, position: int) -> int:
        """The ``position``-th most significant digit of an id."""
        cfg = self.config
        shift = (cfg.digits - 1 - position) * cfg.digit_bits
        return (node_id >> shift) & (cfg.base - 1)

    def shared_prefix_length(self, a: int, b: int) -> int:
        """Number of leading digits two ids share."""
        for position in range(self.config.digits):
            if self.digit(a, position) != self.digit(b, position):
                return position
        return self.config.digits

    @staticmethod
    def ring_distance(a: int, b: int) -> int:
        """Circular distance in the 64-bit id space."""
        diff = (a - b) % (1 << ID_BITS)
        return min(diff, (1 << ID_BITS) - diff)

    def root_of(self, key: int) -> int:
        """The node id numerically closest to ``key`` (the key's root)."""
        ids = self._sorted_ids
        n = len(ids)
        index = int(np.searchsorted(ids, key))
        candidates = {ids[index % n], ids[(index - 1) % n],
                      ids[(index + 1) % n]}
        return min(candidates,
                   key=lambda candidate: self.ring_distance(candidate, key))

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _build_leaf_sets(self) -> None:
        half = self.config.leaf_set_size // 2
        ids = self._sorted_ids
        n = len(ids)
        for index, node_id in enumerate(ids):
            leaves = []
            for offset in range(1, half + 1):
                leaves.append(ids[(index - offset) % n])
                leaves.append(ids[(index + offset) % n])
            # Deduplicate (small rings wrap around).
            state = self._by_node_id[node_id]
            state.leaf_set = [leaf for leaf in dict.fromkeys(leaves)
                              if leaf != node_id]

    def _build_routing_tables(self) -> None:
        cfg = self.config
        # Candidates bucketed by (prefix with me up to row, digit at row).
        for node_id, state in self._by_node_id.items():
            state.routing_table = [
                [None] * cfg.base for _ in range(cfg.digits)]
        # For efficiency, bucket all nodes by digit prefix per row using a
        # trie-like dict: prefix tuple -> list of node ids.
        buckets: dict[tuple[int, ...], list[int]] = {(): self._sorted_ids}
        for row in range(cfg.digits):
            next_buckets: dict[tuple[int, ...], list[int]] = {}
            for prefix, members in buckets.items():
                if len(members) <= 1:
                    continue
                split: dict[int, list[int]] = {}
                for node_id in members:
                    split.setdefault(self.digit(node_id, row),
                                     []).append(node_id)
                for digit_value, sub in split.items():
                    next_buckets[prefix + (digit_value,)] = sub
                for node_id in members:
                    state = self._by_node_id[node_id]
                    own = self.digit(node_id, row)
                    for digit_value, sub in split.items():
                        if digit_value == own:
                            continue
                        state.routing_table[row][digit_value] = \
                            self._closest_by_underlay(node_id, sub)
            buckets = next_buckets
            if not buckets:
                break

    def _closest_by_underlay(self, node_id: int,
                             candidates: list[int]) -> int:
        """Pastry's locality heuristic: prefer the underlay-closest entry."""
        me = self._peer_of[node_id]
        if len(candidates) == 1:
            return candidates[0]
        sample = candidates if len(candidates) <= 8 else candidates[:8]
        best, best_distance = None, None
        for candidate in sample:
            distance = self.underlay.peer_distance_ms(
                me, self._peer_of[candidate])
            if best is None or distance < best_distance:
                best, best_distance = candidate, distance
        return best

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, source_peer: int, key: int) -> list[int]:
        """Route from a peer toward ``key``; returns the peer-id path.

        The path starts at ``source_peer`` and ends at the key's root.
        """
        current = self.node_for_peer(source_peer)
        target_root = self.root_of(key)
        path = [current]
        guard = 4 * self.config.digits
        while current != target_root:
            nxt = self._next_hop(current, key)
            if nxt is None or nxt == current:
                raise OverlayError(
                    f"routing stalled at {current:#x} for key {key:#x}")
            current = nxt
            path.append(current)
            guard -= 1
            if guard < 0:
                raise OverlayError("routing loop detected")
        return [self._peer_of[node_id] for node_id in path]

    def _next_hop(self, current: int, key: int) -> int | None:
        state = self._by_node_id[current]
        my_distance = self.ring_distance(current, key)
        # Leaf set first: if any leaf is closer, jump to the closest leaf.
        leaf_best = min(
            state.leaf_set,
            key=lambda leaf: self.ring_distance(leaf, key),
            default=None)
        if leaf_best is not None:
            leaf_distance = self.ring_distance(leaf_best, key)
            if leaf_distance < my_distance and self._covers(state, key):
                return leaf_best
        # Routing table: longer shared prefix.
        row = self.shared_prefix_length(current, key)
        if row < self.config.digits:
            entry = state.routing_table[row][self.digit(key, row)]
            if entry is not None:
                return entry
        # Rare case: any known node strictly closer to the key.
        candidates = list(state.leaf_set)
        for table_row in state.routing_table:
            candidates.extend(e for e in table_row if e is not None)
        best = min(candidates,
                   key=lambda c: self.ring_distance(c, key),
                   default=None)
        if best is not None and self.ring_distance(best, key) < my_distance:
            return best
        return None

    def _covers(self, state: _NodeState, key: int) -> bool:
        """True if ``key`` falls within the span of the node's leaf set."""
        ids = [state.node_id, *state.leaf_set]
        span = max(self.ring_distance(state.node_id, leaf)
                   for leaf in state.leaf_set)
        return self.ring_distance(state.node_id, key) <= span or len(
            ids) >= self.size

    def route_latency_ms(self, path: list[int]) -> float:
        """End-to-end underlay latency along a routed peer path."""
        return sum(self.underlay.peer_distance_ms(a, b)
                   for a, b in zip(path, path[1:]))

    # ------------------------------------------------------------------
    # Maintenance cost model
    # ------------------------------------------------------------------
    def join_state_cost(self, node_id: int | None = None) -> int:
        """State entries a joining node must acquire/notify.

        Pastry joins fetch a full routing row per hop of the join route
        plus the leaf set, and every entry's owner must be notified; this
        counts those entries for a typical node — the per-churn-event
        cost that Section 1 contrasts with unstructured overlays'
        near-zero join state.
        """
        if node_id is None:
            node_id = self._sorted_ids[len(self._sorted_ids) // 2]
        state = self._by_node_id[node_id]
        filled = sum(1 for row in state.routing_table
                     for entry in row if entry is not None)
        return filled + len(state.leaf_set)

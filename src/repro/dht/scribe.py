"""SCRIBE-style application-level multicast over the Pastry substrate.

SCRIBE (Castro et al., 2002) maps each group to a key; the node whose id
is numerically closest to the key becomes the *rendezvous root*.  A
subscriber routes a JOIN toward the key; every node on the route becomes
a forwarder, and the route's reverse forms its branch of the multicast
tree — the join stops at the first node already in the tree.  Multicast
payloads are injected at the root (member sources first unicast to the
root) and flow down the tree.

This is the second of the "three approaches" of Section 2.1 that the
paper contrasts GroupCast against; the comparison bench measures both
tree quality (delay penalty, stress) and the DHT's churn state cost.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import GroupError
from ..groupcast.spanning_tree import SpanningTree
from ..network.underlay import UnderlayNetwork
from .pastry import PastryNetwork


def group_key(group_name: str) -> int:
    """Hash a group name into the 64-bit key space."""
    digest = hashlib.sha1(f"scribe-{group_name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class ScribeGroup:
    """One SCRIBE multicast group."""

    key: int
    root_peer: int
    tree: SpanningTree
    join_hops: dict[int, int] = field(default_factory=dict)

    @property
    def members(self) -> frozenset[int]:
        """Subscribed peers."""
        return self.tree.members

    def source_to_root_latency_ms(self, source: int,
                                  underlay: UnderlayNetwork) -> float:
        """Unicast cost a member source pays to inject at the root."""
        if source not in self.members:
            raise GroupError(f"{source} is not a member")
        return underlay.peer_distance_ms(source, self.root_peer)


def build_scribe_group(
    pastry: PastryNetwork,
    group_name: str,
    members: Sequence[int],
) -> ScribeGroup:
    """Subscribe ``members`` and return the rendezvous-rooted tree."""
    if not members:
        raise GroupError("a SCRIBE group needs at least one member")
    key = group_key(group_name)
    root_node = pastry.root_of(key)
    root_peer = pastry.peer_for(root_node)
    tree = SpanningTree(root=root_peer)
    join_hops: dict[int, int] = {}

    for member in members:
        if member == root_peer:
            join_hops[member] = 0
            continue
        route = pastry.route(member, key)
        # Route runs member -> ... -> root; truncate at the first node
        # already in the tree (SCRIBE joins stop at existing forwarders).
        chain: list[int] = []
        for peer in route:
            chain.append(peer)
            if peer in tree:
                break
        if chain[-1] not in tree:
            raise GroupError(
                f"join route of {member} never reached the tree")
        if len(chain) > 1:
            tree.graft_chain(chain)
        tree.mark_member(member)
        join_hops[member] = len(chain) - 1

    tree.validate()
    return ScribeGroup(
        key=key,
        root_peer=root_peer,
        tree=tree,
        join_hops=join_hops,
    )

"""SCRIBE-style application-level multicast over the Pastry substrate.

SCRIBE (Castro et al., 2002) maps each group to a key; the node whose id
is numerically closest to the key becomes the *rendezvous root*.  A
subscriber routes a JOIN toward the key; every node on the route becomes
a forwarder, and the route's reverse forms its branch of the multicast
tree — the join stops at the first node already in the tree.  Multicast
payloads are injected at the root (member sources first unicast to the
root) and flow down the tree.

This is the second of the "three approaches" of Section 2.1 that the
paper contrasts GroupCast against; the comparison bench measures both
tree quality (delay penalty, stress) and the DHT's churn state cost.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import GroupError
from ..groupcast.spanning_tree import SpanningTree
from ..network.underlay import UnderlayNetwork
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    Tracer,
    get_default_tracer,
)
from ..overlay.messages import MessageKind
from .pastry import PastryNetwork


def group_key(group_name: str) -> int:
    """Hash a group name into the 64-bit key space."""
    digest = hashlib.sha1(f"scribe-{group_name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class ScribeGroup:
    """One SCRIBE multicast group."""

    key: int
    root_peer: int
    tree: SpanningTree
    join_hops: dict[int, int] = field(default_factory=dict)

    @property
    def members(self) -> frozenset[int]:
        """Subscribed peers."""
        return self.tree.members

    def source_to_root_latency_ms(self, source: int,
                                  underlay: UnderlayNetwork) -> float:
        """Unicast cost a member source pays to inject at the root."""
        if source not in self.members:
            raise GroupError(f"{source} is not a member")
        return underlay.peer_distance_ms(source, self.root_peer)


def build_scribe_group(
    pastry: PastryNetwork,
    group_name: str,
    members: Sequence[int],
    underlay: UnderlayNetwork | None = None,
    tracer: Tracer | None = None,
) -> ScribeGroup:
    """Subscribe ``members`` and return the rendezvous-rooted tree.

    With span tracing enabled (``tracer`` or the process default), each
    member's JOIN walk becomes one ``scribe-join`` episode whose spans
    chain along the Pastry route hops — latency-stamped when an
    ``underlay`` is given — so DHT join cost sits beside GroupCast's
    ripple searches in cross-protocol reports.
    """
    if not members:
        raise GroupError("a SCRIBE group needs at least one member")
    key = group_key(group_name)
    root_node = pastry.root_of(key)
    root_peer = pastry.peer_for(root_node)
    tree = SpanningTree(root=root_peer)
    join_hops: dict[int, int] = {}
    tracer = tracer if tracer is not None else get_default_tracer()
    tracing = tracer is not None and tracer.spans

    for member in members:
        if member == root_peer:
            join_hops[member] = 0
            continue
        route = pastry.route(member, key)
        # Route runs member -> ... -> root; truncate at the first node
        # already in the tree (SCRIBE joins stop at existing forwarders).
        chain: list[int] = []
        for peer in route:
            chain.append(peer)
            if peer in tree:
                break
        if chain[-1] not in tree:
            raise GroupError(
                f"join route of {member} never reached the tree")
        if tracing:
            parent_span = tracer.root_span(at_ms=0.0, kind="scribe-join")
            at_ms = 0.0
            for hop_from, hop_to in zip(chain, chain[1:]):
                latency_ms = (underlay.peer_distance_ms(hop_from, hop_to)
                              if underlay is not None else 0.0)
                span = tracer.child_span(parent_span)
                tracer.record(at_ms, KIND_SEND, a=hop_from, b=hop_to,
                              detail=MessageKind.SUBSCRIPTION.value,
                              span=span)
                at_ms += latency_ms
                tracer.record(at_ms, KIND_DELIVER, a=hop_from, b=hop_to,
                              detail=MessageKind.SUBSCRIPTION.value,
                              span=span)
                parent_span = span
        if len(chain) > 1:
            tree.graft_chain(chain)
        tree.mark_member(member)
        join_hops[member] = len(chain) - 1

    tree.validate()
    return ScribeGroup(
        key=key,
        root_peer=root_peer,
        tree=tree,
        join_hops=join_hops,
    )

"""Structured P2P comparator: Pastry-style DHT + SCRIBE-style multicast.

The paper positions GroupCast against DHT-based application-level
multicast (SCRIBE on Pastry [11], CAN-multicast [23]) and argues that
unstructured overlays win under churn while matching tree quality.  To
make that comparison runnable, this package implements the structured
side from scratch:

* :mod:`.pastry` — prefix-routing DHT with leaf sets and
  proximity-aware routing tables;
* :mod:`.scribe` — rendezvous-rooted multicast trees built from the
  reverse DHT routes of subscriber joins;
* :mod:`.can` — a d-dimensional CAN torus and CAN-multicast's
  per-group mini-CAN flooding.
"""

from .can import CANNetwork, build_group_can, can_multicast
from .pastry import PastryConfig, PastryNetwork, node_id_for_peer
from .scribe import ScribeGroup, build_scribe_group

__all__ = [
    "CANNetwork",
    "build_group_can",
    "can_multicast",
    "PastryConfig",
    "PastryNetwork",
    "node_id_for_peer",
    "ScribeGroup",
    "build_scribe_group",
]

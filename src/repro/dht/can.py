"""CAN (Content-Addressable Network) and CAN-multicast.

Section 2.1's third category also names CAN-multicast (Ratnasamy et al.,
2001): the group's members form their own d-dimensional CAN — a torus
``[0,1)^d`` partitioned into one rectangular zone per member — and the
payload floods across zone adjacencies.  This module implements:

* the CAN itself: sequential joins with zone splitting along the longest
  dimension, torus-adjacency neighbor tracking and greedy coordinate
  routing;
* CAN-multicast: a flood over zone neighbors with duplicate suppression
  at receivers, whose first-receipt parents yield a spanning tree that
  the comparison benches can score like any other ESM scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, GroupError, OverlayError
from ..groupcast.spanning_tree import SpanningTree
from ..network.underlay import UnderlayNetwork
from ..sim.random import RandomSource


@dataclass
class Zone:
    """A rectangular zone of the CAN torus, owned by one peer."""

    owner: int
    lows: np.ndarray
    highs: np.ndarray

    @property
    def dimensions(self) -> int:
        """Dimensionality of the torus."""
        return self.lows.size

    def contains(self, point: np.ndarray) -> bool:
        """True if ``point`` falls inside this zone."""
        return bool(((point >= self.lows) & (point < self.highs)).all())

    def center(self) -> np.ndarray:
        """Zone midpoint."""
        return (self.lows + self.highs) / 2.0

    def split(self, new_owner: int) -> "Zone":
        """Halve this zone along its longest dimension; return the new
        upper half (this zone keeps the lower half)."""
        extents = self.highs - self.lows
        dim = int(np.argmax(extents))
        middle = self.lows[dim] + extents[dim] / 2.0
        new_lows = self.lows.copy()
        new_lows[dim] = middle
        new_zone = Zone(new_owner, new_lows, self.highs.copy())
        self.highs = self.highs.copy()
        self.highs[dim] = middle
        return new_zone


def _intervals_abut(low_a, high_a, low_b, high_b) -> bool:
    """True if [a) and [b) touch end-to-start on the unit torus."""
    return (np.isclose(high_a % 1.0, low_b % 1.0)
            or np.isclose(high_b % 1.0, low_a % 1.0))


def _intervals_overlap(low_a, high_a, low_b, high_b) -> bool:
    """True if the two (non-wrapped) intervals share positive length."""
    return (min(high_a, high_b) - max(low_a, low_b)) > 1e-12


def zones_adjacent(a: Zone, b: Zone) -> bool:
    """CAN adjacency: abut in exactly one dimension, overlap in the rest."""
    abutting = 0
    for dim in range(a.dimensions):
        if _intervals_overlap(a.lows[dim], a.highs[dim],
                              b.lows[dim], b.highs[dim]):
            continue
        if _intervals_abut(a.lows[dim], a.highs[dim],
                           b.lows[dim], b.highs[dim]):
            abutting += 1
        else:
            return False
    return abutting == 1


def torus_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance on the unit torus."""
    diff = np.abs(a - b)
    diff = np.minimum(diff, 1.0 - diff)
    return float(np.linalg.norm(diff))


def zone_torus_distance(zone: Zone, point: np.ndarray) -> float:
    """Distance from ``point`` to the closest point of ``zone``.

    Per dimension the gap is zero when the coordinate falls inside the
    zone's interval; otherwise the shorter of the direct and wrapped
    approaches to the nearest edge.  Greedy routing on this metric heads
    for the *zone*, not its centre, which keeps progress monotone when
    zone sizes are heterogeneous.
    """
    gaps = np.zeros(zone.dimensions)
    for dim in range(zone.dimensions):
        x = point[dim]
        low, high = zone.lows[dim], zone.highs[dim]
        if low <= x < high:
            continue
        direct = min(abs(x - low), abs(x - high))
        wrapped = min(abs(x - low + 1.0), abs(x - low - 1.0),
                      abs(x - high + 1.0), abs(x - high - 1.0))
        gaps[dim] = min(direct, wrapped)
    return float(np.linalg.norm(gaps))


class CANNetwork:
    """A d-dimensional CAN over a set of peers."""

    def __init__(self, peer_ids: list[int], rng: RandomSource,
                 dimensions: int = 2) -> None:
        if len(peer_ids) < 1:
            raise OverlayError("CAN needs at least one node")
        if dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        self.dimensions = dimensions
        self._zones: dict[int, Zone] = {}
        self._neighbors: dict[int, set[int]] = {}
        first, *rest = peer_ids
        self._zones[first] = Zone(
            first, np.zeros(dimensions), np.ones(dimensions))
        self._neighbors[first] = set()
        for peer_id in rest:
            self._join(peer_id, rng)

    # ------------------------------------------------------------------
    def _join(self, peer_id: int, rng: RandomSource) -> None:
        if peer_id in self._zones:
            raise OverlayError(f"peer {peer_id} already in the CAN")
        point = rng.random(self.dimensions)
        owner = self.owner_of(point)
        owner_zone = self._zones[owner]
        new_zone = owner_zone.split(peer_id)
        self._zones[peer_id] = new_zone
        self._neighbors[peer_id] = set()
        # Recompute adjacency for the two halves against the old
        # neighborhood (plus each other).
        affected = {owner, peer_id} | set(self._neighbors[owner])
        for a in affected:
            for b in affected:
                if a >= b:
                    continue
                adjacent = zones_adjacent(self._zones[a], self._zones[b])
                if adjacent:
                    self._neighbors[a].add(b)
                    self._neighbors[b].add(a)
                else:
                    self._neighbors[a].discard(b)
                    self._neighbors[b].discard(a)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of zones/owners."""
        return len(self._zones)

    def zone_of(self, peer_id: int) -> Zone:
        """The zone owned by ``peer_id``."""
        try:
            return self._zones[peer_id]
        except KeyError:
            raise OverlayError(f"peer {peer_id} is not in the CAN")

    def neighbors(self, peer_id: int) -> list[int]:
        """Zone-adjacent owners."""
        self.zone_of(peer_id)
        return sorted(self._neighbors[peer_id])

    def owner_of(self, point: np.ndarray) -> int:
        """The peer whose zone contains ``point``."""
        point = np.asarray(point, dtype=float) % 1.0
        for peer_id, zone in self._zones.items():
            if zone.contains(point):
                return peer_id
        raise OverlayError(f"no zone contains {point}")  # pragma: no cover

    def validate(self) -> None:
        """Check the zones tile the torus exactly once."""
        volume = sum(
            float(np.prod(zone.highs - zone.lows))
            for zone in self._zones.values())
        if not np.isclose(volume, 1.0, atol=1e-9):
            raise OverlayError(f"zones cover volume {volume}, expected 1")

    # ------------------------------------------------------------------
    def route(self, source: int, point: np.ndarray) -> list[int]:
        """Route from ``source`` to the owner of ``point``.

        Greedy descent on the zone-to-point distance; if the greedy rule
        reaches a local minimum (possible with very skewed tilings) the
        remainder falls back to a breadth-first walk of the zone graph —
        the simulator analogue of CAN's perimeter routing.
        """
        point = np.asarray(point, dtype=float) % 1.0
        current = source
        path = [current]
        guard = 4 * self.size + 8
        while not self.zone_of(current).contains(point):
            current_distance = zone_torus_distance(
                self.zone_of(current), point)
            best, best_distance = None, current_distance
            for neighbor in self._neighbors[current]:
                distance = zone_torus_distance(
                    self.zone_of(neighbor), point)
                if distance < best_distance:
                    best, best_distance = neighbor, distance
            if best is None:
                path.extend(self._bfs_route(current, point))
                return path
            current = best
            path.append(current)
            guard -= 1
            if guard < 0:  # pragma: no cover - monotone descent guard
                raise OverlayError("routing loop detected")
        return path

    def _bfs_route(self, start: int, point: np.ndarray) -> list[int]:
        """Shortest zone-graph path from ``start`` to the point's owner."""
        from collections import deque

        target = self.owner_of(point)
        parents: dict[int, int] = {start: start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            if node == target:
                break
            for neighbor in self._neighbors[node]:
                if neighbor not in parents:
                    parents[neighbor] = node
                    queue.append(neighbor)
        if target not in parents:  # pragma: no cover - connected tiling
            raise OverlayError("zone graph is disconnected")
        chain = [target]
        while chain[-1] != start:
            chain.append(parents[chain[-1]])
        chain.reverse()
        return chain[1:]


@dataclass(frozen=True)
class CANMulticastResult:
    """Outcome of one CAN-multicast flood."""

    tree: SpanningTree
    messages: int
    duplicates: int


def can_multicast(
    can: CANNetwork,
    source: int,
    underlay: UnderlayNetwork,
) -> CANMulticastResult:
    """Flood a payload across the mini-CAN from ``source``.

    Deliveries propagate zone-to-zone in arrival-time order (true
    underlay latency between zone owners); receivers suppress duplicates.
    The first-receipt parents form the returned spanning tree, with every
    zone owner a member (the mini-CAN contains exactly the group).
    """
    import heapq
    import itertools

    if source not in can._zones:
        raise GroupError(f"{source} is not in the CAN")
    tree = SpanningTree(root=source)
    arrival_of = {source: 0.0}
    counter = itertools.count()
    heap: list[tuple[float, int, int, int]] = []
    messages = 0
    duplicates = 0

    def forward(node: int, at_ms: float) -> None:
        nonlocal messages
        for neighbor in can.neighbors(node):
            latency = underlay.peer_distance_ms(node, neighbor)
            heapq.heappush(
                heap, (at_ms + latency, next(counter), node, neighbor))
            messages += 1

    forward(source, 0.0)
    while heap:
        at_ms, _, sender, receiver = heapq.heappop(heap)
        if receiver in arrival_of:
            duplicates += 1
            continue
        arrival_of[receiver] = at_ms
        tree.graft_chain([receiver, sender])
        tree.mark_member(receiver)
        forward(receiver, at_ms)

    tree.validate()
    return CANMulticastResult(tree=tree, messages=messages,
                              duplicates=duplicates)


def build_group_can(
    members: list[int],
    rng: RandomSource,
    dimensions: int = 2,
) -> CANNetwork:
    """The per-group mini-CAN of CAN-multicast: members only."""
    members = list(dict.fromkeys(members))
    if len(members) < 2:
        raise GroupError("a mini-CAN needs at least two members")
    return CANNetwork(members, rng, dimensions)

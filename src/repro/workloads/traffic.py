"""Publication traffic models.

Two publication processes cover the paper's application spectrum:

* :func:`constant_rate` — periodic updates with jitter (game state,
  presence, community feeds);
* :func:`talk_spurts` — the classic on/off model of conversational
  audio: one active speaker at a time, exponential talk spurts and
  pauses, speaker hand-off at spurt boundaries (conferencing, voice
  chat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..sim.random import RandomSource


@dataclass(frozen=True)
class PublicationEvent:
    """One payload publication: when and by whom."""

    at_ms: float
    source: int


def constant_rate(
    members: Sequence[int],
    rng: RandomSource,
    horizon_ms: float,
    period_ms: float = 1_000.0,
    jitter_fraction: float = 0.1,
    publishers: int | None = None,
) -> list[PublicationEvent]:
    """Periodic publications with jitter from a set of publishers.

    ``publishers`` bounds how many members publish (default: all).
    Events from all publishers are merged time-sorted.
    """
    if not members:
        raise ConfigurationError("need at least one member")
    if period_ms <= 0.0 or horizon_ms <= 0.0:
        raise ConfigurationError("period and horizon must be positive")
    if not 0.0 <= jitter_fraction < 1.0:
        raise ConfigurationError("jitter_fraction must be in [0, 1)")
    sources = list(members)
    if publishers is not None:
        if publishers < 1:
            raise ConfigurationError("publishers must be >= 1")
        picks = rng.choice(len(sources), size=min(publishers,
                                                  len(sources)),
                           replace=False)
        sources = [sources[int(i)] for i in picks]
    events: list[PublicationEvent] = []
    for source in sources:
        now = float(rng.uniform(0.0, period_ms))
        while now < horizon_ms:
            events.append(PublicationEvent(now, source))
            jitter = rng.uniform(-jitter_fraction, jitter_fraction)
            now += period_ms * (1.0 + float(jitter))
    events.sort(key=lambda event: event.at_ms)
    return events


def talk_spurts(
    members: Sequence[int],
    rng: RandomSource,
    horizon_ms: float,
    mean_spurt_ms: float = 4_000.0,
    mean_pause_ms: float = 1_500.0,
    packet_interval_ms: float = 200.0,
) -> list[PublicationEvent]:
    """On/off conversational traffic with speaker hand-off.

    One member speaks at a time: during a spurt the speaker publishes a
    packet every ``packet_interval_ms``; at spurt end, after a pause, a
    new speaker (possibly the same one) takes over.
    """
    if not members:
        raise ConfigurationError("need at least one member")
    if min(mean_spurt_ms, mean_pause_ms, packet_interval_ms,
           horizon_ms) <= 0.0:
        raise ConfigurationError("durations must be positive")
    members = list(members)
    events: list[PublicationEvent] = []
    now = float(rng.exponential(mean_pause_ms))
    while now < horizon_ms:
        speaker = members[int(rng.integers(len(members)))]
        spurt_end = now + float(rng.exponential(mean_spurt_ms))
        while now < min(spurt_end, horizon_ms):
            events.append(PublicationEvent(now, speaker))
            now += packet_interval_ms
        now = spurt_end + float(rng.exponential(mean_pause_ms))
    return events

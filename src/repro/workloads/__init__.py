"""Workload generators for group-communication studies.

The applications the paper motivates — conferencing, multiplayer games,
community advertising, instant messaging — differ in how groups arrive,
how members come and go within a group, and how traffic flows.  These
generators model all three axes so long-running service studies can be
driven from realistic, reproducible event streams:

* :mod:`.groups` — Poisson group arrivals with log-normal sizes and
  optional locality-biased membership;
* :mod:`.traffic` — per-group publication processes: constant-rate
  publishers and the on/off talk-spurt model of conversational audio.
"""

from .groups import GroupArrivals, GroupSpec, MembershipChurn
from .traffic import PublicationEvent, constant_rate, talk_spurts

__all__ = [
    "GroupArrivals",
    "GroupSpec",
    "MembershipChurn",
    "PublicationEvent",
    "constant_rate",
    "talk_spurts",
]

"""Group arrival and membership dynamics.

Groups arrive as a Poisson process; each group draws a log-normal or
truncated-Zipf size (most groups are small chats, a few are large
events — the shape seen in conferencing and gaming measurements) and
samples its members either uniformly or with a locality bias (members
near a random epicentre in coordinate space, modelling regional
communities).  Within a group, :class:`MembershipChurn` generates timed
join/leave events around the initial roster.

The Zipf sampler and :func:`sample_group_rows` feed the multi-group
batch core (:mod:`repro.core.multigroup`): thousands of heavy-tailed
group rosters over one shared row space, reproducible bit-for-bit from
one seed on every supported numpy version.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coords.base import CoordinateSpace
from ..errors import ConfigurationError
from ..sim.random import RandomSource


def zipf_group_sizes(rng: RandomSource, count: int,
                     exponent: float = 2.0, min_size: int = 2,
                     max_size: int = 1024) -> np.ndarray:
    """Seed-deterministic truncated-Zipf group sizes.

    Samples ``P(size = k) ∝ k^-exponent`` over ``[min_size, max_size]``
    by explicit inverse-CDF lookup against ``rng.random`` draws rather
    than ``Generator.zipf``: the uniform double stream of a seeded
    generator is stable across numpy versions, while ``zipf``'s
    rejection sampler may consume a version-dependent number of draws
    (and is unbounded, which would need clipping anyway) — this keeps
    every multi-group bench reproducible from its seed alone, with one
    draw consumed per group.
    """
    if count < 0:
        raise ConfigurationError("count must be non-negative")
    if exponent <= 0.0:
        raise ConfigurationError("exponent must be positive")
    if not 1 <= min_size <= max_size:
        raise ConfigurationError("need 1 <= min_size <= max_size")
    support = np.arange(min_size, max_size + 1, dtype=np.float64)
    cdf = np.cumsum(support ** -exponent)
    cdf /= cdf[-1]
    picks = np.searchsorted(cdf, rng.random(count), side="right")
    picks = np.minimum(picks, support.shape[0] - 1)
    return (picks + min_size).astype(np.int64)


def sample_group_rows(rng: RandomSource, n_groups: int, n_rows: int,
                      exponent: float = 2.0, min_size: int = 2,
                      max_size: int | None = None
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Zipf-sized group rosters over a shared row space.

    Draws ``n_groups`` truncated-Zipf sizes, then a distinct member-row
    set per group; the first member is the group's rendezvous.  Returns
    ``(roots, member_rows, member_indptr)`` in the packed layout the
    multi-group kernels consume (:func:`repro.core.multigroup.pack_members`).
    Sequential draws from one generator keep the whole workload a pure
    function of the seed.
    """
    if n_groups < 1:
        raise ConfigurationError("need at least one group")
    if n_rows < 2:
        raise ConfigurationError("need at least two rows")
    max_size = min(max_size or n_rows, n_rows)
    sizes = zipf_group_sizes(rng, n_groups, exponent=exponent,
                             min_size=min_size, max_size=max_size)
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    member_rows = np.empty(int(indptr[-1]), dtype=np.int64)
    roots = np.empty(n_groups, dtype=np.int64)
    for g in range(n_groups):
        picks = rng.choice(n_rows, size=int(sizes[g]), replace=False)
        member_rows[indptr[g]:indptr[g + 1]] = picks
        roots[g] = picks[0]
    return roots, member_rows, indptr


def assign_tenants(rng: RandomSource, n_groups: int, n_tenants: int,
                   exponent: float = 1.2) -> np.ndarray:
    """Seed-deterministic Zipf-weighted tenant id per group.

    Production multi-tenant traffic is heavy-tailed: a few tenants own
    many groups.  Tenants draw by explicit inverse-CDF lookup
    (``P(tenant = t) ∝ (t + 1)^-exponent``) against ``rng.random`` for
    the same numpy-version stability as :func:`zipf_group_sizes` — one
    uniform draw per group, every tenant id in ``[0, n_tenants)``.
    """
    if n_groups < 0:
        raise ConfigurationError("n_groups must be non-negative")
    if n_tenants < 1:
        raise ConfigurationError("need at least one tenant")
    if exponent <= 0.0:
        raise ConfigurationError("exponent must be positive")
    weights = np.arange(1, n_tenants + 1, dtype=np.float64) ** -exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    picks = np.searchsorted(cdf, rng.random(n_groups), side="right")
    return np.minimum(picks, n_tenants - 1).astype(np.int64)


@dataclass(frozen=True)
class GroupSpec:
    """One generated group: creation time and initial roster."""

    group_index: int
    created_at_ms: float
    members: tuple[int, ...]


class GroupArrivals:
    """Poisson group creations over a fixed peer population."""

    def __init__(
        self,
        peer_ids: list[int],
        mean_interarrival_ms: float = 30_000.0,
        median_size: float = 8.0,
        size_sigma: float = 1.0,
        max_size: int | None = None,
        locality_bias: float = 0.0,
        space: CoordinateSpace | None = None,
        size_distribution: str = "lognormal",
        zipf_exponent: float = 2.0,
    ) -> None:
        if len(peer_ids) < 2:
            raise ConfigurationError("need at least two peers")
        if mean_interarrival_ms <= 0.0:
            raise ConfigurationError(
                "mean_interarrival_ms must be positive")
        if median_size < 2.0:
            raise ConfigurationError("median_size must be >= 2")
        if size_sigma < 0.0:
            raise ConfigurationError("size_sigma must be non-negative")
        if not 0.0 <= locality_bias <= 1.0:
            raise ConfigurationError("locality_bias must be in [0, 1]")
        if locality_bias > 0.0 and space is None:
            raise ConfigurationError(
                "locality bias needs a coordinate space")
        if size_distribution not in ("lognormal", "zipf"):
            raise ConfigurationError(
                f"unknown size distribution {size_distribution!r}")
        if zipf_exponent <= 0.0:
            raise ConfigurationError("zipf_exponent must be positive")
        self.size_distribution = size_distribution
        self.zipf_exponent = zipf_exponent
        self.peer_ids = list(peer_ids)
        self.mean_interarrival_ms = mean_interarrival_ms
        self.median_size = median_size
        self.size_sigma = size_sigma
        self.max_size = max_size or len(peer_ids)
        self.locality_bias = locality_bias
        self.space = space

    def generate(self, rng: RandomSource, count: int) -> list[GroupSpec]:
        """Generate ``count`` group creations."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        specs = []
        now = 0.0
        for index in range(count):
            now += float(rng.exponential(self.mean_interarrival_ms))
            members = self._sample_members(rng, self._draw_size(rng))
            specs.append(GroupSpec(index, now, tuple(members)))
        return specs

    def _draw_size(self, rng: RandomSource) -> int:
        ceiling = min(self.max_size, len(self.peer_ids))
        if self.size_distribution == "zipf":
            return int(zipf_group_sizes(
                rng, 1, exponent=self.zipf_exponent, min_size=2,
                max_size=ceiling)[0])
        return int(np.clip(
            round(rng.lognormal(np.log(self.median_size),
                                self.size_sigma)),
            2, ceiling))

    def _sample_members(self, rng: RandomSource, size: int) -> list[int]:
        if self.locality_bias <= 0.0:
            picks = rng.choice(len(self.peer_ids), size=size,
                               replace=False)
            return [self.peer_ids[int(i)] for i in picks]
        # Locality: pick an epicentre peer, then weight candidates by
        # inverse coordinate distance, blended with uniform weights.
        assert self.space is not None
        epicentre = self.peer_ids[int(rng.integers(len(self.peer_ids)))]
        distances = self.space.distances_from(epicentre, self.peer_ids)
        proximity = 1.0 / np.maximum(distances, 1.0)
        proximity = proximity / proximity.sum()
        uniform = np.full(len(self.peer_ids), 1.0 / len(self.peer_ids))
        weights = (self.locality_bias * proximity
                   + (1.0 - self.locality_bias) * uniform)
        picks = rng.choice(len(self.peer_ids), size=size, replace=False,
                           p=weights / weights.sum())
        return [self.peer_ids[int(i)] for i in picks]


@dataclass(frozen=True)
class MembershipEvent:
    """A timed join or leave within one group."""

    at_ms: float
    peer_id: int
    join: bool


class MembershipChurn:
    """Join/leave dynamics within an established group."""

    def __init__(self, mean_membership_ms: float = 300_000.0,
                 join_rate_per_s: float = 0.02) -> None:
        if mean_membership_ms <= 0.0:
            raise ConfigurationError(
                "mean_membership_ms must be positive")
        if join_rate_per_s < 0.0:
            raise ConfigurationError("join_rate_per_s must be >= 0")
        self.mean_membership_ms = mean_membership_ms
        self.join_rate_per_s = join_rate_per_s

    def generate(
        self,
        spec: GroupSpec,
        candidate_pool: list[int],
        rng: RandomSource,
        horizon_ms: float,
    ) -> list[MembershipEvent]:
        """Timed membership events for one group up to ``horizon_ms``.

        Initial members leave after exponential dwell times; fresh
        members from ``candidate_pool`` arrive at ``join_rate_per_s``
        and dwell likewise.  Events are returned time-sorted.
        """
        if horizon_ms <= spec.created_at_ms:
            raise ConfigurationError("horizon precedes group creation")
        events: list[MembershipEvent] = []
        for member in spec.members:
            leave_at = spec.created_at_ms + float(
                rng.exponential(self.mean_membership_ms))
            if leave_at < horizon_ms:
                events.append(MembershipEvent(leave_at, member, False))
        outsiders = [p for p in candidate_pool if p not in spec.members]
        now = spec.created_at_ms
        while outsiders and self.join_rate_per_s > 0.0:
            now += float(rng.exponential(1000.0 / self.join_rate_per_s))
            if now >= horizon_ms:
                break
            joiner = outsiders.pop(int(rng.integers(len(outsiders))))
            events.append(MembershipEvent(now, joiner, True))
            leave_at = now + float(
                rng.exponential(self.mean_membership_ms))
            if leave_at < horizon_ms:
                events.append(MembershipEvent(leave_at, joiner, False))
        events.sort(key=lambda event: event.at_ms)
        return events

"""Group arrival and membership dynamics.

Groups arrive as a Poisson process; each group draws a log-normal size
(most groups are small chats, a few are large events — the shape seen in
conferencing and gaming measurements) and samples its members either
uniformly or with a locality bias (members near a random epicentre in
coordinate space, modelling regional communities).  Within a group,
:class:`MembershipChurn` generates timed join/leave events around the
initial roster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..coords.base import CoordinateSpace
from ..errors import ConfigurationError
from ..sim.random import RandomSource


@dataclass(frozen=True)
class GroupSpec:
    """One generated group: creation time and initial roster."""

    group_index: int
    created_at_ms: float
    members: tuple[int, ...]


class GroupArrivals:
    """Poisson group creations over a fixed peer population."""

    def __init__(
        self,
        peer_ids: list[int],
        mean_interarrival_ms: float = 30_000.0,
        median_size: float = 8.0,
        size_sigma: float = 1.0,
        max_size: int | None = None,
        locality_bias: float = 0.0,
        space: CoordinateSpace | None = None,
    ) -> None:
        if len(peer_ids) < 2:
            raise ConfigurationError("need at least two peers")
        if mean_interarrival_ms <= 0.0:
            raise ConfigurationError(
                "mean_interarrival_ms must be positive")
        if median_size < 2.0:
            raise ConfigurationError("median_size must be >= 2")
        if size_sigma < 0.0:
            raise ConfigurationError("size_sigma must be non-negative")
        if not 0.0 <= locality_bias <= 1.0:
            raise ConfigurationError("locality_bias must be in [0, 1]")
        if locality_bias > 0.0 and space is None:
            raise ConfigurationError(
                "locality bias needs a coordinate space")
        self.peer_ids = list(peer_ids)
        self.mean_interarrival_ms = mean_interarrival_ms
        self.median_size = median_size
        self.size_sigma = size_sigma
        self.max_size = max_size or len(peer_ids)
        self.locality_bias = locality_bias
        self.space = space

    def generate(self, rng: RandomSource, count: int) -> list[GroupSpec]:
        """Generate ``count`` group creations."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        specs = []
        now = 0.0
        for index in range(count):
            now += float(rng.exponential(self.mean_interarrival_ms))
            size = int(np.clip(
                round(rng.lognormal(np.log(self.median_size),
                                    self.size_sigma)),
                2, min(self.max_size, len(self.peer_ids))))
            members = self._sample_members(rng, size)
            specs.append(GroupSpec(index, now, tuple(members)))
        return specs

    def _sample_members(self, rng: RandomSource, size: int) -> list[int]:
        if self.locality_bias <= 0.0:
            picks = rng.choice(len(self.peer_ids), size=size,
                               replace=False)
            return [self.peer_ids[int(i)] for i in picks]
        # Locality: pick an epicentre peer, then weight candidates by
        # inverse coordinate distance, blended with uniform weights.
        assert self.space is not None
        epicentre = self.peer_ids[int(rng.integers(len(self.peer_ids)))]
        distances = self.space.distances_from(epicentre, self.peer_ids)
        proximity = 1.0 / np.maximum(distances, 1.0)
        proximity = proximity / proximity.sum()
        uniform = np.full(len(self.peer_ids), 1.0 / len(self.peer_ids))
        weights = (self.locality_bias * proximity
                   + (1.0 - self.locality_bias) * uniform)
        picks = rng.choice(len(self.peer_ids), size=size, replace=False,
                           p=weights / weights.sum())
        return [self.peer_ids[int(i)] for i in picks]


@dataclass(frozen=True)
class MembershipEvent:
    """A timed join or leave within one group."""

    at_ms: float
    peer_id: int
    join: bool


class MembershipChurn:
    """Join/leave dynamics within an established group."""

    def __init__(self, mean_membership_ms: float = 300_000.0,
                 join_rate_per_s: float = 0.02) -> None:
        if mean_membership_ms <= 0.0:
            raise ConfigurationError(
                "mean_membership_ms must be positive")
        if join_rate_per_s < 0.0:
            raise ConfigurationError("join_rate_per_s must be >= 0")
        self.mean_membership_ms = mean_membership_ms
        self.join_rate_per_s = join_rate_per_s

    def generate(
        self,
        spec: GroupSpec,
        candidate_pool: list[int],
        rng: RandomSource,
        horizon_ms: float,
    ) -> list[MembershipEvent]:
        """Timed membership events for one group up to ``horizon_ms``.

        Initial members leave after exponential dwell times; fresh
        members from ``candidate_pool`` arrive at ``join_rate_per_s``
        and dwell likewise.  Events are returned time-sorted.
        """
        if horizon_ms <= spec.created_at_ms:
            raise ConfigurationError("horizon precedes group creation")
        events: list[MembershipEvent] = []
        for member in spec.members:
            leave_at = spec.created_at_ms + float(
                rng.exponential(self.mean_membership_ms))
            if leave_at < horizon_ms:
                events.append(MembershipEvent(leave_at, member, False))
        outsiders = [p for p in candidate_pool if p not in spec.members]
        now = spec.created_at_ms
        while outsiders and self.join_rate_per_s > 0.0:
            now += float(rng.exponential(1000.0 / self.join_rate_per_s))
            if now >= horizon_ms:
                break
            joiner = outsiders.pop(int(rng.integers(len(outsiders))))
            events.append(MembershipEvent(now, joiner, True))
            leave_at = now + float(
                rng.exponential(self.mean_membership_ms))
            if leave_at < horizon_ms:
                events.append(MembershipEvent(leave_at, joiner, False))
        events.sort(key=lambda event: event.at_ms)
        return events

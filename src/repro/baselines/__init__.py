"""Alternative group-communication baselines discussed in Sections 1-2.

* :mod:`.client_server` — the height-1 star tree of traditional
  client/server group communication (and Skype's full-unicast conference
  model), whose root fan-out is its scalability ceiling;
* :mod:`.narada` — a Narada/Scattercast-style mesh-first ESM baseline:
  build a connected random mesh among the members only, then run a
  shortest-path tree over it;
* :mod:`.nice` — a NICE-style proximity-clustered hierarchy, the
  "explicitly choose parents" family of Section 2.1.
"""

from .client_server import build_client_server_tree, skype_unicast_cost
from .narada import NaradaMesh, build_narada_tree
from .nice import NiceConfig, build_nice_tree

__all__ = [
    "build_client_server_tree",
    "skype_unicast_cost",
    "NaradaMesh",
    "build_narada_tree",
    "NiceConfig",
    "build_nice_tree",
]

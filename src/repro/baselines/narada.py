"""Narada/Scattercast-style mesh-first end-system multicast baseline.

Section 2.1 describes the two-step approach of Narada and Scattercast:
first build a well-connected mesh over the group members, then run a
standard shortest-path algorithm on the mesh to obtain the multicast
tree.  The mesh needs "extensive messaging" to stay good, which is why
those systems scale poorly under churn — but their tree quality is a
useful reference point for GroupCast's spanning trees.

The mesh here connects every member to its ``k`` nearest members (by
underlay latency) plus a few random links for connectivity, and trees are
shortest-path trees (Dijkstra over mesh latencies) rooted at the source.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import GroupError
from ..groupcast.spanning_tree import SpanningTree
from ..network.underlay import UnderlayNetwork
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    Tracer,
    get_default_tracer,
)
from ..overlay.messages import MessageKind
from ..sim.random import RandomSource


@dataclass
class NaradaMesh:
    """A latency-weighted mesh over the members of one group."""

    members: tuple[int, ...]
    adjacency: dict[int, dict[int, float]] = field(default_factory=dict)

    @property
    def edge_count(self) -> int:
        """Number of undirected mesh links."""
        return sum(len(n) for n in self.adjacency.values()) // 2

    def add_link(self, a: int, b: int, latency_ms: float) -> None:
        """Insert an undirected weighted link."""
        if a == b:
            raise GroupError("mesh self-links are not allowed")
        self.adjacency.setdefault(a, {})[b] = latency_ms
        self.adjacency.setdefault(b, {})[a] = latency_ms

    def shortest_path_tree(self, source: int) -> SpanningTree:
        """Dijkstra over the mesh, returned as a spanning tree."""
        if source not in self.adjacency:
            raise GroupError(f"{source} is not in the mesh")
        dist = {source: 0.0}
        parent: dict[int, int] = {}
        heap = [(0.0, source)]
        visited: set[int] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor, weight in self.adjacency[node].items():
                candidate = d + weight
                if candidate < dist.get(neighbor, float("inf")):
                    dist[neighbor] = candidate
                    parent[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        tree = SpanningTree(root=source)
        # Graft in distance order so parents always precede children.
        for node in sorted(parent, key=dist.__getitem__):
            tree.graft_chain([node, parent[node]])
            tree.mark_member(node)
        return tree


def build_narada_mesh(
    underlay: UnderlayNetwork,
    members: Sequence[int],
    rng: RandomSource,
    nearest_links: int = 3,
    random_links: int = 2,
    tracer: Tracer | None = None,
) -> NaradaMesh:
    """Connect each member to its nearest members plus random shortcuts.

    With span tracing enabled (``tracer`` or the process default), one
    ``narada-mesh`` episode records a probe send/deliver pair per mesh
    link — the "extensive messaging" cost the mesh pays — so
    cross-protocol reports attribute Narada's overhead like-for-like
    with GroupCast's advertisement floods.
    """
    members = list(dict.fromkeys(members))
    if len(members) < 2:
        raise GroupError("a mesh needs at least two members")
    mesh = NaradaMesh(members=tuple(members))
    for member in members:
        mesh.adjacency.setdefault(member, {})
    index = {m: i for i, m in enumerate(members)}
    # All pairwise latencies in one routing-core gather; each member's
    # row (minus itself) matches the former per-member query exactly.
    matrix = underlay.peer_distance_matrix(members)
    for row, member in enumerate(members):
        others = [m for m in members if m != member]
        distances = np.delete(matrix[row], row)
        order = np.argsort(distances, kind="stable")
        for i in order[:nearest_links]:
            mesh.add_link(member, others[int(i)], float(distances[int(i)]))
        remaining = order[nearest_links:]
        if remaining.size > 0 and random_links > 0:
            picks = rng.choice(remaining,
                               size=min(random_links, remaining.size),
                               replace=False)
            for i in picks:
                mesh.add_link(member, others[int(i)],
                              float(distances[int(i)]))
    _ensure_connected(mesh, underlay, index)
    tracer = tracer if tracer is not None else get_default_tracer()
    if tracer is not None and tracer.spans:
        root = tracer.root_span(at_ms=0.0, kind="narada-mesh")
        for a in sorted(mesh.adjacency):
            for b, latency_ms in sorted(mesh.adjacency[a].items()):
                if a >= b:  # one probe per undirected link
                    continue
                span = tracer.child_span(root)
                tracer.record(0.0, KIND_SEND, a=a, b=b,
                              detail=MessageKind.PROBE.value, span=span)
                tracer.record(latency_ms, KIND_DELIVER, a=a, b=b,
                              detail=MessageKind.PROBE.value, span=span)
    return mesh


def build_narada_tree(
    underlay: UnderlayNetwork,
    source: int,
    members: Sequence[int],
    rng: RandomSource,
    nearest_links: int = 3,
    random_links: int = 2,
    tracer: Tracer | None = None,
) -> SpanningTree:
    """Mesh + shortest-path tree in one call (the full two-step scheme)."""
    all_members = list(dict.fromkeys([source, *members]))
    mesh = build_narada_mesh(
        underlay, all_members, rng, nearest_links, random_links,
        tracer=tracer)
    return mesh.shortest_path_tree(source)


def _ensure_connected(mesh: NaradaMesh, underlay: UnderlayNetwork,
                      index: dict[int, int]) -> None:
    """Patch disconnected mesh components with direct links."""
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in mesh.members:
        if start in seen:
            continue
        stack, component = [start], []
        seen.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in mesh.adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(component)
    main = components[0]
    for other in components[1:]:
        a, b = main[0], other[0]
        mesh.add_link(a, b, underlay.peer_distance_ms(a, b))
        main = main + other

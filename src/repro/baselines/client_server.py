"""Client/server and Skype-style unicast baselines.

Section 2 frames the traditional client/server architecture as "a special
spanning tree of height 1 with the server forming the root", with
obviously poor scalability: the server relays every payload to every
member, so its fan-out (and required capacity) grows linearly with the
group.  Skype's early conference model is even more restrictive — each
speaker unicasts to every listener directly, which is why the first
release capped conferences at 6 participants.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import GroupError
from ..groupcast.spanning_tree import SpanningTree
from ..network.underlay import UnderlayNetwork
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    Tracer,
    get_default_tracer,
)
from ..overlay.messages import MessageKind


def build_client_server_tree(server: int,
                             members: Sequence[int]) -> SpanningTree:
    """The height-1 star: every member hangs directly off the server."""
    tree = SpanningTree(root=server)
    for member in members:
        if member == server:
            continue
        tree.graft_chain([member, server])
        tree.mark_member(member)
    if len(tree) < 2:
        raise GroupError("client/server tree needs at least one client")
    return tree


def skype_unicast_cost(
    underlay: UnderlayNetwork,
    source: int,
    members: Sequence[int],
    tracer: Tracer | None = None,
) -> tuple[int, float]:
    """IP-message count and mean delay of full-unicast (Skype) delivery.

    The source sends an individual copy to every other member; returns
    ``(total_ip_messages, average_delay_ms)``.  Delay is optimal (direct
    unicast) but the source's uplink carries ``len(members) - 1`` copies —
    the scalability wall GroupCast removes.

    With span tracing enabled (``tracer`` or the process default), one
    ``unicast`` episode records the fan of payload copies so reports
    attribute the source's uplink cost like-for-like with tree-based
    delivery.
    """
    receivers = [m for m in members if m != source]
    if not receivers:
        raise GroupError("unicast delivery needs at least one receiver")
    ip_messages = int(underlay.peer_hop_counts(source, receivers).sum())
    delays = underlay.peer_distances_ms(source, receivers)
    tracer = tracer if tracer is not None else get_default_tracer()
    if tracer is not None and tracer.spans:
        root = tracer.root_span(at_ms=0.0, kind="unicast")
        for receiver, delay_ms in zip(receivers, delays):
            span = tracer.child_span(root)
            tracer.record(0.0, KIND_SEND, a=source, b=receiver,
                          detail=MessageKind.PAYLOAD.value, span=span)
            tracer.record(float(delay_ms), KIND_DELIVER, a=source,
                          b=receiver,
                          detail=MessageKind.PAYLOAD.value, span=span)
    return ip_messages, float(delays.sum()) / len(receivers)

"""NICE-style hierarchical-cluster end-system multicast.

NICE (Banerjee, Bhattacharjee, Kommareddy, SIGCOMM'02) is the first of
the three multicast-tree approaches Section 2.1 surveys: participants
"explicitly choose their parents" through a proximity-clustered
hierarchy.  Members are partitioned into latency-based clusters of size
``[k, 3k-1]``; each cluster elects its graph centre as leader; leaders
recursively form the next layer until one root remains.  The data path
is the hierarchy itself: every member receives from the leader of its
lowest-layer cluster.

The paper cites NICE's protocol complexity as the reason such systems
see few implementations; here the *structure* is reproduced so its tree
quality can sit alongside GroupCast, SCRIBE, Narada and the star in the
comparison benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, GroupError
from ..groupcast.spanning_tree import SpanningTree
from ..network.underlay import UnderlayNetwork
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    Tracer,
    get_default_tracer,
)
from ..overlay.messages import MessageKind
from ..sim.random import RandomSource


@dataclass(frozen=True)
class NiceConfig:
    """Cluster-size parameter of the NICE hierarchy."""

    k: int = 3

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ConfigurationError("k must be >= 2")

    @property
    def max_cluster(self) -> int:
        """NICE's upper cluster bound ``3k - 1``."""
        return 3 * self.k - 1


def build_nice_tree(
    underlay: UnderlayNetwork,
    members: list[int],
    rng: RandomSource,
    config: NiceConfig | None = None,
    tracer: Tracer | None = None,
) -> SpanningTree:
    """Build the NICE hierarchy over ``members`` as a spanning tree.

    With span tracing enabled (``tracer`` or the process default), one
    ``nice-cluster`` episode records a subscription send/deliver pair
    per member→leader edge of the finished hierarchy — the explicit
    parent choice NICE members make — so cross-protocol reports
    attribute its cost like-for-like with GroupCast subscriptions.
    """
    config = config or NiceConfig()
    members = list(dict.fromkeys(members))
    if len(members) < 2:
        raise GroupError("NICE needs at least two members")

    parent: dict[int, int] = {}
    layer = list(members)
    guard = len(members) + 4
    while len(layer) > 1:
        clusters = _proximity_clusters(underlay, layer, config, rng)
        leaders: list[int] = []
        for cluster in clusters:
            leader = _graph_center(underlay, cluster)
            for member in cluster:
                if member != leader and member not in parent:
                    parent[member] = leader
            leaders.append(leader)
        if len(leaders) >= len(layer):
            raise GroupError("NICE hierarchy failed to converge")
        layer = leaders
        guard -= 1
        if guard < 0:
            raise GroupError("NICE hierarchy failed to converge")

    root = layer[0]
    tree = SpanningTree(root=root)
    # Graft members in leader-first order so parents precede children.
    remaining = set(parent)
    while remaining:
        progressed = False
        for member in sorted(remaining):
            anchor = parent[member]
            if anchor in tree:
                tree.graft_chain([member, anchor])
                remaining.discard(member)
                progressed = True
        if not progressed:
            raise GroupError("NICE hierarchy contains a parent cycle")
    for member in members:
        tree.mark_member(member)
    tree.validate()
    tracer = tracer if tracer is not None else get_default_tracer()
    if tracer is not None and tracer.spans and parent:
        episode = tracer.root_span(at_ms=0.0, kind="nice-cluster")
        for child in sorted(parent):
            latency_ms = underlay.peer_distance_ms(child, parent[child])
            span = tracer.child_span(episode)
            tracer.record(0.0, KIND_SEND, a=child, b=parent[child],
                          detail=MessageKind.SUBSCRIPTION.value,
                          span=span)
            tracer.record(float(latency_ms), KIND_DELIVER, a=child,
                          b=parent[child],
                          detail=MessageKind.SUBSCRIPTION.value,
                          span=span)
    return tree


def _proximity_clusters(
    underlay: UnderlayNetwork,
    layer: list[int],
    config: NiceConfig,
    rng: RandomSource,
) -> list[list[int]]:
    """Greedy latency clustering into groups of ``[k, 3k-1]`` members."""
    unassigned = list(layer)
    order = rng.permutation(len(unassigned))
    unassigned = [unassigned[int(i)] for i in order]
    clusters: list[list[int]] = []
    while unassigned:
        seed = unassigned.pop()
        if not unassigned:
            cluster = [seed]
        else:
            distances = underlay.peer_distances_ms(seed, unassigned)
            take = min(config.k - 1, len(unassigned))
            picks = np.argsort(distances, kind="stable")[:take]
            chosen = {int(i) for i in picks}
            cluster = [seed] + [unassigned[i] for i in sorted(chosen)]
            unassigned = [m for i, m in enumerate(unassigned)
                          if i not in chosen]
        clusters.append(cluster)
    # Fold a trailing undersized cluster into its nearest sibling.
    if len(clusters) > 1 and len(clusters[-1]) < config.k:
        tail = clusters.pop()
        seeds = [cluster[0] for cluster in clusters]
        target = int(np.argmin(underlay.peer_distances_ms(tail[0], seeds)))
        if len(clusters[target]) + len(tail) <= config.max_cluster:
            clusters[target].extend(tail)
        else:
            clusters.append(tail)  # keep it; splitting would ping-pong
    return clusters


def _graph_center(underlay: UnderlayNetwork, cluster: list[int]) -> int:
    """The member minimising its maximum latency to the cluster."""
    if len(cluster) == 1:
        return cluster[0]
    # One pairwise matrix instead of a per-candidate routing query; the
    # first occurrence of the minimum radius matches the scalar loop.
    radii = underlay.peer_distance_matrix(cluster).max(axis=1)
    return cluster[int(np.argmin(radii))]

"""End-to-end deployment assembly.

A *deployment* bundles everything one experiment instance needs: a
transit-stub underlay, a fitted GNP coordinate frame, a population of
peers with Table-1 capacities attached to stub routers, and an overlay
built by one of three construction schemes:

* ``"groupcast"`` — the paper's utility-aware protocol (Section 3.3),
* ``"plod"`` — the centralized random power-law baseline,
* ``"random"`` — a plain Gnutella-style random overlay.

All experiments and the public middleware facade build on this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import GroupCastConfig
from .coords.base import CoordinateSpace
from .coords.gnp import GNPConfig, GNPSystem
from .errors import ConfigurationError
from .network.topology import generate_transit_stub
from .network.underlay import UnderlayNetwork
from .obs.topology import get_default_topology_recorder
from .overlay.bootstrap import JoinResult, UtilityBootstrap
from .overlay.graph import OverlayNetwork
from .overlay.gnutella import generate_random_overlay
from .overlay.hostcache import HostCacheServer
from .overlay.messages import MessageStats
from .overlay.plod import generate_plod_overlay
from .peers.capacity import CapacityDistribution, PAPER_CAPACITY_DISTRIBUTION
from .peers.peer import PeerInfo
from .sim.random import RandomSource, spawn_rng

#: Overlay construction schemes accepted by :func:`build_deployment`.
OVERLAY_KINDS = ("groupcast", "plod", "random")


@dataclass
class Deployment:
    """A fully assembled simulation instance."""

    kind: str
    config: GroupCastConfig
    underlay: UnderlayNetwork
    gnp: GNPSystem
    space: CoordinateSpace
    overlay: OverlayNetwork
    host_cache: HostCacheServer
    stats: MessageStats
    protocol_rng: RandomSource
    join_results: list[JoinResult] = field(default_factory=list)

    @property
    def peer_count(self) -> int:
        """Number of peers in the overlay."""
        return self.overlay.peer_count

    def peer_ids(self) -> list[int]:
        """All overlay peer ids."""
        return self.overlay.peer_ids()

    def peer_info(self, peer_id: int) -> PeerInfo:
        """Metadata of a peer."""
        return self.overlay.peer(peer_id)

    def peer_distance_ms(self, a: int, b: int) -> float:
        """True underlay latency between two peers (message transit)."""
        return self.underlay.peer_distance_ms(a, b)

    def peer_pair_distances(self, peers_a, peers_b) -> "np.ndarray":
        """Elementwise bulk form of :meth:`peer_distance_ms`.

        One routing-core matrix gather; entry ``i`` equals
        ``peer_distance_ms(peers_a[i], peers_b[i])`` bit-for-bit.
        """
        return self.underlay.peer_pair_distances(peers_a, peers_b)

    def coordinate_distance_ms(self, a: int, b: int) -> float:
        """Latency estimate from network coordinates (protocol decisions)."""
        return self.space.distance(a, b)

    def serve(
        self,
        seed: int | None = None,
        pace_latencies: bool = True,
        policy=None,
        registry=None,
        host: str = "127.0.0.1",
    ) -> "RuntimeCluster":
        """Host this deployment's peers live, one asyncio task each.

        Returns an (unstarted) :class:`~repro.runtime.cluster.
        RuntimeCluster` over real UDP loopback sockets: every overlay
        peer becomes a :class:`~repro.runtime.node.PeerRuntime` holding
        only its :class:`~repro.runtime.node.LocalView`, driven by the
        *same* protocol code the simulator runs.  Use it as an async
        context manager (``async with deployment.serve() as cluster:``)
        or call ``await cluster.start()`` yourself.

        With ``pace_latencies`` the live transport holds each delivery
        until the underlay transit time (:meth:`peer_distance_ms`) has
        elapsed, so message interleavings approximate the simulated
        schedule instead of raw loopback timing.
        """
        from .runtime.cluster import RuntimeCluster

        return RuntimeCluster(
            overlay=self.overlay,
            seed=self.config.seed if seed is None else seed,
            announcement=self.config.announcement,
            utility=self.config.utility,
            latency_fn=self.peer_distance_ms if pace_latencies else None,
            policy=policy,
            registry=registry,
            host=host,
        )


#: Coordinate backends accepted by :func:`build_deployment`.
COORDINATE_BACKENDS = ("gnp", "vivaldi")


def build_deployment(
    peer_count: int,
    kind: str = "groupcast",
    config: GroupCastConfig | None = None,
    seed: int | None = None,
    capacities: CapacityDistribution = PAPER_CAPACITY_DISTRIBUTION,
    gnp_config: GNPConfig | None = None,
    host_cache_size: int = 1024,
    coordinates: str = "gnp",
) -> Deployment:
    """Build a complete deployment of ``peer_count`` peers.

    ``seed`` overrides ``config.seed``; every subsystem draws from an
    independent named random stream, so e.g. enlarging the overlay does
    not perturb the underlay.  ``coordinates`` selects the network
    coordinate backend: ``"gnp"`` (the paper's choice) or ``"vivaldi"``
    (decentralized alternative, useful for ablation).
    """
    if peer_count < 2:
        raise ConfigurationError("a deployment needs at least two peers")
    if kind not in OVERLAY_KINDS:
        raise ConfigurationError(
            f"unknown overlay kind {kind!r}; expected one of {OVERLAY_KINDS}")
    if coordinates not in COORDINATE_BACKENDS:
        raise ConfigurationError(
            f"unknown coordinate backend {coordinates!r}; "
            f"expected one of {COORDINATE_BACKENDS}")
    config = config or GroupCastConfig()
    seed = config.seed if seed is None else seed

    underlay = generate_transit_stub(
        config.underlay, spawn_rng(seed, "topology"))

    gnp = GNPSystem(gnp_config)
    gnp.fit_landmarks(underlay, spawn_rng(seed, "landmarks"))

    attach_rng = spawn_rng(seed, "attachment")
    peer_ids = list(range(peer_count))
    for peer_id in peer_ids:
        underlay.attach_peer(peer_id, attach_rng)
    if coordinates == "vivaldi":
        from .coords.vivaldi import VivaldiSystem

        vivaldi = VivaldiSystem()
        space = vivaldi.fit(
            underlay, peer_ids, spawn_rng(seed, "embedding"))
    else:
        space = gnp.make_space()
        gnp.embed_peers(peer_ids, space, spawn_rng(seed, "embedding"))

    capacity_values = capacities.sample(
        spawn_rng(seed, "capacities"), peer_count)
    infos = [
        PeerInfo(peer_id=pid, capacity=float(capacity_values[i]),
                 coordinate=space.get(pid))
        for i, pid in enumerate(peer_ids)
    ]

    protocol_rng = spawn_rng(seed, "protocol")
    stats = MessageStats()
    host_cache = HostCacheServer(
        max_entries=host_cache_size,
        dimensions=space.dimensions,
        rng=spawn_rng(seed, "hostcache"),
    )

    join_results: list[JoinResult] = []
    if kind == "groupcast":
        overlay = OverlayNetwork()
        bootstrap = UtilityBootstrap(
            overlay=overlay,
            host_cache=host_cache,
            rng=protocol_rng,
            overlay_config=config.overlay,
            utility_config=config.utility,
            stats=stats,
        )
        for info in infos:
            join_results.append(bootstrap.join(info))
    elif kind == "plod":
        overlay = generate_plod_overlay(infos, protocol_rng)
        for info in infos:
            host_cache.register(info)
    else:  # "random"
        overlay = generate_random_overlay(infos, protocol_rng)
        for info in infos:
            host_cache.register(info)

    recorder = get_default_topology_recorder()
    if recorder is not None and recorder.enabled:
        # Baseline snapshot of the freshly-built overlay; a GroupSession
        # over the same overlay later joins this epoch rather than
        # starting a new one.
        recorder.watch_overlay(overlay, underlay=underlay,
                               baseline_at_ms=0.0)

    return Deployment(
        kind=kind,
        config=config,
        underlay=underlay,
        gnp=gnp,
        space=space,
        overlay=overlay,
        host_cache=host_cache,
        stats=stats,
        protocol_rng=protocol_rng,
        join_results=join_results,
    )

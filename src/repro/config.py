"""Configuration objects for every subsystem of the GroupCast reproduction.

All configuration is carried by small frozen dataclasses so experiments are
reproducible from a single value and configs can be used as dict keys or
cached safely.  Each dataclass validates its fields in ``__post_init__`` and
raises :class:`~repro.errors.ConfigurationError` on out-of-range values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class TransitStubConfig:
    """Parameters of the GT-ITM style transit-stub underlay generator.

    The generated topology has ``transit_domains`` fully meshed transit
    domains, each containing ``transit_routers_per_domain`` routers.  Every
    transit router hosts ``stub_domains_per_transit`` stub domains of
    ``routers_per_stub`` routers each.  Latencies (milliseconds) are drawn
    uniformly from the per-level ranges below, mirroring the common GT-ITM
    parameterisation where transit-transit links are long haul and
    intra-stub links are short.
    """

    transit_domains: int = 4
    transit_routers_per_domain: int = 4
    stub_domains_per_transit: int = 3
    routers_per_stub: int = 4
    extra_transit_edge_prob: float = 0.4
    extra_stub_edge_prob: float = 0.3
    transit_transit_latency: tuple[float, float] = (20.0, 80.0)
    intra_transit_latency: tuple[float, float] = (5.0, 20.0)
    transit_stub_latency: tuple[float, float] = (2.0, 10.0)
    intra_stub_latency: tuple[float, float] = (1.0, 5.0)
    peer_access_latency: tuple[float, float] = (0.5, 3.0)

    def __post_init__(self) -> None:
        _require(self.transit_domains >= 1, "need at least one transit domain")
        _require(self.transit_routers_per_domain >= 1,
                 "need at least one transit router per domain")
        _require(self.stub_domains_per_transit >= 1,
                 "need at least one stub domain per transit router")
        _require(self.routers_per_stub >= 1,
                 "need at least one router per stub domain")
        _require(0.0 <= self.extra_transit_edge_prob <= 1.0,
                 "extra_transit_edge_prob must be a probability")
        _require(0.0 <= self.extra_stub_edge_prob <= 1.0,
                 "extra_stub_edge_prob must be a probability")
        for name in ("transit_transit_latency", "intra_transit_latency",
                     "transit_stub_latency", "intra_stub_latency",
                     "peer_access_latency"):
            low, high = getattr(self, name)
            _require(0.0 < low <= high, f"{name} must be 0 < low <= high")

    @property
    def router_count(self) -> int:
        """Total number of routers the generator will create."""
        transit = self.transit_domains * self.transit_routers_per_domain
        stubs = transit * self.stub_domains_per_transit * self.routers_per_stub
        return transit + stubs


@dataclass(frozen=True)
class UtilityConfig:
    """Tunables of the utility function (Section 3.1 of the paper).

    ``alpha``, ``beta`` and ``gamma`` are normally derived from a peer's
    resource level (``alpha = 1 - r``, ``beta = r``, ``gamma = r**(-ln r)``);
    the fields here only bound the derivation to keep the preference
    formulae well defined.
    """

    min_resource_level: float = 1e-3
    max_resource_level: float = 1.0 - 1e-3
    min_distance_ms: float = 1e-3

    def __post_init__(self) -> None:
        _require(0.0 < self.min_resource_level < self.max_resource_level < 1.0,
                 "resource level bounds must satisfy 0 < min < max < 1")
        _require(self.min_distance_ms > 0.0, "min_distance_ms must be positive")

    def clamp_resource_level(self, resource_level: float) -> float:
        """Clamp ``resource_level`` into the open interval (0, 1)."""
        return min(max(resource_level, self.min_resource_level),
                   self.max_resource_level)

    def gamma(self, resource_level: float) -> float:
        """Capacity-vs-distance weight ``gamma = r**(-ln r)`` of Eq. 5."""
        r = self.clamp_resource_level(resource_level)
        return r ** (-math.log(r))


@dataclass(frozen=True)
class OverlayConfig:
    """Parameters of the utility-aware overlay protocol (Section 3.3)."""

    bootstrap_list_size: int = 8
    min_degree: int = 3
    max_degree: int = 30
    degree_capacity_slope: float = 1.5
    back_link_fallback_prob: float = 0.5
    resource_level_sample_size: int = 30
    heartbeat_interval_ms: float = 5_000.0
    missed_heartbeats_for_failure: int = 2
    epoch_ms: float = 30_000.0
    min_epoch_ms: float = 10_000.0
    max_epoch_ms: float = 120_000.0

    def __post_init__(self) -> None:
        _require(2 <= self.bootstrap_list_size <= 64,
                 "bootstrap_list_size must be in [2, 64]")
        _require(1 <= self.min_degree <= self.max_degree,
                 "need 1 <= min_degree <= max_degree")
        _require(self.degree_capacity_slope >= 0.0,
                 "degree_capacity_slope must be non-negative")
        _require(0.0 <= self.back_link_fallback_prob <= 1.0,
                 "back_link_fallback_prob must be a probability")
        _require(self.resource_level_sample_size >= 1,
                 "resource_level_sample_size must be positive")
        _require(self.heartbeat_interval_ms > 0.0,
                 "heartbeat_interval_ms must be positive")
        _require(self.missed_heartbeats_for_failure >= 1,
                 "missed_heartbeats_for_failure must be >= 1")
        _require(0.0 < self.min_epoch_ms <= self.epoch_ms <= self.max_epoch_ms,
                 "epoch bounds must satisfy 0 < min <= epoch <= max")

    def target_degree(self, capacity: float) -> int:
        """Desired number of overlay neighbors for a peer of ``capacity``.

        Grows with the logarithm of capacity so that powerful peers form the
        high-degree core of the overlay, clamped to the Gnutella-like range
        ``[min_degree, max_degree]``.
        """
        _require(capacity > 0.0, "capacity must be positive")
        raw = self.min_degree + self.degree_capacity_slope * math.log10(capacity)
        return int(min(max(round(raw), self.min_degree), self.max_degree))


#: Neighbor-selection strategies for SSA forwarding.  ``utility`` is the
#: paper's contribution (Section 3.2); ``random`` is the basic framework's
#: strategy (Section 2.2); ``distance`` and ``capacity`` isolate the two
#: components of the utility function for ablation studies.
SSA_STRATEGIES = ("utility", "random", "distance", "capacity")


@dataclass(frozen=True)
class AnnouncementConfig:
    """Parameters of the SSA/NSSA advertisement schemes (Section 2.2)."""

    ssa_fanout_fraction: float = 0.35
    ssa_min_fanout: int = 2
    ssa_strategy: str = "utility"
    advertisement_ttl: int = 6
    subscription_search_ttl: int = 2

    def __post_init__(self) -> None:
        _require(0.0 < self.ssa_fanout_fraction <= 1.0,
                 "ssa_fanout_fraction must be in (0, 1]")
        _require(self.ssa_min_fanout >= 1, "ssa_min_fanout must be >= 1")
        _require(self.ssa_strategy in SSA_STRATEGIES,
                 f"ssa_strategy must be one of {SSA_STRATEGIES}")
        _require(self.advertisement_ttl >= 1, "advertisement_ttl must be >= 1")
        _require(self.subscription_search_ttl >= 0,
                 "subscription_search_ttl must be >= 0")


@dataclass(frozen=True)
class RendezvousConfig:
    """Random-walk rendezvous selection (Step 1 of Section 2.2)."""

    walk_length: int = 16
    min_capacity: float = 100.0

    def __post_init__(self) -> None:
        _require(self.walk_length >= 1, "walk_length must be >= 1")
        _require(self.min_capacity > 0.0, "min_capacity must be positive")


@dataclass(frozen=True)
class GroupCastConfig:
    """Top-level configuration bundling every subsystem."""

    underlay: TransitStubConfig = field(default_factory=TransitStubConfig)
    utility: UtilityConfig = field(default_factory=UtilityConfig)
    overlay: OverlayConfig = field(default_factory=OverlayConfig)
    announcement: AnnouncementConfig = field(default_factory=AnnouncementConfig)
    rendezvous: RendezvousConfig = field(default_factory=RendezvousConfig)
    join_interarrival_ms: float = 1_000.0
    seed: int = 7

    def __post_init__(self) -> None:
        _require(self.join_interarrival_ms > 0.0,
                 "join_interarrival_ms must be positive")
        _require(self.seed >= 0, "seed must be non-negative")

"""Latency- and loss-aware message transport over the event simulator.

The procedural protocol implementations (advertisement, subscription)
compute outcomes directly for speed; this module provides the *faithful*
alternative: peers register handlers with a :class:`MessageNetwork`,
``send`` schedules a delivery event after the true underlay latency, and
deliveries can be lost with a configurable probability or dropped when
the recipient has departed.  The event-driven GroupCast session layer
(:mod:`repro.groupcast.session`) runs entirely on this transport, and
the test suite cross-validates it against the procedural fast path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..errors import SimulationError
from ..obs.registry import Counter, Registry
from ..obs.tracer import (
    KIND_DEAD_LETTER,
    KIND_DELIVER,
    KIND_LOST,
    KIND_SEND,
    SpanContext,
    Tracer,
)
from ..overlay.messages import MessageKind, MessageStats
from .engine import Simulator
from .random import RandomSource

#: Maps a peer pair to the one-way message latency in milliseconds.
LatencyFn = Callable[[int, int], float]


@dataclass(frozen=True)
class Envelope:
    """One delivered message."""

    sender: int
    recipient: int
    payload: object
    sent_at_ms: float
    delivered_at_ms: float
    kind: MessageKind | None = None
    #: Causal span of this message (None unless span tracing is on).
    span: SpanContext | None = None

    @property
    def transit_ms(self) -> float:
        """Time the message spent in flight."""
        return self.delivered_at_ms - self.sent_at_ms


class MessageNetwork:
    """Unicast message fabric between registered peers."""

    def __init__(
        self,
        simulator: Simulator,
        latency_fn: LatencyFn,
        rng: RandomSource,
        loss_rate: float = 0.0,
        stats: Optional[MessageStats] = None,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
        bulk_latency_fn: Optional[Callable] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError("loss_rate must be in [0, 1)")
        self.simulator = simulator
        self.latency_fn = latency_fn
        #: Vectorized counterpart of ``latency_fn`` — maps two equal-
        #: length peer-id vectors to elementwise latencies, bit-for-bit
        #: with the scalar call.  Auto-derived when ``latency_fn`` is a
        #: bound ``peer_distance_ms`` whose owner exposes the bulk
        #: ``peer_pair_distances`` gather (Deployment / UnderlayNetwork).
        self.bulk_latency_fn = bulk_latency_fn
        if self.bulk_latency_fn is None:
            owner = getattr(latency_fn, "__self__", None)
            if getattr(latency_fn, "__name__", "") == "peer_distance_ms":
                self.bulk_latency_fn = getattr(
                    owner, "peer_pair_distances", None)
        self.rng = rng
        self.loss_rate = loss_rate
        self.stats = stats or MessageStats()
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        #: Optional :class:`~repro.faults.injector.FaultInjector`; when
        #: set, every post-loss send is routed through its ``on_send``.
        self.fault_injector = None
        #: Ambient causal parent: set while a handler runs (to the span
        #: of the message being delivered) or inside a
        #: :meth:`span_scope` block; ``send`` parents new message spans
        #: on it, chaining causality across peers without threading span
        #: arguments through every protocol handler.
        self.current_span: Optional[SpanContext] = None
        self._handlers: dict[int, Callable[[Envelope], None]] = {}
        self._pending = 0
        self._c_sent = self.registry.counter("net.sent")
        self._c_delivered = self.registry.counter("net.delivered")
        self._c_lost = self.registry.counter("net.lost")
        self._c_dead = self.registry.counter("net.dead_lettered")
        self._kind_counters: dict[MessageKind, Counter] = {}
        self._loss_kind_counters: dict[MessageKind, Counter] = {}
        self._dead_kind_counters: dict[MessageKind, Counter] = {}

    # ------------------------------------------------------------------
    # Transport counters (registry-backed; attributes kept as properties
    # for backward compatibility with the pre-telemetry API).
    # ------------------------------------------------------------------
    @property
    def sent(self) -> int:
        """Messages handed to the transport (including lost ones)."""
        return self._c_sent.value

    @property
    def delivered(self) -> int:
        """Messages that reached a registered handler."""
        return self._c_delivered.value

    @property
    def lost(self) -> int:
        """Messages dropped by the loss process."""
        return self._c_lost.value

    @property
    def dead_lettered(self) -> int:
        """Messages whose recipient had no handler on arrival."""
        return self._c_dead.value

    @property
    def pending_deliveries(self) -> int:
        """Scheduled deliveries that have not fired yet (in flight)."""
        return self._pending

    def edge_latencies(self, csr, ids) -> "np.ndarray":
        """Per-directed-edge transit latencies for the array kernels.

        ``csr`` is a :class:`~repro.core.arrays.CSRGraph` whose row ``i``
        is the peer ``ids[i]``; the result aligns with ``csr.indices``
        and prices every overlay hop with this network's ``latency_fn``,
        so a vectorized flood (:func:`repro.core.protocol.
        flood_advertisement`) sees exactly the transit times the
        event-driven transport would apply.  With a bulk latency
        callable available the whole edge set prices in one routing-core
        matrix gather (bit-for-bit with the scalar calls); otherwise
        each directed edge falls back to one ``latency_fn`` call.
        """
        import numpy as np

        ids = np.asarray(ids, dtype=np.int64)
        senders = ids[csr.edge_sources()]
        receivers = ids[csr.indices]
        if self.bulk_latency_fn is not None:
            return np.asarray(self.bulk_latency_fn(senders, receivers),
                              dtype=np.float64)
        latency_fn = self.latency_fn
        return np.fromiter(
            (latency_fn(int(a), int(b))
             for a, b in zip(senders.tolist(), receivers.tolist())),
            dtype=np.float64, count=senders.shape[0])

    def conservation_gap(self) -> int:
        """Transport accounting identity; zero on a healthy network.

        Every message handed to ``send`` (plus every injected duplicate)
        must end up in exactly one of: delivered, lost to the ambient
        loss process, dead-lettered, dropped by a fault window, severed
        by a partition, or still in flight.  A non-zero gap means a drop
        was double-counted or never counted.
        """
        injected_duplicates = 0
        injected_drops = 0
        injector = self.fault_injector
        if injector is not None:
            injected_duplicates = injector.registry.counter(
                "faults.duplicated").value
            injected_drops = (
                injector.registry.counter("faults.dropped").value
                + injector.registry.counter(
                    "faults.partition_dropped").value)
        return (self.sent + injected_duplicates
                - self.delivered - self.lost - self.dead_lettered
                - injected_drops - self._pending)

    def _kind_counter(self, kind: MessageKind) -> Counter:
        counter = self._kind_counters.get(kind)
        if counter is None:
            counter = self.registry.counter(f"messages.{kind.value}")
            self._kind_counters[kind] = counter
        return counter

    def _loss_kind_counter(self, kind: MessageKind) -> Counter:
        counter = self._loss_kind_counters.get(kind)
        if counter is None:
            counter = self.registry.counter(f"net.lost.{kind.value}")
            self._loss_kind_counters[kind] = counter
        return counter

    def _dead_kind_counter(self, kind: MessageKind) -> Counter:
        counter = self._dead_kind_counters.get(kind)
        if counter is None:
            counter = self.registry.counter(
                f"net.dead_lettered.{kind.value}")
            self._dead_kind_counters[kind] = counter
        return counter

    # ------------------------------------------------------------------
    @contextmanager
    def span_scope(self, span: Optional[SpanContext]) -> Iterator[None]:
        """Run a block with ``span`` as the ambient causal parent.

        Session entry points open an episode root span and wrap their
        initial sends in this scope; the messages (and everything they
        transitively cause) then attach under that root.  A no-op when
        ``span`` is None, so call sites need no tracing guards.
        """
        previous = self.current_span
        self.current_span = span
        try:
            yield
        finally:
            self.current_span = previous

    def register(self, peer_id: int,
                 handler: Callable[[Envelope], None]) -> None:
        """Attach a peer's message handler (replaces any previous one)."""
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: int) -> None:
        """Detach a departed peer; in-flight messages to it dead-letter."""
        self._handlers.pop(peer_id, None)

    def is_registered(self, peer_id: int) -> bool:
        """True if the peer currently receives messages."""
        return peer_id in self._handlers

    # ------------------------------------------------------------------
    def send(self, sender: int, recipient: int, payload: object,
             kind: MessageKind | None = None) -> None:
        """Schedule delivery of ``payload`` after the underlay latency.

        The accounting is single-homed by construction: a message is
        counted in ``MessageStats`` and ``messages.*`` exactly once when
        it is handed to the transport, and its *fate* lands in exactly
        one of ``net.lost`` (ambient loss process, also broken out per
        kind under ``net.lost.<kind>``), ``net.dead_lettered`` (departed
        recipient, per-kind under ``net.dead_lettered.<kind>``),
        ``faults.*`` (injected drop), or ``net.delivered``.
        """
        if sender == recipient:
            raise SimulationError("peers do not message themselves")
        self._c_sent.inc()
        detail = ""
        if kind is not None:
            self.stats.record(kind)
            self._kind_counter(kind).inc()
            detail = kind.value
        span = None
        if self.tracer is not None:
            span = self.tracer.child_span(self.current_span)
            self.tracer.record(self.simulator.now, KIND_SEND,
                               a=sender, b=recipient, detail=detail,
                               span=span)
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self._c_lost.inc()
            if kind is not None:
                self._loss_kind_counter(kind).inc()
            if self.tracer is not None:
                self.tracer.record(self.simulator.now, KIND_LOST,
                                   a=sender, b=recipient, detail=detail,
                                   span=span)
            return
        latency = self.latency_fn(sender, recipient)
        if latency < 0.0:
            raise SimulationError("latency function returned < 0")
        injector = self.fault_injector
        if injector is not None:
            faulted = injector.on_send(
                self, sender, recipient, payload, kind, latency,
                span=span)
            if faulted is None:
                return  # dropped by the fault plan (counted there)
            latency = faulted
        self.schedule_delivery(sender, recipient, payload, kind, latency,
                               span=span)

    def schedule_delivery(self, sender: int, recipient: int,
                          payload: object, kind: MessageKind | None,
                          latency_ms: float,
                          span: SpanContext | None = None) -> None:
        """Schedule one delivery after ``latency_ms`` (injector entry
        point for duplicates; does not touch the send-side counters)."""
        sent_at = self.simulator.now
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at_ms=sent_at,
            delivered_at_ms=sent_at + latency_ms,
            kind=kind,
            span=span,
        )
        self._pending += 1
        self.simulator.schedule(latency_ms, lambda: self._deliver(envelope))

    def broadcast(self, sender: int, recipients: list[int],
                  payload: object, kind: MessageKind | None = None) -> None:
        """Send the same payload to several recipients (unicast copies)."""
        for recipient in recipients:
            self.send(sender, recipient, payload, kind)

    def _deliver(self, envelope: Envelope) -> None:
        self._pending -= 1
        handler = self._handlers.get(envelope.recipient)
        detail = envelope.kind.value if envelope.kind is not None else ""
        if handler is None:
            self._c_dead.inc()
            if envelope.kind is not None:
                self._dead_kind_counter(envelope.kind).inc()
            if self.tracer is not None:
                self.tracer.record(envelope.delivered_at_ms, KIND_DEAD_LETTER,
                                   a=envelope.sender, b=envelope.recipient,
                                   detail=detail, span=envelope.span)
            return
        self._c_delivered.inc()
        if self.tracer is not None:
            self.tracer.record(envelope.delivered_at_ms, KIND_DELIVER,
                               a=envelope.sender, b=envelope.recipient,
                               span=envelope.span)
        # The handler runs with the delivered message's span as the
        # ambient parent, so any sends it performs chain causally.
        previous = self.current_span
        self.current_span = envelope.span
        try:
            handler(envelope)
        finally:
            self.current_span = previous

"""Deterministic randomness helpers.

Every stochastic component of the library receives an explicit
:class:`numpy.random.Generator`.  ``spawn_rng`` derives independent child
generators from a parent seed so that subsystems (topology, capacities,
protocol decisions, churn) consume independent streams: adding draws to one
subsystem never perturbs another, which keeps experiments comparable across
code revisions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Convenience alias used across the library for RNG parameters.
RandomSource = np.random.Generator


def spawn_rng(seed: int, *stream: int | str) -> RandomSource:
    """Create a generator for an independent named stream under ``seed``.

    ``stream`` components may be ints or short strings; strings are folded
    into integers so call sites can use readable labels::

        rng = spawn_rng(7, "topology")
        rng2 = spawn_rng(7, "churn", 3)
    """
    keys = [_fold(part) for part in stream]
    return np.random.default_rng([seed, *keys])


def _fold(part: int | str) -> int:
    if isinstance(part, int):
        return part
    return int.from_bytes(part.encode("utf-8"), "little") % (2**63 - 1)


def exponential_interarrivals(
    rng: RandomSource, mean_ms: float, count: int
) -> np.ndarray:
    """Draw ``count`` exponential inter-arrival gaps with mean ``mean_ms``."""
    if mean_ms <= 0.0:
        raise ValueError("mean_ms must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    return rng.exponential(mean_ms, size=count)


def weighted_sample_without_replacement(
    rng: RandomSource,
    items: Sequence,
    weights: Sequence[float],
    k: int,
) -> list:
    """Sample up to ``k`` distinct items with probability ~ ``weights``.

    Uses the Efraimidis-Spirakis exponential-keys method, which matches
    sequential weighted draws without replacement and runs in O(n log n).
    Items with non-positive weight are never selected.
    """
    if k <= 0:
        return []
    w = np.asarray(weights, dtype=float)
    if len(w) != len(items):
        raise ValueError("weights and items must have the same length")
    positive = w > 0.0
    if not positive.any():
        return []
    keys = np.full(len(w), -np.inf)
    draws = rng.random(int(positive.sum()))
    keys[positive] = np.log(draws) / w[positive]
    order = np.argsort(keys)[::-1]
    chosen = [items[i] for i in order[: min(k, int(positive.sum()))]]
    return chosen

"""Discrete-event simulation engine (replaces the paper's Java p-sim)."""

from .engine import Event, Simulator
from .random import RandomSource, spawn_rng

__all__ = ["Event", "Simulator", "RandomSource", "spawn_rng"]

"""A minimal, fast discrete-event simulation engine.

The paper evaluates GroupCast on an extended Java version of the p-sim
discrete event simulator; this module is our Python equivalent.  The engine
is a classic calendar queue built on :mod:`heapq`:

* :class:`Event` couples a firing time with a zero-argument callback.
* :class:`Simulator` owns the virtual clock and the pending-event heap.
  ``schedule`` inserts events, ``run`` drains the heap in timestamp order.

Ties are broken by insertion sequence so runs are fully deterministic.
Protocol layers deliver messages by scheduling a callback after the
underlay latency between the two endpoints.

For scale runs the loop can also be driven one virtual-time *epoch* at a
time (:meth:`Simulator.run_epoch`): all events inside a fixed-width time
bucket dispatch in one call, letting callers interleave vectorized array
work (:mod:`repro.core.protocol`) between buckets without per-event
Python hooks.  Within an epoch the dispatch order is untouched, so trace
digests are identical either way.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError
from ..obs.tracer import KIND_FIRE, KIND_SCHEDULE, Tracer


@dataclass(order=True, slots=True)
class Event:
    """A pending callback, ordered by ``(time, sequence)``.

    ``slots=True`` keeps events dict-free: ``schedule()`` is the hottest
    engine call and allocates one of these per message hop.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing; cheap lazy deletion."""
        self.cancelled = True


class Simulator:
    """Virtual-time event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    __slots__ = ("_now", "_heap", "_sequence", "_events_processed",
                 "tracer", "profiler", "topology")

    def __init__(self, tracer: Optional[Tracer] = None,
                 profiler=None, topology=None) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self.tracer = tracer
        #: Optional :class:`~repro.obs.profiler.Profiler`.  The run loop
        #: calls ``profiler.on_advance(time)`` before firing each event
        #: (never scheduling events of its own — a scheduled sampler
        #: would consume sequence numbers and break ``trace_digest``
        #: bit-transparency) and times dispatch wall-clock.
        self.profiler = profiler
        #: Optional :class:`~repro.obs.topology.TopologyRecorder`.  Same
        #: contract as the profiler: ``topology.on_advance(time)`` runs
        #: before each dispatch and never schedules events, so an
        #: attached recorder leaves ``trace_digest`` bit-identical.
        self.topology = topology

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def next_event_time(self) -> Optional[float]:
        """Firing time of the next live event, or None if drained.

        Cancelled events at the heap top are discarded while peeking —
        they would never fire, so dropping them here changes nothing
        observable.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def schedule(self, delay_ms: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to fire ``delay_ms`` after the current time."""
        if delay_ms < 0.0:
            raise SimulationError(f"cannot schedule in the past: {delay_ms}")
        event = Event(self._now + delay_ms, next(self._sequence), action)
        heapq.heappush(self._heap, event)
        tracer = self.tracer
        if tracer is not None:
            # repr(event.time) is only formatted when a tracer is
            # actually capturing; with telemetry disabled the schedule
            # fast path does no string work at all.
            tracer.record(self._now, KIND_SCHEDULE,
                          seq=event.sequence, detail=repr(event.time))
        return event

    def schedule_at(self, time_ms: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute virtual time ``time_ms``."""
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ms} before current time {self._now}"
            )
        event = Event(time_ms, next(self._sequence), action)
        heapq.heappush(self._heap, event)
        tracer = self.tracer
        if tracer is not None:
            tracer.record(self._now, KIND_SCHEDULE,
                          seq=event.sequence, detail=repr(event.time))
        return event

    def every(self, interval_ms: float,
              callback: Callable[[], None]) -> Event:
        """Invoke ``callback`` every ``interval_ms`` of virtual time.

        The checkpoint chain re-arms itself only while *other* events
        remain queued, so it never keeps an otherwise-drained simulation
        alive: once the heap is empty after a tick, the chain stops.
        Used by the fault-injection harness to evaluate invariant
        suites at a fixed cadence (:class:`repro.faults.invariants.
        InvariantSuite.attach`).
        """
        if interval_ms <= 0.0:
            raise SimulationError("checkpoint interval must be positive")

        def tick() -> None:
            callback()
            if self._heap:
                self.schedule(interval_ms, tick)

        return self.schedule(interval_ms, tick)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain the event heap in timestamp order.

        ``until`` stops the clock at the given virtual time (events scheduled
        later stay queued); ``max_events`` bounds the number of callbacks as
        a runaway guard.
        """
        processed = 0
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                profiler = self.profiler
                if profiler is not None:
                    profiler.on_advance(until)
                topology = self.topology
                if topology is not None:
                    topology.on_advance(until)
                return
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap yielded a past event")
            self._now = event.time
            if self.tracer is not None:
                self.tracer.record(event.time, KIND_FIRE, seq=event.sequence)
            topology = self.topology
            if topology is not None:
                topology.on_advance(event.time)
            profiler = self.profiler
            if profiler is not None:
                profiler.on_advance(event.time)
                with profiler.phase("engine.dispatch"):
                    event.action()
            else:
                event.action()
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None:
            self._now = max(self._now, until)

    def run_epoch(self, epoch_ms: float) -> tuple[float, int] | None:
        """Dispatch every event inside the next virtual-time epoch.

        Epochs are the fixed-width buckets ``[k*epoch_ms, (k+1)*epoch_ms)``;
        the next one is the bucket holding the earliest pending event, so
        empty stretches of virtual time are skipped in one jump.  Events
        inside the epoch still fire one by one in ``(time, sequence)``
        order — batching changes *when control returns to the caller*,
        never the dispatch order, so trace digests are unaffected.

        Returns ``(epoch_start, events_fired)``, or None if the heap is
        drained.  This is the engine half of the scale core's batched
        dispatch: callers interleave vectorized per-epoch array work
        (:mod:`repro.core.protocol`) between epochs instead of hooking
        every event.
        """
        if epoch_ms <= 0.0:
            raise SimulationError("epoch width must be positive")
        first = self.next_event_time()
        if first is None:
            return None
        epoch_start = math.floor(first / epoch_ms) * epoch_ms
        epoch_end = epoch_start + epoch_ms
        fired = 0
        while True:
            when = self.next_event_time()
            if when is None or when >= epoch_end:
                break
            self.step()
            fired += 1
        return epoch_start, fired

    def step(self) -> bool:
        """Fire the single next event; return False if the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap yielded a past event")
            self._now = event.time
            if self.tracer is not None:
                self.tracer.record(event.time, KIND_FIRE, seq=event.sequence)
            topology = self.topology
            if topology is not None:
                topology.on_advance(event.time)
            profiler = self.profiler
            if profiler is not None:
                profiler.on_advance(event.time)
                with profiler.phase("engine.dispatch"):
                    event.action()
            else:
                event.action()
            self._events_processed += 1
            return True
        return False

"""GroupCast: utility-aware middleware for decentralized group communication.

A full reproduction of *"A Utility-Aware Middleware Architecture for
Decentralized Group Communication Applications"* (MIDDLEWARE 2007),
including every substrate the paper depends on: a GT-ITM style
transit-stub underlay, GNP/Vivaldi network coordinates, a discrete-event
simulator, the utility-aware overlay protocol, SSA/NSSA announcement,
utility-aware spanning trees, and the baselines (PLOD power-law overlays,
random overlays, client/server and mesh-based ESM).

Quickstart::

    from repro import GroupCastMiddleware

    mw = GroupCastMiddleware.build(peer_count=300, seed=11)
    group = mw.create_group(members=mw.sample_members(30))
    report = mw.publish(group.group_id, source=sorted(group.members)[0])
    print(report.average_member_delay_ms)
"""

from .config import (
    AnnouncementConfig,
    GroupCastConfig,
    OverlayConfig,
    RendezvousConfig,
    TransitStubConfig,
    UtilityConfig,
)
from .deployment import Deployment, build_deployment
from .errors import (
    BootstrapError,
    ConfigurationError,
    GroupError,
    OverlayError,
    PeerNotFoundError,
    RendezvousError,
    ReproError,
    RoutingError,
    SimulationError,
    SubscriptionError,
    TopologyError,
    TreeError,
)
from .groupcast.middleware import GroupCastMiddleware
from .groupcast.group import CommunicationGroup
from .groupcast.spanning_tree import SpanningTree
from .peers.capacity import PAPER_CAPACITY_DISTRIBUTION, CapacityDistribution
from .peers.peer import PeerInfo

__version__ = "1.0.0"

__all__ = [
    "AnnouncementConfig",
    "GroupCastConfig",
    "OverlayConfig",
    "RendezvousConfig",
    "TransitStubConfig",
    "UtilityConfig",
    "Deployment",
    "build_deployment",
    "GroupCastMiddleware",
    "CommunicationGroup",
    "SpanningTree",
    "PAPER_CAPACITY_DISTRIBUTION",
    "CapacityDistribution",
    "PeerInfo",
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "RoutingError",
    "OverlayError",
    "PeerNotFoundError",
    "BootstrapError",
    "GroupError",
    "RendezvousError",
    "SubscriptionError",
    "TreeError",
    "SimulationError",
    "__version__",
]

"""Rendezvous point selection (Step 1 of Section 2.2).

The rendezvous point seeds the advertisement and then behaves as a normal
node of the spanning tree.  It may be a dedicated server donated by a
provider, or — for ad-hoc groups like online conferences — "the first
participant can initiate a random walk search to locate a node that has
enough access network bandwidth and computational power".  This module
implements that random-walk search.
"""

from __future__ import annotations

from ..config import RendezvousConfig
from ..errors import RendezvousError
from ..overlay.graph import OverlayNetwork
from ..overlay.messages import MessageKind, MessageStats
from ..sim.random import RandomSource


def select_rendezvous(
    overlay: OverlayNetwork,
    initiator: int,
    rng: RandomSource,
    config: RendezvousConfig | None = None,
    stats: MessageStats | None = None,
) -> int:
    """Random-walk for a high-capacity rendezvous point.

    Walks up to ``config.walk_length`` overlay hops from ``initiator``.
    The walk stops at the first peer whose capacity reaches
    ``config.min_capacity``; if none qualifies, the most capable peer
    seen along the walk (including the initiator) is returned.
    """
    config = config or RendezvousConfig()
    stats = stats or MessageStats()
    if initiator not in overlay:
        raise RendezvousError(f"initiator {initiator} is not in the overlay")

    best = initiator
    best_capacity = overlay.peer(initiator).capacity
    if best_capacity >= config.min_capacity:
        return initiator

    current = initiator
    previous: int | None = None
    for _ in range(config.walk_length):
        neighbors = overlay.neighbors(current)
        if previous is not None and len(neighbors) > 1:
            neighbors = [n for n in neighbors if n != previous]
        if not neighbors:
            break
        step = neighbors[int(rng.integers(len(neighbors)))]
        stats.record(MessageKind.RANDOM_WALK)
        previous, current = current, step
        capacity = overlay.peer(current).capacity
        if capacity > best_capacity:
            best, best_capacity = current, capacity
        if capacity >= config.min_capacity:
            return current
    return best

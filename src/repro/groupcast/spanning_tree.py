"""Group-communication spanning trees.

The spanning tree ``T < V_Pt, E_Pt >`` is a connected acyclic sub-graph of
the overlay linking all participants of a communication group (Section 2).
Trees here are rooted at the rendezvous point and grown by grafting
reverse advertisement paths (parent chains), so acyclicity holds by
construction; :meth:`SpanningTree.validate` re-checks it explicitly.

Nodes are either *members* (subscribed participants) or *relays*
(non-member peers that happen to lie on an advertisement path and forward
payloads).  Node stress — "the average number of children that a non-leaf
peer handles" — is computed over the rooted structure.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from ..errors import TreeError

if TYPE_CHECKING:
    from ..core.store import TreeArrays


class SpanningTree:
    """A rooted tree over overlay peers for one communication group."""

    def __init__(self, root: int) -> None:
        self.root = root
        self._parent: dict[int, int | None] = {root: None}
        self._children: dict[int, set[int]] = {root: set()}
        self._members: set[int] = {root}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def node_count(self) -> int:
        """Total nodes (members + relays)."""
        return len(self._parent)

    @property
    def members(self) -> frozenset[int]:
        """Subscribed participants."""
        return frozenset(self._members)

    @property
    def relays(self) -> frozenset[int]:
        """Non-member forwarding nodes."""
        return frozenset(set(self._parent) - self._members)

    def parent(self, peer_id: int) -> int | None:
        """Parent of a node (None for the root)."""
        self._require(peer_id)
        return self._parent[peer_id]

    def children(self, peer_id: int) -> list[int]:
        """Children of a node."""
        self._require(peer_id)
        return list(self._children[peer_id])

    def nodes(self) -> Iterator[int]:
        """Iterate all node ids."""
        return iter(self._parent)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(parent, child)`` pairs."""
        for child, parent in self._parent.items():
            if parent is not None:
                yield (parent, child)

    def tree_degree(self, peer_id: int) -> int:
        """Number of tree links at a node (parent + children)."""
        self._require(peer_id)
        degree = len(self._children[peer_id])
        if self._parent[peer_id] is not None:
            degree += 1
        return degree

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def graft_chain(self, chain: list[int]) -> int:
        """Graft a parent chain ending at the tree.

        ``chain`` runs from the new node toward the tree,
        ``[node, parent, grandparent, ..., anchor]`` where ``anchor`` must
        already be in the tree.  All new nodes join as relays; callers
        promote participants via :meth:`mark_member`.  Returns the number
        of new edges added (the subscription message count of the graft).
        """
        if not chain:
            raise TreeError("empty graft chain")
        if chain[-1] not in self._parent:
            raise TreeError(
                f"graft anchor {chain[-1]} is not in the tree")
        added = 0
        # Walk from the anchor downward so parents exist before children.
        top_down = list(reversed(chain))
        for parent, child in zip(top_down, top_down[1:]):
            if child in self._parent:
                existing = self._parent[child]
                if existing != parent and child != self.root:
                    # The node already hangs elsewhere in the tree; the
                    # existing attachment stands (first graft wins).
                    continue
                continue
            if child == parent:
                raise TreeError(f"self-edge {child} in graft chain")
            self._parent[child] = parent
            self._children[parent].add(child)
            self._children[child] = set()
            added += 1
        if chain[0] not in self._parent:
            raise TreeError(
                f"chain head {chain[0]} did not end up in the tree")
        return added

    def mark_member(self, peer_id: int) -> None:
        """Promote an existing relay node to member."""
        self._require(peer_id)
        self._members.add(peer_id)

    def unmark_member(self, peer_id: int) -> None:
        """Demote a member to relay (node keeps forwarding)."""
        self._require(peer_id)
        if peer_id == self.root:
            raise TreeError("the root cannot be demoted")
        self._members.discard(peer_id)

    def remove_leaf(self, peer_id: int) -> None:
        """Remove a leaf node (used by repair); root cannot be removed."""
        self._require(peer_id)
        if peer_id == self.root:
            raise TreeError("cannot remove the root")
        if self._children[peer_id]:
            raise TreeError(f"node {peer_id} is not a leaf")
        parent = self._parent[peer_id]
        if parent is not None:
            self._children[parent].discard(peer_id)
        del self._parent[peer_id]
        del self._children[peer_id]
        self._members.discard(peer_id)

    def subtree_nodes(self, node: int) -> set[int]:
        """All nodes of the subtree rooted at ``node`` (inclusive)."""
        self._require(node)
        seen = {node}
        queue = deque([node])
        while queue:
            current = queue.popleft()
            for child in self._children[current]:
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return seen

    def remove_failed_node(self, node: int) -> list[int]:
        """Remove a non-root node whose peer crashed.

        Its children become *floating orphans* (no parent) that must be
        re-attached with :meth:`reattach` — or discarded with
        :meth:`drop_subtree` — before the tree validates again.  Returns
        the orphan roots.
        """
        self._require(node)
        if node == self.root:
            raise TreeError("cannot remove the root; elect a new one first")
        orphans = list(self._children[node])
        parent = self._parent[node]
        if parent is not None:
            self._children[parent].discard(node)
        for orphan in orphans:
            self._parent[orphan] = None
        del self._parent[node]
        del self._children[node]
        self._members.discard(node)
        return orphans

    def reattach(self, orphan_root: int, new_parent: int) -> None:
        """Hang a floating orphan subtree under ``new_parent``."""
        self._require(orphan_root)
        self._require(new_parent)
        if self._parent[orphan_root] is not None or orphan_root == self.root:
            raise TreeError(f"{orphan_root} is not a floating orphan")
        if new_parent in self.subtree_nodes(orphan_root):
            raise TreeError(
                f"reattaching under {new_parent} would create a cycle")
        self._parent[orphan_root] = new_parent
        self._children[new_parent].add(orphan_root)

    def drop_subtree(self, orphan_root: int) -> set[int]:
        """Discard a floating orphan subtree entirely; returns its nodes."""
        self._require(orphan_root)
        if self._parent[orphan_root] is not None or orphan_root == self.root:
            raise TreeError(f"{orphan_root} is not a floating orphan")
        nodes = self.subtree_nodes(orphan_root)
        for node in nodes:
            del self._parent[node]
            del self._children[node]
            self._members.discard(node)
        return nodes

    def prune_relays(self) -> int:
        """Drop relay leaves that serve no member downstream; returns count."""
        removed = 0
        changed = True
        while changed:
            changed = False
            for node in list(self._parent):
                if (node not in self._members and node != self.root
                        and not self._children[node]):
                    self.remove_leaf(node)
                    removed += 1
                    changed = True
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def path_to_root(self, peer_id: int) -> list[int]:
        """Node chain from ``peer_id`` up to the root, inclusive."""
        self._require(peer_id)
        path = [peer_id]
        node = peer_id
        guard = len(self._parent) + 1
        while (parent := self._parent[node]) is not None:
            path.append(parent)
            node = parent
            guard -= 1
            if guard < 0:
                raise TreeError("parent-pointer cycle detected")
        return path

    def depth(self, peer_id: int) -> int:
        """Edge count from the node to the root."""
        return len(self.path_to_root(peer_id)) - 1

    def height(self) -> int:
        """Maximum node depth."""
        return max((self.depth(node) for node in self._parent), default=0)

    def node_stress(self) -> float:
        """Average children count of non-leaf nodes (Figure 16 metric)."""
        fanouts = [len(children) for children in self._children.values()
                   if children]
        if not fanouts:
            return 0.0
        return float(np.mean(fanouts))

    def workloads(self) -> dict[int, int]:
        """Per-node forwarding workload: children handled by each node."""
        return {node: len(children)
                for node, children in self._children.items()}

    def tree_adjacency(self) -> dict[int, list[int]]:
        """Undirected adjacency of the tree (for dissemination floods)."""
        adjacency: dict[int, list[int]] = {n: [] for n in self._parent}
        for parent, child in self.edges():
            adjacency[parent].append(child)
            adjacency[child].append(parent)
        return adjacency

    def validate(self) -> None:
        """Assert the structure is a rooted tree covering all members."""
        if self._parent.get(self.root, 0) is not None:
            raise TreeError("root must have no parent")
        seen = set()
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            if node in seen:
                raise TreeError(f"cycle through node {node}")
            seen.add(node)
            for child in self._children[node]:
                if self._parent[child] != node:
                    raise TreeError(
                        f"child {child} disagrees about parent {node}")
                queue.append(child)
        if seen != set(self._parent):
            raise TreeError("tree has nodes unreachable from the root")
        if not self._members <= seen:
            raise TreeError("a member is outside the tree")

    # ------------------------------------------------------------------
    # Struct-of-arrays interop
    # ------------------------------------------------------------------
    def to_arrays(self, row_of: Mapping[int, int],
                  rows: int | None = None) -> "TreeArrays":
        """Export the tree as dense parent/member columns.

        ``row_of`` maps peer ids to store row indices (e.g.
        ``SoAStore.row_of``); ``rows`` sets the column length (defaults
        to one past the highest mapped row).  The result plugs straight
        into the :mod:`repro.core` kernels — ``tree_delays``, dangling
        repair, ``node_stress`` — without walking the dicts again.
        """
        from ..core.store import TreeArrays

        mapped = {peer: row_of[peer] for peer in self._parent}
        if rows is None:
            rows = max(mapped.values(), default=-1) + 1
        arrays = TreeArrays(rows, root=mapped[self.root])
        for child, parent in self._parent.items():
            if parent is not None:
                arrays.attach(mapped[child], mapped[parent])
        member_rows = np.fromiter(
            (mapped[peer] for peer in self._members), dtype=np.int64,
            count=len(self._members))
        arrays.is_member[member_rows] = True
        arrays.has_ad[list(mapped.values())] = True
        return arrays

    @classmethod
    def from_arrays(cls, arrays: "TreeArrays",
                    id_of: Sequence[int]) -> "SpanningTree":
        """Rebuild an object tree from dense columns.

        ``id_of`` maps row indices back to peer ids (e.g.
        ``SoAStore.id_of`` applied row-wise).  Nodes are inserted in
        row order, so dict iteration order is row order — structure and
        membership round-trip exactly, insertion order does not.
        """
        if arrays.root < 0:
            raise TreeError("array tree has no root")
        tree = cls(id_of[arrays.root])
        on_rows = np.nonzero(arrays.on_tree)[0]
        for row in on_rows:
            peer = id_of[int(row)]
            if peer not in tree._parent:
                tree._parent[peer] = None
                tree._children[peer] = set()
        for row in on_rows:
            parent_row = int(arrays.parent[row])
            if parent_row >= 0:
                child, parent = id_of[int(row)], id_of[parent_row]
                tree._parent[child] = parent
                tree._children[parent].add(child)
        tree._members = {id_of[int(row)]
                         for row in np.nonzero(arrays.is_member)[0]
                         if arrays.on_tree[int(row)]}
        tree._members.add(tree.root)
        return tree

    def _require(self, peer_id: int) -> None:
        if peer_id not in self._parent:
            raise TreeError(f"node {peer_id} is not in the tree")

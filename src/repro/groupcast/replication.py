"""Backup-parent replication for fast tree failover.

The paper's conclusion proposes augmenting GroupCast with "dynamic
replication [35]" (Zhang et al., *Reliable peer-to-peer end system
multicasting through replication*, IEEE P2P 2004) for failure
resilience.  This module implements the tree-side mechanism: every
non-root node pre-arranges a *backup parent* — its grandparent where one
exists (guaranteed to be outside its own subtree), else the root — so
that when its parent crashes it re-attaches instantly with a single
message instead of ripple-searching the overlay.

:func:`failover` consumes a failure using the backups and falls back to
:func:`repro.groupcast.repair.repair_tree`'s search only for orphans
whose backup also died; :class:`FailoverReport` records how much of the
repair was "free".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TreeError
from ..overlay.graph import OverlayNetwork
from ..overlay.messages import MessageKind, MessageStats
from .repair import _search_tree_node
from .spanning_tree import SpanningTree


@dataclass
class BackupPlan:
    """Pre-arranged backup parents for one spanning tree."""

    backup_parent: dict[int, int] = field(default_factory=dict)

    def refresh(self, tree: SpanningTree) -> None:
        """(Re)compute backups: grandparent where possible, else root.

        Cheap (one pass) and safe: a grandparent can never sit inside the
        node's own subtree, so failover never creates cycles.
        """
        self.backup_parent.clear()
        for node in tree.nodes():
            if node == tree.root:
                continue
            parent = tree.parent(node)
            if parent is None:
                continue  # floating orphan mid-repair; skip
            grandparent = tree.parent(parent)
            self.backup_parent[node] = (
                grandparent if grandparent is not None else tree.root)

    def backup_for(self, node: int) -> int | None:
        """The stand-by parent of ``node`` (None if not planned)."""
        return self.backup_parent.get(node)


@dataclass(frozen=True)
class FailoverReport:
    """Outcome of consuming one failure with backup parents."""

    failed_node: int
    instant_failovers: dict[int, int]
    searched_failovers: dict[int, int]
    lost_members: frozenset[int]
    messages: int

    @property
    def fully_repaired(self) -> bool:
        """True if no member was lost."""
        return not self.lost_members

    @property
    def instant_fraction(self) -> float:
        """Share of orphans repaired without any search."""
        total = len(self.instant_failovers) + len(self.searched_failovers)
        if total == 0:
            return 1.0
        return len(self.instant_failovers) / total


def failover(
    tree: SpanningTree,
    plan: BackupPlan,
    overlay: OverlayNetwork,
    failed_node: int,
    max_search_ttl: int = 4,
    stats: MessageStats | None = None,
) -> FailoverReport:
    """Excise ``failed_node`` and re-home orphans via their backups.

    Orphans whose backup parent is alive re-attach with one message; the
    rest fall back to the overlay ripple search of the repair module.
    The plan is refreshed for the surviving tree before returning.
    """
    if failed_node == tree.root:
        raise TreeError("root failure requires rendezvous re-election")
    stats = stats or MessageStats()
    orphans = tree.remove_failed_node(failed_node)
    instant: dict[int, int] = {}
    searched: dict[int, int] = {}
    lost: set[int] = set()
    messages = 0

    for orphan in orphans:
        if orphan not in overlay:
            orphans.extend(tree.remove_failed_node(orphan))
            continue
        backup = plan.backup_for(orphan)
        subtree = tree.subtree_nodes(orphan)
        if (backup is not None and backup in tree
                and backup != failed_node and backup not in subtree
                and backup in overlay):
            tree.reattach(orphan, backup)
            instant[orphan] = backup
            messages += 1
            stats.record(MessageKind.SUBSCRIPTION)
            continue
        target, cost = _search_tree_node(
            overlay, orphan, tree, subtree, max_search_ttl)
        messages += cost
        stats.record(MessageKind.SUBSCRIPTION_SEARCH, cost)
        if target is None:
            lost.update(member for member in tree.members
                        if member in subtree)
            tree.drop_subtree(orphan)
            continue
        stats.record(MessageKind.SUBSCRIPTION)
        tree.reattach(orphan, target)
        searched[orphan] = target
        messages += 1

    tree.validate()
    plan.refresh(tree)
    return FailoverReport(
        failed_node=failed_node,
        instant_failovers=instant,
        searched_failovers=searched,
        lost_members=frozenset(lost),
        messages=messages,
    )

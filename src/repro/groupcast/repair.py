"""Spanning-tree repair after node failures.

The paper lists failure resilience (dynamic replication [35]) as the
first item of its ongoing work; this module supplies the mechanism the
GroupCast tree needs when a forwarding peer crashes: every orphaned
subtree root ripple-searches its overlay neighborhood for a surviving
tree node and re-attaches there over a fresh unicast connection.  The
search TTL escalates (2, 3, ..., ``max_search_ttl``) before a subtree is
declared unreachable and dropped from the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TreeError
from ..obs.tracer import Tracer, get_default_tracer
from ..overlay.graph import OverlayNetwork
from ..overlay.messages import MessageKind, MessageStats
from ..overlay.search import ripple_search
from .spanning_tree import SpanningTree


@dataclass(frozen=True)
class RepairReport:
    """Outcome of repairing one node failure."""

    failed_node: int
    reattached: dict[int, int] = field(default_factory=dict)
    lost_members: frozenset[int] = frozenset()
    search_messages: int = 0

    @property
    def fully_repaired(self) -> bool:
        """True if no member was lost."""
        return not self.lost_members


def repair_tree(
    tree: SpanningTree,
    overlay: OverlayNetwork,
    failed_node: int,
    max_search_ttl: int = 4,
    stats: MessageStats | None = None,
    tracer: Tracer | None = None,
) -> RepairReport:
    """Excise ``failed_node`` from ``tree`` and re-home its subtrees.

    The failed peer is assumed gone from the overlay as well (heartbeat
    maintenance removes it); orphan roots search the *overlay* for any
    surviving tree node outside their own subtree and re-attach directly.
    Returns which orphan attached where, any members lost with an
    unreachable subtree, and the search message cost.

    Under span tracing the whole episode records as one ``repair`` span
    tree: each orphan's ripple search fans out under the episode root.
    """
    if failed_node == tree.root:
        raise TreeError("root failure requires rendezvous re-election, "
                        "not tree repair")
    stats = stats or MessageStats()
    tracer = tracer if tracer is not None else get_default_tracer()
    tracing = tracer is not None and tracer.spans
    root = (tracer.root_span(at_ms=0.0, kind="repair")
            if tracing else None)
    orphans = tree.remove_failed_node(failed_node)
    reattached: dict[int, int] = {}
    lost: set[int] = set()
    messages = 0

    for orphan in orphans:
        if orphan not in overlay:
            # The orphan crashed too; its subtree re-roots at each child.
            orphans.extend(tree.remove_failed_node(orphan))
            continue
        subtree = tree.subtree_nodes(orphan)
        target, cost = _search_tree_node(
            overlay, orphan, tree, subtree, max_search_ttl,
            tracer=tracer if tracing else None, parent_span=root)
        messages += cost
        stats.record(MessageKind.SUBSCRIPTION_SEARCH, cost)
        if target is None:
            lost.update(member for member in tree.members
                        if member in subtree)
            tree.drop_subtree(orphan)
            continue
        stats.record(MessageKind.SEARCH_RESPONSE)
        stats.record(MessageKind.SUBSCRIPTION)
        tree.reattach(orphan, target)
        reattached[orphan] = target

    tree.validate()
    return RepairReport(
        failed_node=failed_node,
        reattached=reattached,
        lost_members=frozenset(lost),
        search_messages=messages,
    )


def _search_tree_node(
    overlay: OverlayNetwork,
    start: int,
    tree: SpanningTree,
    excluded: set[int],
    max_ttl: int,
    tracer: Tracer | None = None,
    parent_span=None,
) -> tuple[int | None, int]:
    """Ripple-search the overlay for a tree node outside ``excluded``.

    Returns ``(target, messages)``; the shared
    :func:`~repro.overlay.search.ripple_search` widens the ring one hop
    at a time so the shallowest repair anchor wins, and gives up beyond
    ``max_ttl`` hops.
    """
    result = ripple_search(
        overlay, start,
        lambda peer: peer in tree and peer not in excluded,
        max_ttl, tracer=tracer, parent_span=parent_span)
    if result.hit is None:
        return None, result.messages
    return result.hit.target, result.messages

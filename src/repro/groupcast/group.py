"""A live communication group: advertisement, tree, membership, payloads."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GroupError
from ..network.underlay import UnderlayNetwork
from ..overlay.messages import MessageStats
from .advertisement import AdvertisementOutcome
from .dissemination import DisseminationReport, disseminate
from .spanning_tree import SpanningTree
from .subscription import SubscriptionOutcome


@dataclass
class CommunicationGroup:
    """One established group communication channel.

    Bundles the advertisement that seeded it, the spanning tree carrying
    its payloads, and the subscription bookkeeping.  ``publish`` floods a
    payload from any member through the tree.
    """

    group_id: int
    rendezvous: int
    advertisement: AdvertisementOutcome
    tree: SpanningTree
    subscription: SubscriptionOutcome
    published: list[DisseminationReport] = field(default_factory=list)

    @property
    def members(self) -> frozenset[int]:
        """Current participants."""
        return self.tree.members

    @property
    def scheme(self) -> str:
        """Announcement scheme used to establish the group (ssa/nssa)."""
        return self.advertisement.scheme

    def publish(self, source: int, underlay: UnderlayNetwork,
                stats: MessageStats | None = None) -> DisseminationReport:
        """Send one payload from ``source`` to all members."""
        if source not in self.members:
            raise GroupError(
                f"peer {source} is not a member of group {self.group_id}")
        report = disseminate(self.tree, source, underlay, stats)
        self.published.append(report)
        return report

    def handle_failure(self, peer_id: int, overlay,
                       stats: MessageStats | None = None):
        """Repair the tree after a forwarding peer crashed.

        Returns the :class:`~repro.groupcast.repair.RepairReport`.  Root
        failures are not repairable here (a new rendezvous would have to
        be elected); callers should re-establish the group instead.
        """
        from .repair import repair_tree

        if peer_id not in self.tree:
            raise GroupError(f"peer {peer_id} is not on the tree")
        return repair_tree(self.tree, overlay, peer_id, stats=stats)

    def leave(self, peer_id: int) -> None:
        """Remove a member; its tree node stays as a relay if needed.

        Leaf members are physically pruned; interior members keep
        forwarding as relays, exactly like non-member forwarders on
        advertisement paths.
        """
        if peer_id == self.rendezvous:
            raise GroupError("the rendezvous point cannot leave the group")
        if peer_id not in self.members:
            raise GroupError(f"peer {peer_id} is not a member")
        if not self.tree.children(peer_id):
            self.tree.remove_leaf(peer_id)
            self.tree.prune_relays()
        else:
            # Demote to relay: drop membership, keep the forwarding role.
            self.tree.unmark_member(peer_id)

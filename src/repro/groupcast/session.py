"""Event-driven GroupCast protocol sessions.

The procedural modules (:mod:`.advertisement`, :mod:`.subscription`,
:mod:`.dissemination`) compute protocol outcomes directly, which is what
the large parameter sweeps use.  This module is the *faithful* runtime:
every peer is a :class:`GroupSessionNode` that owns only local state and
reacts to messages delivered by a :class:`~repro.sim.messaging.
MessageNetwork` over the discrete-event simulator — advertisement
forwarding, reverse-path subscription, ripple search and payload
flooding all happen as real timed message exchanges, including message
loss if the transport is configured with any.

The test suite cross-validates this runtime against the procedural fast
path: same overlay, same seeds, equivalent trees and delivery delays.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..config import AnnouncementConfig, UtilityConfig
from ..errors import GroupError
from ..obs.profiler import get_default_profiler
from ..obs.registry import Registry
from ..obs.topology import get_default_topology_recorder
from ..obs.tracer import Tracer
from ..overlay.graph import OverlayNetwork
from ..overlay.messages import MessageKind
from ..sim.engine import Simulator
from ..sim.messaging import Envelope, MessageNetwork
from ..sim.random import RandomSource
from .advertisement import _forwarding_targets


# ----------------------------------------------------------------------
# Wire messages
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Advertise:
    """A service announcement hop."""

    group_id: int
    rendezvous: int
    path: tuple[int, ...]
    ttl: int
    scheme: str


@dataclass(frozen=True)
class Subscribe:
    """A join request travelling up the reverse advertisement path."""

    group_id: int
    subscriber: int


@dataclass(frozen=True)
class Search:
    """Ripple search for a peer holding the advertisement."""

    group_id: int
    origin: int
    ttl: int


@dataclass(frozen=True)
class SearchReply:
    """An informed peer answering a ripple search."""

    group_id: int
    informed_peer: int


@dataclass(frozen=True)
class Payload:
    """A group payload flooding the spanning tree."""

    group_id: int
    payload_id: int
    source: int


# ----------------------------------------------------------------------
# Per-peer protocol agent
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionTreeView:
    """Dense single-pass snapshot of one group's protocol state.

    One row per session node that ever touched the group, in node-
    insertion order.  ``upstream_row`` is -1 when a peer's upstream is
    unset or holds no row itself (crashed, or never in the group).  The
    recovery sweeps below all run off one snapshot instead of re-walking
    every node's state dict per query, and the arrays plug directly into
    the :mod:`repro.core` kernels.
    """

    ids: np.ndarray
    index: Mapping[int, int]
    upstream_id: np.ndarray
    upstream_row: np.ndarray
    on_tree: np.ndarray
    is_member: np.ndarray


@dataclass
class _GroupState:
    upstream: int | None = None
    has_advertisement: bool = False
    on_tree: bool = False
    is_member: bool = False
    children: set[int] = field(default_factory=set)
    seen_payloads: set[int] = field(default_factory=set)
    search_answered: bool = False


class GroupSessionNode:
    """The GroupCast protocol state machine of one peer."""

    def __init__(self, peer_id: int, coordinator: "GroupSession") -> None:
        self.peer_id = peer_id
        self.coordinator = coordinator
        self.groups: dict[int, _GroupState] = {}

    def state(self, group_id: int) -> _GroupState:
        """Per-group protocol state (created on first touch)."""
        return self.groups.setdefault(group_id, _GroupState())

    # ------------------------------------------------------------------
    def handle(self, envelope: Envelope) -> None:
        """Dispatch one delivered message."""
        payload = envelope.payload
        if isinstance(payload, Advertise):
            self._on_advertise(envelope, payload)
        elif isinstance(payload, Subscribe):
            self._on_subscribe(envelope, payload)
        elif isinstance(payload, Search):
            self._on_search(envelope, payload)
        elif isinstance(payload, SearchReply):
            self._on_search_reply(envelope, payload)
        elif isinstance(payload, Payload):
            self._on_payload(envelope, payload)
        else:  # pragma: no cover - future message types
            raise GroupError(f"unknown message {payload!r}")

    # ------------------------------------------------------------------
    def _episode_root(self, kind: str):
        """Open a causal-episode root span (None when tracing is off).

        Entry points wrap their initial sends in
        ``transport.span_scope(root)`` so the whole protocol wave —
        every forwarded copy, every handler-triggered send —
        reconstructs as one span tree rooted at the episode.
        """
        transport = self.coordinator.transport
        if transport.tracer is None:
            return None
        return transport.tracer.root_span(
            at_ms=transport.now(), kind=kind)

    def start_advertisement(self, group_id: int, scheme: str) -> None:
        """Rendezvous entry point: seed the announcement."""
        state = self.state(group_id)
        state.has_advertisement = True
        state.on_tree = True
        state.is_member = True
        self.coordinator.rendezvous[group_id] = self.peer_id
        config = self.coordinator.announcement
        transport = self.coordinator.transport
        with transport.span_scope(self._episode_root("advertisement")):
            self._forward_advertisement(
                Advertise(group_id, self.peer_id, (self.peer_id,),
                          config.advertisement_ttl, scheme))

    def _on_advertise(self, envelope: Envelope, message: Advertise) -> None:
        state = self.state(message.group_id)
        if state.has_advertisement:
            self.coordinator.record_duplicate()
            return
        state.has_advertisement = True
        state.upstream = envelope.sender
        self.coordinator.record_receipt(
            message.group_id, self.peer_id, envelope.delivered_at_ms)
        # ttl counts the remaining overlay hops *including* the one that
        # delivered this copy, matching the procedural propagation in
        # :func:`repro.groupcast.advertisement.propagate_advertisement`:
        # with ttl=T the announcement reaches peers at most T hops out.
        if message.ttl > 1:
            self._forward_advertisement(
                Advertise(message.group_id, message.rendezvous,
                          message.path + (self.peer_id,),
                          message.ttl - 1, message.scheme))

    def _forward_advertisement(self, message: Advertise) -> None:
        coordinator = self.coordinator
        targets = _forwarding_targets(
            coordinator.overlay, self.peer_id, message.path,
            message.scheme, coordinator.announcement, coordinator.utility,
            coordinator.rng)
        for target in targets:
            coordinator.transport.send(
                self.peer_id, target, message, MessageKind.ADVERTISEMENT)

    # ------------------------------------------------------------------
    def start_subscription(self, group_id: int) -> None:
        """Member entry point: join over the reverse path or search."""
        state = self.state(group_id)
        state.is_member = True
        if state.on_tree:
            return
        transport = self.coordinator.transport
        if state.has_advertisement:
            with transport.span_scope(self._episode_root("subscription")):
                self._join_via_upstream(group_id)
            return
        ttl = self.coordinator.announcement.subscription_search_ttl
        if ttl <= 0:
            self.coordinator.record_failure(group_id, self.peer_id)
            return
        with transport.span_scope(self._episode_root("subscription")):
            for neighbor in self.coordinator.overlay.neighbors(
                    self.peer_id):
                transport.send(
                    self.peer_id, neighbor,
                    Search(group_id, self.peer_id, ttl - 1),
                    MessageKind.SUBSCRIPTION_SEARCH)

    def _join_via_upstream(self, group_id: int) -> None:
        state = self.state(group_id)
        state.on_tree = True
        if state.upstream is not None:
            self.coordinator.transport.send(
                self.peer_id, state.upstream,
                Subscribe(group_id, self.peer_id),
                MessageKind.SUBSCRIPTION)

    def _on_subscribe(self, envelope: Envelope,
                      message: Subscribe) -> None:
        state = self.state(message.group_id)
        state.children.add(envelope.sender)
        if not state.on_tree:
            state.on_tree = True
            if state.upstream is not None:
                self.coordinator.transport.send(
                    self.peer_id, state.upstream,
                    Subscribe(message.group_id, self.peer_id),
                    MessageKind.SUBSCRIPTION)

    def _on_search(self, envelope: Envelope, message: Search) -> None:
        state = self.state(message.group_id)
        if state.has_advertisement:
            self.coordinator.transport.send(
                self.peer_id, message.origin,
                SearchReply(message.group_id, self.peer_id),
                MessageKind.SEARCH_RESPONSE)
            return
        if message.ttl <= 0:
            return
        for neighbor in self.coordinator.overlay.neighbors(self.peer_id):
            if neighbor in (message.origin, envelope.sender):
                continue
            self.coordinator.transport.send(
                self.peer_id, neighbor,
                Search(message.group_id, message.origin, message.ttl - 1),
                MessageKind.SUBSCRIPTION_SEARCH)

    def _on_search_reply(self, envelope: Envelope,
                         message: SearchReply) -> None:
        state = self.state(message.group_id)
        if state.search_answered or state.on_tree:
            return  # first reply wins
        state.search_answered = True
        state.upstream = message.informed_peer
        self._join_via_upstream(message.group_id)

    # ------------------------------------------------------------------
    def start_publish(self, group_id: int, payload_id: int) -> None:
        """Member entry point: flood a payload through the tree."""
        state = self.state(group_id)
        if not state.is_member:
            raise GroupError(
                f"peer {self.peer_id} is not a member of {group_id}")
        state.seen_payloads.add(payload_id)
        transport = self.coordinator.transport
        self.coordinator.record_delivery(
            group_id, payload_id, self.peer_id, transport.now())
        with transport.span_scope(self._episode_root("dissemination")):
            self._flood(group_id,
                        Payload(group_id, payload_id, self.peer_id),
                        exclude=None)

    def _on_payload(self, envelope: Envelope, message: Payload) -> None:
        state = self.state(message.group_id)
        if message.payload_id in state.seen_payloads:
            return
        state.seen_payloads.add(message.payload_id)
        self.coordinator.record_delivery(
            message.group_id, message.payload_id, self.peer_id,
            envelope.delivered_at_ms)
        self._flood(message.group_id, message, exclude=envelope.sender)

    def _flood(self, group_id: int, message: Payload,
               exclude: int | None) -> None:
        state = self.state(group_id)
        links = set(state.children)
        if state.upstream is not None and state.on_tree:
            links.add(state.upstream)
        links.discard(exclude)
        links.discard(self.peer_id)
        for link in links:
            self.coordinator.transport.send(
                self.peer_id, link, message, MessageKind.PAYLOAD)


# ----------------------------------------------------------------------
# Session coordinator
# ----------------------------------------------------------------------
class GroupSession:
    """Owns the nodes, transport and measurement state of one session."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        latency_fn,
        rng: RandomSource,
        announcement: AnnouncementConfig | None = None,
        utility: UtilityConfig | None = None,
        loss_rate: float = 0.0,
        registry: Registry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.overlay = overlay
        self.rng = rng
        self.announcement = announcement or AnnouncementConfig()
        self.utility = utility or UtilityConfig()
        self.registry = registry if registry is not None else Registry()
        self.tracer = tracer
        # The process-default profiler (if any) rides this session's
        # clock; it only reads virtual time and its own registry, so
        # attaching it is bit-transparent to the trace digest.
        self.simulator = Simulator(tracer=tracer,
                                   profiler=get_default_profiler())
        self.network = MessageNetwork(
            self.simulator, latency_fn, rng, loss_rate=loss_rate,
            registry=self.registry, tracer=tracer)
        # Deferred import: repro.runtime's framing module registers the
        # wire dataclasses defined above, so the packages are mutually
        # aware and must not import each other at module load.
        from ..runtime.sim import SimTransport

        #: The transport seam.  Nodes issue every send and timer through
        #: this; over :class:`SimTransport` that is a pure delegation to
        #: ``network``/``simulator``, keeping same-seed runs
        #: bit-identical to pre-seam dispatch.
        self.transport = SimTransport(self.network)
        self.nodes: dict[int, GroupSessionNode] = {}
        for peer_id in overlay.peer_ids():
            node = GroupSessionNode(peer_id, self)
            self.nodes[peer_id] = node
            self.transport.register(peer_id, node.handle)
        self._c_duplicates = self.registry.counter("session.duplicates")
        self._c_receipts = self.registry.counter("session.receipts")
        self._c_failures = self.registry.counter("session.failures")
        self._h_delivery = self.registry.histogram("dissemination.delay_ms")
        self.receipts: dict[int, dict[int, float]] = {}
        self.failures: dict[int, set[int]] = {}
        self.deliveries: dict[tuple[int, int], dict[int, float]] = {}
        self.rendezvous: dict[int, int] = {}
        self._payload_ids = itertools.count(1)
        # Like the profiler, the process-default topology recorder (if
        # any) rides this session's clock; it only reads structure and
        # its own registry, so attaching is digest bit-transparent.
        topology = get_default_topology_recorder()
        if topology is not None and topology.enabled:
            topology.watch_session(self)

    @property
    def duplicates(self) -> int:
        """Advertisement copies dropped by the receivedAdvertising table."""
        return self._c_duplicates.value

    # ------------------------------------------------------------------
    # Measurement hooks (called by nodes)
    # ------------------------------------------------------------------
    def record_duplicate(self) -> None:
        """Count a dropped duplicate advertisement copy."""
        self._c_duplicates.inc()

    def record_receipt(self, group_id: int, peer_id: int,
                       at_ms: float) -> None:
        """Log a peer's first advertisement receipt time."""
        self._c_receipts.inc()
        self.receipts.setdefault(group_id, {})[peer_id] = at_ms

    def record_failure(self, group_id: int, peer_id: int) -> None:
        """Log a member whose subscription could not complete."""
        self._c_failures.inc()
        self.failures.setdefault(group_id, set()).add(peer_id)

    def record_delivery(self, group_id: int, payload_id: int,
                        peer_id: int, at_ms: float) -> None:
        """Log a payload delivery time at one peer."""
        self.deliveries.setdefault(
            (group_id, payload_id), {})[peer_id] = at_ms

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def establish(self, group_id: int, rendezvous: int,
                  members: list[int], scheme: str = "ssa") -> None:
        """Advertise, let the announcement settle, then subscribe."""
        if rendezvous not in self.nodes:
            raise GroupError(f"unknown rendezvous {rendezvous}")
        self.nodes[rendezvous].start_advertisement(group_id, scheme)
        self.simulator.run()  # announcement settles
        for member in members:
            if member not in self.nodes:
                self.record_failure(group_id, member)
                continue
            self.nodes[member].start_subscription(group_id)
        self.simulator.run()  # subscriptions settle

    def publish(self, group_id: int, source: int) -> dict[int, float]:
        """Flood one payload; returns member delivery delays (ms)."""
        payload_id = next(self._payload_ids)
        start = self.simulator.now
        self.nodes[source].start_publish(group_id, payload_id)
        self.simulator.run()
        delivered = self.deliveries.get((group_id, payload_id), {})
        delays = {
            peer: at - start
            for peer, at in delivered.items()
            if peer != source and self.nodes[peer].state(group_id).is_member
        }
        for delay in delays.values():
            self._h_delivery.observe(delay)
        return delays

    def remove_peer(self, peer_id: int) -> None:
        """A peer crashes mid-session.

        It stops receiving (in-flight messages dead-letter) and stops
        forwarding; downstream members lose payloads until they
        :meth:`rejoin`.  The overlay graph is left to the maintenance
        layer — this removes only the protocol agent.
        """
        self.transport.unregister(peer_id)
        self.nodes.pop(peer_id, None)

    # ``crash_peer`` is the fault-injection vocabulary for the same
    # operation: the peer falls silent mid-session.
    crash_peer = remove_peer

    def restart_peer(self, peer_id: int) -> None:
        """Bring a crashed peer back with blank protocol state.

        The restarted peer remembers nothing: it holds no advertisement
        and sits on no tree.  It resumes forwarding only after taking
        part in the protocol again (e.g. a member re-subscribing through
        it).  The peer must still exist in the overlay graph.
        """
        if peer_id in self.nodes:
            raise GroupError(f"peer {peer_id} is already in the session")
        if peer_id not in self.overlay:
            raise GroupError(
                f"peer {peer_id} is not in the overlay; it cannot restart")
        node = GroupSessionNode(peer_id, self)
        self.nodes[peer_id] = node
        self.transport.register(peer_id, node.handle)

    def rejoin(self, group_id: int, member: int) -> None:
        """Re-subscribe a member whose branch died.

        Resets the member's per-group state and re-runs the subscription
        (ripple search included, since the old upstream may be gone),
        then lets the simulator settle.
        """
        self.rejoin_async(group_id, member)
        self.simulator.run()

    def rejoin_async(self, group_id: int, member: int) -> None:
        """Like :meth:`rejoin` but without draining the simulator.

        Safe to call from inside an event callback (a crash-recovery
        policy reacting mid-run): the subscription messages are merely
        scheduled and settle with the surrounding ``run``.
        """
        node = self.nodes.get(member)
        if node is None:
            raise GroupError(f"peer {member} is not in the session")
        state = node.state(group_id)
        state.on_tree = False
        state.upstream = None
        state.has_advertisement = False
        state.search_answered = False
        node.start_subscription(group_id)

    def failover_upstream(self, group_id: int, orphan: int,
                          backup: int) -> bool:
        """Point an orphan at a pre-arranged backup parent (replication).

        The orphan re-attaches with a single subscription message to
        ``backup`` — the session-level equivalent of
        :func:`repro.groupcast.replication.failover`'s instant path.
        Returns False (no action) when either peer is gone from the
        session.
        """
        node = self.nodes.get(orphan)
        if node is None or backup not in self.nodes or backup == orphan:
            return False
        state = node.state(group_id)
        state.upstream = backup
        state.on_tree = False
        state.search_answered = False
        with self.transport.span_scope(node._episode_root("repair")):
            node._join_via_upstream(group_id)
        return True

    def broken_upstream_peers(self, group_id: int) -> list[int]:
        """On-tree peers whose upstream is gone or off the tree.

        The session-level symptom of an undetected parent failure: a
        peer can attach to a forwarder *after* it crashed (the search
        reply was already in flight), which no crash-time callback can
        observe.  In the paper the child notices via missed heartbeats;
        recovery policies model that detection by sweeping this list
        periodically and re-running the subscription for each broken
        branch.
        """
        view = self.tree_view(group_id)
        rendezvous = self.rendezvous.get(group_id)
        broken = view.on_tree.copy()
        if rendezvous is not None:
            row = view.index.get(rendezvous)
            if row is not None:
                broken[row] = False
        parent_on_tree = np.zeros(view.ids.shape[0], dtype=bool)
        has_row = view.upstream_row >= 0
        parent_on_tree[has_row] = \
            view.on_tree[view.upstream_row[has_row]]
        broken &= ~parent_on_tree
        return sorted(int(peer) for peer in view.ids[broken])

    def upstream_children(self, group_id: int, parent: int) -> list[int]:
        """Live peers whose upstream pointer targets ``parent``."""
        view = self.tree_view(group_id)
        rows = view.on_tree & (view.upstream_id == parent)
        return [int(peer) for peer in view.ids[rows]]

    def backup_parents(self, group_id: int) -> dict[int, int]:
        """Grandparent backups from the current upstream pointers.

        The session-level analogue of :meth:`repro.groupcast.
        replication.BackupPlan.refresh`: each on-tree peer's backup is
        its grandparent where one exists, else the rendezvous.
        """
        view = self.tree_view(group_id)
        rendezvous = self.rendezvous.get(group_id)
        sentinel = -1 if rendezvous is None else rendezvous
        grandparent = np.full(view.ids.shape[0], -1, dtype=np.int64)
        has_row = view.upstream_row >= 0
        grandparent[has_row] = \
            view.upstream_id[view.upstream_row[has_row]]
        fallback = (grandparent < 0) & (sentinel >= 0) \
            & (view.ids != sentinel)
        grandparent[fallback] = sentinel
        usable = (view.on_tree & (view.upstream_id >= 0)
                  & (view.ids != sentinel) & (grandparent >= 0)
                  & (grandparent != view.ids))
        return {int(view.ids[row]): int(grandparent[row])
                for row in np.nonzero(usable)[0]}

    def members_on_tree(self, group_id: int) -> set[int]:
        """Members that completed their subscription."""
        view = self.tree_view(group_id)
        return {int(peer)
                for peer in view.ids[view.on_tree & view.is_member]}

    def tree_view(self, group_id: int) -> SessionTreeView:
        """Snapshot the group's session state into dense arrays.

        One walk over the nodes replaces the per-query state-dict scans
        of the recovery sweeps; unlike ``node.state(group_id)`` it never
        *creates* per-group state on nodes outside the group.
        """
        ids_list: list[int] = []
        states: list[_GroupState] = []
        for peer_id, node in self.nodes.items():
            state = node.groups.get(group_id)
            if state is not None:
                ids_list.append(peer_id)
                states.append(state)
        count = len(ids_list)
        ids = np.asarray(ids_list, dtype=np.int64) if count \
            else np.empty(0, dtype=np.int64)
        index = {peer: row for row, peer in enumerate(ids_list)}
        upstream_id = np.full(count, -1, dtype=np.int64)
        upstream_row = np.full(count, -1, dtype=np.int64)
        on_tree = np.zeros(count, dtype=bool)
        is_member = np.zeros(count, dtype=bool)
        for row, state in enumerate(states):
            if state.upstream is not None:
                upstream_id[row] = state.upstream
                upstream_row[row] = index.get(state.upstream, -1)
            on_tree[row] = state.on_tree
            is_member[row] = state.is_member
        return SessionTreeView(ids=ids, index=index,
                               upstream_id=upstream_id,
                               upstream_row=upstream_row,
                               on_tree=on_tree, is_member=is_member)

"""Subscription management and spanning-tree assembly (Step 3, Section 2.2).

A peer joining a communication group falls in one of two cases:

1. **It received the advertisement.**  It is already on a forwarding path;
   it subscribes by sending a join message in the *reverse direction* of
   the incoming SSA/NSSA message — one subscription message per hop up the
   reverse path until the chain meets the existing tree.  Lookup latency
   is zero: the group information is local.
2. **It never received the advertisement.**  It runs a *ripple search*
   (scoped flood, TTL 2 by default) over its overlay neighborhood for a
   peer holding the advertisement, then subscribes through the closest
   hit.  Search messages and the out-and-back latency are charged to the
   subscription (Figures 11-13); if no neighbor within the ripple holds
   the ad, the subscription fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..config import AnnouncementConfig
from ..errors import SubscriptionError
from ..obs.registry import Registry, get_default_registry
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    SpanContext,
    Tracer,
    get_default_tracer,
)
from ..overlay.graph import OverlayNetwork
from ..overlay.messages import MessageKind, MessageStats
from ..overlay.search import ripple_search
from .advertisement import AdvertisementOutcome, LatencyFn
from .spanning_tree import SpanningTree


@dataclass(frozen=True)
class SubscriptionRecord:
    """How one member got onto the tree."""

    peer_id: int
    via_search: bool
    lookup_latency_ms: float
    search_messages: int
    subscription_messages: int


@dataclass(frozen=True)
class SubscriptionOutcome:
    """Result of subscribing a member set to one group."""

    group_id: int
    records: Mapping[int, SubscriptionRecord]
    failed: tuple[int, ...]
    search_messages: int
    subscription_messages: int

    @property
    def success_rate(self) -> float:
        """Fraction of requested members that got onto the tree."""
        attempted = len(self.records) + len(self.failed)
        if attempted == 0:
            return 1.0
        return len(self.records) / attempted

    def average_lookup_latency_ms(self,
                                  searchers_only: bool = True) -> float:
        """Mean service-lookup latency (Figure 13).

        By default averages over members that had to search; peers already
        holding the advertisement resolve locally at zero cost.
        """
        latencies = [r.lookup_latency_ms for r in self.records.values()
                     if r.via_search or not searchers_only]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)


def subscribe_members(
    overlay: OverlayNetwork,
    advertisement: AdvertisementOutcome,
    members: Sequence[int],
    latency_fn: LatencyFn,
    config: AnnouncementConfig | None = None,
    stats: MessageStats | None = None,
    registry: Registry | None = None,
    tracer: Tracer | None = None,
    walk: str = "auto",
) -> tuple[SpanningTree, SubscriptionOutcome]:
    """Subscribe ``members`` and return the resulting spanning tree.

    Under span tracing (explicit ``tracer`` or the process default from
    :func:`~repro.obs.tracer.enable_tracing`) each member's join records
    as one ``subscription`` span tree: reverse-path joins as a chain of
    subscription hops, search joins as the ripple flood, the search
    response riding the winning probe, and the subscription chain riding
    the response.

    ``walk`` selects the reverse-path implementation.  ``"auto"`` (the
    default) routes the joins through the array climb kernel
    (:func:`repro.core.protocol.climb_subscription_claims`) whenever the
    overlay is array-backed (:class:`~repro.core.overlay_view.
    SoAOverlayNetwork`), span tracing is off and no member needs a
    ripple search — producing the identical tree, records and counters
    without any per-hop Python walk.  ``"procedural"`` forces the
    seed-scale reference walk below; ``"kernel"`` requires the kernel
    path and raises if it cannot apply.
    """
    if walk not in ("auto", "procedural", "kernel"):
        raise SubscriptionError(f"unknown walk mode {walk!r}")
    config = config or AnnouncementConfig()
    stats = stats or MessageStats()
    registry = registry if registry is not None else get_default_registry()
    tracer = tracer if tracer is not None else get_default_tracer()
    tracing = tracer is not None and tracer.spans

    if walk != "procedural" and not tracing:
        kernel = _subscribe_members_kernel(
            overlay, advertisement, members, stats, registry)
        if kernel is not None:
            return kernel
    if walk == "kernel":
        raise SubscriptionError(
            "kernel walk needs an SoA-backed overlay, tracing off and "
            "no member requiring a ripple search")
    c_subscription = registry.counter(
        f"messages.{MessageKind.SUBSCRIPTION.value}")
    c_search = registry.counter(
        f"messages.{MessageKind.SUBSCRIPTION_SEARCH.value}")
    c_response = registry.counter(
        f"messages.{MessageKind.SEARCH_RESPONSE.value}")
    c_failures = registry.counter("subscription.failures")
    h_lookup = registry.histogram("lookup.latency_ms")
    tree = SpanningTree(advertisement.rendezvous)

    records: dict[int, SubscriptionRecord] = {}
    failed: list[int] = []
    total_search = 0
    total_subscription = 0

    for member in members:
        if member not in overlay:
            failed.append(member)
            c_failures.inc()
            continue
        if member == advertisement.rendezvous:
            records[member] = SubscriptionRecord(member, False, 0.0, 0, 0)
            continue
        if member in advertisement.receipts:
            chain = _graft_reverse_path(tree, advertisement, member)
            hops = len(chain) - 1
            if tracing:
                root = tracer.root_span(at_ms=0.0, kind="subscription")
                _emit_chain_spans(tracer, chain, 0.0, root, latency_fn)
            stats.record(MessageKind.SUBSCRIPTION, hops)
            c_subscription.inc(hops)
            total_subscription += hops
            records[member] = SubscriptionRecord(
                member, False, 0.0, 0, hops)
            continue

        receipts = advertisement.receipts
        root = (tracer.root_span(at_ms=0.0, kind="subscription")
                if tracing else None)
        found = ripple_search(
            overlay, member, lambda peer: peer in receipts,
            config.subscription_search_ttl, latency_fn, registry=registry,
            tracer=tracer, parent_span=root)
        total_search += found.messages
        stats.record(MessageKind.SUBSCRIPTION_SEARCH, found.messages)
        c_search.inc(found.messages)
        if found.hit is None:
            failed.append(member)
            c_failures.inc()
            continue
        stats.record(MessageKind.SEARCH_RESPONSE)
        c_response.inc()
        total_search += 1
        response_at = 2.0 * found.hit.latency_ms
        response_span = None
        if tracing:
            # The search response rides back on the winning probe's span;
            # the subscription chain then rides on the response.
            response_span = tracer.child_span(found.hit.span)
            tracer.record(found.hit.latency_ms, KIND_SEND,
                          a=found.hit.target, b=member,
                          detail=MessageKind.SEARCH_RESPONSE.value,
                          span=response_span)
            tracer.record(response_at, KIND_DELIVER,
                          a=found.hit.target, b=member,
                          detail=MessageKind.SEARCH_RESPONSE.value,
                          span=response_span)
        # Graft the informed peer's reverse path, then hang the searcher's
        # overlay route to it underneath.
        _graft_reverse_path(tree, advertisement, found.hit.target,
                            as_member=False)
        # hit.route runs searcher -> ... -> hop before target; append the
        # target as the in-tree anchor.
        chain = list(found.hit.route) + [found.hit.target]
        hops = tree.graft_chain(chain)
        tree.mark_member(member)
        hops += 1  # the subscription message handed to the informed peer
        if tracing:
            _emit_chain_spans(tracer, chain, response_at, response_span,
                              latency_fn)
        stats.record(MessageKind.SUBSCRIPTION, hops)
        c_subscription.inc(hops)
        total_subscription += hops
        h_lookup.observe(response_at)
        records[member] = SubscriptionRecord(
            member, True, response_at, found.messages + 1,
            hops)

    tree.validate()
    outcome = SubscriptionOutcome(
        group_id=advertisement.group_id,
        records=records,
        failed=tuple(failed),
        search_messages=total_search,
        subscription_messages=total_subscription,
    )
    return tree, outcome


def _subscribe_members_kernel(
    overlay: OverlayNetwork,
    advertisement: AdvertisementOutcome,
    members: Sequence[int],
    stats: MessageStats,
    registry: Registry,
) -> tuple[SpanningTree, SubscriptionOutcome] | None:
    """Array-kernel reverse-path subscription for SoA-backed overlays.

    Applicable when every member either fails outright (not in the
    overlay), is the rendezvous, or holds the advertisement — i.e. no
    ripple search is needed.  Returns None when it does not apply.
    The result — tree structure, membership, per-member records,
    counter increments and their order — is exactly the sequential
    walk's: the claims kernel computes which member's walk grafts each
    row (see :func:`repro.core.protocol.climb_subscription_claims`),
    replacing the per-member chain walks with a handful of array
    passes over the receipt forest.
    """
    from ..core.overlay_view import SoAOverlayNetwork
    from ..core.protocol import climb_subscription_claims
    from ..core.store import TreeArrays

    if not isinstance(overlay, SoAOverlayNetwork):
        return None
    rendezvous = advertisement.rendezvous
    receipts = advertisement.receipts
    #: (member, kind) per list entry; kind: 0 failed, 1 rendezvous,
    #: 2 reverse-path join.
    entries: list[tuple[int, int]] = []
    for member in members:
        if member not in overlay:
            entries.append((member, 0))
        elif member == rendezvous:
            entries.append((member, 1))
        elif member in receipts:
            entries.append((member, 2))
        else:
            return None  # needs a ripple search — procedural reference

    store = overlay.store
    n = store.row_count
    import numpy as np

    upstream = np.full(n, -1, dtype=np.int64)
    row_of = store.row_of_any
    for peer, receipt in receipts.items():
        if receipt.upstream is not None:
            upstream[row_of(peer)] = row_of(receipt.upstream)
    root_row = row_of(rendezvous)
    joiner_rows = np.fromiter(
        (row_of(member) for member, kind in entries if kind == 2),
        dtype=np.int64)
    claim, hops = climb_subscription_claims(upstream, joiner_rows,
                                            root_row)

    arrays = TreeArrays(n, root=root_row)
    grafted = np.nonzero(claim >= 0)[0]
    arrays.parent[grafted] = upstream[grafted]
    arrays.on_tree[grafted] = True
    arrays.is_member[joiner_rows] = True
    arrays.has_ad[grafted] = True
    tree = SpanningTree.from_arrays(arrays, store.id_table())

    # Touch the same registry metrics as the walk (including the ones
    # this path never increments) so registry snapshots stay identical.
    c_subscription = registry.counter(
        f"messages.{MessageKind.SUBSCRIPTION.value}")
    registry.counter(f"messages.{MessageKind.SUBSCRIPTION_SEARCH.value}")
    registry.counter(f"messages.{MessageKind.SEARCH_RESPONSE.value}")
    c_failures = registry.counter("subscription.failures")
    registry.histogram("lookup.latency_ms")
    # Replay the per-member record/counter sequence in list order so
    # totals and histogram states match the walk exactly.
    records: dict[int, SubscriptionRecord] = {}
    failed: list[int] = []
    total_subscription = 0
    joiner_index = 0
    for member, kind in entries:
        if kind == 0:
            failed.append(member)
            c_failures.inc()
            continue
        if kind == 1:
            records[member] = SubscriptionRecord(member, False, 0.0, 0, 0)
            continue
        member_hops = int(hops[joiner_index])
        joiner_index += 1
        stats.record(MessageKind.SUBSCRIPTION, member_hops)
        c_subscription.inc(member_hops)
        total_subscription += member_hops
        records[member] = SubscriptionRecord(
            member, False, 0.0, 0, member_hops)

    tree.validate()
    outcome = SubscriptionOutcome(
        group_id=advertisement.group_id,
        records=records,
        failed=tuple(failed),
        search_messages=0,
        subscription_messages=total_subscription,
    )
    return tree, outcome


def _graft_reverse_path(tree: SpanningTree,
                        advertisement: AdvertisementOutcome,
                        peer_id: int,
                        as_member: bool = True) -> list[int]:
    """Graft a receiver's reverse advertisement path into the tree.

    Returns the trimmed chain ``[peer, upstream, ..., anchor]`` actually
    walked (the anchor is the first node already on the tree); its
    length minus one is the subscription-hop count, and span emission
    walks the same chain.
    """
    chain = advertisement.reverse_path(peer_id)  # peer ... rendezvous
    # Trim the chain at the first node already in the tree.
    trimmed: list[int] = []
    for node in chain:
        trimmed.append(node)
        if node in tree:
            break
    if trimmed[-1] not in tree:
        raise SubscriptionError(
            f"reverse path of {peer_id} never reaches the tree")
    if len(trimmed) > 1:
        tree.graft_chain(trimmed)
    if as_member:
        tree.mark_member(peer_id)
    return trimmed


def _emit_chain_spans(tracer: Tracer, chain: Sequence[int],
                      start_ms: float, parent: SpanContext | None,
                      latency_fn: LatencyFn) -> None:
    """Record a hop-by-hop subscription walk as chained spans.

    ``chain`` is ``[joiner, next_hop, ..., anchor]``; each hop's span is
    the child of the previous hop's, so the walk reconstructs as a path
    whose critical-path latency is the accumulated underlay latency.
    """
    detail = MessageKind.SUBSCRIPTION.value
    elapsed = start_ms
    span = parent
    for sender, recipient in zip(chain, chain[1:]):
        span = tracer.child_span(span)
        arrival = elapsed + latency_fn(sender, recipient)
        tracer.record(elapsed, KIND_SEND, a=sender, b=recipient,
                      detail=detail, span=span)
        tracer.record(arrival, KIND_DELIVER, a=sender, b=recipient,
                      detail=detail, span=span)
        elapsed = arrival

"""Subscription management and spanning-tree assembly (Step 3, Section 2.2).

A peer joining a communication group falls in one of two cases:

1. **It received the advertisement.**  It is already on a forwarding path;
   it subscribes by sending a join message in the *reverse direction* of
   the incoming SSA/NSSA message — one subscription message per hop up the
   reverse path until the chain meets the existing tree.  Lookup latency
   is zero: the group information is local.
2. **It never received the advertisement.**  It runs a *ripple search*
   (scoped flood, TTL 2 by default) over its overlay neighborhood for a
   peer holding the advertisement, then subscribes through the closest
   hit.  Search messages and the out-and-back latency are charged to the
   subscription (Figures 11-13); if no neighbor within the ripple holds
   the ad, the subscription fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..config import AnnouncementConfig
from ..errors import SubscriptionError
from ..obs.registry import Registry, get_default_registry
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    SpanContext,
    Tracer,
    get_default_tracer,
)
from ..overlay.graph import OverlayNetwork
from ..overlay.messages import MessageKind, MessageStats
from ..overlay.search import ripple_search
from .advertisement import AdvertisementOutcome, LatencyFn
from .spanning_tree import SpanningTree


@dataclass(frozen=True)
class SubscriptionRecord:
    """How one member got onto the tree."""

    peer_id: int
    via_search: bool
    lookup_latency_ms: float
    search_messages: int
    subscription_messages: int


@dataclass(frozen=True)
class SubscriptionOutcome:
    """Result of subscribing a member set to one group."""

    group_id: int
    records: Mapping[int, SubscriptionRecord]
    failed: tuple[int, ...]
    search_messages: int
    subscription_messages: int

    @property
    def success_rate(self) -> float:
        """Fraction of requested members that got onto the tree."""
        attempted = len(self.records) + len(self.failed)
        if attempted == 0:
            return 1.0
        return len(self.records) / attempted

    def average_lookup_latency_ms(self,
                                  searchers_only: bool = True) -> float:
        """Mean service-lookup latency (Figure 13).

        By default averages over members that had to search; peers already
        holding the advertisement resolve locally at zero cost.
        """
        latencies = [r.lookup_latency_ms for r in self.records.values()
                     if r.via_search or not searchers_only]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)


def subscribe_members(
    overlay: OverlayNetwork,
    advertisement: AdvertisementOutcome,
    members: Sequence[int],
    latency_fn: LatencyFn,
    config: AnnouncementConfig | None = None,
    stats: MessageStats | None = None,
    registry: Registry | None = None,
    tracer: Tracer | None = None,
) -> tuple[SpanningTree, SubscriptionOutcome]:
    """Subscribe ``members`` and return the resulting spanning tree.

    Under span tracing (explicit ``tracer`` or the process default from
    :func:`~repro.obs.tracer.enable_tracing`) each member's join records
    as one ``subscription`` span tree: reverse-path joins as a chain of
    subscription hops, search joins as the ripple flood, the search
    response riding the winning probe, and the subscription chain riding
    the response.
    """
    config = config or AnnouncementConfig()
    stats = stats or MessageStats()
    registry = registry if registry is not None else get_default_registry()
    tracer = tracer if tracer is not None else get_default_tracer()
    tracing = tracer is not None and tracer.spans
    c_subscription = registry.counter(
        f"messages.{MessageKind.SUBSCRIPTION.value}")
    c_search = registry.counter(
        f"messages.{MessageKind.SUBSCRIPTION_SEARCH.value}")
    c_response = registry.counter(
        f"messages.{MessageKind.SEARCH_RESPONSE.value}")
    c_failures = registry.counter("subscription.failures")
    h_lookup = registry.histogram("lookup.latency_ms")
    tree = SpanningTree(advertisement.rendezvous)

    records: dict[int, SubscriptionRecord] = {}
    failed: list[int] = []
    total_search = 0
    total_subscription = 0

    for member in members:
        if member not in overlay:
            failed.append(member)
            c_failures.inc()
            continue
        if member == advertisement.rendezvous:
            records[member] = SubscriptionRecord(member, False, 0.0, 0, 0)
            continue
        if member in advertisement.receipts:
            chain = _graft_reverse_path(tree, advertisement, member)
            hops = len(chain) - 1
            if tracing:
                root = tracer.root_span(at_ms=0.0, kind="subscription")
                _emit_chain_spans(tracer, chain, 0.0, root, latency_fn)
            stats.record(MessageKind.SUBSCRIPTION, hops)
            c_subscription.inc(hops)
            total_subscription += hops
            records[member] = SubscriptionRecord(
                member, False, 0.0, 0, hops)
            continue

        receipts = advertisement.receipts
        root = (tracer.root_span(at_ms=0.0, kind="subscription")
                if tracing else None)
        found = ripple_search(
            overlay, member, lambda peer: peer in receipts,
            config.subscription_search_ttl, latency_fn, registry=registry,
            tracer=tracer, parent_span=root)
        total_search += found.messages
        stats.record(MessageKind.SUBSCRIPTION_SEARCH, found.messages)
        c_search.inc(found.messages)
        if found.hit is None:
            failed.append(member)
            c_failures.inc()
            continue
        stats.record(MessageKind.SEARCH_RESPONSE)
        c_response.inc()
        total_search += 1
        response_at = 2.0 * found.hit.latency_ms
        response_span = None
        if tracing:
            # The search response rides back on the winning probe's span;
            # the subscription chain then rides on the response.
            response_span = tracer.child_span(found.hit.span)
            tracer.record(found.hit.latency_ms, KIND_SEND,
                          a=found.hit.target, b=member,
                          detail=MessageKind.SEARCH_RESPONSE.value,
                          span=response_span)
            tracer.record(response_at, KIND_DELIVER,
                          a=found.hit.target, b=member,
                          detail=MessageKind.SEARCH_RESPONSE.value,
                          span=response_span)
        # Graft the informed peer's reverse path, then hang the searcher's
        # overlay route to it underneath.
        _graft_reverse_path(tree, advertisement, found.hit.target,
                            as_member=False)
        # hit.route runs searcher -> ... -> hop before target; append the
        # target as the in-tree anchor.
        chain = list(found.hit.route) + [found.hit.target]
        hops = tree.graft_chain(chain)
        tree.mark_member(member)
        hops += 1  # the subscription message handed to the informed peer
        if tracing:
            _emit_chain_spans(tracer, chain, response_at, response_span,
                              latency_fn)
        stats.record(MessageKind.SUBSCRIPTION, hops)
        c_subscription.inc(hops)
        total_subscription += hops
        h_lookup.observe(response_at)
        records[member] = SubscriptionRecord(
            member, True, response_at, found.messages + 1,
            hops)

    tree.validate()
    outcome = SubscriptionOutcome(
        group_id=advertisement.group_id,
        records=records,
        failed=tuple(failed),
        search_messages=total_search,
        subscription_messages=total_subscription,
    )
    return tree, outcome


def _graft_reverse_path(tree: SpanningTree,
                        advertisement: AdvertisementOutcome,
                        peer_id: int,
                        as_member: bool = True) -> list[int]:
    """Graft a receiver's reverse advertisement path into the tree.

    Returns the trimmed chain ``[peer, upstream, ..., anchor]`` actually
    walked (the anchor is the first node already on the tree); its
    length minus one is the subscription-hop count, and span emission
    walks the same chain.
    """
    chain = advertisement.reverse_path(peer_id)  # peer ... rendezvous
    # Trim the chain at the first node already in the tree.
    trimmed: list[int] = []
    for node in chain:
        trimmed.append(node)
        if node in tree:
            break
    if trimmed[-1] not in tree:
        raise SubscriptionError(
            f"reverse path of {peer_id} never reaches the tree")
    if len(trimmed) > 1:
        tree.graft_chain(trimmed)
    if as_member:
        tree.mark_member(peer_id)
    return trimmed


def _emit_chain_spans(tracer: Tracer, chain: Sequence[int],
                      start_ms: float, parent: SpanContext | None,
                      latency_fn: LatencyFn) -> None:
    """Record a hop-by-hop subscription walk as chained spans.

    ``chain`` is ``[joiner, next_hop, ..., anchor]``; each hop's span is
    the child of the previous hop's, so the walk reconstructs as a path
    whose critical-path latency is the accumulated underlay latency.
    """
    detail = MessageKind.SUBSCRIPTION.value
    elapsed = start_ms
    span = parent
    for sender, recipient in zip(chain, chain[1:]):
        span = tracer.child_span(span)
        arrival = elapsed + latency_fn(sender, recipient)
        tracer.record(elapsed, KIND_SEND, a=sender, b=recipient,
                      detail=detail, span=span)
        tracer.record(arrival, KIND_DELIVER, a=sender, b=recipient,
                      detail=detail, span=span)
        elapsed = arrival

"""Service announcement: SSA and NSSA (Sections 2.2 and 3.2).

The rendezvous point advertises the group; every receiving peer forwards
the advertisement onward with a decremented TTL.  The two schemes differ
in the forwarding set:

* **NSSA** (non-selective, DVMRP/Scattercast-style baseline) forwards to
  *every* neighbor not already on the message path — the full path is
  embedded to suppress loops and counting-to-infinity;
* **SSA** (selective) forwards to a *subset* of neighbors sampled by the
  utility function of Section 3.1: the probability of a neighbor being
  included is proportional to its selection-preference value, so
  advertisement paths run over high-utility links.  This is precisely how
  utility awareness is injected into the spanning tree (Section 3.2): the
  links an advertisement traversed become tree edges when a downstream
  peer subscribes.

Propagation is simulated in arrival-time order: a peer's *first* receipt
defines its upstream (reverse-path parent); later copies count as
duplicates and are dropped via the ``receivedAdvertising`` table.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..config import AnnouncementConfig, UtilityConfig
from ..errors import GroupError
from ..obs.registry import Registry, get_default_registry
from ..obs.tracer import (
    KIND_DEAD_LETTER,
    KIND_DELIVER,
    KIND_SEND,
    Tracer,
    get_default_tracer,
)
from ..overlay.graph import OverlayNetwork
from ..overlay.messages import MessageKind, MessageStats
from ..sim.random import RandomSource, weighted_sample_without_replacement
from ..utility.preference import (
    capacity_preference,
    derive_parameters,
    distance_preference,
    selection_preference,
)
from ..utility.resource_level import estimate_resource_level

#: Maps a peer pair to the true message-transit latency in milliseconds.
LatencyFn = Callable[[int, int], float]

#: Optional trust hook: maps ``(observer, subject)`` to a weight in
#: (0, 1] multiplied into SSA forwarding preferences.
TrustFn = Callable[[int, int], float]


@dataclass(frozen=True)
class AdvertisementReceipt:
    """First receipt of the group advertisement at one peer."""

    peer_id: int
    upstream: int | None
    elapsed_ms: float
    hops: int


@dataclass(frozen=True)
class AdvertisementOutcome:
    """Result of propagating one announcement through the overlay."""

    group_id: int
    rendezvous: int
    scheme: str
    receipts: Mapping[int, AdvertisementReceipt]
    messages_sent: int
    duplicates: int

    def receiving_rate(self, overlay_size: int) -> float:
        """Fraction of the overlay that received the advertisement."""
        if overlay_size <= 0:
            raise GroupError("overlay_size must be positive")
        return len(self.receipts) / overlay_size

    def reverse_path(self, peer_id: int) -> list[int]:
        """Chain ``[peer, upstream, ..., rendezvous]`` for a receiver."""
        if peer_id not in self.receipts:
            raise GroupError(f"peer {peer_id} never received the ad")
        chain = [peer_id]
        node = peer_id
        guard = len(self.receipts) + 1
        while (upstream := self.receipts[node].upstream) is not None:
            chain.append(upstream)
            node = upstream
            guard -= 1
            if guard < 0:
                raise GroupError("cycle in advertisement reverse paths")
        return chain


def propagate_advertisement(
    overlay: OverlayNetwork,
    rendezvous: int,
    group_id: int,
    scheme: str,
    latency_fn: LatencyFn,
    rng: RandomSource,
    config: AnnouncementConfig | None = None,
    utility_config: UtilityConfig | None = None,
    stats: MessageStats | None = None,
    trust_fn: TrustFn | None = None,
    registry: Registry | None = None,
    tracer: Tracer | None = None,
) -> AdvertisementOutcome:
    """Propagate one advertisement and return the receipt map.

    ``latency_fn`` supplies true underlay transit latencies (drives arrival
    order); SSA's *forwarding decisions* use coordinate estimates carried
    in the peer quadruplets, as a real deployment would.  ``trust_fn``
    optionally scales each neighbor's forwarding preference by the
    sender's trust in it (see :mod:`repro.trust`), steering announcement
    paths — and hence spanning trees — around misbehaving peers.

    When a span-capturing ``tracer`` is supplied (or installed as the
    process default via :func:`~repro.obs.tracer.enable_tracing`), the
    whole flood records as one ``advertisement`` span tree: every copy
    is a child span of the receipt that caused it, with send/deliver
    records at the procedural virtual times.
    """
    if scheme not in ("ssa", "nssa"):
        raise GroupError(f"unknown announcement scheme {scheme!r}")
    if rendezvous not in overlay:
        raise GroupError(f"rendezvous {rendezvous} is not in the overlay")
    config = config or AnnouncementConfig()
    utility_config = utility_config or UtilityConfig()
    stats = stats or MessageStats()
    registry = registry if registry is not None else get_default_registry()
    tracer = tracer if tracer is not None else get_default_tracer()
    tracing = tracer is not None and tracer.spans
    c_messages = registry.counter(f"messages.{MessageKind.ADVERTISEMENT.value}")
    c_duplicates = registry.counter("advertisement.duplicates")
    c_receipts = registry.counter("advertisement.receipts")
    detail = MessageKind.ADVERTISEMENT.value

    root = (tracer.root_span(at_ms=0.0, kind="advertisement")
            if tracing else None)
    receipts: dict[int, AdvertisementReceipt] = {
        rendezvous: AdvertisementReceipt(rendezvous, None, 0.0, 0)
    }
    messages = 0
    duplicates = 0
    counter = itertools.count()
    # (arrival_ms, seq, sender, receiver, ttl, path, span); the unique
    # seq settles every heap comparison before the (non-orderable) span.
    heap: list[tuple] = []

    def forward_from(peer_id: int, elapsed_ms: float, ttl: int,
                     path: tuple[int, ...], parent_span) -> None:
        nonlocal messages
        if ttl <= 0:
            return
        targets = _forwarding_targets(
            overlay, peer_id, path, scheme, config, utility_config, rng,
            trust_fn)
        for target in targets:
            arrival = elapsed_ms + latency_fn(peer_id, target)
            span = None
            if tracing:
                span = tracer.child_span(parent_span)
                tracer.record(elapsed_ms, KIND_SEND, a=peer_id, b=target,
                              detail=detail, span=span)
            heapq.heappush(
                heap, (arrival, next(counter), peer_id, target, ttl - 1,
                       path, span))
            messages += 1
            stats.record(MessageKind.ADVERTISEMENT)
            c_messages.inc()

    forward_from(rendezvous, 0.0, config.advertisement_ttl, (rendezvous,),
                 root)
    while heap:
        arrival, _, sender, receiver, ttl, path, span = heapq.heappop(heap)
        if receiver in receipts:
            duplicates += 1  # dropped by the receivedAdvertising table
            c_duplicates.inc()
            if tracing:
                tracer.record(arrival, KIND_DELIVER, a=sender, b=receiver,
                              detail=detail, span=span)
            continue
        if receiver not in overlay:
            if tracing:
                tracer.record(arrival, KIND_DEAD_LETTER, a=sender,
                              b=receiver, detail=detail, span=span)
            continue  # peer departed mid-flight
        if tracing:
            tracer.record(arrival, KIND_DELIVER, a=sender, b=receiver,
                          detail=detail, span=span)
        receipts[receiver] = AdvertisementReceipt(
            receiver, sender, arrival, len(path))
        c_receipts.inc()
        forward_from(receiver, arrival, ttl, path + (receiver,), span)

    return AdvertisementOutcome(
        group_id=group_id,
        rendezvous=rendezvous,
        scheme=scheme,
        receipts=receipts,
        messages_sent=messages,
        duplicates=duplicates,
    )


def _forwarding_targets(
    overlay: OverlayNetwork,
    peer_id: int,
    path: tuple[int, ...],
    scheme: str,
    config: AnnouncementConfig,
    utility_config: UtilityConfig,
    rng: RandomSource,
    trust_fn: TrustFn | None = None,
) -> list[int]:
    """Neighbors a peer forwards the advertisement to.

    Only *local* knowledge excludes targets: nodes on the embedded message
    path (which certainly hold the ad) are skipped, as in DVMRP's loop
    suppression.  Copies sent to peers that received the ad via another
    path still cost a message and are dropped at the receiver — this
    duplicate traffic is exactly the overhead Figure 11 charges to NSSA.
    """
    on_path = set(path)
    neighbors = [n for n in overlay.neighbors(peer_id) if n not in on_path]
    if not neighbors:
        return []
    if scheme == "nssa":
        return neighbors

    fanout = max(config.ssa_min_fanout,
                 int(round(config.ssa_fanout_fraction * len(neighbors))))
    fanout = min(fanout, len(neighbors))
    if config.ssa_strategy == "random":
        # The basic framework of Section 2.2: a uniformly random subset.
        picks = rng.choice(len(neighbors), size=fanout, replace=False)
        return [neighbors[int(i)] for i in picks]

    infos = [overlay.peer(n) for n in neighbors]
    me = overlay.peer(peer_id)
    capacities = np.asarray([info.capacity for info in infos], dtype=float)
    distances = np.asarray(
        [me.coordinate_distance(info) for info in infos], dtype=float)
    resource_level = estimate_resource_level(
        me.capacity, capacities, utility_config)
    if config.ssa_strategy == "distance":
        alpha, _, _ = derive_parameters(resource_level, utility_config)
        preference = distance_preference(distances, alpha, utility_config)
    elif config.ssa_strategy == "capacity":
        _, beta, _ = derive_parameters(resource_level, utility_config)
        preference = capacity_preference(capacities, beta)
    else:  # "utility" — the paper's Section 3.2 scheme
        preference = selection_preference(
            capacities, distances, resource_level, utility_config)
    if trust_fn is not None:
        weights = np.asarray(
            [trust_fn(peer_id, n) for n in neighbors], dtype=float)
        preference = preference * np.maximum(weights, 0.0)
        total = preference.sum()
        if total <= 0.0:
            return []
        preference = preference / total
    return weighted_sample_without_replacement(
        rng, neighbors, preference, fanout)

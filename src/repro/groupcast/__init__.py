"""GroupCast core: the paper's primary contribution.

Rendezvous selection, SSA/NSSA service announcement, reverse-path
subscription with ripple-search fallback, utility-aware spanning trees,
payload dissemination, and the :class:`GroupCastMiddleware` facade.
"""

from .advertisement import (
    AdvertisementOutcome,
    AdvertisementReceipt,
    propagate_advertisement,
)
from .spanning_tree import SpanningTree
from .subscription import SubscriptionOutcome, subscribe_members
from .rendezvous import select_rendezvous
from .dissemination import DisseminationReport, disseminate
from .group import CommunicationGroup
from .middleware import GroupCastMiddleware
from .repair import RepairReport, repair_tree
from .replication import BackupPlan, FailoverReport, failover

__all__ = [
    "AdvertisementOutcome",
    "AdvertisementReceipt",
    "propagate_advertisement",
    "SpanningTree",
    "SubscriptionOutcome",
    "subscribe_members",
    "select_rendezvous",
    "DisseminationReport",
    "disseminate",
    "CommunicationGroup",
    "GroupCastMiddleware",
    "RepairReport",
    "repair_tree",
    "BackupPlan",
    "FailoverReport",
    "failover",
]

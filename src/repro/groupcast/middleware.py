"""GroupCastMiddleware — the public facade of the library.

A downstream application creates a middleware instance over a deployment
(or lets the middleware build one), then opens communication groups and
publishes payloads::

    from repro import GroupCastMiddleware

    mw = GroupCastMiddleware.build(peer_count=500, seed=11)
    group = mw.create_group(members=mw.sample_members(50))
    report = mw.publish(group.group_id, source=next(iter(group.members)))
    print(report.average_member_delay_ms)

The facade wires together rendezvous selection, advertisement
(SSA by default, NSSA available for comparison), subscription, spanning
trees and dissemination, and exposes the IP-multicast reference needed to
compute the paper's efficiency metrics.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from ..config import GroupCastConfig
from ..deployment import Deployment, build_deployment
from ..errors import GroupError
from ..network.multicast import IPMulticastTree, build_ip_multicast_tree
from ..overlay.messages import MessageStats
from ..peers.capacity import CapacityDistribution, PAPER_CAPACITY_DISTRIBUTION
from ..sim.random import spawn_rng
from .advertisement import propagate_advertisement
from .dissemination import DisseminationReport
from .group import CommunicationGroup
from .rendezvous import select_rendezvous
from .subscription import subscribe_members


class GroupCastMiddleware:
    """Utility-aware group communication over an unstructured P2P overlay."""

    def __init__(self, deployment: Deployment,
                 default_scheme: str = "ssa",
                 trust_ledger=None) -> None:
        if default_scheme not in ("ssa", "nssa"):
            raise GroupError(f"unknown scheme {default_scheme!r}")
        self.deployment = deployment
        self.default_scheme = default_scheme
        self.trust_ledger = trust_ledger
        self.stats = MessageStats()
        self._groups: dict[int, CommunicationGroup] = {}
        self._group_ids = itertools.count(1)
        self._rng = spawn_rng(deployment.config.seed, "middleware")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        peer_count: int,
        config: GroupCastConfig | None = None,
        seed: int | None = None,
        overlay_kind: str = "groupcast",
        capacities: CapacityDistribution = PAPER_CAPACITY_DISTRIBUTION,
        default_scheme: str = "ssa",
    ) -> "GroupCastMiddleware":
        """Build a full deployment and wrap it."""
        deployment = build_deployment(
            peer_count, kind=overlay_kind, config=config, seed=seed,
            capacities=capacities)
        return cls(deployment, default_scheme=default_scheme)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def peer_count(self) -> int:
        """Number of peers in the overlay."""
        return self.deployment.peer_count

    def peer_ids(self) -> list[int]:
        """All peer ids."""
        return self.deployment.peer_ids()

    def sample_members(self, count: int,
                       exclude: Sequence[int] = ()) -> list[int]:
        """Uniformly sample a candidate member set."""
        pool = [p for p in self.deployment.peer_ids() if p not in set(exclude)]
        if count > len(pool):
            raise GroupError(
                f"cannot sample {count} members from {len(pool)} peers")
        picks = self._rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in picks]

    def group(self, group_id: int) -> CommunicationGroup:
        """Look up an established group."""
        try:
            return self._groups[group_id]
        except KeyError:
            raise GroupError(f"unknown group {group_id}")

    def groups(self) -> list[CommunicationGroup]:
        """All established groups."""
        return list(self._groups.values())

    # ------------------------------------------------------------------
    # Group lifecycle
    # ------------------------------------------------------------------
    def create_group(
        self,
        members: Sequence[int],
        rendezvous: int | None = None,
        scheme: str | None = None,
    ) -> CommunicationGroup:
        """Establish a communication group connecting ``members``.

        Without an explicit ``rendezvous``, the first member initiates the
        random-walk search of Section 2.2 to locate a capable node.
        """
        if not members:
            raise GroupError("a group needs at least one member")
        scheme = scheme or self.default_scheme
        deployment = self.deployment
        if rendezvous is None:
            rendezvous = select_rendezvous(
                deployment.overlay, members[0], self._rng,
                deployment.config.rendezvous, self.stats)

        group_id = next(self._group_ids)
        trust_fn = (self.trust_ledger.trust_fn()
                    if self.trust_ledger is not None else None)
        advertisement = propagate_advertisement(
            overlay=deployment.overlay,
            rendezvous=rendezvous,
            group_id=group_id,
            scheme=scheme,
            latency_fn=deployment.peer_distance_ms,
            rng=self._rng,
            config=deployment.config.announcement,
            utility_config=deployment.config.utility,
            stats=self.stats,
            trust_fn=trust_fn,
        )
        tree, subscription = subscribe_members(
            overlay=deployment.overlay,
            advertisement=advertisement,
            members=members,
            latency_fn=deployment.peer_distance_ms,
            config=deployment.config.announcement,
            stats=self.stats,
        )
        group = CommunicationGroup(
            group_id=group_id,
            rendezvous=rendezvous,
            advertisement=advertisement,
            tree=tree,
            subscription=subscription,
        )
        self._groups[group_id] = group
        return group

    def publish(self, group_id: int, source: int) -> DisseminationReport:
        """Flood one payload from ``source`` through the group's tree."""
        group = self.group(group_id)
        return group.publish(source, self.deployment.underlay, self.stats)

    def close_group(self, group_id: int) -> None:
        """Tear down a group."""
        self._groups.pop(group_id, None)

    def handle_peer_failure(self, peer_id: int) -> dict[int, object]:
        """Process a peer crash across the whole middleware.

        Removes the peer from the overlay and host cache, then repairs
        the spanning tree of every group the peer was forwarding for.
        Groups whose *rendezvous* crashed are re-established from their
        surviving members.  Returns per-group repair reports (or the new
        group object where re-establishment was needed).
        """
        deployment = self.deployment
        deployment.host_cache.unregister(peer_id)
        if peer_id in deployment.overlay:
            deployment.overlay.remove_peer(peer_id)

        outcomes: dict[int, object] = {}
        for group_id, group in list(self._groups.items()):
            if peer_id not in group.tree:
                continue
            if peer_id == group.rendezvous:
                survivors = [m for m in group.members
                             if m != peer_id
                             and m in deployment.overlay]
                self.close_group(group_id)
                if survivors:
                    outcomes[group_id] = self.create_group(survivors)
                continue
            outcomes[group_id] = group.handle_failure(
                peer_id, deployment.overlay, self.stats)
        return outcomes

    # ------------------------------------------------------------------
    # Evaluation support
    # ------------------------------------------------------------------
    def ip_multicast_reference(self, group_id: int,
                               source: int) -> IPMulticastTree:
        """IP multicast tree reaching the group's members from ``source``."""
        group = self.group(group_id)
        receivers = [m for m in group.members if m != source]
        if not receivers:
            raise GroupError("group has no receivers besides the source")
        return build_ip_multicast_tree(
            self.deployment.underlay, source, receivers)

"""Payload dissemination through a spanning tree.

Group communication differs from classic end-system multicast in that
*any* member may initiate a message (Section 2.2); the payload floods the
spanning tree outward from its source — each tree node forwards on every
tree link except the one it arrived on, so every node receives exactly one
copy.

The report captures the two efficiency metrics of Section 4.3:

* per-member delays, feeding *relative delay penalty* (average ESM delay
  over average IP-multicast delay);
* the number of IP messages, feeding *link stress* (IP messages of the
  ESM tree over IP messages of the IP multicast tree): every overlay hop
  ``u -> v`` generates one IP packet on each physical link of the unicast
  route between ``u`` and ``v``.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import GroupError
from ..network.underlay import UnderlayNetwork
from ..obs.tracer import (
    KIND_DELIVER,
    KIND_SEND,
    Tracer,
    get_default_tracer,
)
from ..overlay.messages import MessageKind, MessageStats
from .spanning_tree import SpanningTree


@dataclass(frozen=True)
class DisseminationReport:
    """Outcome of flooding one payload through a spanning tree."""

    source: int
    member_delays_ms: Mapping[int, float]
    overlay_messages: int
    ip_messages: int
    physical_link_stress: Mapping[tuple[int, int], int]

    @property
    def average_member_delay_ms(self) -> float:
        """Mean delay over receiving members (source excluded)."""
        if not self.member_delays_ms:
            return 0.0
        return sum(self.member_delays_ms.values()) / len(self.member_delays_ms)

    @property
    def max_member_delay_ms(self) -> float:
        """Worst member delay."""
        if not self.member_delays_ms:
            return 0.0
        return max(self.member_delays_ms.values())

    @property
    def max_physical_link_stress(self) -> int:
        """Highest per-physical-link copy count."""
        if not self.physical_link_stress:
            return 0
        return max(self.physical_link_stress.values())


def disseminate(
    tree: SpanningTree,
    source: int,
    underlay: UnderlayNetwork,
    stats: MessageStats | None = None,
    capacities: Optional[Mapping[int, float]] = None,
    payload_kbits: float = 0.0,
    tracer: Tracer | None = None,
) -> DisseminationReport:
    """Flood one payload from ``source`` through ``tree``.

    With ``capacities`` and a positive ``payload_kbits``, forwarding pays
    a *serialization delay*: a peer of capacity ``C`` (in 64 kbps units,
    Section 3.1) transmits one copy in ``payload_kbits / (64 * C)``
    seconds and sends its copies sequentially, so the ``i``-th outgoing
    copy waits ``i`` transmission slots.  This is how an overloaded weak
    forwarder turns into latency — the effect the capacity half of the
    utility function exists to avoid.  Without these arguments the model
    is pure propagation delay, as in the paper's evaluation.
    """
    if source not in tree:
        raise GroupError(f"source {source} is not on the spanning tree")
    if payload_kbits < 0.0:
        raise GroupError("payload_kbits must be non-negative")
    stats = stats or MessageStats()
    tracer = tracer if tracer is not None else get_default_tracer()
    tracing = tracer is not None and tracer.spans

    adjacency = tree.tree_adjacency()
    delays: dict[int, float] = {source: 0.0}
    # Each copy's span parents on the span of the copy that reached its
    # forwarder, so the flood reconstructs as the tree it traversed.
    spans: dict[int, object] = {
        source: tracer.root_span(at_ms=0.0, kind="dissemination")
        if tracing else None}
    overlay_messages = 0
    ip_messages = 0
    link_stress: Counter[tuple[int, int]] = Counter()

    def transmit_ms(node: int) -> float:
        if capacities is None or payload_kbits <= 0.0:
            return 0.0
        return 1000.0 * payload_kbits / (64.0 * capacities[node])

    queue = deque([source])
    while queue:
        node = queue.popleft()
        fresh = [neighbor for neighbor in sorted(adjacency[node])
                 if neighbor not in delays]
        if not fresh:
            continue
        slot = transmit_ms(node)
        # One vectorized gather and one predecessor-row walk for all of
        # this node's downstream copies, instead of per-pair queries.
        hop_delays = underlay.peer_distances_ms(node, fresh)
        hop_link_lists = underlay.peer_path_links_many(node, fresh)
        for position, (neighbor, hop_delay, hop_links) in enumerate(
                zip(fresh, hop_delays, hop_link_lists), start=1):
            sent_at = delays[node] + position * slot
            delays[neighbor] = sent_at + float(hop_delay)
            if tracing:
                span = tracer.child_span(spans[node])
                spans[neighbor] = span
                tracer.record(sent_at, KIND_SEND, a=node, b=neighbor,
                              detail=MessageKind.PAYLOAD.value, span=span)
                tracer.record(delays[neighbor], KIND_DELIVER, a=node,
                              b=neighbor,
                              detail=MessageKind.PAYLOAD.value, span=span)
            overlay_messages += 1
            ip_messages += len(hop_links)
            link_stress.update(hop_links)
            stats.record(MessageKind.PAYLOAD)
            queue.append(neighbor)

    member_delays = {member: delays[member]
                     for member in tree.members
                     if member != source and member in delays}
    return DisseminationReport(
        source=source,
        member_delays_ms=member_delays,
        overlay_messages=overlay_messages,
        ip_messages=ip_messages,
        physical_link_stress=dict(link_stress),
    )

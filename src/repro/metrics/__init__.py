"""Evaluation metrics of Section 4."""

from .tree_metrics import (
    aggregate_workloads,
    link_stress,
    node_stress,
    overload_index,
    relative_delay_penalty,
)
from .overlay_metrics import (
    average_neighbor_distance_ms,
    degree_histogram,
    power_law_fit,
)

__all__ = [
    "aggregate_workloads",
    "link_stress",
    "node_stress",
    "overload_index",
    "relative_delay_penalty",
    "average_neighbor_distance_ms",
    "degree_histogram",
    "power_law_fit",
]

"""Evaluation metrics of Section 4."""

from .tree_metrics import (
    aggregate_workloads,
    aggregate_workloads_arrays,
    link_stress,
    node_stress,
    node_stress_arrays,
    overload_index,
    overload_index_arrays,
    relative_delay_penalty,
)
from .overlay_metrics import (
    average_neighbor_distance_ms,
    degree_histogram,
    power_law_fit,
)

__all__ = [
    "aggregate_workloads",
    "aggregate_workloads_arrays",
    "link_stress",
    "node_stress",
    "node_stress_arrays",
    "overload_index",
    "overload_index_arrays",
    "relative_delay_penalty",
    "average_neighbor_distance_ms",
    "degree_histogram",
    "power_law_fit",
]

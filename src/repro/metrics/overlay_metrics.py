"""Overlay-level structural metrics (Section 4.1).

Covers the degree distribution / power-law analysis behind Figures 7-8
and the neighbor-proximity measurements behind Figures 9-10.
"""

from __future__ import annotations

import numpy as np

from ..errors import OverlayError
from ..network.underlay import UnderlayNetwork
from ..overlay.graph import OverlayNetwork


def degree_histogram(overlay: OverlayNetwork
                     ) -> tuple[np.ndarray, np.ndarray]:
    """``(degree, count)`` pairs with zero-degree peers dropped."""
    values, counts = overlay.degree_distribution()
    keep = values > 0
    return values[keep], counts[keep]


def power_law_fit(values: np.ndarray,
                  counts: np.ndarray) -> tuple[float, float]:
    """Fit ``count ~ degree**-k`` in log-log space.

    Returns ``(exponent, r_squared)`` of the least-squares line; the
    exponent is reported positive for a decaying distribution.
    """
    if len(values) != len(counts):
        raise OverlayError("values and counts must have equal length")
    keep = (np.asarray(values) > 0) & (np.asarray(counts) > 0)
    x = np.log10(np.asarray(values, dtype=float)[keep])
    y = np.log10(np.asarray(counts, dtype=float)[keep])
    if x.size < 3:
        raise OverlayError("need at least three points for a power-law fit")
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return -float(slope), r_squared


def average_neighbor_distance_ms(
    overlay: OverlayNetwork, underlay: UnderlayNetwork
) -> np.ndarray:
    """Per-peer mean underlay latency to overlay neighbors (Figures 9-10).

    All (peer, neighbor) edges are resolved in one flat
    :meth:`~repro.network.underlay.UnderlayNetwork.peer_pair_distances`
    gather and reduced per peer, instead of one routing query per peer.
    Peers without neighbors report 0.0.
    """
    peer_ids = overlay.peer_ids()
    neighbor_lists = [overlay.neighbors(peer_id) for peer_id in peer_ids]
    counts = np.array([len(neighbors) for neighbors in neighbor_lists],
                      dtype=np.int64)
    if counts.sum() == 0:
        return np.zeros(len(peer_ids), dtype=float)
    sources = np.repeat(np.asarray(peer_ids, dtype=np.intp), counts)
    targets = np.concatenate(
        [np.asarray(neighbors, dtype=np.intp)
         for neighbors in neighbor_lists if neighbors])
    flat = underlay.peer_pair_distances(sources, targets)
    segment = np.repeat(np.arange(len(peer_ids)), counts)
    sums = np.bincount(segment, weights=flat, minlength=len(peer_ids))
    return np.divide(sums, counts, out=np.zeros(len(peer_ids), dtype=float),
                     where=counts > 0)

"""Figures 1-6: selection preference vs distance and vs capacity.

The paper simulates the selection process of three peers with resource
levels 0.05 (weak), 0.5 (medium) and 0.95 (powerful) over a candidate
list of 1000 peers whose capacities follow Zipf(2.0) and whose distances
are Unif(0 ms, 400 ms).  Figures 1-3 plot preference against distance,
Figures 4-6 against capacity, splitting candidates into the top-20 %
powerful versus the remaining 80 %.

We regenerate the underlying series and summarise each plot by the
statistics that carry the figures' message:

* the rank correlation between preference and distance (strongly negative
  for the weak peer, near zero for the powerful one);
* the rank correlation between preference and capacity (the mirror
  image);
* the mean preference of the top-20 % powerful candidates relative to
  the rest.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from ..peers.capacity import zipf_capacities
from ..sim.random import spawn_rng
from ..utility.preference import selection_preference
from .common import ExperimentResult

RESOURCE_LEVELS = (0.05, 0.50, 0.95)
CANDIDATES = 1000
DISTANCE_RANGE_MS = (0.0, 400.0)


def generate_candidates(seed: int = 7, count: int = CANDIDATES):
    """The synthetic candidate list of Section 3.1's simulation."""
    rng = spawn_rng(seed, "preference-candidates")
    capacities = zipf_capacities(rng, count, exponent=2.0)
    distances = rng.uniform(*DISTANCE_RANGE_MS, size=count)
    return capacities, distances


def preference_series(resource_level: float, seed: int = 7):
    """Raw (capacity, distance, preference) arrays behind one figure pair."""
    capacities, distances = generate_candidates(seed)
    preference = selection_preference(capacities, distances, resource_level)
    return capacities, distances, preference


def run(seed: int = 7) -> ExperimentResult:
    """Regenerate the Figure 1-6 summary statistics."""
    result = ExperimentResult(
        title=("Figures 1-6: selection preference structure "
               "(1000 candidates, Zipf(2.0) capacity, Unif(0,400ms) "
               "distance)"),
        columns=("resource_level", "corr_pref_distance",
                 "corr_pref_capacity", "top20_pref_share",
                 "mean_pref_top20", "mean_pref_rest"),
    )
    for resource_level in RESOURCE_LEVELS:
        capacities, distances, preference = preference_series(
            resource_level, seed)
        corr_distance = scipy_stats.spearmanr(preference, distances).statistic
        corr_capacity = scipy_stats.spearmanr(preference, capacities).statistic
        threshold = np.quantile(capacities, 0.8)
        powerful = capacities >= threshold
        top20_share = float(preference[powerful].sum())
        result.add_row(
            resource_level,
            float(corr_distance),
            float(corr_capacity),
            top20_share,
            float(preference[powerful].mean()),
            float(preference[~powerful].mean()),
        )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Per-tenant SLO attainment over the Zipf thousand-group workload.

The ROADMAP item-4 scoreboard as a runnable experiment: a synthetic
power-law overlay hosts ~1000 Zipf-sized groups owned by a heavy-tailed
tenant population, one batched epoch pass runs with dimensional
telemetry on (per-group depth + delay sketch columns), and the
:class:`~repro.obs.slo.AttainmentTable` folds the group columns onto
tenants with segmented reductions.

Determinism contract: the pass runs through
:func:`repro.core.parallel.run_sharded` with a *fixed* shard count, so
the result — and therefore the canonical ``attainment.json`` bytes —
is bit-identical for every ``--jobs`` value.  The CI ``tenancy`` job
pins exactly that: same seed, ``--jobs {1, 2, 4}``, byte-identical
attainment tables.
"""

from __future__ import annotations

from pathlib import Path

from ..core import (
    edge_latencies_from_coords,
    run_sharded,
    synthetic_power_law_csr,
)
from ..obs.dims import DEFAULT_SKETCH_LAYOUT
from ..obs.slo import AttainmentTable, SLOSpec
from ..sim.random import spawn_rng
from ..workloads.groups import assign_tenants, sample_group_rows
from .common import ExperimentResult

#: Default workload shape: 1k Zipf-sized groups over 2k rows, owned by
#: a Zipf-weighted tenant population.
DEFAULT_PEERS = 2048
DEFAULT_GROUPS = 1000
DEFAULT_TENANTS = 50
DEFAULT_TTL = 8

#: Fixed shard count — independent of ``jobs`` so the merged result is
#: bit-identical for any worker count.
SHARDS = 8

#: The objectives the workload is judged against.
DEFAULT_SPEC = SLOSpec(min_delivery_ratio=0.95,
                       max_p99_delay_ms=500.0)


def run(seed: int = 7, peers: int = DEFAULT_PEERS,
        groups: int = DEFAULT_GROUPS, tenants: int = DEFAULT_TENANTS,
        ttl: int = DEFAULT_TTL, jobs: int = 1,
        spec: SLOSpec = DEFAULT_SPEC,
        output_dir: str | Path | None = None,
        ) -> tuple[ExperimentResult, AttainmentTable]:
    """One dims-on epoch pass scored per tenant.

    Returns the printable worst-tenant table and the full
    :class:`AttainmentTable`; with ``output_dir`` set, also writes the
    canonical ``attainment.json`` bytes there (the CI byte-identity
    artifact).
    """
    rng = spawn_rng(seed, "tenancy-world")
    csr = synthetic_power_law_csr(peers, rng)
    coords = rng.uniform(0.0, 100.0, size=(peers, 2))
    latency = edge_latencies_from_coords(csr, coords)
    roots, member_rows, indptr = sample_group_rows(
        spawn_rng(seed, "tenancy-groups"), groups, peers, max_size=256)
    tenant_of_group = assign_tenants(
        spawn_rng(seed, "tenancy-tenants"), groups, tenants)

    result = run_sharded(
        csr, latency, coords, roots, member_rows, indptr, ttl=ttl,
        scheme="nssa", shards=SHARDS, jobs=jobs,
        dims_layout=DEFAULT_SKETCH_LAYOUT)
    table = AttainmentTable.from_pass(
        result, spec, tenant_of_group, DEFAULT_SKETCH_LAYOUT)

    if output_dir is not None:
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        (target / "attainment.json").write_bytes(
            table.to_canonical_json())

    cdf = table.attainment_cdf()
    out = ExperimentResult(
        title=(f"Per-tenant SLO attainment: {groups} groups, "
               f"{tenants} tenants, {peers} rows (seed {seed}; "
               f"attained {cdf['attained_fraction']:.1%})"),
        columns=("tenant", "groups", "members", "delivered",
                 "delivery_ratio", "p99_ms", "depth", "attained"))
    for row in table.worst(10):
        p99 = row.get("p99_ms")
        out.add_row(row["tenant"], row["groups"], row["members"],
                    row["delivered"], round(row["delivery_ratio"], 4),
                    round(p99, 2) if p99 is not None else float("inf"),
                    row["depth"], "yes" if row["attained"] else "NO")
    return out, table

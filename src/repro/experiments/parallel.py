"""Deterministic process-parallel fan-out over experiment sweep points.

The paper's sweeps (Figures 11-17) decompose naturally into independent
*(size, topology)* points: every point builds its own deployments from
named random streams seeded by ``(seed + topology, label)``, so no state
crosses point boundaries.  :func:`run_points` exploits that by fanning
the points out over a process pool and collecting results **in
submission order**, which makes the merged tables byte-identical for any
``--jobs`` value (including 1, which runs inline without a pool).

Telemetry survives the fan-out: when the parent's default
:class:`~repro.obs.registry.Registry` is enabled, every worker runs its
point under a fresh enabled registry and ships the typed instrument
state back with the result; the parent folds the states in point order
via :meth:`~repro.obs.registry.Registry.merge_state`, so counter and
histogram totals are independent of the worker count.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from ..obs.registry import (
    NULL_REGISTRY,
    enable_telemetry,
    get_default_registry,
    set_default_registry,
)


def _run_in_worker(payload: tuple) -> tuple[Any, dict | None]:
    """Execute one sweep point, optionally under a fresh registry."""
    func, args, telemetry = payload
    if not telemetry:
        return func(*args), None
    registry = enable_telemetry()
    try:
        value = func(*args)
        state = registry.dump_state()
    finally:
        set_default_registry(NULL_REGISTRY)
    return value, state


def pool_context():
    """The multiprocessing context used for sweep workers.

    ``fork`` (where available) shares the already-imported scientific
    stack with workers instead of re-importing it per process; other
    platforms fall back to their default start method.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_points(func: Callable, arg_tuples: Sequence[tuple],
               jobs: int = 1) -> list:
    """Map ``func`` over ``arg_tuples``, optionally across processes.

    ``func`` must be a module-level (picklable) callable; results come
    back in the order of ``arg_tuples`` regardless of which worker
    finished first.  ``jobs <= 1`` (or a single point) runs inline, with
    telemetry recorded directly into the parent registry.
    """
    jobs = max(1, int(jobs))
    arg_tuples = [tuple(args) for args in arg_tuples]
    registry = get_default_registry()
    telemetry = registry.enabled
    if jobs == 1 or len(arg_tuples) <= 1:
        if not telemetry:
            return [func(*args) for args in arg_tuples]
        # Run each point under its own registry and fold the states in
        # point order — the same float-summation grouping as the pool
        # path, so histogram sums are bit-identical for any jobs value.
        values = []
        for args in arg_tuples:
            point_registry = enable_telemetry()
            try:
                value = func(*args)
                state = point_registry.dump_state()
            finally:
                set_default_registry(registry)
            registry.merge_state(state)
            values.append(value)
        return values
    payloads = [(func, args, telemetry) for args in arg_tuples]
    workers = min(jobs, len(payloads))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=pool_context()) as pool:
        outcomes = list(pool.map(_run_in_worker, payloads))
    values = []
    for value, state in outcomes:
        if state:
            registry.merge_state(state)
        values.append(value)
    return values

"""Figures 7-10: overlay degree distributions and neighbor proximity.

* Figure 7: log-log degree distribution of a 5000-peer GroupCast overlay.
* Figure 8: same for a centralized PLOD power-law overlay (alpha = 1.8).
* Figures 9-10: per-peer average underlay distance to overlay neighbors
  for 1000-peer GroupCast vs random power-law overlays.

The headline shapes: both overlays are power-law-ish but GroupCast lacks
the long tail (and has a lower clustering coefficient), and GroupCast
neighbors are far closer in the underlay.
"""

from __future__ import annotations

import numpy as np

from ..metrics.overlay_metrics import (
    average_neighbor_distance_ms,
    degree_histogram,
    power_law_fit,
)
from ..sim.random import spawn_rng
from .common import ExperimentResult, build_for_experiment

DEGREE_PEERS = 5000
DISTANCE_PEERS = 1000


def run_degree_distribution(peer_count: int = DEGREE_PEERS,
                            seed: int = 7) -> ExperimentResult:
    """Figures 7-8: degree distribution statistics for both overlays."""
    result = ExperimentResult(
        title=f"Figures 7-8: degree distributions ({peer_count} peers)",
        columns=("overlay", "peers", "edges", "mean_degree", "max_degree",
                 "powerlaw_exponent", "fit_r2", "clustering"),
    )
    for kind in ("groupcast", "plod"):
        deployment = build_for_experiment(peer_count, kind, seed)
        overlay = deployment.overlay
        values, counts = degree_histogram(overlay)
        exponent, r2 = power_law_fit(values, counts)
        clustering = overlay.clustering_coefficient(
            rng=spawn_rng(seed, "clustering", kind), sample=500)
        result.add_row(
            kind,
            overlay.peer_count,
            overlay.edge_count,
            2.0 * overlay.edge_count / overlay.peer_count,
            int(values.max()),
            exponent,
            r2,
            clustering,
        )
    return result


def run_neighbor_distance(peer_count: int = DISTANCE_PEERS,
                          seed: int = 7) -> ExperimentResult:
    """Figures 9-10: average underlay distance to overlay neighbors."""
    result = ExperimentResult(
        title=(f"Figures 9-10: avg distance to overlay neighbors "
               f"({peer_count} peers)"),
        columns=("overlay", "mean_ms", "median_ms", "p90_ms", "max_ms"),
    )
    for kind in ("groupcast", "plod"):
        deployment = build_for_experiment(peer_count, kind, seed)
        distances = average_neighbor_distance_ms(
            deployment.overlay, deployment.underlay)
        distances = distances[distances > 0]
        result.add_row(
            kind,
            float(distances.mean()),
            float(np.median(distances)),
            float(np.quantile(distances, 0.9)),
            float(distances.max()),
        )
    return result


def run_diameter(peer_count: int = DISTANCE_PEERS,
                 seed: int = 7) -> ExperimentResult:
    """Section 3.3's diameter argument, measured.

    The paper motivates utility-based overlay management with Gnutella's
    large-diameter pathology: scoped searches become expensive and
    spanning trees deep.  This experiment measures the hop-pair expansion
    exponent ``hbar`` (``P(h) ~ h**hbar``) and the estimated diameter of
    all three overlay constructions.
    """
    from ..analysis.powerlaw import hop_pair_exponent

    result = ExperimentResult(
        title=(f"Overlay diameter and expansion ({peer_count} peers) - "
               "Section 3.3"),
        columns=("overlay", "mean_degree", "hbar", "estimated_diameter"),
    )
    for kind in ("groupcast", "plod", "random"):
        deployment = build_for_experiment(peer_count, kind, seed)
        overlay = deployment.overlay
        rng = spawn_rng(seed, "diameter", kind)
        hbar, _ = hop_pair_exponent(overlay, rng, sample=48)
        result.add_row(
            kind,
            2.0 * overlay.edge_count / overlay.peer_count,
            hbar,
            overlay.estimated_diameter(rng, samples=24),
        )
    return result


def run(seed: int = 7, degree_peers: int = DEGREE_PEERS,
        distance_peers: int = DISTANCE_PEERS) -> list[ExperimentResult]:
    """Both experiments of Section 4.1, plus the diameter study."""
    return [
        run_degree_distribution(degree_peers, seed),
        run_neighbor_distance(distance_peers, seed),
        run_diameter(distance_peers, seed),
    ]


def main() -> None:  # pragma: no cover - CLI glue
    for result in run():
        print(result.format_table())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()

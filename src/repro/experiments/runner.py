"""Command-line experiment runner.

Usage::

    python -m repro.experiments all
    python -m repro.experiments fig1 fig11 fig14
    groupcast-experiments fig9 --seed 3 --sizes 1000 2000

Figure names map to the experiment modules; running ``all`` regenerates
every table/figure of the paper's evaluation section.  ``--telemetry``
installs an enabled observability registry for the run and appends a
snapshot of every instrument (message counters per kind, search traffic,
lookup-latency histogram, ...) after the tables.  ``--report`` goes
further: it turns on causal span tracing and virtual-time profiling for
the run and writes a per-run report (Markdown + JSON: top episodes by
critical path, message cost by kind and protocol phase, time-series
summaries, conservation check) plus the span trace as JSON lines under
``out/`` (or ``--output``).

The ``live`` experiment (opt-in, excluded from ``all``) runs a real
asyncio loopback episode under a fault plan; with ``--report`` its
streaming telemetry produces the report's "Live run" section plus the
streamed ``trace.jsonl``/``snapshots.jsonl``/``incidents.json``, and
``--watchdogs`` arms the online anomaly rules against it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Iterable

from ..obs import (
    NULL_REGISTRY,
    default_watchdogs,
    disable_profiling,
    disable_topology,
    disable_tracing,
    enable_profiling,
    enable_telemetry,
    enable_topology,
    enable_tracing,
    set_default_registry,
)
from ..obs.report import build_report, write_report
from . import (
    app_performance,
    churn_cost,
    live_run,
    resilience,
    overlay_structure,
    preference,
    service_lookup,
    tenancy,
)
from . import export
from .common import ExperimentResult


def _preference(args) -> list[ExperimentResult]:
    return [preference.run(seed=args.seed)]


def _live(args) -> list[ExperimentResult]:
    # Stream the live artifacts (trace.jsonl / snapshots.jsonl /
    # incidents.json) whenever a report was requested; the report
    # itself is assembled afterwards from live_run.LAST_TELEMETRY.
    out_dir = args.output if args.output is not None else Path("out")
    return live_run.run(
        seed=args.seed,
        output_dir=out_dir if args.report else None,
        watchdogs=args.watchdogs)


def _tenancy(args) -> list[ExperimentResult]:
    # Writes the canonical attainment.json artifact whenever an output
    # directory is given; CI compares those bytes across --jobs values.
    peers = args.sizes[0] if args.sizes else tenancy.DEFAULT_PEERS
    result, _table = tenancy.run(seed=args.seed, peers=peers,
                                 jobs=args.jobs, output_dir=args.output)
    return [result]


def _degree(args) -> list[ExperimentResult]:
    peers = args.sizes[0] if args.sizes else overlay_structure.DEGREE_PEERS
    return [overlay_structure.run_degree_distribution(peers, args.seed)]


def _neighbor(args) -> list[ExperimentResult]:
    peers = args.sizes[0] if args.sizes else overlay_structure.DISTANCE_PEERS
    return [overlay_structure.run_neighbor_distance(peers, args.seed)]


def _diameter(args) -> list[ExperimentResult]:
    peers = args.sizes[0] if args.sizes else overlay_structure.DISTANCE_PEERS
    return [overlay_structure.run_diameter(peers, args.seed)]


def _lookup(figures: Iterable[str]) -> Callable:
    def runner(args) -> list[ExperimentResult]:
        results = service_lookup.run(
            sizes=args.sizes or None, seed=args.seed,
            topologies=args.topologies, jobs=args.jobs)
        return [results[f] for f in figures]

    return runner


def _app(figures: Iterable[str]) -> Callable:
    def runner(args) -> list[ExperimentResult]:
        results = app_performance.run(
            sizes=args.sizes or None, seed=args.seed,
            topologies=args.topologies, jobs=args.jobs)
        return [results[f] for f in figures]

    return runner


EXPERIMENTS: dict[str, Callable] = {
    "fig1": _preference, "fig2": _preference, "fig3": _preference,
    "fig4": _preference, "fig5": _preference, "fig6": _preference,
    "preference": _preference,
    "fig7": _degree, "fig8": _degree, "degree": _degree,
    "fig9": _neighbor, "fig10": _neighbor, "neighbor": _neighbor,
    "fig11": _lookup(["fig11"]),
    "fig12": _lookup(["fig12"]),
    "fig13": _lookup(["fig13"]),
    "lookup": _lookup(["fig11", "fig12", "fig13"]),
    "fig14": _app(["fig14"]),
    "fig15": _app(["fig15"]),
    "fig16": _app(["fig16"]),
    "fig17": _app(["fig17"]),
    "app": _app(["fig14", "fig15", "fig16", "fig17"]),
    "churn": lambda args: [churn_cost.run(seed=args.seed)],
    "diameter": _diameter,
    "resilience": lambda args: [resilience.run(seed=args.seed)],
    "partition": lambda args: [resilience.run_partition(seed=args.seed)],
    "adversarial": lambda args: [
        resilience.run_adversarial(seed=args.seed)],
    "faults": lambda args: [
        resilience.run_partition(seed=args.seed),
        resilience.run_adversarial(seed=args.seed),
    ],
    # Runs over real loopback sockets, so it is opt-in (not in 'all').
    "live": _live,
    # Thousand-group SLO scoreboard; opt-in (heavier than the sweeps).
    "tenancy": _tenancy,
}

ALL_GROUPS = ("preference", "degree", "neighbor", "diameter", "lookup",
              "app", "churn", "resilience")


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``groupcast-experiments``."""
    parser = argparse.ArgumentParser(
        prog="groupcast-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help=f"experiment names ({', '.join(sorted(EXPERIMENTS))}) or 'all'")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=None,
        help="overlay sizes for sweep experiments "
             "(default: 1k-8k, or 1k-32k with REPRO_FULL_SCALE=1)")
    parser.add_argument(
        "--topologies", type=int, default=1,
        help="average sweep experiments over this many independent IP "
             "topologies (the paper used 10)")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep experiments; the tables are "
             "byte-identical for every value (default: 1, no pool)")
    parser.add_argument(
        "--format", choices=("text", "csv", "json"), default="text",
        help="output format (default: aligned text tables)")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="directory to write one file per figure instead of stdout")
    parser.add_argument(
        "--telemetry", action="store_true",
        help="record every protocol action into the observability "
             "registry and print the instrument snapshot at the end")
    parser.add_argument(
        "--report", action="store_true",
        help="capture causal span traces and virtual-time profiles and "
             "write report.md/report.json/trace.jsonl under out/ "
             "(or --output); implies --telemetry")
    parser.add_argument(
        "--profile-interval", type=float, default=250.0,
        help="virtual-time sampling cadence for --report, in ms "
             "(default: 250)")
    parser.add_argument(
        "--topology", action="store_true",
        help="record structural topology snapshots (overlay graph + "
             "spanning trees) and write topology.json/topology.dot "
             "under out/ (or --output)")
    parser.add_argument(
        "--snapshot-interval", type=float, default=500.0,
        help="virtual-time cadence for --topology snapshots, in ms "
             "(default: 500)")
    parser.add_argument(
        "--watchdogs", action="store_true",
        help="arm the standard anomaly watchdog pack (partition, "
             "orphans, conservation-gap growth, heartbeat staleness) "
             "against every topology snapshot; implies --topology")
    args = parser.parse_args(argv)

    registry = (enable_telemetry() if args.telemetry or args.report
                else None)
    tracer = profiler = topology = None
    if args.report:
        tracer = enable_tracing(registry=registry)
        profiler = enable_profiling(registry,
                                    interval_ms=args.profile_interval)
    if args.topology or args.watchdogs:
        topology = enable_topology(interval_ms=args.snapshot_interval)
        if args.watchdogs:
            for rule in default_watchdogs():
                topology.add_watchdog(rule)

    names = list(args.experiments)
    if "all" in names:
        names = list(ALL_GROUPS)
    seen: set[int] = set()
    for name in names:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            parser.error(f"unknown experiment {name!r}")
        if id(runner) in seen:
            continue
        seen.add(id(runner))
        for result in runner(args):
            if args.output is not None:
                path = export.write_result(result, args.format,
                                           args.output)
                print(f"wrote {path}")
            else:
                print(export.render(result, args.format))
                print()
    out_dir = args.output if args.output is not None else Path("out")
    if args.report:
        live = live_run.LAST_TELEMETRY
        if live is not None:
            # A live episode ran: report from its streaming stack (the
            # trace was already streamed to trace.jsonl by the pump).
            report = build_report(
                title=f"GroupCast live run report: {' '.join(names)} "
                      f"(seed {args.seed})",
                tracer=live.tracer, registry=live.registry,
                profiler=live.profiler, topology=live.recorder,
                live=live)
            paths = list(write_report(report, out_dir))
            if live.trace_path is not None:
                paths.append(live.trace_path)
            if live.incidents_path is not None:
                paths.append(live.incidents_path)
        else:
            report = build_report(
                title=f"GroupCast run report: {' '.join(names)} "
                      f"(seed {args.seed})",
                tracer=tracer, registry=registry, profiler=profiler,
                topology=topology)
            paths = list(write_report(report, out_dir))
            paths.append(tracer.export_jsonl(
                out_dir / "trace.jsonl", include_meta=True))
        for path in paths:
            print(f"wrote {path}")
        disable_tracing()
        disable_profiling()
    if topology is not None:
        for path in (topology.export_json(out_dir / "topology.json"),
                     topology.export_dot(out_dir / "topology.dot")):
            print(f"wrote {path}")
        disable_topology()
    if registry is not None:
        if args.telemetry:
            snapshot = registry.snapshot()
            if args.output is not None:
                path = args.output / "telemetry.json"
                path.write_text(
                    json.dumps(snapshot, indent=2, sort_keys=True),
                    encoding="utf-8")
                print(f"wrote {path}")
            else:
                print("Telemetry snapshot")
                for name, value in snapshot.items():
                    print(f"  {name}: {value}")
        set_default_registry(NULL_REGISTRY)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Churn maintenance cost: unstructured GroupCast vs a Pastry DHT.

Section 1 motivates unstructured overlays with the observation that "in
environments that exhibit high churn rates maintaining DHT-based
structures imposes severe overheads".  This experiment quantifies that
claim on our own substrates:

* the GroupCast side runs the real event-driven churn world (joins,
  graceful departures, silent crashes, heartbeat detection, epoch
  repair) and counts actual maintenance messages;
* the DHT side uses the Pastry state model: every membership event
  forces the affected node's routing-table and leaf-set entries
  (``join_state_cost``) to be fetched or invalidated across the ring.

Reported per churn event, so the comparison is rate-independent.
"""

from __future__ import annotations

from ..config import GroupCastConfig, OverlayConfig
from ..coords.gnp import GNPSystem
from ..dht.pastry import PastryNetwork
from ..network.topology import generate_transit_stub
from ..overlay.bootstrap import UtilityBootstrap
from ..overlay.churn import ChurnConfig, ChurnProcess
from ..overlay.graph import OverlayNetwork
from ..overlay.hostcache import HostCacheServer
from ..overlay.maintenance import MaintenanceDaemon
from ..overlay.messages import (
    MessageKind,
    MessageStats,
)
from ..sim.engine import Simulator
from ..sim.random import spawn_rng
from .common import ExperimentResult

#: Event-driven maintenance: join protocol, departures, epoch repairs.
EVENT_KINDS = (
    MessageKind.HOSTCACHE_QUERY,
    MessageKind.HOSTCACHE_REPLY,
    MessageKind.PROBE,
    MessageKind.PROBE_RESPONSE,
    MessageKind.CONNECT,
    MessageKind.BACK_CONNECT_REQUEST,
    MessageKind.BACK_CONNECT_ACK,
    MessageKind.DEPARTURE,
)

#: Periodic keepalive traffic — both architectures pay it per state
#: entry they must keep fresh (overlay links vs DHT table entries).
KEEPALIVE_KINDS = (
    MessageKind.HEARTBEAT,
    MessageKind.HEARTBEAT_REPLY,
)


def run_groupcast_churn(
    max_joins: int,
    mean_lifetime_ms: float,
    seed: int = 7,
    sim_horizon_ms: float = 120_000.0,
) -> dict[str, float]:
    """Run the live churn world; return per-event maintenance costs."""
    config = GroupCastConfig(seed=seed)
    simulator = Simulator()
    underlay = generate_transit_stub(
        config.underlay, spawn_rng(seed, "churn-topology"))
    gnp = GNPSystem()
    gnp.fit_landmarks(underlay, spawn_rng(seed, "churn-landmarks"))
    space = gnp.make_space()
    overlay = OverlayNetwork()
    stats = MessageStats()
    host_cache = HostCacheServer(
        max_entries=512, dimensions=space.dimensions,
        rng=spawn_rng(seed, "churn-hostcache"))
    bootstrap = UtilityBootstrap(
        overlay=overlay, host_cache=host_cache,
        rng=spawn_rng(seed, "churn-protocol"),
        overlay_config=config.overlay, utility_config=config.utility,
        stats=stats)
    maintenance = MaintenanceDaemon(
        simulator=simulator, overlay=overlay, host_cache=host_cache,
        bootstrap=bootstrap, rng=spawn_rng(seed, "churn-maintenance"),
        config=OverlayConfig(heartbeat_interval_ms=5_000.0,
                             epoch_ms=20_000.0, min_epoch_ms=10_000.0,
                             max_epoch_ms=60_000.0),
        stats=stats)
    churn = ChurnProcess(
        simulator=simulator, underlay=underlay, gnp=gnp, space=space,
        bootstrap=bootstrap, maintenance=maintenance,
        rng=spawn_rng(seed, "churn-process"),
        config=ChurnConfig(join_interarrival_ms=200.0,
                           mean_lifetime_ms=mean_lifetime_ms,
                           crash_fraction=0.5, max_joins=max_joins))
    churn.start()
    simulator.run(until=sim_horizon_ms)

    events = (len(churn.joined) + len(churn.departed)
              + len(churn.crashed))
    event_messages = stats.total(EVENT_KINDS)
    alive = maintenance.alive_peers()
    mean_degree = 0.0
    if alive:
        mean_degree = sum(
            overlay.degree(p) for p in alive if p in overlay) / len(alive)
    return {
        "events": float(events),
        "event_messages": float(event_messages),
        "per_event": event_messages / max(events, 1),
        "alive": float(len(alive)),
        "keepalive_state": mean_degree,
    }


def pastry_state_cost_per_event(population: int, seed: int = 7) -> float:
    """Per-membership-event state churn of an equally sized Pastry ring."""
    config = GroupCastConfig(seed=seed)
    underlay = generate_transit_stub(
        config.underlay, spawn_rng(seed, "dht-topology"))
    attach_rng = spawn_rng(seed, "dht-attach")
    peer_ids = list(range(population))
    for peer_id in peer_ids:
        underlay.attach_peer(peer_id, attach_rng)
    pastry = PastryNetwork(underlay, peer_ids)
    # A join fetches the state; a leave invalidates the mirror-image
    # entries at other nodes — both scale with join_state_cost.
    return float(pastry.join_state_cost())


def run(max_joins: int = 250, seed: int = 7) -> ExperimentResult:
    """Compare maintenance costs across churn intensities.

    Two cost classes per architecture: event-driven messages per
    membership event, and keepalive state each node must refresh every
    heartbeat period (overlay degree vs DHT routing entries).
    """
    result = ExperimentResult(
        title=("Churn maintenance cost "
               "(GroupCast measured vs Pastry state model)"),
        columns=("mean_lifetime_s", "events", "gc_msgs_per_event",
                 "gc_keepalive_state", "dht_state_per_event",
                 "dht_keepalive_state"),
    )
    dht_cost = pastry_state_cost_per_event(max_joins, seed)
    for lifetime_ms in (20_000.0, 60_000.0, 180_000.0):
        outcome = run_groupcast_churn(max_joins, lifetime_ms, seed)
        result.add_row(
            lifetime_ms / 1000.0,
            int(outcome["events"]),
            outcome["per_event"],
            outcome["keepalive_state"],
            dht_cost,
            dht_cost,
        )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()

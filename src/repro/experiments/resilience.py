"""Group delivery under live churn, with and without tree repair.

The paper argues unstructured overlays tolerate churn; its ongoing-work
section adds tree-level resilience (replication).  This experiment
quantifies both layers end-to-end: an overlay is built, a group is
established, and then forwarding peers crash one by one while payloads
keep flowing.  Three recovery policies are compared:

* ``none``        — crashed forwarders are simply gone; subtrees starve;
* ``repair``      — orphans ripple-search the overlay and re-attach
                    (:mod:`repro.groupcast.repair`);
* ``replication`` — pre-arranged backup parents fail over instantly
                    (:mod:`repro.groupcast.replication`).

Reported per policy: delivery ratio after each crash wave and the total
repair messages spent.
"""

from __future__ import annotations

from ..deployment import Deployment, build_deployment
from ..config import GroupCastConfig
from ..groupcast.advertisement import propagate_advertisement
from ..groupcast.dissemination import disseminate
from ..groupcast.repair import repair_tree
from ..groupcast.replication import BackupPlan, failover
from ..groupcast.subscription import subscribe_members
from ..sim.random import spawn_rng
from .common import ExperimentResult

POLICIES = ("none", "repair", "replication")


def _build_group(deployment: Deployment, members_count: int, seed: int):
    rng = spawn_rng(seed, "resilience-group")
    ids = deployment.peer_ids()
    picks = rng.choice(len(ids), size=members_count, replace=False)
    members = [ids[int(i)] for i in picks]
    rendezvous = members[0]
    advertisement = propagate_advertisement(
        deployment.overlay, rendezvous, 0, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, _ = subscribe_members(
        deployment.overlay, advertisement, members,
        deployment.peer_distance_ms, deployment.config.announcement)
    return tree, rng


def run(peer_count: int = 500, members_count: int = 100,
        crash_waves: int = 6, seed: int = 7) -> ExperimentResult:
    """Crash interior forwarders wave by wave under each policy."""
    result = ExperimentResult(
        title=(f"Group delivery under forwarder crashes "
               f"({peer_count} peers, {members_count} members, "
               f"{crash_waves} waves)"),
        columns=("policy", "final_delivery_ratio", "members_lost",
                 "repair_messages"),
    )
    for policy in POLICIES:
        deployment = build_deployment(
            peer_count, kind="groupcast",
            config=GroupCastConfig(seed=seed))
        tree, rng = _build_group(deployment, members_count, seed)
        plan = BackupPlan()
        if policy == "replication":
            plan.refresh(tree)
        members_at_start = len(tree.members)
        repair_messages = 0
        for _ in range(crash_waves):
            interior = [n for n in tree.nodes()
                        if n != tree.root and tree.children(n)]
            if not interior:
                break
            victim = interior[int(rng.integers(len(interior)))]
            if victim in deployment.overlay:
                deployment.overlay.remove_peer(victim)
            if policy == "none":
                # No recovery: every orphaned subtree is simply lost.
                for orphan in tree.remove_failed_node(victim):
                    tree.drop_subtree(orphan)
            elif policy == "repair":
                report = repair_tree(tree, deployment.overlay, victim)
                repair_messages += report.search_messages
            else:
                report = failover(tree, plan, deployment.overlay, victim)
                repair_messages += report.messages
            tree.validate()
        survivors = len(tree.members)
        source = tree.root
        report = disseminate(tree, source, deployment.underlay)
        reached = len(report.member_delays_ms) + 1  # + source
        result.add_row(
            policy,
            reached / max(members_at_start, 1),
            members_at_start - survivors,
            repair_messages,
        )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()

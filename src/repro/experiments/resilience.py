"""Group delivery under live churn, with and without tree repair.

The paper argues unstructured overlays tolerate churn; its ongoing-work
section adds tree-level resilience (replication).  This experiment
quantifies both layers end-to-end: an overlay is built, a group is
established, and then forwarding peers crash one by one while payloads
keep flowing.  Three recovery policies are compared:

* ``none``        — crashed forwarders are simply gone; subtrees starve;
* ``repair``      — orphans ripple-search the overlay and re-attach
                    (:mod:`repro.groupcast.repair`);
* ``replication`` — pre-arranged backup parents fail over instantly
                    (:mod:`repro.groupcast.replication`).

Beyond the clean crash waves of :func:`run`, two adversarial scenarios
drive the same three policies through seeded :mod:`repro.faults`
schedules:

* :func:`run_partition`   — the overlay is split into seeded components
  while forwarders crash, then heals; repair searches run on the
  partitioned graph, so orphaned subtrees on the wrong side are lost.
* :func:`run_adversarial` — the full event-driven session under a
  :class:`~repro.faults.FaultPlan` (reorder + duplicate windows, a
  partition, message drops and mid-run crashes/restarts), with a
  :class:`~repro.faults.InvariantSuite` evaluated at simulator
  checkpoints and the run's ``trace_digest`` reported for
  reproducibility pinning.

Reported per policy: delivery ratio after each crash wave and the total
repair messages spent.
"""

from __future__ import annotations

from collections import deque

from ..deployment import Deployment, build_deployment
from ..config import AnnouncementConfig, GroupCastConfig
from ..faults import (
    CounterMonotonicity,
    FaultInjector,
    FaultPlan,
    InvariantSuite,
    apply_partition,
    check_overlay_connectivity,
    check_session_tree,
    heal_partition,
)
from ..groupcast.advertisement import propagate_advertisement
from ..groupcast.dissemination import disseminate
from ..groupcast.repair import repair_tree
from ..groupcast.replication import BackupPlan, failover
from ..groupcast.session import GroupSession
from ..groupcast.subscription import subscribe_members
from ..obs.registry import Registry, get_default_registry
from ..obs.topology import TopologyRecorder, get_default_topology_recorder
from ..obs.tracer import Tracer
from ..obs.watchdog import default_watchdogs
from ..sim.random import spawn_rng
from .common import ExperimentResult

POLICIES = ("none", "repair", "replication")


def _build_group(deployment: Deployment, members_count: int, seed: int):
    rng = spawn_rng(seed, "resilience-group")
    ids = deployment.peer_ids()
    picks = rng.choice(len(ids), size=members_count, replace=False)
    members = [ids[int(i)] for i in picks]
    rendezvous = members[0]
    advertisement = propagate_advertisement(
        deployment.overlay, rendezvous, 0, "ssa",
        deployment.peer_distance_ms, rng,
        deployment.config.announcement, deployment.config.utility)
    tree, _ = subscribe_members(
        deployment.overlay, advertisement, members,
        deployment.peer_distance_ms, deployment.config.announcement)
    return tree, rng


def run(peer_count: int = 500, members_count: int = 100,
        crash_waves: int = 6, seed: int = 7) -> ExperimentResult:
    """Crash interior forwarders wave by wave under each policy."""
    result = ExperimentResult(
        title=(f"Group delivery under forwarder crashes "
               f"({peer_count} peers, {members_count} members, "
               f"{crash_waves} waves)"),
        columns=("policy", "final_delivery_ratio", "members_lost",
                 "repair_messages"),
    )
    for policy in POLICIES:
        deployment = build_deployment(
            peer_count, kind="groupcast",
            config=GroupCastConfig(seed=seed))
        tree, rng = _build_group(deployment, members_count, seed)
        plan = BackupPlan()
        if policy == "replication":
            plan.refresh(tree)
        members_at_start = len(tree.members)
        repair_messages = 0
        for _ in range(crash_waves):
            interior = [n for n in tree.nodes()
                        if n != tree.root and tree.children(n)]
            if not interior:
                break
            victim = interior[int(rng.integers(len(interior)))]
            if victim in deployment.overlay:
                deployment.overlay.remove_peer(victim)
            if policy == "none":
                # No recovery: every orphaned subtree is simply lost.
                for orphan in tree.remove_failed_node(victim):
                    tree.drop_subtree(orphan)
            elif policy == "repair":
                report = repair_tree(tree, deployment.overlay, victim)
                repair_messages += report.search_messages
            else:
                report = failover(tree, plan, deployment.overlay, victim)
                repair_messages += report.messages
            tree.validate()
        survivors = len(tree.members)
        source = tree.root
        report = disseminate(tree, source, deployment.underlay)
        reached = len(report.member_delays_ms) + 1  # + source
        result.add_row(
            policy,
            reached / max(members_at_start, 1),
            members_at_start - survivors,
            repair_messages,
        )
    return result


def run_partition(peer_count: int = 300, members_count: int = 60,
                  crash_count: int = 3, seed: int = 7) -> ExperimentResult:
    """Crash forwarders *while the overlay is partitioned*, then heal.

    The overlay is split into two seeded components
    (:meth:`FaultPlan.split`); repair searches therefore run on the
    degraded graph and orphan subtrees stranded on the wrong side of
    the cut are lost.  After healing, one more crash verifies the
    policies recover their full strength on the re-joined overlay.
    """
    result = ExperimentResult(
        title=(f"Group delivery under partitioned crashes "
               f"({peer_count} peers, {members_count} members, "
               f"{crash_count} crashes during partition)"),
        columns=("policy", "severed_links", "final_delivery_ratio",
                 "members_lost", "repair_messages"),
    )
    for policy in POLICIES:
        deployment = build_deployment(
            peer_count, kind="groupcast",
            config=GroupCastConfig(seed=seed))
        tree, rng = _build_group(deployment, members_count, seed)
        plan = BackupPlan()
        if policy == "replication":
            plan.refresh(tree)
        members_at_start = len(tree.members)
        repair_messages = 0
        components = FaultPlan.split(
            spawn_rng(seed, "partition-split"),
            deployment.peer_ids(), 2)
        severed = apply_partition(deployment.overlay, components)

        def crash_one() -> int:
            nonlocal repair_messages
            interior = [n for n in tree.nodes()
                        if n != tree.root and tree.children(n)]
            if not interior:
                return 0
            victim = interior[int(rng.integers(len(interior)))]
            if victim in deployment.overlay:
                deployment.overlay.remove_peer(victim)
            if policy == "none":
                for orphan in tree.remove_failed_node(victim):
                    tree.drop_subtree(orphan)
            elif policy == "repair":
                report = repair_tree(tree, deployment.overlay, victim)
                repair_messages += report.search_messages
            else:
                report = failover(tree, plan, deployment.overlay, victim)
                repair_messages += report.messages
            tree.validate()
            return 1

        for _ in range(crash_count):
            crash_one()
        heal_partition(deployment.overlay, severed)
        crash_one()  # post-heal: recovery is back to full strength
        survivors = len(tree.members)
        report = disseminate(tree, tree.root, deployment.underlay)
        reached = len(report.member_delays_ms) + 1  # + source
        result.add_row(
            policy,
            len(severed),
            reached / max(members_at_start, 1),
            members_at_start - survivors,
            repair_messages,
        )
    return result


#: Virtual-time span of the adversarial fault schedule (ms).
ADVERSARIAL_SPAN_MS = 8_000.0


def run_adversarial(peer_count: int = 150, members_count: int = 40,
                    seed: int = 7,
                    invariant_interval_ms: float = 500.0,
                    topology: TopologyRecorder | None = None
                    ) -> ExperimentResult:
    """The full adversarial scenario on the event-driven session runtime.

    One seeded :meth:`FaultPlan.adversarial` schedule (reorder +
    duplicate windows, a two-component partition that also severs the
    overlay links, message drops, and forwarder crashes with partial
    restarts) is executed against each recovery policy while payloads
    flow and an :class:`InvariantSuite` re-checks the protocol state at
    fixed virtual-time checkpoints.  The session-level policies mirror
    the tree-level ones:

    * ``none``        — the crashed forwarder's whole subtree is
                        declared lost (its members starve);
    * ``repair``      — the subtree's state is reset and its members
                        ripple-search back onto the tree;
    * ``replication`` — orphaned children fail over to pre-arranged
                        grandparent backups with a single message.

    Each row carries the run's full ``trace_digest`` so callers can pin
    bit-reproducibility across repeated invocations.

    When a ``topology`` recorder is given (or a process default is
    installed), each policy's session is watched as its own epoch with
    the standard watchdog pack armed, and the row's ``watchdog_alerts``
    column counts the fired alerts of that epoch — the injected
    partition window must be *detected*, not just survived.  An
    attached recorder is digest bit-transparent, so the
    ``trace_digest`` column is unchanged by observation.
    """
    result = ExperimentResult(
        title=(f"Adversarial schedule: partition + reorder + crashes "
               f"({peer_count} peers, {members_count} members)"),
        columns=("policy", "delivery_ratio", "members_lost",
                 "faults_injected", "crashes", "restarts",
                 "invariant_checks", "violations", "watchdog_alerts",
                 "trace_digest"),
    )
    announcement = AnnouncementConfig(advertisement_ttl=7,
                                      subscription_search_ttl=3)
    if topology is None:
        topology = get_default_topology_recorder()
    if topology is not None and topology.enabled \
            and topology.watchdogs is None:
        for rule in default_watchdogs(group_ids=(1,)):
            topology.add_watchdog(rule)
    for policy in POLICIES:
        deployment = build_deployment(
            peer_count, kind="groupcast",
            config=GroupCastConfig(seed=seed))
        registry = Registry()
        tracer = Tracer()
        session = GroupSession(
            deployment.overlay, deployment.peer_distance_ms,
            spawn_rng(seed, "adv-session"), announcement=announcement,
            utility=deployment.config.utility, registry=registry,
            tracer=tracer)
        policy_epoch = -1
        if topology is not None and topology.enabled:
            # One epoch per policy: the fresh overlay resets watchdog
            # firing state and delta baselines.
            topology.watch_session(session)
            topology.watch_conservation(registry)
            policy_epoch = topology.epoch
        member_rng = spawn_rng(seed, "adv-members")
        ids = deployment.peer_ids()
        picks = member_rng.choice(len(ids), size=members_count,
                                  replace=False)
        members = [ids[int(i)] for i in picks]
        rendezvous = members[0]
        group_id = 1
        session.establish(group_id, rendezvous, members)

        t0 = session.simulator.now
        interior = [
            peer for peer in sorted(session.nodes)
            if peer != rendezvous
            and session.upstream_children(group_id, peer)
        ]
        plan = FaultPlan.adversarial(
            seed, ids, start_ms=t0, duration_ms=ADVERSARIAL_SPAN_MS,
            crash_candidates=interior, crash_count=2)
        injector = FaultInjector(
            plan, spawn_rng(seed, "adv-faults"), registry, tracer)
        injector.attach(session.network)

        declared_lost: set[int] = set()
        backups = session.backup_parents(group_id)

        def subtree_of(root_orphans: list[int]) -> list[int]:
            """The crashed forwarder's downstream closure, sorted.

            Closes over *both* tree children and off-tree informed
            peers whose advertisement reverse path runs through the
            roots: those peers would otherwise keep answering ripple
            searches with a broken upstream chain.
            """
            children: dict[int, list[int]] = {}
            for peer_id, node in session.nodes.items():
                state = node.state(group_id)
                if state.upstream is not None and (
                        state.on_tree or state.has_advertisement):
                    children.setdefault(state.upstream, []).append(peer_id)
            seen: set[int] = set()
            queue = deque(root_orphans)
            while queue:
                current = queue.popleft()
                if current in seen:
                    continue
                seen.add(current)
                queue.extend(children.get(current, ()))
            return sorted(seen)

        def on_crash(victim: int) -> None:
            nonlocal backups
            orphans = sorted(session.upstream_children(group_id, victim))
            session.crash_peer(victim)
            declared_lost.add(victim)
            affected = subtree_of(orphans)
            if policy == "none":
                declared_lost.update(affected)
                return
            if policy == "replication":
                for orphan in orphans:
                    backup = backups.get(orphan)
                    if backup is None or not session.failover_upstream(
                            group_id, orphan, backup):
                        _reset_branch(session, group_id,
                                      subtree_of([orphan]))
                backups = session.backup_parents(group_id)
                return
            # "repair": reset the whole broken branch so stale informed
            # peers stop answering searches, then re-join its members.
            _reset_branch(session, group_id, affected)

        def on_restart(peer_id: int) -> None:
            if peer_id in deployment.overlay:
                session.restart_peer(peer_id)
                declared_lost.discard(peer_id)

        injector.arm(session.simulator, overlay=deployment.overlay,
                     on_crash=on_crash, on_restart=on_restart)

        retries: dict[int, int] = {}

        def sweep() -> None:
            """Child-side parent-failure detection (heartbeat stand-in).

            A member can attach to a forwarder *after* it crashed — the
            search reply was already in flight — which no crash-time
            callback can see.  Each checkpoint, the recovering policies
            reset every branch hanging under a gone/off-tree upstream
            and give stranded off-tree members a bounded number of
            fresh searches.
            """
            broken = session.broken_upstream_peers(group_id)
            reset_now: set[int] = set()
            if broken:
                affected = subtree_of(broken)
                reset_now = set(affected)
                _reset_branch(session, group_id, affected)
            for member in sorted(members):
                if member in reset_now or member in declared_lost:
                    continue
                node = session.nodes.get(member)
                if node is None:
                    continue
                state = node.state(group_id)
                if state.on_tree or retries.get(member, 0) >= 3:
                    continue
                retries[member] = retries.get(member, 0) + 1
                node.start_subscription(group_id)

        suite = InvariantSuite(registry)
        suite.add("session-tree",
                  lambda: check_session_tree(session, group_id,
                                             lambda: declared_lost))
        suite.add("overlay-connectivity",
                  lambda: check_overlay_connectivity(
                      deployment.overlay, min_largest_fraction=0.25))
        suite.add("counters-monotone", CounterMonotonicity(registry))
        if policy == "none":
            suite.attach(session.simulator, invariant_interval_ms)
        else:
            # One chain for sweep + checks: two Simulator.every chains
            # would keep re-arming each other and never drain the heap.
            session.simulator.every(
                invariant_interval_ms,
                lambda: (sweep(), suite.run(session.simulator.now)))

        payload_ids = []
        publish_count = 6
        for index in range(publish_count):
            at = t0 + (index + 0.5) * ADVERSARIAL_SPAN_MS / publish_count
            payload_id = next(session._payload_ids)
            payload_ids.append(payload_id)
            session.simulator.schedule_at(
                at, lambda p=payload_id: _publish_if_alive(
                    session, group_id, rendezvous, p))
        session.simulator.run()
        if policy != "none":
            # Late in-flight replies can break a chain after the last
            # checkpoint; sweep-and-settle until detection finds
            # nothing (bounded — each pass clears the stale state it
            # acted on).
            for _ in range(5):
                if not session.broken_upstream_peers(group_id):
                    break
                sweep()
                session.simulator.run()
        suite.run(session.simulator.now)

        delivered = session.deliveries.get(
            (group_id, payload_ids[-1]), {})
        audience = [m for m in members
                    if m != rendezvous and m not in declared_lost]
        reached = sum(1 for m in audience if m in delivered)
        watchdog_alerts = 0
        if topology is not None and topology.enabled:
            topology.finish(session.simulator.now)
            engine = topology.watchdogs
            if engine is not None:
                watchdog_alerts = len(engine.fired(epoch=policy_epoch))
        result.add_row(
            policy,
            reached / max(len(audience), 1),
            len(declared_lost & set(members)),
            injector.faults_injected(),
            registry.counter("faults.crashes").value,
            registry.counter("faults.restarts").value,
            registry.counter("invariants.checks").value,
            len(suite.violations),
            watchdog_alerts,
            tracer.trace_digest(),
        )
        # Each policy runs on its own private registry so digests and
        # counter assertions stay isolated; fold the counts into the
        # process-default registry (additive) so ``--telemetry`` /
        # ``--report`` runs of this experiment still see them.
        default = get_default_registry()
        if default.enabled:
            default.merge_state(registry.dump_state())
    return result


def _reset_branch(session: GroupSession, group_id: int,
                  branch: list[int]) -> None:
    """Reset a broken branch's protocol state and re-join its members."""
    for peer_id in branch:
        node = session.nodes.get(peer_id)
        if node is None:
            continue
        state = node.state(group_id)
        state.on_tree = False
        state.upstream = None
        state.has_advertisement = False
        state.search_answered = False
    for peer_id in branch:
        node = session.nodes.get(peer_id)
        if node is not None and node.state(group_id).is_member:
            node.start_subscription(group_id)


def _publish_if_alive(session: GroupSession, group_id: int,
                      source: int, payload_id: int) -> None:
    """Flood one payload unless the source crashed meanwhile."""
    node = session.nodes.get(source)
    if node is not None:
        node.start_publish(group_id, payload_id)


def main() -> None:  # pragma: no cover - CLI glue
    print(run().format_table())
    print()
    print(run_partition().format_table())
    print()
    print(run_adversarial().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()

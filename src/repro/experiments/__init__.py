"""Experiment harness: one module per figure of the paper's evaluation.

==========  =======================================  =====================
Figures     What is measured                         Module
==========  =======================================  =====================
1-6         selection preference vs distance/        :mod:`.preference`
            capacity for three resource levels
7-8         overlay degree distributions             :mod:`.overlay_structure`
9-10        average distance to overlay neighbors    :mod:`.overlay_structure`
11-13       service lookup: message counts,          :mod:`.service_lookup`
            receiving/success rates, latency
14-17       application performance: delay penalty,  :mod:`.app_performance`
            link stress, node stress, overload
==========  =======================================  =====================

Run everything with ``python -m repro.experiments all`` (or the
``groupcast-experiments`` console script); individual figures with e.g.
``python -m repro.experiments fig11``.
"""

from .common import ExperimentResult, sweep_sizes

__all__ = ["ExperimentResult", "sweep_sizes"]

"""Figures 11-13: service lookup efficiency.

For every overlay size in the sweep and both overlay kinds (GroupCast
utility-aware vs random power-law PLOD), 10 random rendezvous points each
initiate a service announcement with both schemes (SSA and NSSA).  A
member sample then subscribes — peers that received the announcement join
over the reverse path, the rest run the TTL-2 ripple search.

* Figure 11: total advertising + subscription messages per scheme;
* Figure 12: advertisement receiving rate and subscription success rate;
* Figure 13: service lookup latency (GroupCast vs random power-law, SSA).

The sweep decomposes into independent ``(size, kind, topology)`` points
(:func:`_sweep_point`), which ``jobs > 1`` fans out over a process pool;
results are merged in point order, so the tables are byte-identical for
any worker count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .common import (
    ExperimentResult,
    build_for_experiment,
    establish_and_measure_group,
    experiment_rng,
    group_member_count,
    pick_rendezvous_points,
    sweep_sizes,
)
from .parallel import run_points

RENDEZVOUS_POINTS = 10

SCHEMES = ("ssa", "nssa")


def _sweep_point(size: int, kind: str, topology: int, seed: int,
                 rendezvous_points: int) -> dict[str, list[tuple]]:
    """One (size, kind, topology) sweep point.

    Returns per-scheme lists of
    ``(advertising, subscription, search, receiving_rate, success_rate,
    lookup_latency_ms)`` tuples — plain floats, so the result pickles
    cheaply across the worker pool.
    """
    members_count = group_member_count(size)
    deployment = build_for_experiment(size, kind, seed + topology)
    rng = experiment_rng(seed + topology, f"lookup-{kind}-{size}")
    rendezvous = pick_rendezvous_points(
        deployment, rendezvous_points, rng)
    out: dict[str, list[tuple]] = {scheme: [] for scheme in SCHEMES}
    for scheme in SCHEMES:
        for point in rendezvous:
            ids = deployment.peer_ids()
            picks = rng.choice(len(ids), size=members_count,
                               replace=False)
            members = [ids[int(i)] for i in picks]
            run_ = establish_and_measure_group(
                deployment, point, members, scheme, rng)
            out[scheme].append((
                run_.advertisement_messages,
                run_.subscription_messages,
                run_.search_messages,
                run_.receiving_rate,
                run_.success_rate,
                run_.lookup_latency_ms,
            ))
    return out


def run(sizes: Sequence[int] | None = None, seed: int = 7,
        rendezvous_points: int = RENDEZVOUS_POINTS,
        topologies: int = 1, jobs: int = 1) -> dict[str, ExperimentResult]:
    """Run the sweep and return the three figures' tables.

    ``topologies`` repeats every configuration over that many
    independently seeded IP topologies and averages the rows, as in the
    paper's setup ("each experiment is repeated over 10 IP network
    topologies"); the default of 1 keeps the laptop sweep fast.
    ``jobs`` spreads the (size, kind, topology) points over that many
    worker processes; the output is identical for every value.
    """
    sizes = sweep_sizes(sizes)
    fig11 = ExperimentResult(
        title="Figure 11: service lookup messages",
        columns=("peers", "overlay", "scheme", "advertising_msgs",
                 "subscription_msgs", "search_msgs"),
    )
    fig12 = ExperimentResult(
        title="Figure 12: advertisement receiving / subscription success",
        columns=("peers", "overlay", "scheme", "receiving_rate",
                 "success_rate"),
    )
    fig13 = ExperimentResult(
        title="Figure 13: service lookup latency (SSA)",
        columns=("peers", "overlay", "lookup_latency_ms"),
    )

    points = [(size, kind, topology)
              for size in sizes
              for kind in ("groupcast", "plod")
              for topology in range(topologies)]
    results = run_points(
        _sweep_point,
        [(size, kind, topology, seed, rendezvous_points)
         for size, kind, topology in points],
        jobs=jobs,
    )

    merged: dict[tuple[int, str], dict[str, list[tuple]]] = {}
    for (size, kind, _), point_result in zip(points, results):
        bucket = merged.setdefault(
            (size, kind), {scheme: [] for scheme in SCHEMES})
        for scheme in SCHEMES:
            bucket[scheme].extend(point_result[scheme])

    for size in sizes:
        for kind in ("groupcast", "plod"):
            runs_by_scheme = merged[(size, kind)]
            for scheme in SCHEMES:
                runs = runs_by_scheme[scheme]
                fig11.add_row(
                    size, kind, scheme,
                    int(np.mean([r[0] for r in runs])),
                    int(np.mean([r[1] for r in runs])),
                    int(np.mean([r[2] for r in runs])),
                )
                fig12.add_row(
                    size, kind, scheme,
                    float(np.mean([r[3] for r in runs])),
                    float(np.mean([r[4] for r in runs])),
                )
                if scheme == "ssa":
                    latencies = [r[5] for r in runs if r[5] > 0]
                    fig13.add_row(
                        size, kind,
                        float(np.mean(latencies)) if latencies else 0.0,
                    )
    return {"fig11": fig11, "fig12": fig12, "fig13": fig13}


def main() -> None:  # pragma: no cover - CLI glue
    for result in run().values():
        print(result.format_table())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()

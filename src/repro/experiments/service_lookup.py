"""Figures 11-13: service lookup efficiency.

For every overlay size in the sweep and both overlay kinds (GroupCast
utility-aware vs random power-law PLOD), 10 random rendezvous points each
initiate a service announcement with both schemes (SSA and NSSA).  A
member sample then subscribes — peers that received the announcement join
over the reverse path, the rest run the TTL-2 ripple search.

* Figure 11: total advertising + subscription messages per scheme;
* Figure 12: advertisement receiving rate and subscription success rate;
* Figure 13: service lookup latency (GroupCast vs random power-law, SSA).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .common import (
    ExperimentResult,
    build_for_experiment,
    establish_and_measure_group,
    experiment_rng,
    group_member_count,
    pick_rendezvous_points,
    sweep_sizes,
)

RENDEZVOUS_POINTS = 10


def run(sizes: Sequence[int] | None = None, seed: int = 7,
        rendezvous_points: int = RENDEZVOUS_POINTS,
        topologies: int = 1) -> dict[str, ExperimentResult]:
    """Run the sweep and return the three figures' tables.

    ``topologies`` repeats every configuration over that many
    independently seeded IP topologies and averages the rows, as in the
    paper's setup ("each experiment is repeated over 10 IP network
    topologies"); the default of 1 keeps the laptop sweep fast.
    """
    sizes = sweep_sizes(sizes)
    fig11 = ExperimentResult(
        title="Figure 11: service lookup messages",
        columns=("peers", "overlay", "scheme", "advertising_msgs",
                 "subscription_msgs", "search_msgs"),
    )
    fig12 = ExperimentResult(
        title="Figure 12: advertisement receiving / subscription success",
        columns=("peers", "overlay", "scheme", "receiving_rate",
                 "success_rate"),
    )
    fig13 = ExperimentResult(
        title="Figure 13: service lookup latency (SSA)",
        columns=("peers", "overlay", "lookup_latency_ms"),
    )

    for size in sizes:
        for kind in ("groupcast", "plod"):
            members_count = group_member_count(size)
            runs_by_scheme: dict[str, list] = {"ssa": [], "nssa": []}
            for topology in range(topologies):
                deployment = build_for_experiment(
                    size, kind, seed + topology)
                rng = experiment_rng(
                    seed + topology, f"lookup-{kind}-{size}")
                rendezvous = pick_rendezvous_points(
                    deployment, rendezvous_points, rng)
                for scheme in ("ssa", "nssa"):
                    for point in rendezvous:
                        ids = deployment.peer_ids()
                        picks = rng.choice(len(ids), size=members_count,
                                           replace=False)
                        members = [ids[int(i)] for i in picks]
                        runs_by_scheme[scheme].append(
                            establish_and_measure_group(
                                deployment, point, members, scheme, rng))
            for scheme in ("ssa", "nssa"):
                runs = runs_by_scheme[scheme]
                fig11.add_row(
                    size, kind, scheme,
                    int(np.mean([r.advertisement_messages for r in runs])),
                    int(np.mean([r.subscription_messages for r in runs])),
                    int(np.mean([r.search_messages for r in runs])),
                )
                fig12.add_row(
                    size, kind, scheme,
                    float(np.mean([r.receiving_rate for r in runs])),
                    float(np.mean([r.success_rate for r in runs])),
                )
                if scheme == "ssa":
                    latencies = [r.lookup_latency_ms for r in runs
                                 if r.lookup_latency_ms > 0]
                    fig13.add_row(
                        size, kind,
                        float(np.mean(latencies)) if latencies else 0.0,
                    )
    return {"fig11": fig11, "fig12": fig12, "fig13": fig13}


def main() -> None:  # pragma: no cover - CLI glue
    for result in run().values():
        print(result.format_table())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()

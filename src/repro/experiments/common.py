"""Shared experiment plumbing: sweep sizes, result tables, group workloads."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence

from ..config import GroupCastConfig
from ..deployment import Deployment, build_deployment
from ..groupcast.advertisement import propagate_advertisement
from ..groupcast.dissemination import disseminate
from ..groupcast.subscription import subscribe_members
from ..obs.topology import get_default_topology_recorder
from ..sim.random import spawn_rng

#: Overlay sizes of the paper's sweeps (Figures 11-17).
PAPER_SIZES = (1000, 2000, 4000, 8000, 16000, 32000)

#: Default laptop-friendly subset; set ``REPRO_FULL_SCALE=1`` for the full
#: paper sweep.
DEFAULT_SIZES = (1000, 2000, 4000, 8000)


def sweep_sizes(requested: Sequence[int] | None = None) -> tuple[int, ...]:
    """Overlay sizes to sweep, honouring ``REPRO_FULL_SCALE``."""
    if requested is not None:
        return tuple(requested)
    if os.environ.get("REPRO_FULL_SCALE"):
        return PAPER_SIZES
    return DEFAULT_SIZES


@dataclass
class ExperimentResult:
    """Rows of one regenerated table/figure, printable as aligned text."""

    title: str
    columns: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(values)

    def column(self, name: str) -> list:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def format_table(self) -> str:
        """Render the rows as an aligned text table."""
        rendered = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]),
                max((len(r[i]) for r in rendered), default=0))
            for i in range(len(self.columns))
        ]
        header = "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(r[i].ljust(widths[i]) for i in range(len(r)))
            for r in rendered
        ]
        return "\n".join([self.title, header, rule, *body])


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def group_member_count(overlay_size: int, fraction: float = 0.1,
                       minimum: int = 16) -> int:
    """Members per communication group for a given overlay size.

    The paper does not state group sizes; we subscribe 10 % of the overlay
    per group (at least 16 peers) so group workload scales with the system
    as the load-balancing experiments require.
    """
    return max(minimum, int(overlay_size * fraction))


def announcement_for_size(overlay_size: int,
                          base: "AnnouncementConfig | None" = None):
    """Announcement config with a TTL that grows with the overlay.

    SSA must plant the advertisement "to different topological regions"
    at every scale for the TTL-2 subscription search to succeed; a fixed
    TTL that covers 8k peers starves a 32k overlay (uninformed peers
    cluster in the regions the announcement never entered, so their
    whole ripple neighborhood is blind too).  The schedule adds a hop
    roughly per doubling beyond the laptop sizes.
    """
    from ..config import AnnouncementConfig

    base = base or AnnouncementConfig()
    if overlay_size <= 8_000:
        scaled = 6
    elif overlay_size <= 16_000:
        scaled = 7
    elif overlay_size <= 24_000:
        scaled = 8
    else:
        scaled = 9
    ttl = max(base.advertisement_ttl, scaled)
    if ttl == base.advertisement_ttl:
        return base
    return AnnouncementConfig(
        ssa_fanout_fraction=base.ssa_fanout_fraction,
        ssa_min_fanout=base.ssa_min_fanout,
        ssa_strategy=base.ssa_strategy,
        advertisement_ttl=ttl,
        subscription_search_ttl=base.subscription_search_ttl,
    )


@dataclass
class GroupRun:
    """Everything measured while establishing and exercising one group."""

    rendezvous: int
    advertisement_messages: int
    subscription_messages: int
    search_messages: int
    receiving_rate: float
    success_rate: float
    lookup_latency_ms: float
    tree: object
    delay_penalty: float
    link_stress: float


def establish_and_measure_group(
    deployment: Deployment,
    rendezvous: int,
    members: list[int],
    scheme: str,
    rng,
    announcement=None,
) -> GroupRun:
    """Run advertisement + subscription + one payload for one group.

    ``announcement`` overrides the deployment's announcement config
    (used by strategy ablations).
    """
    from ..metrics.tree_metrics import link_stress, relative_delay_penalty
    from ..network.multicast import build_ip_multicast_tree

    config = deployment.config
    announcement = announcement or announcement_for_size(
        deployment.peer_count, config.announcement)
    advertisement = propagate_advertisement(
        overlay=deployment.overlay,
        rendezvous=rendezvous,
        group_id=0,
        scheme=scheme,
        latency_fn=deployment.peer_distance_ms,
        rng=rng,
        config=announcement,
        utility_config=config.utility,
    )
    tree, subscription = subscribe_members(
        overlay=deployment.overlay,
        advertisement=advertisement,
        members=members,
        latency_fn=deployment.peer_distance_ms,
        config=announcement,
    )
    joined = sorted(tree.members)
    source = joined[int(rng.integers(len(joined)))]
    report = disseminate(tree, source, deployment.underlay)
    receivers = [m for m in tree.members if m != source]
    if receivers:
        ip_tree = build_ip_multicast_tree(
            deployment.underlay, source, receivers)
        penalty = relative_delay_penalty(report, ip_tree)
        stress = link_stress(report, ip_tree)
    else:  # pragma: no cover - degenerate single-member group
        penalty, stress = 1.0, 1.0
    recorder = get_default_topology_recorder()
    if recorder is not None and recorder.enabled:
        # Feed the observatory the finished tree plus the cost ratios
        # just measured — no extra dissemination run needed.
        recorder.observe_tree(
            tree, group_id=0, underlay=deployment.underlay,
            extra_metrics={"delay_penalty": penalty,
                           "link_stress": stress})
    return GroupRun(
        rendezvous=rendezvous,
        advertisement_messages=advertisement.messages_sent,
        subscription_messages=subscription.subscription_messages,
        search_messages=subscription.search_messages,
        receiving_rate=advertisement.receiving_rate(deployment.peer_count),
        success_rate=subscription.success_rate,
        lookup_latency_ms=subscription.average_lookup_latency_ms(),
        tree=tree,
        delay_penalty=penalty,
        link_stress=stress,
    )


def pick_rendezvous_points(deployment: Deployment, count: int,
                           rng) -> list[int]:
    """Random rendezvous points, as in the paper's Section 4.2 setup."""
    ids = deployment.peer_ids()
    picks = rng.choice(len(ids), size=min(count, len(ids)), replace=False)
    return [ids[int(i)] for i in picks]


def build_for_experiment(peer_count: int, kind: str,
                         seed: int) -> Deployment:
    """Deployment with the default experiment configuration."""
    return build_deployment(
        peer_count, kind=kind, config=GroupCastConfig(seed=seed))


def experiment_rng(seed: int, label: str):
    """Named random stream for experiment-level decisions."""
    return spawn_rng(seed, "experiment", label)

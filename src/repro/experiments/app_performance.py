"""Figures 14-17: end-system multicast application performance.

For every overlay size and the four combinations of Section 4.3/4.4 —
{GroupCast utility-aware, random power-law} x {SSA, NSSA} — each overlay
hosts 10 communication groups (as in the paper's setup).  Per group a
payload is flooded from a random member and compared against the merged
shortest-path IP multicast tree:

* Figure 14: relative delay penalty;
* Figure 15: link stress;
* Figure 16: node stress (avg children of non-leaf tree nodes);
* Figure 17: overload index (fraction overloaded x avg excess workload),
  with per-peer workloads aggregated across the 10 trees.

The sweep decomposes into independent ``(size, topology)`` points
(:func:`_sweep_point`, which runs all four combos on that topology);
``jobs > 1`` fans the points out over a process pool and merges in point
order, so the tables are byte-identical for any worker count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..metrics.tree_metrics import (
    aggregate_workloads,
    node_stress,
    overload_index,
)
from .common import (
    ExperimentResult,
    build_for_experiment,
    establish_and_measure_group,
    experiment_rng,
    group_member_count,
    pick_rendezvous_points,
    sweep_sizes,
)
from .parallel import run_points

GROUPS_PER_OVERLAY = 10

COMBOS = (
    ("groupcast", "ssa"),
    ("groupcast", "nssa"),
    ("plod", "ssa"),
    ("plod", "nssa"),
)


def _sweep_point(size: int, topology: int, seed: int,
                 groups_per_overlay: int) -> dict[tuple[str, str],
                                                  dict[str, float]]:
    """One (size, topology) sweep point: all four combos on one topology.

    Returns per-combo sample dicts of plain floats, so the result
    pickles cheaply across the worker pool (the group trees stay in the
    worker).
    """
    members_count = group_member_count(size)
    deployments = {
        kind: build_for_experiment(size, kind, seed + topology)
        for kind in ("groupcast", "plod")
    }
    out: dict[tuple[str, str], dict[str, float]] = {}
    for kind, scheme in COMBOS:
        deployment = deployments[kind]
        rng = experiment_rng(
            seed + topology, f"app-{kind}-{scheme}-{size}")
        rendezvous = pick_rendezvous_points(
            deployment, groups_per_overlay, rng)
        runs = []
        for point in rendezvous:
            ids = deployment.peer_ids()
            picks = rng.choice(len(ids), size=members_count,
                               replace=False)
            members = [ids[int(i)] for i in picks]
            runs.append(establish_and_measure_group(
                deployment, point, members, scheme, rng))
        trees = [r.tree for r in runs]
        capacities = {info.peer_id: info.capacity
                      for info in deployment.overlay.peers()}
        out[(kind, scheme)] = {
            "rdp": float(np.mean([r.delay_penalty for r in runs])),
            "stress": float(np.mean([r.link_stress for r in runs])),
            "node_stress": node_stress(trees),
            "overload": overload_index(
                aggregate_workloads(trees), capacities),
        }
    return out


def run(sizes: Sequence[int] | None = None, seed: int = 7,
        groups_per_overlay: int = GROUPS_PER_OVERLAY,
        topologies: int = 1, jobs: int = 1) -> dict[str, ExperimentResult]:
    """Run the sweep and return the four figures' tables.

    ``topologies`` averages every row over that many independently
    seeded IP topologies, mirroring the paper's repetition of each
    experiment over 10 GT-ITM instances.  ``jobs`` spreads the
    (size, topology) points over that many worker processes; the output
    is identical for every value.
    """
    sizes = sweep_sizes(sizes)
    fig14 = ExperimentResult(
        title="Figure 14: relative delay penalty",
        columns=("peers", "overlay", "scheme", "delay_penalty"),
    )
    fig15 = ExperimentResult(
        title="Figure 15: link stress",
        columns=("peers", "overlay", "scheme", "link_stress"),
    )
    fig16 = ExperimentResult(
        title="Figure 16: node stress",
        columns=("peers", "overlay", "scheme", "node_stress"),
    )
    fig17 = ExperimentResult(
        title="Figure 17: overload index",
        columns=("peers", "overlay", "scheme", "overload_index"),
    )

    points = [(size, topology)
              for size in sizes
              for topology in range(topologies)]
    results = run_points(
        _sweep_point,
        [(size, topology, seed, groups_per_overlay)
         for size, topology in points],
        jobs=jobs,
    )

    # Accumulators: (size, kind, scheme) -> per-topology sample lists.
    samples: dict[tuple[int, str, str], dict[str, list[float]]] = {}
    for (size, _), point_result in zip(points, results):
        for combo, values in point_result.items():
            kind, scheme = combo
            bucket = samples.setdefault(
                (size, kind, scheme),
                {"rdp": [], "stress": [], "node_stress": [],
                 "overload": []})
            for key, value in values.items():
                bucket[key].append(value)

    for size in sizes:
        for kind, scheme in COMBOS:
            bucket = samples[(size, kind, scheme)]
            fig14.add_row(size, kind, scheme,
                          float(np.mean(bucket["rdp"])))
            fig15.add_row(size, kind, scheme,
                          float(np.mean(bucket["stress"])))
            fig16.add_row(size, kind, scheme,
                          float(np.mean(bucket["node_stress"])))
            fig17.add_row(size, kind, scheme,
                          float(np.mean(bucket["overload"])))
    return {"fig14": fig14, "fig15": fig15, "fig16": fig16, "fig17": fig17}


def main() -> None:  # pragma: no cover - CLI glue
    for result in run().values():
        print(result.format_table())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()

"""Serialization of experiment results (CSV / JSON / text).

``groupcast-experiments --format csv --output results/`` writes one file
per regenerated figure so downstream plotting (matplotlib, gnuplot,
spreadsheets) can consume the sweeps without re-running them.
"""

from __future__ import annotations

import csv
import io
import json
import re
from pathlib import Path

from ..errors import ConfigurationError
from .common import ExperimentResult

FORMATS = ("text", "csv", "json")


def to_csv(result: ExperimentResult) -> str:
    """Render a result as CSV (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.columns)
    writer.writerows(result.rows)
    return buffer.getvalue()


def to_json(result: ExperimentResult) -> str:
    """Render a result as a JSON document with title and records."""
    records = [dict(zip(result.columns, row)) for row in result.rows]
    return json.dumps(
        {"title": result.title, "columns": list(result.columns),
         "rows": records},
        indent=2, default=_coerce)


def render(result: ExperimentResult, fmt: str) -> str:
    """Render a result in any supported format."""
    if fmt == "text":
        return result.format_table()
    if fmt == "csv":
        return to_csv(result)
    if fmt == "json":
        return to_json(result)
    raise ConfigurationError(
        f"unknown format {fmt!r}; expected one of {FORMATS}")


def slug_for(result: ExperimentResult) -> str:
    """A filesystem-safe name derived from the result title."""
    head = result.title.split(":")[0].strip().lower()
    slug = re.sub(r"[^a-z0-9]+", "-", head).strip("-")
    return slug or "experiment"


def write_result(result: ExperimentResult, fmt: str,
                 directory: Path) -> Path:
    """Write one result file into ``directory``; returns the path."""
    extension = {"text": "txt", "csv": "csv", "json": "json"}[fmt]
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{slug_for(result)}.{extension}"
    path.write_text(render(result, fmt), encoding="utf-8")
    return path


def _coerce(value):
    """JSON fallback for numpy scalars."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"unserializable value {value!r}")

"""Live runtime episode under streaming telemetry (the ops-plane demo).

Runs the 10-peer loopback episode of the conformance suite — advertise
→ subscribe → publish → crash → repair → publish — over real asyncio
UDP sockets with a :class:`~repro.obs.live.LiveTelemetry` pump
attached and an adversarial :class:`~repro.faults.plan.FaultPlan`
injected into the wire (seeded drops on one tree branch, duplicates
everywhere; the ARQ layer recovers both).  This is the experiment the
CI runtime job runs with ``--report --watchdogs`` to produce the live
artifacts: ``report.md`` with the "Live run" section, the streamed
``trace.jsonl`` span stream, and ``incidents.json`` from the online
watchdogs (the crash window reliably trips the orphaned-members rule).

The topology is the hand-crafted 10-peer graph whose advertisement
paths are separated by >= 14 ms, so the live NSSA tree matches the
simulated twin's on every run — loopback jitter and the injected
faults cannot flip a first-arrival decision.

``LAST_TELEMETRY`` holds the pump of the most recent :func:`run` so
the experiment runner can assemble the live report after the episode
finished (module-global because the runner's report stage is decoupled
from the experiment call).
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path
from typing import Optional

import numpy as np

from ..config import AnnouncementConfig
from ..faults.plan import FaultPlan, FaultWindow
from ..obs import default_watchdogs
from ..obs.live import LIVE_INTERVAL_S, LiveTelemetry
from ..overlay.graph import OverlayNetwork
from ..peers.peer import PeerInfo
from ..runtime import FaultyTransport, RuntimeCluster
from ..sim.random import spawn_rng
from .common import ExperimentResult

#: The most recent run's telemetry pump (runner report hook).
LAST_TELEMETRY: Optional[LiveTelemetry] = None

GROUP = 1
RENDEZVOUS = 0
MEMBERS = (3, 7, 8, 9)
DEFAULT_SEED = 7
ANNOUNCEMENT = AnnouncementConfig(advertisement_ttl=7,
                                  subscription_search_ttl=3)

#: The conformance suite's 10-peer topology: unique path sums with
#: >= 14 ms separation between best and runner-up advertisement paths.
EDGES = {
    (0, 1): 4.0,
    (0, 2): 9.0,
    (1, 3): 4.0,
    (1, 4): 25.0,
    (2, 4): 6.0,
    (2, 5): 23.0,
    (3, 6): 4.0,
    (4, 7): 6.0,
    (5, 8): 5.0,
    (6, 9): 37.0,
    (7, 9): 11.0,
}
_LATENCY = {frozenset(edge): ms for edge, ms in EDGES.items()}


def latency_ms(a: int, b: int) -> float:
    return _LATENCY[frozenset((a, b))]


def build_overlay() -> OverlayNetwork:
    overlay = OverlayNetwork()
    for peer_id in range(10):
        overlay.add_peer(PeerInfo(
            peer_id=peer_id, capacity=10.0,
            coordinate=np.array([float(peer_id), 0.0])))
    for a, b in EDGES:
        overlay.add_link(a, b)
    return overlay


def fault_plan() -> FaultPlan:
    """Wire adversity the ARQ layer must absorb without a trace.

    Drops are confined to the 5-8 branch (a leaf member behind its own
    relay): retransmits recover every loss and the delayed arrivals
    cannot outrun any other peer's first advertisement, so the tree —
    and therefore the span-forest shape — stays identical to the
    fault-free simulated twin.  Duplicates hit every link; the
    receive-side dedup window suppresses them all.
    """
    return FaultPlan(windows=(
        FaultWindow(kind="drop", start_ms=0.0, end_ms=1e9,
                    probability=0.35, peers=frozenset({5, 8})),
        FaultWindow(kind="duplicate", start_ms=0.0, end_ms=1e9,
                    probability=0.25, magnitude_ms=2.0),
    ))


async def _episode(seed: int, output_dir: Optional[Path],
                   rules, interval_s: float, budget_s: float):
    """One faulted live episode; returns (cluster, live, survey)."""
    settle_s = max(1.0, budget_s / 10.0)
    cluster = RuntimeCluster(
        overlay=build_overlay(),
        seed=seed,
        announcement=ANNOUNCEMENT,
        latency_fn=latency_ms,
        faults=FaultyTransport(fault_plan(),
                               spawn_rng(seed, "live-faults"),
                               base_latency_ms=0.0),
    )
    live = LiveTelemetry(cluster, interval_s=interval_s,
                         output_dir=output_dir, rules=rules)
    async with cluster:
        live.start()
        with live.phase("advertise"):
            cluster.advertise(GROUP, RENDEZVOUS, scheme="nssa")
            await cluster.settle(settle_s)
        with live.phase("subscribe"):
            cluster.subscribe(GROUP, MEMBERS)
            await cluster.settle(settle_s)
        with live.phase("publish"):
            cluster.publish(GROUP, 9)
            await cluster.settle(settle_s)
        with live.phase("crash-repair"):
            await cluster.crash(7)
            cluster.rejoin(GROUP, 9)
            # Deterministic capture point: peer 9 is off the tree right
            # now, so this snapshot trips the orphaned-members watchdog
            # regardless of where the pump's cadence happens to land.
            live.poll()
            await cluster.wait_until(
                lambda: 9 in cluster.members_on_tree(GROUP), settle_s)
            await cluster.settle(settle_s)
        with live.phase("publish"):
            cluster.publish(GROUP, 3)
            await cluster.settle(settle_s)
        survey = await cluster.ops_survey()
    await live.close()
    return cluster, live, survey


def run(seed: int = DEFAULT_SEED,
        output_dir: Optional[str | Path] = None,
        watchdogs: bool = True,
        interval_s: float = LIVE_INTERVAL_S,
        budget_s: Optional[float] = None) -> list[ExperimentResult]:
    """Run the live episode; returns [summary table, per-peer table].

    ``output_dir`` enables the streamed artifacts (``trace.jsonl``,
    ``snapshots.jsonl``, ``incidents.json``); the pump itself runs —
    and the watchdogs evaluate — either way.
    """
    global LAST_TELEMETRY
    if budget_s is None:
        budget_s = float(os.environ.get("REPRO_RUNTIME_BUDGET_S", "30"))
    rules = default_watchdogs() if watchdogs else ()
    out = Path(output_dir) if output_dir is not None else None
    cluster, live, survey = asyncio.run(
        _episode(seed, out, rules, interval_s, budget_s))
    LAST_TELEMETRY = live

    section = live.live_section()
    engine = live.recorder.watchdogs
    summary = ExperimentResult(
        title=f"Live runtime episode (seed {seed})",
        columns=("metric", "value"))
    summary.add_row("peers", len(build_overlay().peer_ids()))
    summary.add_row("telemetry polls", section["polls"])
    summary.add_row("trace records streamed",
                    section["stream"]["records"])
    summary.add_row("stream records missed",
                    section["stream"]["stream_dropped"])
    summary.add_row("payload deliveries",
                    sum(len(records)
                        for records in cluster.delivery_log().values()))
    summary.add_row("wire drops recovered",
                    section["arq"]["fault_dropped"])
    summary.add_row("wire duplicates suppressed",
                    section["arq"]["fault_duplicated"])
    summary.add_row("retransmits", section["arq"]["retransmits"])
    summary.add_row("watchdog incidents",
                    engine.summary()["fired"] if engine is not None
                    else 0)
    summary.add_row("halted", section["halted"] or "no")

    peers_table = ExperimentResult(
        title="Ops survey (per-peer introspection over the wire)",
        columns=("peer", "incarnation", "unacked", "groups",
                 "upstream", "on_tree", "stalest contact (ms)"))
    for peer_id, reply in survey.items():
        row = reply.group_row(GROUP)
        stalest = max((age for _, age in reply.last_seen), default=0.0)
        peers_table.add_row(
            peer_id, reply.incarnation, reply.unacked,
            len(reply.groups),
            row[1] if row is not None else "-",
            bool(row[2]) if row is not None else "-",
            stalest)
    return [summary, peers_table]

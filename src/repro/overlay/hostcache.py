"""Host cache server (Gnucleus-style) used for bootstrapping.

Section 3.3: a joining peer contacts a host cache server that "caches the
information of a list of peers that are currently active".  On a query the
cache sorts its entries by network-coordinate distance to the joiner and
returns the closest ``|BD|`` entries plus ``|BR| = |BD|`` random entries,
with the combined list sized like a Gnutella neighbor list (5-8).

Like the real Gnucleus web caches, the server holds a bounded number of
entries (``max_entries``); when full, a random entry is evicted, keeping
the cache an unbiased sample of the active population.  Entries live in
preallocated numpy slots so a query is a single vectorised distance
computation — bootstrap cost stays flat as the network grows.
"""

from __future__ import annotations

import numpy as np

from ..errors import BootstrapError
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource


class HostCacheServer:
    """Bounded registry of active peers answering bootstrap queries."""

    def __init__(self, max_entries: int = 1024, dimensions: int = 5,
                 rng: RandomSource | None = None) -> None:
        if max_entries < 2:
            raise BootstrapError("host cache needs at least two entries")
        if dimensions < 1:
            raise BootstrapError("dimensions must be >= 1")
        self.max_entries = max_entries
        self._rng = rng or np.random.default_rng(0)
        self._coords = np.zeros((max_entries, dimensions), dtype=float)
        self._slot_info: list[PeerInfo | None] = [None] * max_entries
        self._slot_of: dict[int, int] = {}
        self._free: list[int] = list(range(max_entries - 1, -1, -1))

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._slot_of

    def register(self, info: PeerInfo) -> None:
        """Record a peer as active; evicts a random entry when full."""
        slot = self._slot_of.get(info.peer_id)
        if slot is None:
            if self._free:
                slot = self._free.pop()
            else:
                slot = int(self._rng.integers(self.max_entries))
                evicted = self._slot_info[slot]
                assert evicted is not None
                del self._slot_of[evicted.peer_id]
            self._slot_of[info.peer_id] = slot
        self._slot_info[slot] = info
        self._coords[slot] = info.coordinate

    def unregister(self, peer_id: int) -> None:
        """Remove a departed peer (idempotent)."""
        slot = self._slot_of.pop(peer_id, None)
        if slot is not None:
            self._slot_info[slot] = None
            self._free.append(slot)

    def entries(self) -> list[PeerInfo]:
        """All cached peers (copy)."""
        return [info for info in self._slot_info if info is not None]

    def bootstrap_candidates(
        self,
        joining: PeerInfo,
        rng: RandomSource,
        list_size: int = 8,
    ) -> list[PeerInfo]:
        """Return the bootstrap list ``B_i = BD_i U BR_i`` for a joiner.

        ``BD_i`` holds the ``list_size // 2`` cached peers closest to the
        joiner in coordinate space; ``BR_i`` holds as many uniformly random
        ones from the remainder.  Returns fewer peers when the cache is
        small, and an empty list for the very first peer.
        """
        if list_size < 2:
            raise BootstrapError("bootstrap list size must be >= 2")
        slots = np.asarray(
            [slot for peer, slot in self._slot_of.items()
             if peer != joining.peer_id],
            dtype=np.int64)
        if slots.size == 0:
            return []
        distances = np.linalg.norm(
            self._coords[slots] - joining.coordinate, axis=1)
        order = np.argsort(distances, kind="stable")
        half = list_size // 2
        closest_slots = slots[order[:half]]
        rest_slots = slots[order[half:]]
        picked: list[PeerInfo] = []
        for slot in closest_slots:
            info = self._slot_info[int(slot)]
            assert info is not None
            picked.append(info)
        if rest_slots.size > 0:
            count = min(half, int(rest_slots.size))
            random_picks = rng.choice(rest_slots, size=count, replace=False)
            for slot in random_picks:
                info = self._slot_info[int(slot)]
                assert info is not None
                picked.append(info)
        return picked

"""Protocol message vocabulary and accounting.

The evaluation counts messages per scheme (Figure 11) and measures
latencies along message paths, so every protocol action in the library
records what it sent through a :class:`MessageStats` ledger.  Message
dataclasses mirror the wire formats sketched in Section 3.3 (``Mprob``,
``Mprob_resp``) and Section 2.2 (advertisement/subscription).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..peers.peer import PeerInfo


class MessageKind(enum.Enum):
    """Every message type any GroupCast protocol can emit."""

    HOSTCACHE_QUERY = "hostcache_query"
    HOSTCACHE_REPLY = "hostcache_reply"
    PROBE = "probe"
    PROBE_RESPONSE = "probe_response"
    CONNECT = "connect"
    BACK_CONNECT_REQUEST = "back_connect_request"
    BACK_CONNECT_ACK = "back_connect_ack"
    HEARTBEAT = "heartbeat"
    HEARTBEAT_REPLY = "heartbeat_reply"
    DEPARTURE = "departure"
    ADVERTISEMENT = "advertisement"
    SUBSCRIPTION = "subscription"
    SUBSCRIPTION_SEARCH = "subscription_search"
    SEARCH_RESPONSE = "search_response"
    RANDOM_WALK = "random_walk"
    PAYLOAD = "payload"
    # Operational introspection (live runtime only, never part of the
    # logical protocol vocabulary the conformance oracle compares).
    OPS = "ops"
    OPS_REPLY = "ops_reply"


#: Kinds that Figure 11 groups as "advertising" messages.
ADVERTISING_KINDS = frozenset({MessageKind.ADVERTISEMENT})

#: Kinds that Figure 11 groups as "subscription" messages.
SUBSCRIPTION_KINDS = frozenset({
    MessageKind.SUBSCRIPTION,
    MessageKind.SUBSCRIPTION_SEARCH,
    MessageKind.SEARCH_RESPONSE,
})


class MessageStats:
    """Counter of messages sent, by kind."""

    def __init__(self) -> None:
        self._counts: Counter[MessageKind] = Counter()

    def record(self, kind: MessageKind, count: int = 1) -> None:
        """Record ``count`` messages of ``kind``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[kind] += count

    def count(self, kind: MessageKind) -> int:
        """Messages of a single kind."""
        return self._counts[kind]

    def total(self, kinds: Iterable[MessageKind] | None = None) -> int:
        """Total messages, optionally restricted to ``kinds``."""
        if kinds is None:
            return sum(self._counts.values())
        return sum(self._counts[k] for k in kinds)

    def merge(self, other: "MessageStats") -> None:
        """Fold another ledger into this one."""
        self._counts.update(other._counts)

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view, keyed by kind value."""
        return {kind.value: count for kind, count in self._counts.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageStats({self.snapshot()})"


@dataclass(frozen=True)
class ProbeMessage:
    """``Mprob``: a joining peer probing a bootstrap candidate."""

    source: PeerInfo
    ttl: int = 0
    hops: int = 0


@dataclass(frozen=True)
class ProbeResponse:
    """``Mprob_resp``: probe reply augmented with the neighbor list."""

    source: PeerInfo
    neighbors: tuple[PeerInfo, ...]
    ttl: int = 0
    hops: int = 0


@dataclass(frozen=True)
class BackConnectRequest:
    """Backward-connection request carrying the requester quadruplet."""

    requester: PeerInfo


@dataclass(frozen=True)
class AdvertisementMessage:
    """A service announcement (SSA or NSSA) in flight.

    ``path`` is the peer-id trail from the rendezvous point to the current
    holder — NSSA embeds the full path to suppress loops (as in DVMRP);
    SSA uses it to set up reverse forwarding state.
    """

    group_id: int
    rendezvous: int
    path: tuple[int, ...]
    ttl: int
    elapsed_ms: float = 0.0

    def forwarded(self, via: int, link_latency_ms: float
                  ) -> "AdvertisementMessage":
        """Copy of the message after one more overlay hop through ``via``."""
        return AdvertisementMessage(
            group_id=self.group_id,
            rendezvous=self.rendezvous,
            path=self.path + (via,),
            ttl=self.ttl - 1,
            elapsed_ms=self.elapsed_ms + link_latency_ms,
        )


@dataclass(frozen=True)
class SubscriptionMessage:
    """A join request travelling the reverse advertisement path."""

    group_id: int
    subscriber: int
    via: tuple[int, ...] = field(default_factory=tuple)

"""Two-tier (supernode) overlay architecture.

The paper's conclusion notes that "the GroupCast system can be easily
adapted for supernode or multi-layer overlay architectures"; Section 5
also warns about the fragility of *predetermined* hierarchies.  This
module provides that adaptation: peers whose capacity clears a threshold
are elected supernodes and inter-connected with the same utility-aware
bootstrap used by the flat overlay; every remaining peer becomes a leaf
attached to nearby supernodes with free capacity slots (a supernode of
capacity ``C`` serves up to ``C * leaf_slot_fraction`` leaves, so the
hierarchy follows measured capacity rather than static roles).

Group communication runs on the core: a group's spanning tree connects
the supernodes of its members (via the normal SSA machinery) and each
member leaf hangs under its supernode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import (
    AnnouncementConfig,
    ConfigurationError,
    OverlayConfig,
    UtilityConfig,
)
from ..errors import OverlayError
from ..groupcast.advertisement import LatencyFn, propagate_advertisement
from ..groupcast.spanning_tree import SpanningTree
from ..groupcast.subscription import subscribe_members
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource
from .bootstrap import UtilityBootstrap
from .graph import OverlayNetwork
from .hostcache import HostCacheServer
from .messages import MessageStats


@dataclass(frozen=True)
class SupernodeConfig:
    """Tunables of the two-tier election and attachment."""

    capacity_threshold: float = 100.0
    min_supernode_fraction: float = 0.05
    leaf_slot_fraction: float = 0.2
    leaf_links: int = 1

    def __post_init__(self) -> None:
        if self.capacity_threshold <= 0.0:
            raise ConfigurationError("capacity_threshold must be positive")
        if not 0.0 < self.min_supernode_fraction <= 1.0:
            raise ConfigurationError(
                "min_supernode_fraction must be in (0, 1]")
        if self.leaf_slot_fraction <= 0.0:
            raise ConfigurationError("leaf_slot_fraction must be positive")
        if self.leaf_links < 1:
            raise ConfigurationError("leaf_links must be >= 1")


@dataclass
class TwoTierOverlay:
    """A supernode core plus leaf attachments.

    ``assignments`` maps each leaf to its primary supernode;
    ``backup_assignments`` holds the extra attachments of multi-homed
    leaves (``leaf_links > 1``), used for instant failover when the
    primary supernode departs.
    """

    core: OverlayNetwork
    supernodes: frozenset[int]
    assignments: dict[int, int] = field(default_factory=dict)
    backup_assignments: dict[int, tuple[int, ...]] = field(
        default_factory=dict)
    stats: MessageStats = field(default_factory=MessageStats)

    def supernode_of(self, peer_id: int) -> int:
        """The supernode serving ``peer_id`` (itself, if it is one)."""
        if peer_id in self.supernodes:
            return peer_id
        try:
            return self.assignments[peer_id]
        except KeyError:
            raise OverlayError(f"peer {peer_id} is not attached")

    def backups_of(self, leaf: int) -> tuple[int, ...]:
        """Backup supernodes of a multi-homed leaf (may be empty)."""
        if leaf in self.supernodes:
            raise OverlayError(f"{leaf} is a supernode, not a leaf")
        if leaf not in self.assignments:
            raise OverlayError(f"peer {leaf} is not attached")
        return self.backup_assignments.get(leaf, ())

    def fail_over(self, leaf: int) -> int:
        """Promote a backup to primary after the primary departed."""
        backups = self.backups_of(leaf)
        if not backups:
            raise OverlayError(f"leaf {leaf} has no backup supernode")
        new_primary, *rest = backups
        self.assignments[leaf] = new_primary
        self.backup_assignments[leaf] = tuple(rest)
        return new_primary

    def leaves_of(self, supernode: int) -> list[int]:
        """Leaves currently served by a supernode."""
        if supernode not in self.supernodes:
            raise OverlayError(f"{supernode} is not a supernode")
        return [leaf for leaf, sn in self.assignments.items()
                if sn == supernode]

    @property
    def leaf_count(self) -> int:
        """Number of attached leaf peers."""
        return len(self.assignments)


def build_two_tier_overlay(
    infos: list[PeerInfo],
    rng: RandomSource,
    config: SupernodeConfig | None = None,
    overlay_config: OverlayConfig | None = None,
    utility_config: UtilityConfig | None = None,
) -> TwoTierOverlay:
    """Elect supernodes, wire the core, attach the leaves."""
    if len(infos) < 2:
        raise OverlayError("a two-tier overlay needs at least two peers")
    config = config or SupernodeConfig()
    overlay_config = overlay_config or OverlayConfig()
    utility_config = utility_config or UtilityConfig()

    supernodes = _elect_supernodes(infos, config)
    stats = MessageStats()
    core = OverlayNetwork()
    host_cache = HostCacheServer(
        max_entries=max(64, len(supernodes)),
        dimensions=infos[0].coordinate.shape[0],
        rng=rng,
    )
    bootstrap = UtilityBootstrap(
        overlay=core, host_cache=host_cache, rng=rng,
        overlay_config=overlay_config, utility_config=utility_config,
        stats=stats)
    for info in supernodes:
        bootstrap.join(info)

    assignments, backups = _attach_leaves(infos, supernodes, config, rng)
    return TwoTierOverlay(
        core=core,
        supernodes=frozenset(info.peer_id for info in supernodes),
        assignments=assignments,
        backup_assignments=backups,
        stats=stats,
    )


def _elect_supernodes(infos: list[PeerInfo],
                      config: SupernodeConfig) -> list[PeerInfo]:
    elected = [info for info in infos
               if info.capacity >= config.capacity_threshold]
    minimum = max(2, int(np.ceil(
        config.min_supernode_fraction * len(infos))))
    if len(elected) < minimum:
        # Capacity-sparse population: promote the most capable peers.
        by_capacity = sorted(infos, key=lambda i: i.capacity, reverse=True)
        elected = by_capacity[:minimum]
    return elected


def _attach_leaves(
    infos: list[PeerInfo],
    supernodes: list[PeerInfo],
    config: SupernodeConfig,
    rng: RandomSource,
) -> tuple[dict[int, int], dict[int, tuple[int, ...]]]:
    """Assign each leaf to the closest supernodes with free slots.

    The first attachment is the primary; ``config.leaf_links - 1``
    further attachments (to the next-closest distinct supernodes with
    slots) become failover backups.
    """
    supernode_ids = {info.peer_id for info in supernodes}
    slots = {
        info.peer_id: max(1, int(info.capacity * config.leaf_slot_fraction))
        for info in supernodes
    }
    coordinates = np.stack([info.coordinate for info in supernodes])
    assignments: dict[int, int] = {}
    backups: dict[int, tuple[int, ...]] = {}
    leaves = [info for info in infos if info.peer_id not in supernode_ids]
    # Attach in random order so late leaves do not systematically lose.
    order = rng.permutation(len(leaves))
    for index in order:
        leaf = leaves[int(index)]
        distances = np.linalg.norm(coordinates - leaf.coordinate, axis=1)
        attached: list[int] = []
        for sn_index in np.argsort(distances, kind="stable"):
            if len(attached) >= config.leaf_links:
                break
            supernode = supernodes[int(sn_index)].peer_id
            if slots[supernode] > 0:
                slots[supernode] -= 1
                attached.append(supernode)
        if not attached:
            # Every slot exhausted: overload the closest supernode rather
            # than orphan the leaf (mirrors real super-peer systems).
            attached.append(supernodes[int(np.argmin(distances))].peer_id)
        assignments[leaf.peer_id] = attached[0]
        if len(attached) > 1:
            backups[leaf.peer_id] = tuple(attached[1:])
    return assignments, backups


def build_two_tier_group_tree(
    two_tier: TwoTierOverlay,
    members: list[int],
    rendezvous: int,
    latency_fn: LatencyFn,
    rng: RandomSource,
    announcement: AnnouncementConfig | None = None,
    utility_config: UtilityConfig | None = None,
) -> SpanningTree:
    """Spanning tree for a group on the two-tier overlay.

    The rendezvous' supernode advertises over the core; each member's
    supernode subscribes; member leaves hang under their supernodes.
    """
    announcement = announcement or AnnouncementConfig()
    utility_config = utility_config or UtilityConfig()
    rendezvous_sn = two_tier.supernode_of(rendezvous)

    member_sns: dict[int, list[int]] = {}
    for member in members:
        member_sns.setdefault(two_tier.supernode_of(member), []).append(
            member)

    advertisement = propagate_advertisement(
        overlay=two_tier.core,
        rendezvous=rendezvous_sn,
        group_id=0,
        scheme="ssa",
        latency_fn=latency_fn,
        rng=rng,
        config=announcement,
        utility_config=utility_config,
        stats=two_tier.stats,
    )
    tree, _ = subscribe_members(
        overlay=two_tier.core,
        advertisement=advertisement,
        members=list(member_sns),
        latency_fn=latency_fn,
        config=announcement,
        stats=two_tier.stats,
    )
    for supernode, leaves in member_sns.items():
        if supernode not in tree:
            continue  # subscription failed for this supernode
        for leaf in leaves:
            if leaf == supernode:
                continue
            tree.graft_chain([leaf, supernode])
            tree.mark_member(leaf)
    tree.validate()
    return tree

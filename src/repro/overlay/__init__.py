"""Unstructured P2P overlay: graph, bootstrap protocols, baselines, churn."""

from .graph import OverlayNetwork
from .hostcache import HostCacheServer
from .messages import MessageKind, MessageStats
from .bootstrap import JoinResult, UtilityBootstrap
from .plod import generate_plod_overlay
from .gnutella import generate_random_overlay
from .maintenance import MaintenanceDaemon
from .churn import ChurnConfig, ChurnProcess

__all__ = [
    "OverlayNetwork",
    "HostCacheServer",
    "MessageKind",
    "MessageStats",
    "JoinResult",
    "UtilityBootstrap",
    "generate_plod_overlay",
    "generate_random_overlay",
    "MaintenanceDaemon",
    "ChurnConfig",
    "ChurnProcess",
]

"""Plain Gnutella-style random overlay baseline.

Peers join one by one and connect to a uniformly random subset of the
peers already present, with the classic 5-8 neighbor target.  Neither
capacity nor proximity plays any role — this is the fully unstructured
reference point (and the substrate Skype-era systems actually ran on).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import OverlayError
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource
from .graph import OverlayNetwork


def generate_random_overlay(
    peers: Sequence[PeerInfo],
    rng: RandomSource,
    target_degree: int = 6,
) -> OverlayNetwork:
    """Build a random-attachment overlay over ``peers`` (in join order)."""
    if target_degree < 1:
        raise OverlayError("target_degree must be >= 1")
    overlay = OverlayNetwork()
    joined: list[int] = []
    for info in peers:
        overlay.add_peer(info)
        if joined:
            count = min(target_degree, len(joined))
            picks = rng.choice(len(joined), size=count, replace=False)
            for index in picks:
                overlay.add_link(info.peer_id, joined[int(index)])
        joined.append(info.peer_id)
    return overlay

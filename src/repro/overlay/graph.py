"""The overlay network graph.

The P2P network of the paper is a directed graph in notation but all links
are used bidirectionally (forwarding connections plus back links); we model
the overlay as an undirected graph over :class:`~repro.peers.PeerInfo`
vertices.  Each peer only ever reads its own adjacency — "each peer is
aware of only its immediate neighbors; a global view of the network is not
maintained" — but the container offers whole-graph statistics for the
evaluation (degree distributions, clustering, component structure).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

import numpy as np

from ..errors import OverlayError, PeerNotFoundError
from ..peers.peer import PeerInfo
from ..sim.random import RandomSource


class OverlayNetwork:
    """Undirected overlay graph with per-peer metadata."""

    def __init__(self) -> None:
        self._peers: dict[int, PeerInfo] = {}
        self._adjacency: dict[int, set[int]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def add_peer(self, info: PeerInfo) -> None:
        """Insert an isolated peer."""
        if info.peer_id in self._peers:
            raise OverlayError(f"peer {info.peer_id} already present")
        self._peers[info.peer_id] = info
        self._adjacency[info.peer_id] = set()

    def remove_peer(self, peer_id: int) -> None:
        """Remove a peer and all its links."""
        self._require(peer_id)
        for neighbor in list(self._adjacency[peer_id]):
            self.remove_link(peer_id, neighbor)
        del self._adjacency[peer_id]
        del self._peers[peer_id]

    def peer(self, peer_id: int) -> PeerInfo:
        """Metadata of a peer."""
        self._require(peer_id)
        return self._peers[peer_id]

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    @property
    def peer_count(self) -> int:
        """Number of peers currently in the overlay."""
        return len(self._peers)

    def peer_ids(self) -> list[int]:
        """All peer identifiers."""
        return list(self._peers)

    def peers(self) -> Iterator[PeerInfo]:
        """Iterate over peer metadata."""
        return iter(self._peers.values())

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_link(self, a: int, b: int) -> bool:
        """Add the undirected link ``a-b``; return False if it existed."""
        if a == b:
            raise OverlayError("self-links are not allowed")
        self._require(a)
        self._require(b)
        if b in self._adjacency[a]:
            return False
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._edge_count += 1
        return True

    def remove_link(self, a: int, b: int) -> bool:
        """Remove the link ``a-b``; return False if it was absent."""
        self._require(a)
        self._require(b)
        if b not in self._adjacency[a]:
            return False
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        self._edge_count -= 1
        return True

    def has_link(self, a: int, b: int) -> bool:
        """True if the link ``a-b`` exists."""
        self._require(a)
        self._require(b)
        return b in self._adjacency[a]

    def neighbors(self, peer_id: int) -> list[int]:
        """Neighbor ids of a peer (copy; safe to mutate)."""
        self._require(peer_id)
        return list(self._adjacency[peer_id])

    def iter_neighbors(self, peer_id: int) -> Iterator[int]:
        """Iterate a peer's neighbors without materializing a list.

        Same iteration order as :meth:`neighbors`; useful in scans that
        touch every peer's adjacency once (maintenance heartbeats).
        """
        self._require(peer_id)
        return iter(self._adjacency[peer_id])

    def csr(self) -> tuple["CSRGraph", list[int]]:
        """Array snapshot: ``(graph, ids)`` with row ``i`` = ``ids[i]``.

        The CSR rows are ordered by ``peer_ids()`` and each row's
        neighbors come out in the same set-iteration order
        :meth:`neighbors` reports, so vectorized kernels run over
        exactly the structure the object layer sees.  The snapshot is
        frozen — later graph mutations do not write through.
        """
        from ..core.arrays import CSRGraph

        ids = self.peer_ids()
        index = {peer_id: row for row, peer_id in enumerate(ids)}
        lengths = [len(self._adjacency[peer_id]) for peer_id in ids]
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(np.asarray(lengths, dtype=np.int64), out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        at = 0
        for peer_id in ids:
            for neighbor in self._adjacency[peer_id]:
                indices[at] = index[neighbor]
                at += 1
        return CSRGraph(indptr, indices), ids

    def degree(self, peer_id: int) -> int:
        """Number of overlay links of a peer."""
        self._require(peer_id)
        return len(self._adjacency[peer_id])

    @property
    def edge_count(self) -> int:
        """Number of undirected overlay links."""
        return self._edge_count

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over undirected links as ``(low, high)`` pairs."""
        for a, neighbors in self._adjacency.items():
            for b in neighbors:
                if a < b:
                    yield (a, b)

    # ------------------------------------------------------------------
    # Whole-graph statistics (evaluation only)
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Degree of every peer, in ``peer_ids()`` order."""
        return np.asarray(
            [len(self._adjacency[p]) for p in self._peers], dtype=np.int64)

    def degree_distribution(self) -> tuple[np.ndarray, np.ndarray]:
        """``(degree values, peer counts)`` — the data behind Figures 7-8."""
        degrees = self.degrees()
        if degrees.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        values, counts = np.unique(degrees, return_counts=True)
        return values, counts

    def clustering_coefficient(
        self, rng: RandomSource | None = None, sample: int | None = None
    ) -> float:
        """Average local clustering coefficient.

        With ``sample`` set, estimates over a random subset of peers
        (adequate for large overlays).
        """
        ids = self.peer_ids()
        if not ids:
            return 0.0
        if sample is not None and sample < len(ids):
            if rng is None:
                raise OverlayError("sampled clustering needs an rng")
            ids = [ids[i] for i in rng.choice(len(ids), size=sample,
                                              replace=False)]
        total = 0.0
        for peer in ids:
            neighbors = self._adjacency[peer]
            k = len(neighbors)
            if k < 2:
                continue
            links = 0
            neighbor_list = list(neighbors)
            for i, u in enumerate(neighbor_list):
                adjacency_u = self._adjacency[u]
                for v in neighbor_list[i + 1:]:
                    if v in adjacency_u:
                        links += 1
            total += 2.0 * links / (k * (k - 1))
        return total / len(ids)

    def connected_component_sizes(self) -> list[int]:
        """Sizes of connected components, largest first."""
        seen: set[int] = set()
        sizes = []
        for start in self._peers:
            if start in seen:
                continue
            size = 0
            queue = deque([start])
            seen.add(start)
            while queue:
                node = queue.popleft()
                size += 1
                for neighbor in self._adjacency[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        queue.append(neighbor)
            sizes.append(size)
        sizes.sort(reverse=True)
        return sizes

    def is_connected(self) -> bool:
        """True if every peer can reach every other peer."""
        if not self._peers:
            return True
        return self.connected_component_sizes()[0] == len(self._peers)

    def hop_distances_from(self, start: int) -> dict[int, int]:
        """BFS hop counts from ``start`` to every reachable peer."""
        self._require(start)
        dist = {start: 0}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in self._adjacency[node]:
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        return dist

    def estimated_diameter(self, rng: RandomSource, samples: int = 16) -> int:
        """Max eccentricity over a random sample of sources (lower bound)."""
        ids = self.peer_ids()
        if len(ids) < 2:
            return 0
        picks = rng.choice(len(ids), size=min(samples, len(ids)),
                           replace=False)
        best = 0
        for i in picks:
            dist = self.hop_distances_from(ids[int(i)])
            best = max(best, max(dist.values()))
        return best

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (capacity as node attribute)."""
        import networkx as nx

        graph = nx.Graph()
        for peer_id, info in self._peers.items():
            graph.add_node(peer_id, capacity=info.capacity)
        graph.add_edges_from(self.edges())
        return graph

    def _require(self, peer_id: int) -> None:
        if peer_id not in self._peers:
            raise PeerNotFoundError(f"peer {peer_id} is not in the overlay")
